"""E8 — teleport messaging vs. manual control (the conclusion's 49%).

The paper reports a 49% performance improvement for the frequency-hopping
radio when the manual control path (control tokens merged into the data
stream through a feedback loop) is replaced by teleport messaging — the
feedback loop serializes the radio across the parallel machine, while the
teleport version exposes the true dependences and pipelines freely.

We reproduce that comparison on the simulated 16-core machine (mapping
both radios with the software-pipelining strategy) and also report
single-threaded interpreter throughput, where the loop's *structural*
penalty disappears and only the per-block control-token overhead remains
(see EXPERIMENTS.md).
"""

import numpy as np

from repro.apps import freqhop
from repro.bench import measure_throughput
from repro.machine.raw import RawMachine
from repro.mapping.strategies import software_pipeline


def _simulated():
    machine = RawMachine()
    teleport = software_pipeline(freqhop.build_teleport(), machine)
    manual = software_pipeline(freqhop.build_manual(), machine)
    return teleport, manual


def test_e8_teleport_vs_manual_parallel(benchmark, report):
    teleport, manual = benchmark.pedantic(_simulated, rounds=1, iterations=1)
    gain = (
        manual.sim.cycles_per_period / teleport.sim.cycles_per_period
    ) * (teleport.baseline.cycles_per_period / manual.baseline.cycles_per_period) - 1.0
    report(
        "== E8: frequency-hopping radio on the 16-core machine ==\n"
        f"teleport control: {teleport.speedup:6.2f}x over single core\n"
        f"manual (loop)   : {manual.speedup:6.2f}x over single core\n"
        f"teleport improvement over manual: {100 * (teleport.speedup / manual.speedup - 1):.0f}%"
        "  (paper reports 49% on a cluster)"
    )
    # The feedback loop's recurrence serializes the manual radio; teleport
    # messaging restores pipeline parallelism.
    assert teleport.speedup > 1.3 * manual.speedup


def test_e8_interpreter_throughput(benchmark, report):
    """Single-threaded wall clock: the manual token overhead alone is small
    (the paper's win is about parallel structure, not single-core cost)."""

    def compare():
        teleport = measure_throughput(freqhop.build_teleport, 200, warmup_periods=40)
        manual = measure_throughput(freqhop.build_manual, 200, warmup_periods=40)
        # Both radios run batched now: the manual loop through segmented
        # superbatching, the teleport radio period-at-a-time with receiver
        # batches split at the SDEP-derived delivery points.
        teleport_batched = measure_throughput(
            freqhop.build_teleport, 200, warmup_periods=40, engine="batched"
        )
        manual_batched = measure_throughput(
            freqhop.build_manual, 200, warmup_periods=40, engine="batched"
        )
        return teleport, manual, teleport_batched, manual_batched

    teleport, manual, teleport_batched, manual_batched = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    ratio = teleport.items_per_second / manual.items_per_second
    report(
        "== E8b: single-threaded interpreter throughput ==\n"
        f"teleport:           {teleport.items_per_second:10.0f} items/s\n"
        f"manual:             {manual.items_per_second:10.0f} items/s\n"
        f"teleport (batched): {teleport_batched.items_per_second:10.0f} items/s\n"
        f"manual (batched):   {manual_batched.items_per_second:10.0f} items/s\n"
        f"ratio: {ratio:.2f} (structural loop penalty absent on one thread)"
    )
    # On one thread the two are comparable; teleport must not be pathologically
    # slower (its messaging machinery is off the steady-state fast path).
    assert ratio > 0.7


def test_e8_same_radio_semantics(benchmark):
    """Both control paths implement the same radio: the data outputs agree
    until the first retune, and both retune on the same stimulus."""
    from repro.graph.builtins import CollectSink
    from repro.runtime import Interpreter

    def run_both():
        apps = {}
        for label, build in (
            ("teleport", freqhop.build_teleport),
            ("manual", freqhop.build_manual),
        ):
            app = build()
            sink = next(f for f in app.filters() if isinstance(f, CollectSink))
            Interpreter(app).run(periods=16)
            mixer = next(f for f in app.filters() if "rf2if" in f.name)
            apps[label] = (np.array(sink.collected), mixer.hops)
        return apps

    apps = benchmark.pedantic(run_both, rounds=1, iterations=1)
    tele_out, tele_hops = apps["teleport"]
    man_out, man_hops = apps["manual"]
    m = min(len(tele_out), len(man_out))
    assert m >= freqhop.N
    # Identical spectra for at least the first FFT block (before any hop
    # can take effect in either variant).
    assert np.allclose(tele_out[: freqhop.N], man_out[: freqhop.N])
