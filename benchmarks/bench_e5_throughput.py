"""E5 — Figure `thruput`: utilization and MFLOPS of the combined technique.

For the full task+data+SWP mapping on the 16-core machine the paper
reports compute utilization (>= 60% for 7 of 12 benchmarks) against a
7200-MFLOPS peak.  We regenerate both columns from the simulator.
"""

from repro.apps import EVALUATION_SUITE
from repro.bench import strategy_result
from repro.machine.raw import RawMachine


def _compute():
    rows = {}
    for app in EVALUATION_SUITE:
        res = strategy_result(app, "combined")
        rows[app] = (res.sim.utilization, res.sim.mflops())
    return rows


def test_e5_utilization_and_mflops(benchmark, report):
    rows = benchmark.pedantic(_compute, rounds=1, iterations=1)
    machine = RawMachine()
    lines = [
        "== E5: combined technique — utilization and MFLOPS ==",
        f"(peak = {machine.peak_mflops:.0f} MFLOPS)",
        f"{'Benchmark':16s} {'Utilization':>11s} {'MFLOPS':>10s}",
    ]
    for app, (util, mflops) in rows.items():
        lines.append(f"{app:16s} {100 * util:10.1f}% {mflops:10.0f}")
    report("\n".join(lines))

    utils = [u for u, _ in rows.values()]
    # Generally excellent utilization: a majority of the suite above 50%.
    assert sum(1 for u in utils if u >= 0.5) >= 6
    # Nothing exceeds the machine's capacity.
    assert all(0.0 < u <= 1.0 for u in utils)
    assert all(m <= machine.peak_mflops for _, m in rows.values())
    # The heavy numeric kernels sustain a large fraction of peak.
    assert rows["DCT"][0] > 0.6
    assert rows["TDE"][0] > 0.6
