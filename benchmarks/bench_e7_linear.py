"""E7 — the title/abstract experiment: linear optimization speedups.

For the linear-suite applications we measure end-to-end interpreter
throughput for four builds of each program: the original graph, linear
combination ("linear replacement"), frequency translation, and automatic
selection — plus the cost model's FLOPs-per-input accounting.  The paper's
headline: performance improvements averaging 400% (with frequency
translation hurting narrow-window filters and automatic selection fixing
that).
"""

import pytest

from repro.apps import dtoa, fir, fmradio, oversampler, rateconvert, targetdetect
from repro.bench import geometric_mean, measure_throughput, normalize_periods
from repro.linear import apply_combination, apply_frequency, apply_selection

#: (module, base periods) — periods sized so each measurement is ~0.1-1 s.
APPS = (
    ("FIR", fir.build, 400),
    ("RateConvert", rateconvert.build, 200),
    ("TargetDetect", targetdetect.build, 150),
    ("Oversampler", oversampler.build, 30),
    ("DToA", dtoa.build, 60),
    ("FMRadio", fmradio.build, 60),
)

MODES = (
    ("linear", apply_combination),
    ("freq", apply_frequency),
    ("autosel", apply_selection),
)

_cache = {}


def _speedups():
    if _cache:
        return _cache
    for name, build, periods in APPS:
        base = measure_throughput(build, periods, label=f"{name}/base")
        row = {}
        for mode, transform in MODES:
            opt_builder = lambda b=build, t=transform: t(b())[0]
            opt_periods = normalize_periods(build, opt_builder, periods)
            sample = measure_throughput(opt_builder, opt_periods, label=f"{name}/{mode}")
            row[mode] = sample.items_per_second / base.items_per_second
        _cache[name] = row
    return _cache


def test_e7_linear_optimization_speedups(benchmark, report):
    table = benchmark.pedantic(_speedups, rounds=1, iterations=1)
    lines = ["== E7: linear optimization — throughput speedup over baseline =="]
    header = f"{'Benchmark':14s}" + "".join(f"{m:>10s}" for m, _ in MODES)
    lines.append(header)
    for app, row in table.items():
        lines.append(f"{app:14s}" + "".join(f"{row[m]:10.2f}" for m, _ in MODES))
    geo = {m: geometric_mean([table[a][m] for a in table]) for m, _ in MODES}
    lines.append("-" * len(header))
    lines.append(f"{'geomean':14s}" + "".join(f"{geo[m]:10.2f}" for m, _ in MODES))
    report("\n".join(lines))

    # The abstract's claim: improvements averaging ~400% across the suite
    # under automatic selection (we require >= 3x on the geometric mean).
    assert geo["autosel"] >= 3.0
    # Linear combination alone is a consistent win.
    assert geo["linear"] >= 2.0
    # Automatic selection is at least as good as plain combination on
    # average (it may trail unconditional frequency translation in *wall
    # clock* where Python's per-firing overhead exceeds the FLOPs model —
    # see EXPERIMENTS.md).
    assert geo["autosel"] >= geo["linear"]
    # Frequency translation dominates for long-window convolutions...
    assert table["FIR"]["freq"] > table["FIR"]["linear"]
    # ...and autosel matches the best choice on FIR.
    assert table["FIR"]["autosel"] >= 0.8 * table["FIR"]["freq"]


def test_e7c_batched_engine_composes_with_linear_opt(benchmark, report):
    """The batched engine stacks on top of linear optimization: the
    automatically-selected build (LinearFilter / FrequencyFilter bodies)
    gets its own work_batch kernels, so engine and optimization multiply."""

    def compute():
        rows = {}
        for name, build, periods in APPS[:3]:  # keep the wall clock modest
            opt_builder = lambda b=build: apply_selection(b())[0]
            opt_periods = normalize_periods(build, opt_builder, periods)
            scalar = measure_throughput(opt_builder, opt_periods, label=f"{name}/autosel")
            batched = measure_throughput(
                opt_builder, opt_periods, label=f"{name}/autosel+batched", engine="batched"
            )
            rows[name] = batched.items_per_second / scalar.items_per_second
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = ["== E7c: batched engine over the autosel-optimized builds =="]
    for name, speedup in rows.items():
        lines.append(f"{name:14s}{speedup:10.1f}x")
    lines.append(f"{'geomean':14s}{geometric_mean(list(rows.values())):10.1f}x")
    report("\n".join(lines))

    # Batching the optimized graph must still be a clear win.
    assert geometric_mean(list(rows.values())) >= 2.0


def test_e7_flops_accounting(benchmark, report):
    """The cost model's side of the figure: FLOPs per input item."""
    from repro.linear import collapse_linear, compare
    from repro.apps.common import FIRFilter, lowpass_taps

    def compute():
        rows = {}
        for taps in (8, 32, 128, 256):
            rep = collapse_linear(FIRFilter(lowpass_taps(taps, 0.2)))
            rows[taps] = compare(rep)
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = [
        "== E7b: FIR FLOPs per input — direct vs frequency ==",
        f"{'taps':>6s} {'direct':>10s} {'freq':>10s} {'block':>6s}",
    ]
    for taps, report_ in rows.items():
        lines.append(
            f"{taps:6d} {report_.direct:10.1f} {report_.freq:10.1f} {report_.block:6d}"
        )
    report("\n".join(lines))

    # Crossover: frequency translation loses on short filters, wins big on
    # long ones (the figure the paper's selection algorithm navigates).
    assert not rows[8].freq_wins
    assert rows[128].freq_wins
    assert rows[256].direct / rows[256].freq > 2.0
