"""E17 — cost of the always-on metrics registry and flight recorder.

PR 10 turned telemetry on by default: every ``run_steady()`` bumps a
handful of counters, observes two histograms, and appends two flight
events; cache layers mirror hit/miss increments; the parallel engine adds
per-command accounting and a sampler thread.  The design claim is that all
of it records at *run/command* granularity — never per period, firing, or
item — so the cost is a constant per run, invisible next to any real
workload.  This experiment measures that claim directly.

Method: for each app x engine cell, measure best-of-``REPEATS`` throughput
with the registry **enabled** (the shipped default) and **disabled**
(``METRICS.disabled()``, the same code path with every record call turned
into one attribute check), interleaving the arms so slow drift in a shared
host hits both equally.  Overhead is ``1 - enabled/disabled``.  Two run
shapes bracket the exposure:

* **long runs** (one ``run_steady`` over many periods) — the realistic
  case; per-run constants amortize to ~0;
* **chopped runs** (``run_steady(1)`` in a loop) — the adversarial case;
  every period pays the full per-run constant, bounding the worst possible
  overhead a pathological caller could see.

Writes ``BENCH_metrics_overhead.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_e17_metrics_overhead.py [--smoke]
"""

import json
import sys
import time
import warnings
from pathlib import Path

from repro.apps import ALL_APPS
from repro.bench import geometric_mean
from repro.errors import EngineDowngradeWarning
from repro.graph.builtins import CollectSink
from repro.obs.metrics import METRICS
from repro.runtime import Interpreter

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_metrics_overhead.json"

#: (name, periods) — sized so one arm runs ~a second under batched.
APPS = (
    ("FIR", 40000),
    ("FMRadio", 8000),
)

ENGINES = ("batched", "codegen")
REPEATS = 3


def _measure(name: str, engine: str, periods: int, chopped: bool) -> float:
    """items/second of one timed arm (construction outside the window)."""
    app = ALL_APPS[name]()
    sink = next(f for f in app.filters() if isinstance(f, CollectSink))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", EngineDowngradeWarning)
        interp = Interpreter(app, check=False, engine=engine)
        try:
            interp.run(periods=2)
            produced_before = len(sink.collected)
            start = time.perf_counter()
            if chopped:
                for _ in range(periods):
                    interp.run_steady(1)
            else:
                interp.run_steady(periods)
            elapsed = time.perf_counter() - start
        finally:
            interp.close()
    outputs = len(sink.collected) - produced_before
    return outputs / elapsed if elapsed > 0 else float("inf")


def measure_pair(name: str, engine: str, periods: int, chopped: bool) -> dict:
    """Interleaved best-of-``REPEATS`` for the enabled and disabled arms."""
    best_on = best_off = 0.0
    for _ in range(REPEATS):
        best_on = max(best_on, _measure(name, engine, periods, chopped))
        with METRICS.disabled():
            best_off = max(best_off, _measure(name, engine, periods, chopped))
    overhead = 1.0 - best_on / best_off if best_off > 0 else 0.0
    return {
        "items_per_sec_enabled": best_on,
        "items_per_sec_disabled": best_off,
        "overhead_pct": 100.0 * overhead,
    }


def run_bench(scale: float = 1.0) -> dict:
    table: dict = {}
    ratios = []
    for name, periods in APPS:
        p = max(4, int(periods * scale))
        for engine in ENGINES:
            row = {
                "long": measure_pair(name, engine, p, chopped=False),
                # 1/40th of the periods: each one is a separate run_steady,
                # so the per-run constant is paid p/40 times instead of once.
                "chopped": measure_pair(
                    name, engine, max(4, p // 40), chopped=True
                ),
            }
            table[f"{name}:{engine}"] = row
            ratios.append(
                row["long"]["items_per_sec_enabled"]
                / max(row["long"]["items_per_sec_disabled"], 1e-9)
            )
    table["geomean_enabled_over_disabled_long"] = geometric_mean(ratios)
    return table


def render(table: dict) -> str:
    lines = [
        "E17 — always-on metrics overhead (enabled vs disabled, best-of-%d)"
        % REPEATS,
        "",
        f"{'cell':24s}{'shape':>9s}{'on (it/s)':>14s}{'off (it/s)':>14s}"
        f"{'overhead':>10s}",
    ]
    for cell, row in table.items():
        if not isinstance(row, dict):
            continue
        for shape in ("long", "chopped"):
            r = row[shape]
            lines.append(
                f"{cell:24s}{shape:>9s}"
                f"{r['items_per_sec_enabled']:>14.0f}"
                f"{r['items_per_sec_disabled']:>14.0f}"
                f"{r['overhead_pct']:>9.2f}%"
            )
    lines.append("")
    lines.append(
        "geomean enabled/disabled (long runs): "
        f"{table['geomean_enabled_over_disabled_long']:.4f}"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    table = run_bench(scale=0.01 if smoke else 1.0)
    print(render(table))
    if not smoke:
        RESULT_PATH.write_text(json.dumps(table, indent=2) + "\n")
        print(f"\nwrote {RESULT_PATH}")
