"""E4 — Figure `fine-dup`: fine-grained vs coarse-grained data parallelism.

Naively replicating *every* stateless filter across all 16 cores
overwhelms the communication substrate.  The paper's headline contrast is
DCT: 14.6x coarse-grained vs 4.0x fine-grained.
"""

from repro.bench import geometric_mean, render_bars, speedup_table

STRATEGIES = ("fine_grained", "data")


def test_e4_fine_grained_duplication(benchmark, report):
    table = benchmark.pedantic(lambda: speedup_table(STRATEGIES), rounds=1, iterations=1)
    report(render_bars(table, STRATEGIES, "== E4: fine-grained vs coarse-grained data parallelism =="))

    geo = {s: geometric_mean([table[a][s] for a in table]) for s in STRATEGIES}
    # Coarsening-then-fissing dominates naive replication overall.
    assert geo["data"] > 2.0 * geo["fine_grained"]
    # The paper's DCT contrast: coarse ~14.6x vs fine ~4.0x.
    assert table["DCT"]["data"] > 10.0
    assert table["DCT"]["fine_grained"] < 6.0
    assert table["DCT"]["data"] > 2.5 * table["DCT"]["fine_grained"]
    # Fine-grained fission can even lose to a single core when the filters
    # are tiny (BitonicSort, DES).
    assert table["BitonicSort"]["fine_grained"] < 1.0
