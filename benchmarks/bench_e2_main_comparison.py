"""E2 — Figure "Task, Task + Data, and Task + Data + Software Pipeline"
(`main_comp`).

16-core throughput speedup over single-core for the three cumulative
strategies.  Paper's headline numbers: task geomean 2.27x; coarse-grained
data parallelism 9.9x (4.36x over task); adding software pipelining a
further 1.45x.  We reproduce the ordering and the approximate factors on
the simulated machine.
"""

from repro.apps import EVALUATION_SUITE
from repro.bench import geometric_mean, render_bars, speedup_table, strategy_result

STRATEGIES = ("task", "data", "combined")


def _compute():
    return speedup_table(STRATEGIES)


def test_e2_main_comparison(benchmark, report):
    table = benchmark.pedantic(_compute, rounds=1, iterations=1)
    report(render_bars(table, STRATEGIES, "== E2: Task / Task+Data / Task+Data+SWP (speedup vs 1 core) =="))

    geo = {s: geometric_mean([table[a][s] for a in table]) for s in STRATEGIES}
    # Task parallelism alone is inadequate on 16 cores (paper: 2.27x).
    assert 1.2 < geo["task"] < 4.0
    # Coarse-grained data parallelism produces abundant parallelism
    # (paper: 9.9x overall, 4.36x over the task baseline).
    assert geo["data"] > 2.0 * geo["task"]
    assert geo["data"] > 5.0
    # Software pipelining on top provides a further cumulative gain
    # (paper: 1.45x mean over data parallelism alone).
    assert geo["combined"] > 1.2 * geo["data"]

    # Per-application claims from the text:
    # BitonicSort's fine task granularity yields little, but coarse data
    # parallelism recovers a large speedup (paper: 8.4x).
    assert table["BitonicSort"]["task"] < 1.5
    assert table["BitonicSort"]["data"] > 5.0
    # Wide, load-balanced split-joins benefit from task parallelism alone.
    for app in ("Radar", "ChannelVocoder", "FilterBank"):
        assert table[app]["task"] > 2.0
    # Stateful computation paralyzes data parallelism for Radar.
    assert table["Radar"]["data"] < 0.6 * geo["data"]
    # The biggest combined-over-individual gains are on stateful apps
    # (paper: 69% for Vocoder).
    assert table["Vocoder"]["combined"] > 1.5 * table["Vocoder"]["data"]


def test_e2_data_parallel_utilizes_stateless_apps(benchmark):
    """Six fully stateless, non-peeking apps fuse to one filter and fiss
    16 ways (paper: mean 11.1x for those)."""

    def compute():
        return [
            strategy_result(app, "data").speedup
            for app in ("BitonicSort", "DCT", "DES", "FFT", "Serpent", "TDE")
        ]

    speedups = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert geometric_mean(speedups) > 8.0
