"""E9 — the program-verification section: deadlock and overflow detection.

The paper derives static checks from the wavefront functions: a feedback
loop is safe iff ``maxloop(x) = x + λ``; a split-join is safe iff branch
production rates stay within O(1) of each other.  This benchmark runs the
verifier over the whole application suite (all safe) and over constructed
unsafe programs (all detected), and times the analysis.
"""

from repro.apps import ALL_APPS
from repro.graph import (
    ArraySource,
    CollectSink,
    Decimator,
    Duplicator,
    FeedbackLoop,
    Identity,
    Pipeline,
    joiner_roundrobin,
    roundrobin,
)
from repro.scheduling import verify_program


def _safe_apps():
    return {name: verify_program(builder()).ok for name, builder in ALL_APPS.items()}


def test_e9_suite_is_safe(benchmark, report):
    results = benchmark.pedantic(_safe_apps, rounds=1, iterations=1)
    bad = [name for name, ok in results.items() if not ok]
    report(
        "== E9: static verification over the suite ==\n"
        + f"{len(results)} applications verified deadlock- and overflow-free"
        + (f"; FAILURES: {bad}" if bad else "")
    )
    assert not bad


def _deadlocked_loop():
    # The loop consumes two items per cycle from the loopback but returns
    # only one: it starves (paper: maxloop(x) < x + lambda).
    loop = FeedbackLoop(
        joiner_roundrobin(1, 2),
        Identity(),
        roundrobin(2, 1),
        Identity(),
        delay=4,
    )
    return Pipeline(ArraySource([1.0]), loop, CollectSink())


def _overflowing_loop():
    # The loop returns two items per cycle but the joiner consumes one.
    loop = FeedbackLoop(
        joiner_roundrobin(2, 1),
        Identity(),
        roundrobin(1, 2),
        Identity(),
        delay=4,
    )
    return Pipeline(ArraySource([1.0]), loop, CollectSink())


def _zero_delay_loop():
    loop = FeedbackLoop(
        joiner_roundrobin(1, 1),
        Identity(),
        roundrobin(1, 1),
        Identity(),
        delay=0,
    )
    return Pipeline(ArraySource([1.0]), loop, CollectSink())


def _unbalanced_splitjoin():
    from repro.graph import SplitJoin, duplicate

    # Duplicate splitter, but one branch produces 2x per input: the joiner
    # weights cannot balance -> a branch buffer grows without bound.
    sj = SplitJoin(
        duplicate(),
        [Identity(), Duplicator(2)],
        joiner_roundrobin(1, 1),
    )
    return Pipeline(ArraySource([1.0]), sj, CollectSink())


def test_e9_detects_unsafe_programs(benchmark, report):
    cases = {
        "deadlocked feedback loop": _deadlocked_loop,
        "overflowing feedback loop": _overflowing_loop,
        "zero-delay feedback loop": _zero_delay_loop,
        "unbalanced split-join": _unbalanced_splitjoin,
    }

    def verify_all():
        return {name: verify_program(build()) for name, build in cases.items()}

    reports = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    lines = ["== E9b: constructed unsafe programs =="]
    for name, rep in reports.items():
        lines.append(f"{name:28s} detected={not rep.ok}  ({rep.detail[:80]})")
    report("\n".join(lines))
    for name, rep in reports.items():
        assert not rep.ok, f"verifier missed: {name}"
