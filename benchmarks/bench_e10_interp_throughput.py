"""E10 — batched execution engine: interpreter throughput, scalar vs batched.

Measures end-to-end items/second under both execution engines for the full
evaluation suite (all 12 evaluation apps plus the linear apps) and writes
the results to ``BENCH_interp.json`` at the repository root.  Workloads are
deterministic: every app builder uses pinned seeds, and the period count per
app is pinned below (sized so the scalar measurement runs ~1-2 s, which
keeps the much shorter batched measurement well above timer noise).

The batched engine's bar: at least 10x on the linear-suite style apps
(FIR/Oversampler class), at least 10x on the previously-unkerneled apps
(Vocoder, DES), and at least 2x geometric mean across the benchmarked set.
DToA, the former structural straggler (its unit-delay feedback loop forced
per-firing execution), now runs its cyclic core through the hoisted
tape-loop runner (``plan.CoreLoopRunner``) and clears 10x as well.

Run standalone (CI uses ``--smoke`` for a quick correctness pass at tiny
period counts and ``--guard`` as the perf regression guard: FIR alone at
full scale must stay >= 50x and within 2% of the committed
``BENCH_guard.json`` number with tracing disabled, and the full table at
reduced scale must keep its geomean >= 100x)::

    PYTHONPATH=src python benchmarks/bench_e10_interp_throughput.py [--smoke|--guard]
"""

import json
import os
import sys
import warnings
from pathlib import Path

from repro.apps import ALL_APPS, LINEAR_SUITE
from repro.bench import geometric_mean, measure_throughput, time_breakdown
from repro.errors import EngineDowngradeWarning

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_interp.json"

#: (name, periods) — the full EVALUATION_SUITE plus the linear apps, with
#: periods pinned so each scalar measurement is ~1-2 s.
APPS = (
    ("BitonicSort", 6000),
    ("ChannelVocoder", 8000),
    ("DCT", 500),
    ("DES", 300),
    ("DToA", 25000),
    ("FFT", 1200),
    ("FIR", 50000),
    ("FMRadio", 14000),
    ("FilterBank", 2000),
    ("MPEG2Decoder", 2000),
    ("Oversampler", 2500),
    ("Radar", 10000),
    ("RateConvert", 12000),
    ("Serpent", 600),
    ("TDE", 1600),
    ("TargetDetect", 20000),
    ("Vocoder", 8000),
)

_cache = {}


def run_bench(periods_scale: float = 1.0):
    """Measure both engines on each app; returns the serializable table."""
    if _cache:
        return _cache
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", EngineDowngradeWarning)
        for name, periods in APPS:
            build = ALL_APPS[name]
            periods = max(1, int(periods * periods_scale))
            # Best-of-k: wall-clock throughput on a shared machine is noisy,
            # and the batched measurements are short; the fastest repeat is
            # the least-perturbed one.
            scalar = max(
                (
                    measure_throughput(
                        build, periods, label=f"{name}/scalar", engine="scalar"
                    )
                    for _ in range(2)
                ),
                key=lambda s: s.items_per_second,
            )
            batched = max(
                (
                    measure_throughput(
                        build, periods, label=f"{name}/batched", engine="batched"
                    )
                    for _ in range(3)
                ),
                key=lambda s: s.items_per_second,
            )
            # Attribution column from a short traced run (separate from the
            # timed measurements above, so those stay untraced).
            breakdown, _ = time_breakdown(
                build, max(2, periods // 50), engine="batched"
            )
            _cache[name] = {
                "periods": periods,
                "outputs": scalar.outputs,
                "scalar_items_per_sec": scalar.items_per_second,
                "batched_items_per_sec": batched.items_per_second,
                "speedup": batched.items_per_second / scalar.items_per_second,
                "time_breakdown": breakdown,
            }
    _cache["geomean_speedup"] = geometric_mean(
        [row["speedup"] for row in _cache.values()]
    )
    return _cache


def render(table) -> str:
    lines = [
        "== E10: interpreter throughput — scalar vs batched engine ==",
        f"{'Benchmark':16s}{'scalar it/s':>14s}{'batched it/s':>14s}{'speedup':>10s}"
        "  time breakdown (traced)",
    ]
    for name, row in table.items():
        if name == "geomean_speedup":
            continue
        lines.append(
            f"{name:16s}{row['scalar_items_per_sec']:14.0f}"
            f"{row['batched_items_per_sec']:14.0f}{row['speedup']:9.1f}x"
            f"  {row.get('time_breakdown', '')}"
        )
    lines.append(f"{'geomean':16s}{'':14s}{'':14s}{table['geomean_speedup']:9.1f}x")
    return "\n".join(lines)


def write_results(table) -> None:
    RESULT_PATH.write_text(json.dumps(table, indent=2) + "\n")


def _check(table) -> None:
    speedups = {n: r["speedup"] for n, r in table.items() if n != "geomean_speedup"}
    linear_10x = [n for n in speedups if n in LINEAR_SUITE and speedups[n] >= 10.0]
    assert len(linear_10x) >= 2, f"need >=10x on 2 linear-suite apps, got {speedups}"
    assert speedups["FIR"] >= 50.0, f"FIR regressed below 50x: {speedups['FIR']:.1f}"
    for name in ("Vocoder", "DES"):
        assert speedups[name] >= 10.0, f"{name} below 10x: {speedups[name]:.1f}"
    assert table["geomean_speedup"] >= 2.0, f"geomean {table['geomean_speedup']:.2f} < 2"


def test_e10_batched_engine_speedup(report):
    table = run_bench()
    report(render(table))
    write_results(table)
    _check(table)


def _delta_table(measured) -> str:
    """Per-app delta of a measured table against the committed baseline."""
    lines = [
        f"{'Benchmark':16s}{'baseline':>10s}{'measured':>10s}{'delta':>9s}",
    ]
    try:
        baseline = json.loads(RESULT_PATH.read_text())
    except (OSError, ValueError):
        return "(no committed BENCH_interp.json baseline to diff against)"
    for name, row in measured.items():
        if name == "geomean_speedup":
            continue
        base = baseline.get(name, {}).get("speedup")
        if base is None:
            continue
        delta = 100.0 * (row["speedup"] - base) / base
        lines.append(
            f"{name:16s}{base:9.1f}x{row['speedup']:9.1f}x{delta:+8.1f}%"
        )
    return "\n".join(lines)


#: ``--guard`` measures at reduced periods to stay CI-sized; the geomean
#: floor is set below the committed full-scale number with headroom for the
#: shorter runs and shared-runner noise.
GUARD_SCALE = 0.5
GUARD_GEOMEAN_FLOOR = 100.0


#: Tracing-disabled overhead tolerance for the guard's third gate: the
#: measured FIR speedup (tracing plumbed in but *off*) must stay within this
#: fraction of the committed ``BENCH_guard.json`` number.  Override with
#: ``STREAMSCOPE_GUARD_TOL`` on noisy shared runners.
TRACE_OVERHEAD_TOL = 0.02


def run_guard() -> None:
    """CI perf guard: the batched engine must not regress.

    Three gates, cheapest first:

    1. FIR alone at full scale stays >= 50x (the whole fast path — generic
       lift, fusion, superbatching — in a few seconds).
    2. The same measurement, with tracing *disabled* (the default), stays
       within ``TRACE_OVERHEAD_TOL`` (2%) of the FIR speedup recorded in the
       committed ``BENCH_guard.json`` — the streamscope instrumentation must
       be free when off.  Speedup is a scalar/batched ratio, so the gate is
       machine-normalized; ``STREAMSCOPE_GUARD_TOL`` widens it if a runner
       is too noisy.
    3. The full table at ``GUARD_SCALE`` keeps its geometric-mean speedup
       >= 100x; on a trip the per-app delta against the committed
       ``BENCH_interp.json`` shows which app regressed.

    Writes ``BENCH_guard.json`` for artifact upload.
    """
    name, periods = "FIR", dict(APPS)["FIR"]
    build = ALL_APPS[name]
    scalar = max(
        (measure_throughput(build, periods, engine="scalar") for _ in range(2)),
        key=lambda s: s.items_per_second,
    )
    batched = max(
        (measure_throughput(build, periods, engine="batched") for _ in range(3)),
        key=lambda s: s.items_per_second,
    )
    speedup = batched.items_per_second / scalar.items_per_second
    print(f"guard: {name} batched/scalar = {speedup:.1f}x (floor 50x)")
    assert speedup >= 50.0, f"perf guard tripped: FIR {speedup:.1f}x < 50x"

    tol = float(os.environ.get("STREAMSCOPE_GUARD_TOL", TRACE_OVERHEAD_TOL))
    baseline_fir = None
    try:
        baseline_fir = json.loads((REPO_ROOT / "BENCH_guard.json").read_text())[
            "FIR"
        ]["speedup"]
    except (OSError, ValueError, KeyError):
        print("guard: no committed BENCH_guard.json baseline; "
              "skipping tracing-overhead gate")
    if baseline_fir is not None:
        floor = (1.0 - tol) * baseline_fir
        print(f"guard: tracing-disabled FIR = {speedup:.1f}x vs baseline "
              f"{baseline_fir:.1f}x (floor {floor:.1f}x, tol {100 * tol:.0f}%)")
        assert speedup >= floor, (
            f"tracing-overhead guard tripped: FIR {speedup:.1f}x is more than "
            f"{100 * tol:.0f}% below the committed baseline {baseline_fir:.1f}x"
        )

    table = run_bench(periods_scale=GUARD_SCALE)
    geomean = table["geomean_speedup"]
    (REPO_ROOT / "BENCH_guard.json").write_text(
        json.dumps(
            {
                "FIR": {"periods": periods, "speedup": speedup},
                "guard_scale": GUARD_SCALE,
                "geomean_speedup": geomean,
                "apps": {
                    n: {"speedup": r["speedup"]}
                    for n, r in table.items()
                    if n != "geomean_speedup"
                },
            },
            indent=2,
        )
        + "\n"
    )
    print(f"guard: geomean batched/scalar = {geomean:.1f}x "
          f"(floor {GUARD_GEOMEAN_FLOOR:.0f}x at scale {GUARD_SCALE})")
    if geomean < GUARD_GEOMEAN_FLOOR:
        print("\nper-app delta vs committed BENCH_interp.json:")
        print(_delta_table(table))
        raise AssertionError(
            f"perf guard tripped: geomean {geomean:.1f}x < "
            f"{GUARD_GEOMEAN_FLOOR:.0f}x"
        )


if __name__ == "__main__":
    if "--guard" in sys.argv:
        run_guard()
        sys.exit(0)
    smoke = "--smoke" in sys.argv
    table = run_bench(periods_scale=0.002 if smoke else 1.0)
    print(render(table))
    if not smoke:
        write_results(table)
        _check(table)
        print(f"\nwrote {RESULT_PATH}")
