"""E10 — batched execution engine: interpreter throughput, scalar vs batched.

Measures end-to-end items/second for four representative applications under
both execution engines and writes the results to ``BENCH_interp.json`` at
the repository root.  The batched engine's bar: at least 10x on the
linear-suite style apps (FIR/Oversampler class) and at least 2x geometric
mean across the benchmarked set.

Run standalone (also used by CI with ``--smoke`` for a quick correctness
pass at tiny period counts)::

    PYTHONPATH=src python benchmarks/bench_e10_interp_throughput.py [--smoke]
"""

import json
import sys
from pathlib import Path

from repro.apps import LINEAR_SUITE, filterbank, fir, fmradio, oversampler
from repro.bench import geometric_mean, measure_throughput

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_interp.json"

#: (name, builder, periods) — periods sized so each measurement is ~0.1-1 s.
APPS = (
    ("FIR", fir.build, 4000),
    ("FilterBank", filterbank.build, 400),
    ("Oversampler", oversampler.build, 300),
    ("FMRadio", fmradio.build, 2000),
)

_cache = {}


def run_bench(periods_scale: float = 1.0):
    """Measure both engines on each app; returns the serializable table."""
    if _cache:
        return _cache
    for name, build, periods in APPS:
        periods = max(1, int(periods * periods_scale))
        scalar = measure_throughput(build, periods, label=f"{name}/scalar", engine="scalar")
        batched = measure_throughput(build, periods, label=f"{name}/batched", engine="batched")
        _cache[name] = {
            "periods": periods,
            "outputs": scalar.outputs,
            "scalar_items_per_sec": scalar.items_per_second,
            "batched_items_per_sec": batched.items_per_second,
            "speedup": batched.items_per_second / scalar.items_per_second,
        }
    _cache["geomean_speedup"] = geometric_mean(
        [row["speedup"] for row in _cache.values()]
    )
    return _cache


def render(table) -> str:
    lines = [
        "== E10: interpreter throughput — scalar vs batched engine ==",
        f"{'Benchmark':14s}{'scalar it/s':>14s}{'batched it/s':>14s}{'speedup':>10s}",
    ]
    for name, row in table.items():
        if name == "geomean_speedup":
            continue
        lines.append(
            f"{name:14s}{row['scalar_items_per_sec']:14.0f}"
            f"{row['batched_items_per_sec']:14.0f}{row['speedup']:9.1f}x"
        )
    lines.append(f"{'geomean':14s}{'':14s}{'':14s}{table['geomean_speedup']:9.1f}x")
    return "\n".join(lines)


def write_results(table) -> None:
    RESULT_PATH.write_text(json.dumps(table, indent=2) + "\n")


def _check(table) -> None:
    speedups = {n: r["speedup"] for n, r in table.items() if n != "geomean_speedup"}
    linear_10x = [n for n in speedups if n in LINEAR_SUITE and speedups[n] >= 10.0]
    assert len(linear_10x) >= 2, f"need >=10x on 2 linear-suite apps, got {speedups}"
    assert table["geomean_speedup"] >= 2.0, f"geomean {table['geomean_speedup']:.2f} < 2"


def test_e10_batched_engine_speedup(report):
    table = run_bench()
    report(render(table))
    write_results(table)
    _check(table)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    table = run_bench(periods_scale=0.02 if smoke else 1.0)
    print(render(table))
    if not smoke:
        write_results(table)
        _check(table)
        print(f"\nwrote {RESULT_PATH}")
