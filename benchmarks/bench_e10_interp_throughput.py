"""E10 — execution-engine throughput: scalar vs batched vs codegen.

Measures end-to-end items/second under the batched *and* whole-program
codegen engines (scalar as the common baseline) for the full evaluation
suite (all 12 evaluation apps plus the linear apps) and writes the results
to ``BENCH_interp.json`` at the repository root.  Workloads are
deterministic: every app builder uses pinned seeds, and the period count per
app is pinned below (sized so the scalar measurement runs ~1-2 s, which
keeps the much shorter engine measurements well above timer noise).

The batched engine's bar: at least 10x on the linear-suite style apps
(FIR/Oversampler class), at least 10x on the previously-unkerneled apps
(Vocoder, DES), and at least 2x geometric mean across the benchmarked set.
The codegen engine's bar: it must dominate where dispatch dominated — DToA
(unit-delay feedback core, period-at-a-time under batched) must clear 25x.

Run standalone (CI uses ``--smoke`` for a quick correctness pass at tiny
period counts and ``--guard`` as the perf regression guard: FIR alone at
full scale must stay >= 50x on both engines and within 2% of the committed
``BENCH_guard.json`` number with tracing disabled, DToA under codegen must
stay >= 25x, and the full table at reduced scale must keep its batched
geomean >= 100x)::

    PYTHONPATH=src python benchmarks/bench_e10_interp_throughput.py \\
        [--smoke|--guard|--engine batched|--engine codegen]
"""

import json
import os
import sys
import warnings
from pathlib import Path

from repro.apps import ALL_APPS, LINEAR_SUITE
from repro.bench import geometric_mean, measure_throughput, time_breakdown
from repro.errors import EngineDowngradeWarning

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_interp.json"

#: (name, periods) — the full EVALUATION_SUITE plus the linear apps, with
#: periods pinned so each scalar measurement is ~1-2 s.
APPS = (
    ("BitonicSort", 6000),
    ("ChannelVocoder", 8000),
    ("DCT", 500),
    ("DES", 300),
    ("DToA", 25000),
    ("FFT", 1200),
    ("FIR", 50000),
    ("FMRadio", 14000),
    ("FilterBank", 2000),
    ("MPEG2Decoder", 2000),
    ("Oversampler", 2500),
    ("Radar", 10000),
    ("RateConvert", 12000),
    ("Serpent", 600),
    ("TDE", 1600),
    ("TargetDetect", 20000),
    ("Vocoder", 8000),
)

#: Engines measured against the scalar baseline; ``--engine <name>``
#: restricts the run to one of them (scalar is always measured).
MEASURED_ENGINES = ("batched", "codegen")

_cache = {}


def run_bench(periods_scale: float = 1.0, engines=MEASURED_ENGINES):
    """Measure the requested engines on each app; returns the table."""
    if _cache:
        return _cache
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", EngineDowngradeWarning)
        for name, periods in APPS:
            build = ALL_APPS[name]
            periods = max(1, int(periods * periods_scale))
            # Best-of-k: wall-clock throughput on a shared machine is noisy,
            # and the engine measurements are short; the fastest repeat is
            # the least-perturbed one.  measure_throughput's warmup run
            # absorbs one-time plan compilation and codegen materialization.
            scalar = max(
                (
                    measure_throughput(
                        build, periods, label=f"{name}/scalar", engine="scalar"
                    )
                    for _ in range(2)
                ),
                key=lambda s: s.items_per_second,
            )
            row = {
                "periods": periods,
                "outputs": scalar.outputs,
                "scalar_items_per_sec": scalar.items_per_second,
            }
            for engine in engines:
                best = max(
                    (
                        measure_throughput(
                            build, periods, label=f"{name}/{engine}", engine=engine
                        )
                        for _ in range(3)
                    ),
                    key=lambda s: s.items_per_second,
                )
                row[f"{engine}_items_per_sec"] = best.items_per_second
                key = "speedup" if engine == "batched" else f"speedup_{engine}"
                row[key] = best.items_per_second / scalar.items_per_second
            # Attribution column from a short traced run (separate from the
            # timed measurements above, so those stay untraced).
            if "batched" in engines:
                breakdown, _ = time_breakdown(
                    build, max(2, periods // 50), engine="batched"
                )
                row["time_breakdown"] = breakdown
            _cache[name] = row
    if "batched" in engines:
        _cache["geomean_speedup"] = geometric_mean(
            [row["speedup"] for row in _cache.values()]
        )
    if "codegen" in engines:
        _cache["geomean_speedup_codegen"] = geometric_mean(
            [
                row["speedup_codegen"]
                for row in _cache.values()
                if isinstance(row, dict) and "speedup_codegen" in row
            ]
        )
    return _cache


def _ips(value) -> str:
    return f"{value:14.0f}" if value is not None else f"{'':14s}"


def _sp(value) -> str:
    return f"{value:9.1f}x" if value is not None else f"{'':10s}"


def render(table) -> str:
    lines = [
        "== E10: interpreter throughput — scalar vs batched vs codegen ==",
        f"{'Benchmark':16s}{'scalar it/s':>14s}{'batched it/s':>14s}{'speedup':>10s}"
        f"{'codegen it/s':>14s}{'speedup':>10s}"
        "  time breakdown (traced, batched)",
    ]
    for name, row in table.items():
        if not isinstance(row, dict):
            continue
        lines.append(
            f"{name:16s}{row['scalar_items_per_sec']:14.0f}"
            f"{_ips(row.get('batched_items_per_sec'))}{_sp(row.get('speedup'))}"
            f"{_ips(row.get('codegen_items_per_sec'))}"
            f"{_sp(row.get('speedup_codegen'))}"
            f"  {row.get('time_breakdown', '')}"
        )
    lines.append(
        f"{'geomean':16s}{'':14s}{'':14s}{_sp(table.get('geomean_speedup'))}"
        f"{'':14s}{_sp(table.get('geomean_speedup_codegen'))}"
    )
    return "\n".join(lines)


def write_results(table) -> None:
    RESULT_PATH.write_text(json.dumps(table, indent=2) + "\n")


def _check(table) -> None:
    rows = {n: r for n, r in table.items() if isinstance(r, dict)}
    speedups = {n: r["speedup"] for n, r in rows.items()}
    linear_10x = [n for n in speedups if n in LINEAR_SUITE and speedups[n] >= 10.0]
    assert len(linear_10x) >= 2, f"need >=10x on 2 linear-suite apps, got {speedups}"
    assert speedups["FIR"] >= 50.0, f"FIR regressed below 50x: {speedups['FIR']:.1f}"
    for name in ("Vocoder", "DES"):
        assert speedups[name] >= 10.0, f"{name} below 10x: {speedups[name]:.1f}"
    assert table["geomean_speedup"] >= 2.0, f"geomean {table['geomean_speedup']:.2f} < 2"
    # Codegen gates: the whole point is killing dispatch where it dominated.
    cg = {n: r["speedup_codegen"] for n, r in rows.items() if "speedup_codegen" in r}
    if cg:
        assert cg["DToA"] >= DTOA_CODEGEN_FLOOR, (
            f"DToA codegen below {DTOA_CODEGEN_FLOOR:.0f}x: {cg['DToA']:.1f}"
        )
        assert cg["FIR"] >= 50.0, f"FIR codegen below 50x: {cg['FIR']:.1f}"
        geo = table["geomean_speedup_codegen"]
        assert geo >= 2.0, f"codegen geomean {geo:.2f} < 2"


def test_e10_batched_engine_speedup(report):
    table = run_bench()
    report(render(table))
    write_results(table)
    _check(table)


def _delta_table(measured) -> str:
    """Per-app delta of a measured table against the committed baseline."""
    lines = [
        f"{'Benchmark':16s}{'baseline':>10s}{'measured':>10s}{'delta':>9s}",
    ]
    try:
        baseline = json.loads(RESULT_PATH.read_text())
    except (OSError, ValueError):
        return "(no committed BENCH_interp.json baseline to diff against)"
    for name, row in measured.items():
        if not isinstance(row, dict):
            continue
        base = baseline.get(name, {})
        base = base.get("speedup") if isinstance(base, dict) else None
        if base is None:
            continue
        delta = 100.0 * (row["speedup"] - base) / base
        lines.append(
            f"{name:16s}{base:9.1f}x{row['speedup']:9.1f}x{delta:+8.1f}%"
        )
    return "\n".join(lines)


#: ``--guard`` measures at reduced periods to stay CI-sized; the geomean
#: floor is set below the committed full-scale number with headroom for the
#: shorter runs and shared-runner noise.
GUARD_SCALE = 0.5
GUARD_GEOMEAN_FLOOR = 100.0

#: Per-app floor for DToA under codegen, at full scale.  DToA was the
#: structural straggler (unit-delay feedback loop → period-at-a-time under
#: batched, ~15x); the inlined closed loop measures ~60x, so a 25x floor
#: catches any regression back toward dispatch-bound without flaking on
#: shared-runner noise.
DTOA_CODEGEN_FLOOR = 25.0


#: Tracing-disabled overhead tolerance for the guard's third gate: the
#: measured FIR speedup (tracing plumbed in but *off*) must stay within this
#: fraction of the committed ``BENCH_guard.json`` number.  Override with
#: ``STREAMSCOPE_GUARD_TOL`` on noisy shared runners.
TRACE_OVERHEAD_TOL = 0.02

#: Always-on metrics tolerance for the guard's seventh gate: the same FIR
#: measurement runs with the metrics registry *enabled* (the default), so
#: its speedup must sit within this tighter fraction of the committed
#: baseline — run-granularity counters must be ~free, not merely cheap.
#: Override with ``REPRO_METRICS_GUARD_TOL`` on noisy shared runners.
METRICS_OVERHEAD_TOL = 0.01

#: Tuned-geomean tolerance for the guard's sixth gate: the geomean of the
#: *tuned* codegen speedups at ``GUARD_SCALE`` must stay within this
#: fraction of the *same run's* untuned codegen geomean over the same
#: apps (within-run, so the scalar baselines cancel) — tuning that loses
#: to the static heuristic is a regression, because the chunk ladder
#: always contains the static default.  Override with
#: ``REPRO_PGO_GUARD_TOL`` on noisy shared runners.
PGO_GUARD_TOL = 0.10

#: Apps the tuned-geomean gate races (a spread of chunk-sensitive and
#: chunk-neutral shapes; the full set is E14's job, not the guard's).
PGO_GUARD_APPS = ("FIR", "FMRadio", "DToA", "DCT")


def run_guard() -> None:
    """CI perf guard: neither fast engine may regress.

    Seven gates, cheapest first:

    1. FIR alone at full scale stays >= 50x under the batched engine (the
       whole fast path — generic lift, fusion, superbatching — in seconds).
    2. FIR alone at full scale stays >= 50x under the codegen engine (the
       whole codegen path — emission, splice, cache, fused straight-line
       loop).
    3. DToA at full scale stays >= ``DTOA_CODEGEN_FLOOR`` under codegen —
       the former structural straggler can't silently regress back to
       dispatch-bound after codegen lifted it.
    4. The batched FIR measurement, with tracing *disabled* (the default),
       stays within ``TRACE_OVERHEAD_TOL`` (2%) of the FIR speedup recorded
       in the committed ``BENCH_guard.json`` — the streamscope
       instrumentation must be free when off.  Speedup is a scalar/batched
       ratio, so the gate is machine-normalized; ``STREAMSCOPE_GUARD_TOL``
       widens it if a runner is too noisy.
    5. The full table at ``GUARD_SCALE`` keeps its batched geometric-mean
       speedup >= 100x; on a trip the per-app delta against the committed
       ``BENCH_interp.json`` shows which app regressed.
    6. Profile-guided tuning must not lose: auto-tune ``PGO_GUARD_APPS``
       (``repro.tune``, scratch cache) and re-measure them tuned; the
       tuned codegen speedup geomean must stay within ``PGO_GUARD_TOL``
       of the same run's untuned codegen geomean over the same apps.
       The chunk ladder contains the static default, so a tuned loss
       beyond noise means the tuner picked a lie.
    7. The same FIR measurement — taken with the always-on metrics
       registry *enabled* (the default) — stays within
       ``METRICS_OVERHEAD_TOL`` (1%) of the committed baseline: the
       run-granularity telemetry must be ~free, a tighter bound than the
       2% tracing gate on the identical ratio.

    Writes ``BENCH_guard.json`` for artifact upload.
    """
    name, periods = "FIR", dict(APPS)["FIR"]
    build = ALL_APPS[name]
    scalar = max(
        (measure_throughput(build, periods, engine="scalar") for _ in range(2)),
        key=lambda s: s.items_per_second,
    )
    batched = max(
        (measure_throughput(build, periods, engine="batched") for _ in range(3)),
        key=lambda s: s.items_per_second,
    )
    speedup = batched.items_per_second / scalar.items_per_second
    print(f"guard: {name} batched/scalar = {speedup:.1f}x (floor 50x)")
    assert speedup >= 50.0, f"perf guard tripped: FIR {speedup:.1f}x < 50x"

    codegen = max(
        (measure_throughput(build, periods, engine="codegen") for _ in range(3)),
        key=lambda s: s.items_per_second,
    )
    fir_codegen = codegen.items_per_second / scalar.items_per_second
    print(f"guard: {name} codegen/scalar = {fir_codegen:.1f}x (floor 50x)")
    assert fir_codegen >= 50.0, (
        f"perf guard tripped: FIR codegen {fir_codegen:.1f}x < 50x"
    )

    dtoa_periods = dict(APPS)["DToA"]
    dtoa_build = ALL_APPS["DToA"]
    dtoa_scalar = max(
        (
            measure_throughput(dtoa_build, dtoa_periods, engine="scalar")
            for _ in range(2)
        ),
        key=lambda s: s.items_per_second,
    )
    dtoa_codegen = max(
        (
            measure_throughput(dtoa_build, dtoa_periods, engine="codegen")
            for _ in range(3)
        ),
        key=lambda s: s.items_per_second,
    )
    dtoa_speedup = dtoa_codegen.items_per_second / dtoa_scalar.items_per_second
    print(
        f"guard: DToA codegen/scalar = {dtoa_speedup:.1f}x "
        f"(floor {DTOA_CODEGEN_FLOOR:.0f}x)"
    )
    assert dtoa_speedup >= DTOA_CODEGEN_FLOOR, (
        f"perf guard tripped: DToA codegen {dtoa_speedup:.1f}x < "
        f"{DTOA_CODEGEN_FLOOR:.0f}x"
    )

    tol = float(os.environ.get("STREAMSCOPE_GUARD_TOL", TRACE_OVERHEAD_TOL))
    baseline_fir = None
    try:
        baseline_fir = json.loads((REPO_ROOT / "BENCH_guard.json").read_text())[
            "FIR"
        ]["speedup"]
    except (OSError, ValueError, KeyError):
        print("guard: no committed BENCH_guard.json baseline; "
              "skipping tracing-overhead gate")
    if baseline_fir is not None:
        floor = (1.0 - tol) * baseline_fir
        print(f"guard: tracing-disabled FIR = {speedup:.1f}x vs baseline "
              f"{baseline_fir:.1f}x (floor {floor:.1f}x, tol {100 * tol:.0f}%)")
        assert speedup >= floor, (
            f"tracing-overhead guard tripped: FIR {speedup:.1f}x is more than "
            f"{100 * tol:.0f}% below the committed baseline {baseline_fir:.1f}x"
        )

    # Gate 7: the always-on metrics registry (enabled by default during
    # every measurement above) must cost <= REPRO_METRICS_GUARD_TOL (1%)
    # against the same committed FIR baseline — a tighter screw on the same
    # machine-normalized ratio the 2% tracing gate watches.
    from repro.obs.metrics import METRICS as _metrics_registry

    metrics_tol = float(
        os.environ.get("REPRO_METRICS_GUARD_TOL", METRICS_OVERHEAD_TOL)
    )
    if baseline_fir is not None and _metrics_registry.enabled:
        metrics_floor = (1.0 - metrics_tol) * baseline_fir
        print(
            f"guard: metrics-enabled FIR = {speedup:.1f}x vs baseline "
            f"{baseline_fir:.1f}x (floor {metrics_floor:.1f}x, "
            f"tol {100 * metrics_tol:.0f}%)"
        )
        assert speedup >= metrics_floor, (
            f"metrics-overhead guard tripped: FIR {speedup:.1f}x with the "
            f"always-on registry enabled is more than {100 * metrics_tol:.0f}% "
            f"below the committed baseline {baseline_fir:.1f}x"
        )
    elif not _metrics_registry.enabled:
        print("guard: REPRO_METRICS=0 — skipping metrics-overhead gate")

    table = run_bench(periods_scale=GUARD_SCALE)
    geomean = table["geomean_speedup"]

    # Gate 6: tuned codegen must not lose to the static defaults.
    from repro.tune import clear_tuned_cache, tune_stream

    if "REPRO_TUNED_CACHE" not in os.environ:
        import tempfile

        os.environ["REPRO_TUNED_CACHE"] = tempfile.mkdtemp(prefix="repro_tuned_")
    clear_tuned_cache()
    tuned_speedups = {}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", EngineDowngradeWarning)
        for app in PGO_GUARD_APPS:
            tune_stream(ALL_APPS[app], engine="codegen")
            app_periods = max(1, int(dict(APPS)[app] * GUARD_SCALE))
            tuned = max(
                (
                    measure_throughput(
                        ALL_APPS[app],
                        app_periods,
                        engine="codegen",
                        tune=True,
                    )
                    for _ in range(3)
                ),
                key=lambda s: s.items_per_second,
            )
            tuned_speedups[app] = (
                tuned.items_per_second / table[app]["scalar_items_per_sec"]
            )
    geomean_tuned = geometric_mean(list(tuned_speedups.values()))
    geomean_untuned = geometric_mean(
        [table[app]["speedup_codegen"] for app in PGO_GUARD_APPS]
    )
    pgo_tol = float(os.environ.get("REPRO_PGO_GUARD_TOL", PGO_GUARD_TOL))
    pgo_floor = (1.0 - pgo_tol) * geomean_untuned
    print(
        f"guard: tuned codegen geomean = {geomean_tuned:.1f}x vs untuned "
        f"{geomean_untuned:.1f}x over {len(PGO_GUARD_APPS)} apps "
        f"(floor {pgo_floor:.1f}x, tol {100 * pgo_tol:.0f}%)"
    )

    (REPO_ROOT / "BENCH_guard.json").write_text(
        json.dumps(
            {
                "FIR": {
                    "periods": periods,
                    "speedup": speedup,
                    "speedup_codegen": fir_codegen,
                },
                "DToA": {
                    "periods": dtoa_periods,
                    "speedup_codegen": dtoa_speedup,
                    "codegen_floor": DTOA_CODEGEN_FLOOR,
                },
                "guard_scale": GUARD_SCALE,
                "metrics": {
                    "enabled": _metrics_registry.enabled,
                    "tol": metrics_tol,
                },
                "geomean_speedup": geomean,
                "geomean_speedup_codegen": table.get("geomean_speedup_codegen"),
                "pgo": {
                    "apps": tuned_speedups,
                    "geomean_tuned_codegen": geomean_tuned,
                    "geomean_untuned_codegen": geomean_untuned,
                    "tol": pgo_tol,
                },
                "apps": {
                    n: {
                        "speedup": r["speedup"],
                        "speedup_codegen": r.get("speedup_codegen"),
                    }
                    for n, r in table.items()
                    if isinstance(r, dict)
                },
            },
            indent=2,
        )
        + "\n"
    )
    print(f"guard: geomean batched/scalar = {geomean:.1f}x "
          f"(floor {GUARD_GEOMEAN_FLOOR:.0f}x at scale {GUARD_SCALE})")
    if geomean < GUARD_GEOMEAN_FLOOR:
        print("\nper-app delta vs committed BENCH_interp.json:")
        print(_delta_table(table))
        raise AssertionError(
            f"perf guard tripped: geomean {geomean:.1f}x < "
            f"{GUARD_GEOMEAN_FLOOR:.0f}x"
        )
    assert geomean_tuned >= pgo_floor, (
        f"pgo guard tripped: tuned codegen geomean {geomean_tuned:.1f}x is "
        f"more than {100 * pgo_tol:.0f}% below the untuned geomean "
        f"{geomean_untuned:.1f}x from the same run — the tuner picked a "
        f"losing configuration"
    )


if __name__ == "__main__":
    if "--guard" in sys.argv:
        run_guard()
        sys.exit(0)
    engines = MEASURED_ENGINES
    if "--engine" in sys.argv:
        requested = sys.argv[sys.argv.index("--engine") + 1]
        if requested not in MEASURED_ENGINES:
            sys.exit(f"--engine must be one of {MEASURED_ENGINES}, got {requested!r}")
        engines = (requested,)
    smoke = "--smoke" in sys.argv
    table = run_bench(periods_scale=0.002 if smoke else 1.0, engines=engines)
    print(render(table))
    if not smoke and engines == MEASURED_ENGINES:
        write_results(table)
        _check(table)
        print(f"\nwrote {RESULT_PATH}")
