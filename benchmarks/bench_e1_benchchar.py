"""E1 — Figure "Benchmark characteristics" (`benchchar`).

Regenerates the per-application table: filter counts, peeking and stateful
filters, shortest/longest path, computation-to-communication ratio, and
stateful-work percentage, in the paper's stateful-work-ascending order.
"""

from repro.apps import EVALUATION_SUITE
from repro.estimate import characteristics_table, format_table


def test_e1_benchmark_characteristics(benchmark, report):
    rows = benchmark.pedantic(
        characteristics_table, args=(EVALUATION_SUITE,), rounds=1, iterations=1
    )
    report("== E1: Benchmark characteristics ==\n" + format_table(rows))

    by_name = {r.name: r for r in rows}
    # The paper: exactly three stateful benchmarks, with MPEG2's stateful
    # work insignificant and Radar's dominant.
    stateful = [r.name for r in rows if r.stateful > 0]
    assert sorted(stateful) == ["MPEG2Decoder", "Radar", "Vocoder"]
    assert by_name["MPEG2Decoder"].stateful_work_pct < 10
    assert by_name["Radar"].stateful_work_pct > 50
    # Rows are sorted ascending by stateful work (paper's presentation).
    pcts = [r.stateful_work_pct for r in rows]
    assert pcts == sorted(pcts)
    # Peeking structure: ChannelVocoder/FilterBank/FMRadio peek heavily.
    assert by_name["ChannelVocoder"].peeking >= 16
    assert by_name["FilterBank"].peeking >= 8
    assert by_name["BitonicSort"].peeking == 0
