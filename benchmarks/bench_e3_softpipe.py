"""E3 — Figure "Task and Task + Software Pipeline" (`softpipe_graph`).

Software pipelining alone: paper reports geomean 7.7x over single-core
(3.4x over task parallelism), below the 9.9x of data parallelism, but
winning on applications whose workload is not dominated by one filter —
notably Radar (2.3x over data parallelism there).
"""

from repro.bench import geometric_mean, render_bars, speedup_table

STRATEGIES = ("task", "softpipe", "data")


def test_e3_software_pipelining(benchmark, report):
    table = benchmark.pedantic(lambda: speedup_table(STRATEGIES), rounds=1, iterations=1)
    report(render_bars(table, STRATEGIES, "== E3: Task / Task+SWP (speedup vs 1 core) =="))

    geo = {s: geometric_mean([table[a][s] for a in table]) for s in STRATEGIES}
    # SWP is a large gain over task parallelism (paper: 3.4x)...
    assert geo["softpipe"] > 2.0 * geo["task"]
    # ...but under-performs data parallelism overall (paper: 7.7 vs 9.9).
    assert geo["softpipe"] < geo["data"]

    # Radar/TDE/FilterBank/FFT: SWP comparable or better than data
    # parallelism (no dominant filter; statically load-balanced packing).
    assert table["Radar"]["softpipe"] > 1.5 * table["Radar"]["data"]
    for app in ("FilterBank",):
        assert table[app]["softpipe"] > table[app]["data"]
    # Stateless-bottleneck apps: SWP cannot shorten the critical path
    # (paper singles out DCT and MPEG).
    assert table["DCT"]["softpipe"] < 0.5 * table["DCT"]["data"]
    assert table["MPEG2Decoder"]["softpipe"] < table["MPEG2Decoder"]["data"]
