"""Benchmark configuration: print experiment tables after each run."""

import pytest


@pytest.fixture(scope="session")
def report():
    """Collects experiment renderings and prints them at session end."""
    sections = []
    yield sections.append
    if sections:
        print("\n" + "\n\n".join(sections))
