"""E16 — parallel-engine overhead: where the constant factors went.

PR 9 overhauled the parallel runtime for steady-state throughput: a batched
worker command protocol (one control command per steady run), barrier-free
double-buffered execution for DAG strategies at proved ring capacities, an
adaptive blocked-wait policy (yield + tightly capped nap when workers
outnumber CPUs), and amortized setup (struct-plan cache + warm-arena pool).
This benchmark measures each of those against the pre-overhaul engine,
which is still runnable bit-for-bit via ``REPRO_PARALLEL_LEGACY=1``.

Two kinds of measurement per app (cores=2, softpipe — the committed
BENCH_parallel.json configuration):

* **Headline** — ``new_overhead = parallel time ÷ batched time`` from the
  regenerated ``BENCH_parallel.json`` (this PR re-runs E11 against the
  overhauled engine; if the working-tree file still matches the committed
  one, this benchmark re-runs E11 itself first), compared against the
  *committed* baseline read via ``git show HEAD:BENCH_parallel.json`` —
  the pre-overhaul engine's numbers, same host, same period budget, same
  best-of-2 policy.  The gate is ``improvement_vs_committed =
  baseline_overhead / new_overhead`` at >=1.5x geomean;
* **Breakdown arms** — instrumented sessions (legacy and new) at shorter
  period counts, reporting setup time (cold and warm), steady seconds, and
  the parent's protocol counters (commands, barrier waits, barrier
  seconds) for both the softpipe mapping and a DAG mapping (``task``),
  where the barrier elimination shows up directly;
* plus a rebalancing arm: run, read the ring-stall busy attribution, store
  the measured work profile (:func:`repro.tune.rebalance_parallel`),
  rebuild with ``tune=True``, and report the busy-skew change.

Run standalone (``--smoke`` cuts apps and periods for CI)::

    PYTHONPATH=src python benchmarks/bench_e16_parallel_overhead.py [--smoke]
"""

import json
import os
import subprocess
import sys
import time
import warnings
from pathlib import Path

from repro.apps import ALL_APPS
from repro.bench import geometric_mean
from repro.errors import EngineDowngradeWarning
from repro.runtime.interpreter import Interpreter

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_parallel_overhead.json"
BASELINE_PATH = REPO_ROOT / "BENCH_parallel.json"

CORES = 2
STRATEGIES = ("softpipe", "task")

#: (name, breakdown periods) — the instrumented arms; the headline timing
#: lives in BENCH_parallel.json (benchmarks/bench_e11_parallel_runtime.py).
#: Periods match E11's so the legacy arm pays its real per-batch costs —
#: shorter runs fit inside a single legacy batch and hide the difference.
APPS = (
    ("BitonicSort", 600),
    ("ChannelVocoder", 600),
    ("DCT", 60),
    ("DES", 40),
    ("FFT", 150),
    ("FilterBank", 250),
    ("FMRadio", 1500),
    ("Radar", 1000),
    ("TDE", 150),
    ("Vocoder", 800),
)

SMOKE_APPS = ("FMRadio", "FilterBank", "Vocoder")

REBALANCE_APP = ("FilterBank", 90)


def _session_arm(build, periods: int, strategy: str, legacy: bool):
    """One instrumented arm: setup (cold + warm), steady, protocol."""
    from repro.runtime import parallel as par_mod

    env_key = "REPRO_PARALLEL_LEGACY"
    old = os.environ.get(env_key)
    os.environ[env_key] = "1" if legacy else ""
    try:
        par_mod.clear_struct_cache()
        par_mod.drain_warm_arenas()
        # Cold setup: construction + init (the fork happens on the first
        # command, inside run_init).
        app = build()
        t0 = time.perf_counter()
        interp = Interpreter(
            app, check=False, engine="parallel", strategy=strategy, cores=CORES
        )
        if interp.parallel is None:
            # SL304: this strategy has no parallelism to exploit here
            # (e.g. ``task`` on a pure pipeline) — not an overhead datum.
            interp.close()
            return None
        interp.run_init()
        setup_cold = time.perf_counter() - t0
        # Steady: timed after one warm batch, plus the same settle the
        # harness gives every engine (workers drain post-command
        # housekeeping off the clock).  Best-of-2, same rule for both
        # arms — single shots measure the scheduler's mood on a
        # timesliced host, not the engine.
        interp.run_steady(max(1, periods // 10))
        steady = float("inf")
        for _ in range(2):
            time.sleep(0.1)
            t0 = time.perf_counter()
            interp.run_steady(periods)
            steady = min(steady, time.perf_counter() - t0)
        protocol = interp.parallel.protocol_report()
        interp.close()
        # Warm setup: a second session over the same plan right after a
        # clean close — struct cache + parked arena in the new engine.
        app2 = build()
        t0 = time.perf_counter()
        interp2 = Interpreter(
            app2, check=False, engine="parallel", strategy=strategy, cores=CORES
        )
        interp2.run_init()
        setup_warm = time.perf_counter() - t0
        warm_protocol = interp2.parallel.protocol_report()
        interp2.close()
        par_mod.drain_warm_arenas()
    finally:
        if old is None:
            os.environ.pop(env_key, None)
        else:
            os.environ[env_key] = old
    return {
        "setup_cold_s": setup_cold,
        "setup_warm_s": setup_warm,
        "steady_s": steady,
        "steady_s_per_period": steady / periods,
        "discipline": protocol["discipline"],
        "commands": protocol["commands"],
        "steady_runs": protocol["steady_runs"],
        "barrier_waits": protocol["barrier_waits"],
        "barrier_wait_s": protocol["barrier_wait_s"],
        "warm_arena_reused": warm_protocol["arena_reused"],
        "warm_struct_cache": warm_protocol["struct_cache"],
    }


def _rebalance_arm(name: str, periods: int):
    """Busy-skew before/after one profile-driven partition re-cut."""
    import tempfile

    from repro.tune import busy_skew, rebalance_parallel

    build = ALL_APPS[name]
    env_key = "REPRO_TUNED_CACHE"
    old = os.environ.get(env_key)
    with tempfile.TemporaryDirectory(prefix="repro_e16_tuned") as tmp:
        os.environ[env_key] = tmp
        try:
            interp = Interpreter(
                build(),
                check=False,
                engine="parallel",
                strategy="softpipe",
                cores=CORES,
            )
            interp.run(periods)
            report = rebalance_parallel(interp, threshold=1.1)
            interp.close()
            interp2 = Interpreter(
                build(),
                check=False,
                engine="parallel",
                strategy="softpipe",
                cores=CORES,
                tune=True,
            )
            interp2.run(periods)
            skew_after = busy_skew(interp2.parallel.busy_report())
            profiled = interp2.parallel.work_profile is not None
            interp2.close()
        finally:
            if old is None:
                os.environ.pop(env_key, None)
            else:
                os.environ[env_key] = old
    return {
        "app": name,
        "periods": periods,
        "skew_before": report.skew,
        "triggered": report.triggered,
        "stored": report.stored,
        "profile_applied": profiled,
        "skew_after": skew_after,
        "skew_reduction": (
            report.skew / skew_after if skew_after > 0 else 1.0
        ),
    }


def _committed_baseline_text():
    """The committed BENCH_parallel.json, or ``None`` outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "show", "HEAD:BENCH_parallel.json"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return proc.stdout if proc.returncode == 0 else None


def _overheads(parsed) -> dict:
    """Per-app cores=2 overhead (1 / measured speedup) from an E11 table."""
    out = {}
    for name, row in parsed.get("apps", {}).items():
        cell = row.get("parallel", {}).get(str(CORES), {})
        speedup = cell.get("measured_speedup_vs_batched", 0.0)
        if speedup > 0:
            out[name] = 1.0 / speedup
    return out


def _headline(smoke: bool):
    """(new overheads, committed overheads, sources) for the gate.

    The new-engine numbers come from the regenerated BENCH_parallel.json —
    same methodology, periods, and host as the committed file they are
    compared against.  If the working tree still holds the committed file
    verbatim (E11 not yet re-run), re-run it here so the comparison is
    never trivially 1.0x.
    """
    committed_text = _committed_baseline_text()
    current_text = (
        BASELINE_PATH.read_text() if BASELINE_PATH.exists() else None
    )
    if current_text is None or (
        committed_text is not None
        and current_text == committed_text
        and not smoke
    ):
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        import bench_e11_parallel_runtime as e11

        table = e11.run_bench(smoke=smoke)
        current_text = json.dumps(table, indent=2) + "\n"
        BASELINE_PATH.write_text(current_text)
        new_source = "BENCH_parallel.json (regenerated by this run)"
    else:
        new_source = "BENCH_parallel.json (working tree)"
    new = _overheads(json.loads(current_text))
    if committed_text is None:
        return new, {}, {"new": new_source, "baseline": "unavailable"}
    committed = _overheads(json.loads(committed_text))
    return new, committed, {
        "new": new_source,
        "baseline": "git show HEAD:BENCH_parallel.json",
    }


def run_bench(smoke: bool = False):
    apps = [row for row in APPS if not smoke or row[0] in SMOKE_APPS]
    scale = 0.05 if smoke else 1.0
    new_overheads, baseline_overheads, sources = _headline(smoke)
    table = {
        "cores": CORES,
        "host_cpus": os.cpu_count(),
        "sources": sources,
        "apps": {},
    }
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", EngineDowngradeWarning)
        for name, breakdown_periods in apps:
            build = ALL_APPS[name]
            breakdown_periods = max(2, int(breakdown_periods * scale))
            row = {"breakdown_periods": breakdown_periods}
            new_ovh = new_overheads.get(name)
            base = baseline_overheads.get(name)
            if new_ovh is not None:
                row["new_overhead"] = new_ovh
            if base is not None:
                row["baseline_overhead"] = base
            if new_ovh is not None and base is not None:
                row["improvement_vs_committed"] = base / new_ovh
            # Breakdown arms: instrumented sessions, legacy vs new.
            for strategy in STRATEGIES:
                legacy = _session_arm(
                    build, breakdown_periods, strategy, legacy=True
                )
                current = _session_arm(
                    build, breakdown_periods, strategy, legacy=False
                )
                if legacy is None or current is None:
                    row[strategy] = {"unavailable": "SL304 downgrade"}
                    continue
                row[strategy] = {
                    "legacy": legacy,
                    "new": current,
                    "steady_gain_vs_legacy": (
                        legacy["steady_s_per_period"]
                        / current["steady_s_per_period"]
                    ),
                }
            table["apps"][name] = row
        table["rebalance"] = _rebalance_arm(
            REBALANCE_APP[0], max(10, int(REBALANCE_APP[1] * scale))
        )
    gains = [
        row["improvement_vs_committed"]
        for row in table["apps"].values()
        if "improvement_vs_committed" in row
    ]
    table["improvement_vs_committed_geomean"] = geometric_mean(gains)
    table["improvement_legacy_geomean"] = geometric_mean(
        [
            row["softpipe"]["steady_gain_vs_legacy"]
            for row in table["apps"].values()
            if "steady_gain_vs_legacy" in row.get("softpipe", {})
        ]
    )
    return table


def render(table) -> str:
    lines = [
        "== E16: parallel-engine overhead — before vs after "
        f"(cores={table['cores']}, host has {table['host_cpus']} CPU(s)) ==",
        f"{'Benchmark':16s}{'new ovh':>9s}{'committed':>11s}{'vs base':>9s}"
        f"{'vs legacy':>11s}{'task barriers':>15s}{'warm setup':>12s}",
    ]
    for name, row in table["apps"].items():
        soft = row["softpipe"]
        task = row["task"]
        barriers = (
            f"{task['legacy']['barrier_waits']}->{task['new']['barrier_waits']}"
            if "unavailable" not in task
            else "n/a"
        )
        warm = (
            f"{soft['legacy']['setup_warm_s'] * 1e3:.0f}->"
            f"{soft['new']['setup_warm_s'] * 1e3:.0f}ms"
            if "unavailable" not in soft
            else "n/a"
        )
        gain = (
            f"{soft['steady_gain_vs_legacy']:10.2f}x"
            if "unavailable" not in soft
            else f"{'n/a':>11s}"
        )
        lines.append(
            f"{name:16s}"
            + (
                f"{row['new_overhead']:8.2f}x"
                if "new_overhead" in row
                else f"{'n/a':>9s}"
            )
            + (
                f"{row['baseline_overhead']:10.2f}x"
                f"{row['improvement_vs_committed']:8.2f}x"
                if "improvement_vs_committed" in row
                else f"{'n/a':>11s}{'n/a':>9s}"
            )
            + gain
            + f"{barriers:>15s}{warm:>12s}"
        )
    reb = table["rebalance"]
    lines.append(
        f"geomean improvement: vs committed BENCH_parallel.json "
        f"{table['improvement_vs_committed_geomean']:.2f}x "
        f"(new: {table['sources']['new']}; baseline: "
        f"{table['sources']['baseline']}); steady vs legacy "
        f"(same host, same periods) {table['improvement_legacy_geomean']:.2f}x"
    )
    lines.append(
        f"rebalance arm ({reb['app']}): busy skew "
        f"{reb['skew_before']:.2f} -> {reb['skew_after']:.2f} "
        f"({reb['skew_reduction']:.2f}x), profile stored={reb['stored']}, "
        f"applied={reb['profile_applied']}"
    )
    return "\n".join(lines)


def _check(table) -> None:
    for name, row in table["apps"].items():
        for strategy in STRATEGIES:
            if "unavailable" in row[strategy]:
                continue
            for arm in ("legacy", "new"):
                cell = row[strategy][arm]
                assert cell["steady_s"] > 0, f"{name}/{strategy}/{arm}"
                # Batched protocol invariant: one steady command per run.
                assert (
                    cell["commands"]["steady"] == cell["steady_runs"]
                ), f"{name}/{strategy}/{arm}: protocol not batched"
            # The overhaul must eliminate per-batch barriers for DAG
            # strategies: only start/finish barriers remain (2 per command).
            new_task = row[strategy]["new"]
            if strategy == "task" and new_task["discipline"] == "double_buffered":
                commands = sum(new_task["commands"].values())
                assert new_task["barrier_waits"] <= 2 * commands, (
                    f"{name}: double-buffered arm still paying "
                    f"{new_task['barrier_waits']} barrier waits"
                )
        # The new engine reuses setup on the warm session.
        if "unavailable" not in row["softpipe"]:
            soft_new = row["softpipe"]["new"]
            assert soft_new["warm_struct_cache"] == "hit", name
            assert soft_new["warm_arena_reused"] is True, name


def test_e16_parallel_overhead(report):
    table = run_bench(smoke=True)
    report(render(table))
    _check(table)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    table = run_bench(smoke=smoke)
    print(render(table))
    _check(table)
    if not smoke:
        RESULT_PATH.write_text(json.dumps(table, indent=2) + "\n")
        print(f"\nwrote {RESULT_PATH}")
