"""E14 — profile-guided tuning: tuned vs untuned engine throughput.

Closes the loop E10-E13 left open: E13 measured the chunk-size ablation by
hand; here ``repro.tune`` *finds* the winning chunk (plus presize hints and
a work profile) per app, persists it in the tuned-plan cache, and the tuned
arm is measured exactly the way a user would get it — a second process
opening the same graph with ``Interpreter(tune=True)`` and hitting the
cache.  Results go to ``BENCH_pgo.json`` at the repository root.

The bar: tuned throughput must not lose to the static heuristic on any app
(the ladder always contains the static default and a hysteresis margin
keeps noise from displacing it, so a loss can only be measurement noise —
a tolerance absorbs it), and at least one app must show a measured gain
(``HEADLINE_GAIN``; see the note there for why the honest post-codegen
number is ~1.1x, not the 1.3x+ a dispatch-bound engine would show).

Run standalone (CI uses ``--smoke`` with tiny periods/budgets)::

    PYTHONPATH=src python benchmarks/bench_e14_pgo.py \\
        [--smoke] [--engine batched|codegen] [--apps FMRadio,DToA]
"""

import json
import os
import sys
import warnings
from pathlib import Path

from repro.apps import ALL_APPS
from repro.bench import geometric_mean, measure_throughput
from repro.errors import EngineDowngradeWarning
from repro.runtime import Interpreter
from repro.tune import clear_tuned_cache, tune_stream

from bench_e10_interp_throughput import APPS

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_pgo.json"

#: Measured-ratio floor per app: tuned/untuned may dip this far below 1.0
#: before the run fails, absorbing shared-runner noise on apps where the
#: tuner (correctly) kept the static default.  The tolerance is calibrated
#: against *identical-config* arms: full-scale runs have measured FIR at
#: 0.845x with chunk 65536 on both sides — the same configuration twice —
#: so per-app spread is ~±15% even interleaved best-of-4.  The geomean
#: gate below is the tight one.  Override with ``REPRO_PGO_TOL``.
RATIO_TOL = 0.20

#: The geomean of tuned/untuned ratios across the suite must clear this
#: floor — per-app noise is ±15% but it is zero-mean, so averaging over
#: 17 apps leaves a much tighter honest bound on "tuning never loses".
GEOMEAN_TOL = 0.05

#: At least one app must clear this ratio at full scale — the headline
#: claim that measurement beats the static heuristic somewhere.  The
#: honest number on post-codegen engines is modest: E13's dispatch
#: ablation showed the steep chunk curve lives *below* the static 512 KiB
#: cap (1 -> 16 -> 256 is 100x), while above the cap the curve is flat —
#: whole-program codegen already killed the per-pass dispatch that once
#: made oversized chunks expensive.  Serpent's ~1.1x (512 -> 1024) is the
#: real residual headroom, not the 1.3x+ a dispatch-bound engine would
#: show; interleaved A/B probes confirmed larger swings are runner noise.
HEADLINE_GAIN = 1.05


def _ratio_floor() -> float:
    try:
        return 1.0 - float(os.environ.get("REPRO_PGO_TOL", RATIO_TOL))
    except ValueError:
        return 1.0 - RATIO_TOL


#: Measurement runs are ``MEASURE_SCALE`` times the E10 period counts:
#: E10's periods were sized for ~1-2 s *scalar* runs, so both arms here
#: (fast engines) would finish in milliseconds — too short against
#: minutes-scale frequency noise on shared machines.
MEASURE_SCALE = 10


def run_bench(
    periods_scale: float = 1.0,
    engine: str = "codegen",
    apps=None,
    budget_s=None,
    repeats: int = 4,
):
    """Tune each app, then race untuned vs cache-hit tuned runs.

    The two arms are *interleaved* (untuned, tuned, untuned, tuned, ...)
    rather than measured as blocks: shared-runner throttling is correlated
    over seconds, and a block design lets one slow window land entirely on
    one arm and fake a 2-3x swing either way.  Best-of-``repeats`` per arm
    over the interleaved samples.
    """
    table = {"engine": engine}
    selected = [(n, p) for n, p in APPS if apps is None or n in apps]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", EngineDowngradeWarning)
        for name, periods in selected:
            build = ALL_APPS[name]
            periods = max(4, int(periods * periods_scale * MEASURE_SCALE))
            result = tune_stream(build, engine=engine, budget_s=budget_s)
            untuned_best = tuned_best = 0.0
            for _ in range(repeats):
                u = measure_throughput(
                    build, periods, label=f"{name}/untuned", engine=engine
                )
                t = measure_throughput(
                    build, periods, label=f"{name}/tuned", engine=engine, tune=True
                )
                untuned_best = max(untuned_best, u.items_per_second)
                tuned_best = max(tuned_best, t.items_per_second)
            table[name] = {
                "periods": periods,
                "untuned_items_per_sec": untuned_best,
                "tuned_items_per_sec": tuned_best,
                "ratio": tuned_best / untuned_best,
                "default_chunk": result.default_chunk,
                "tuned_chunk": result.best_chunk,
                "ladder_gain": result.gain,
                "reserved_edges": len(result.params.reserve_items),
            }
    ratios = [r["ratio"] for r in table.values() if isinstance(r, dict)]
    table["geomean_ratio"] = geometric_mean(ratios)
    return table


def verify_tuned(apps, engine: str = "codegen", periods: int = 32) -> None:
    """Bit-exactness + cache-hit gate for the tuned path (the smoke gate).

    For each app: a fresh ``Interpreter(tune=True)`` must report a
    tuned-cache *hit* (the entry ``run_bench`` stored) and its output must
    match the scalar engine item-for-item.
    """
    from repro.graph import CollectSink

    for name in apps:
        build = ALL_APPS[name]

        def run(engine_name, **opts):
            app = build()
            sink = next(
                (f for f in app.filters() if isinstance(f, CollectSink)), None
            )
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", EngineDowngradeWarning)
                interp = Interpreter(app, check=False, engine=engine_name, **opts)
                try:
                    interp.run(periods=periods)
                finally:
                    interp.close()
            return (list(sink.collected) if sink is not None else []), interp

        scalar, _ = run("scalar")
        tuned, interp = run(engine, tune=True)
        report = interp.engine_report()["tuned"]
        assert report["outcome"] == "hit", (
            f"{name}: expected a tuned-cache hit, got {report['outcome']!r}"
        )
        assert tuned == scalar, f"{name}: tuned output diverged from scalar"
        print(f"verify: {name} tuned run bit-exact vs scalar (cache hit)")


def render(table) -> str:
    lines = [
        f"== E14: profile-guided tuning — untuned vs tuned "
        f"({table['engine']} engine) ==",
        f"{'Benchmark':16s}{'untuned it/s':>14s}{'tuned it/s':>14s}"
        f"{'ratio':>8s}{'chunk':>14s}{'edges':>7s}",
    ]
    for name, row in table.items():
        if not isinstance(row, dict):
            continue
        chunk = f"{row['default_chunk']}->{row['tuned_chunk']}"
        lines.append(
            f"{name:16s}{row['untuned_items_per_sec']:14.0f}"
            f"{row['tuned_items_per_sec']:14.0f}{row['ratio']:7.2f}x"
            f"{chunk:>14s}{row['reserved_edges']:>7d}"
        )
    lines.append(f"{'geomean':16s}{'':14s}{'':14s}{table['geomean_ratio']:7.2f}x")
    return "\n".join(lines)


def _check(table, require_headline: bool = True) -> None:
    floor = _ratio_floor()
    rows = {n: r for n, r in table.items() if isinstance(r, dict)}
    for name, row in rows.items():
        assert row["ratio"] >= floor, (
            f"{name}: tuned run lost to the static default "
            f"({row['ratio']:.2f}x < {floor:.2f}x) — the ladder includes the "
            f"default, so this is a real regression, not a tuning miss"
        )
    if require_headline:
        geomean = table["geomean_ratio"]
        assert geomean >= 1.0 - GEOMEAN_TOL, (
            f"suite geomean tuned/untuned is {geomean:.3f}x < "
            f"{1.0 - GEOMEAN_TOL:.2f}x — tuning is losing on average, "
            f"which the default-in-ladder + hysteresis design should "
            f"make impossible outside measurement noise"
        )
        # An app counts via the end-to-end ratio or the tuner's own
        # interleaved ladder measurement — on a noisy runner the two
        # disagree in either direction, but both are real measurements
        # of tuned-vs-default.
        def evidence(row):
            return max(row["ratio"], row.get("ladder_gain") or 0.0)

        best = max(rows.items(), key=lambda kv: evidence(kv[1]))
        assert evidence(best[1]) >= HEADLINE_GAIN, (
            f"no app gained >= {HEADLINE_GAIN}x from tuning "
            f"(best: {best[0]} at {evidence(best[1]):.2f}x)"
        )


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    engine = "codegen"
    if "--engine" in sys.argv:
        engine = sys.argv[sys.argv.index("--engine") + 1]
        if engine not in ("batched", "codegen"):
            sys.exit(f"--engine must be batched or codegen, got {engine!r}")
    apps = None
    if "--apps" in sys.argv:
        apps = sys.argv[sys.argv.index("--apps") + 1].split(",")
        unknown = [a for a in apps if a not in ALL_APPS]
        if unknown:
            sys.exit(f"unknown apps: {unknown}")

    # A scratch cache keeps CI/dev runs from polluting the user's entries,
    # unless the caller pinned one explicitly.
    if "REPRO_TUNED_CACHE" not in os.environ:
        import tempfile

        scratch = tempfile.mkdtemp(prefix="repro_tuned_")
        os.environ["REPRO_TUNED_CACHE"] = scratch
    clear_tuned_cache()

    scale = 0.002 if smoke else 1.0
    budget = 0.01 if smoke else None
    table = run_bench(
        periods_scale=scale, engine=engine, apps=apps, budget_s=budget
    )
    print(render(table))
    selected = [n for n, _ in APPS if apps is None or n in apps]
    verify_tuned(selected[:4] if smoke else selected, engine=engine)
    if not smoke:
        RESULT_PATH.write_text(json.dumps(table, indent=2) + "\n")
        _check(table, require_headline=True)
        print(f"\nwrote {RESULT_PATH}")
    else:
        # Smoke keeps the no-loss gate (wide tolerance) but not the
        # headline-gain gate: tiny runs can't discriminate chunk sizes.
        os.environ.setdefault("REPRO_PGO_TOL", "0.35")
        _check(table, require_headline=False)
        print("\nsmoke ok")
