"""E15 — codegen with vs without certified cross-splitjoin fusion regions.

The whole-graph pass (``repro.analysis.graph``) certifies splitjoin
regions — duplicate/roundrobin splitter, pure exact-rate SISO branches,
roundrobin/combine joiner — where executing the whole region
splitter-to-joiner as one block is provably bit-exact.  With
``REPRO_CODEGEN_REGIONS=1`` ``CodegenPlan`` fuses each certified region
into a single inline block in the generated module, collapsing the
splitter, every branch filter, and the joiner into one schedule
position; this benchmark races that arm against the default (regions
certified but unused) over the app suite.

The trade-off this measures — and the reason fusion is opt-in: a fused
region runs the region's firings through the core-loop tape machinery
(one firing at a time, period by period), while the unfused arm runs
each member as its own *vectorized* block kernel over the whole
superbatch chunk.  Fusion removes per-block dispatch and
intermediate-channel traffic but gives up column-wise vectorization
inside the region, and at codegen's operating point (hundreds of
periods per chunk) vectorization wins by 3-50x on every suite app with
a region.  The hard gates are therefore semantic, not performance:
both arms must be bit-exact against each other, and at least three
apps' generated modules must actually fuse a region when asked —
proving the certificate and the lowering work end to end.

Writes ``BENCH_region_fusion.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_e15_region_fusion.py [--smoke]
"""

import json
import os
import sys
import time
import warnings
from pathlib import Path

from repro.apps import ALL_APPS
from repro.bench import geometric_mean
from repro.errors import EngineDowngradeWarning
from repro.graph.builtins import CollectSink
from repro.runtime import Interpreter

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_region_fusion.json"

#: (name, periods) — sized so each timed arm stays well under a second.
APPS = (
    ("BitonicSort", 3000),
    ("ChannelVocoder", 2000),
    ("DCT", 4000),
    ("DES", 1500),
    ("FFT", 4000),
    ("FilterBank", 1500),
    ("FMRadio", 3000),
    ("Serpent", 1000),
    ("TDE", 2000),
    ("MPEG2Decoder", 3000),
    ("Vocoder", 300),
    ("Radar", 800),
    ("FIR", 8000),
    ("RateConvert", 4000),
    ("TargetDetect", 4000),
    ("Oversampler", 4000),
    ("DToA", 6000),
    ("Beamformer", 800),
    ("FreqHopRadio", 3000),
)

REPEATS = 3


def measure_arm(name: str, regions_on: bool, periods: int):
    """(items/s, collected outputs, region block count) for one arm."""
    os.environ["REPRO_CODEGEN_REGIONS"] = "1" if regions_on else "0"
    app = ALL_APPS[name]()
    sink = next(f for f in app.filters() if isinstance(f, CollectSink))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", EngineDowngradeWarning)
        interp = Interpreter(app, check=False, engine="codegen")
        try:
            interp.run(periods=2)
            produced_before = len(sink.collected)
            start = time.perf_counter()
            interp.run_steady(periods)
            elapsed = time.perf_counter() - start
            report = interp.engine_report()
        finally:
            interp.close()
    blocks = (report.get("codegen") or {}).get("blocks") or []
    regions = [b for b in blocks if b["kind"] == "region"]
    inline = sum(1 for b in regions if b.get("mode") == "inline")
    outputs = list(sink.collected)[produced_before:]
    rate = len(outputs) / elapsed if elapsed > 0 else float("inf")
    return rate, outputs, len(regions), inline


def run_bench(periods_scale: float = 1.0):
    table = {}
    ratios = []
    for name, periods in APPS:
        periods = max(1, int(periods * periods_scale))
        best_off = best_on = 0.0
        regions = inline = 0
        out_on = out_off = None
        # Interleave the arms so correlated machine noise cannot land on
        # one arm only (same block design as E14).
        for _ in range(REPEATS):
            rate_off, out_off, _, _ = measure_arm(name, False, periods)
            rate_on, out_on, regions, inline = measure_arm(name, True, periods)
            best_off = max(best_off, rate_off)
            best_on = max(best_on, rate_on)
        assert out_on == out_off, f"{name}: region fusion changed the output"
        ratio = best_on / best_off if best_off > 0 else 1.0
        entry = {
            "periods": periods,
            "regions_certified": regions,
            "regions_inline": inline,
            "unfused_items_per_sec": best_off,
            "fused_items_per_sec": best_on,
            "fused_over_unfused": ratio,
        }
        table[name] = entry
        if regions:
            ratios.append(ratio)
    table["geomean_ratio_fused_apps"] = (
        geometric_mean(ratios) if ratios else 1.0
    )
    table["apps_with_fused_regions"] = sum(
        1
        for entry in table.values()
        if isinstance(entry, dict) and entry.get("regions_inline", 0) > 0
    )
    return table


def render(table) -> str:
    lines = [
        "== E15: codegen with vs without cross-splitjoin fusion regions ==",
        f"{'Benchmark':14s}{'regions':>8s}{'unfused it/s':>14s}"
        f"{'fused it/s':>12s}{'fused/unfused':>15s}",
    ]
    for name, entry in table.items():
        if not isinstance(entry, dict):
            continue
        lines.append(
            f"{name:14s}{entry['regions_inline']:8d}"
            f"{entry['unfused_items_per_sec']:14.0f}"
            f"{entry['fused_items_per_sec']:12.0f}"
            f"{entry['fused_over_unfused']:14.2f}x"
        )
    lines.append(
        f"\n{table['apps_with_fused_regions']} app(s) fuse at least one "
        f"region; geomean fused/unfused over those apps: "
        f"{table['geomean_ratio_fused_apps']:.2f}x"
    )
    return "\n".join(lines)


def _check(table) -> None:
    # Semantic gates only — the per-app equality assert already ran inside
    # run_bench; here we require the optimization to actually engage.
    assert table["apps_with_fused_regions"] >= 3, (
        f"only {table['apps_with_fused_regions']} app(s) fused a region; "
        "the certifier or the codegen lowering has regressed"
    )


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    table = run_bench(periods_scale=0.01 if smoke else 1.0)
    print(render(table))
    _check(table)
    if not smoke:
        RESULT_PATH.write_text(json.dumps(table, indent=2) + "\n")
        print(f"\nwrote {RESULT_PATH}")
