"""E11 — parallel runtime: real multicore throughput vs the batched engine.

Measures end-to-end items/second for the batched (single-process) engine and
the parallel engine (``engine="parallel"``, software-pipeline mapping) at
two core counts, and compares the *measured* parallel/batched ratio against
the *simulated* speedup the machine model predicts for the same strategy at
the same core count.  Results go to ``BENCH_parallel.json`` at the repo
root, together with the host's CPU count — the measured column is only
meaningful relative to it (on a 1-CPU container the parallel engine
timeslices its workers and cannot beat the batched engine; the simulated
column shows what the mapping would buy on real cores).

The simulated column no longer ignores communication (EXPERIMENTS §E11
documents the model delta): the raw machine-model prediction — compute
cycles only, reported as ``simulated_speedup_compute`` — systematically
overpromised (1.9x–3.7x against measured 0.2x–0.6x).  The headline
``simulated_speedup`` now charges every cross-core item one measured
shared-memory ring transfer (push + pop through a real
:class:`~repro.runtime.ring.RingChannel`, calibrated once per run):

    T_par = T_batched / S_compute + ring_items_per_period * c_ring
    simulated_speedup = T_batched / T_par

where ``T_batched`` is the measured batched seconds per period.  This is a
*cost model*, not a simulation of contention: it keeps the prediction
engine-independent while pricing in the traffic the partition actually
creates.

Run standalone (CI's ``parallel-smoke`` job uses ``--smoke``: three small
apps at ``cores=2`` and tiny period counts, correctness + plumbing only)::

    PYTHONPATH=src python benchmarks/bench_e11_parallel_runtime.py [--smoke]
"""

import json
import os
import sys
import warnings
from pathlib import Path

from repro.apps import ALL_APPS
from repro.bench import measure_throughput, time_breakdown
from repro.errors import EngineDowngradeWarning
from repro.machine.raw import RawMachine
from repro.mapping.strategies import STRATEGIES

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_parallel.json"

STRATEGY = "softpipe"
CORE_COUNTS = (2, 4)

#: (name, periods) — sized so each parallel measurement stays in seconds
#: even when workers timeslice a single host CPU.
APPS = (
    ("BitonicSort", 600),
    ("ChannelVocoder", 600),
    ("DCT", 60),
    ("DES", 40),
    ("FFT", 150),
    ("FilterBank", 250),
    ("FMRadio", 1500),
    ("Radar", 1000),
    ("TDE", 150),
    ("Vocoder", 800),
)

SMOKE_APPS = ("FMRadio", "FilterBank", "Vocoder")


def _measure(build, periods, label, engine, **opts):
    # Best-of-3, same rule for every engine: on a timesliced host the
    # scheduler can wedge a multi-process run into a starved phase for a
    # whole (millisecond-scale) window, so single shots measure the
    # scheduler's mood, not the engine's attainable rate.
    return max(
        (
            measure_throughput(build, periods, label=label, engine=engine, **opts)
            for _ in range(3)
        ),
        key=lambda s: s.items_per_second,
    )


def worker_busy(build, periods: int, cores: int) -> str:
    """Per-worker busy shares from a short traced run (streamscope)."""
    _, metrics = time_breakdown(
        build, periods, engine="parallel", strategy=STRATEGY, cores=cores
    )
    workers = metrics.get("workers", {})
    total = sum(workers.values())
    if total <= 0:
        return "n/a"
    return " ".join(
        f"w{tid}:{100.0 * busy / total:.0f}%"
        for tid, busy in sorted(workers.items())
    )


def calibrate_ring_cost(items: int = 1 << 16, chunk: int = 1 << 10) -> float:
    """Measured seconds to move one float64 through a shared-memory ring.

    Single-process push_block/pop_block round trips — the copy + counter
    cost of a transfer, deliberately excluding contention (the cost model
    prices traffic, not scheduling).
    """
    import time as _time

    import numpy as np

    from repro.runtime.ring import RingArena

    arena = RingArena([2 * chunk])
    try:
        ring = arena.ring(0, name="calibration")
        block = np.arange(chunk, dtype=np.float64)
        # Warm the path once before timing.
        ring.push_block(block)
        ring.pop_block(chunk)
        moved = 0
        t0 = _time.perf_counter()
        while moved < items:
            ring.push_block(block)
            ring.pop_block(chunk)
            moved += chunk
        elapsed = _time.perf_counter() - t0
    finally:
        arena.release(True)
    return elapsed / moved


def simulated_speedup(
    name: str, cores: int, batched_sec_per_period: float, ring_cost_s: float
):
    """Model prediction for this mapping at ``cores``, with transfer costs.

    Returns ``(adjusted, compute_only, ring_items_per_period)``:
    ``compute_only`` is the raw machine-model speedup (the old overpromising
    column); ``adjusted`` charges every item crossing a core boundary one
    calibrated ring transfer against the measured batched period time.
    """
    result = STRATEGIES[STRATEGY](ALL_APPS[name](), RawMachine(n_cores=cores))
    compute = result.speedup
    ring_items = sum(
        e.words
        for e in result.model.edges
        if result.assignment.get(e.src) != result.assignment.get(e.dst)
    )
    t_par = batched_sec_per_period / max(compute, 1e-12) + ring_items * ring_cost_s
    adjusted = batched_sec_per_period / t_par if t_par > 0 else compute
    return adjusted, compute, ring_items


def run_bench(smoke: bool = False):
    apps = [(n, p) for n, p in APPS if not smoke or n in SMOKE_APPS]
    core_counts = (2,) if smoke else CORE_COUNTS
    periods_scale = 0.05 if smoke else 1.0
    ring_cost = calibrate_ring_cost()
    table = {
        "strategy": STRATEGY,
        "host_cpus": os.cpu_count(),
        "core_counts": list(core_counts),
        "ring_cost_per_item_s": ring_cost,
        "apps": {},
    }
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", EngineDowngradeWarning)
        for name, periods in apps:
            build = ALL_APPS[name]
            periods = max(1, int(periods * periods_scale))
            batched = _measure(build, periods, f"{name}/batched", "batched")
            row = {
                "periods": periods,
                "batched_items_per_sec": batched.items_per_second,
                "parallel": {},
            }
            for cores in core_counts:
                par = _measure(
                    build,
                    periods,
                    f"{name}/parallel@{cores}",
                    "parallel",
                    strategy=STRATEGY,
                    cores=cores,
                )
                measured = par.items_per_second / batched.items_per_second
                adjusted, compute, ring_items = simulated_speedup(
                    name, cores, batched.seconds / periods, ring_cost
                )
                row["parallel"][str(cores)] = {
                    "items_per_sec": par.items_per_second,
                    "measured_speedup_vs_batched": measured,
                    "simulated_speedup": adjusted,
                    "simulated_speedup_compute": compute,
                    "ring_items_per_period": ring_items,
                }
            # Where the workers' time goes, from a short traced run at the
            # largest core count (separate run; the timed ones stay untraced).
            row["worker_busy"] = worker_busy(
                build, max(2, periods // 20), core_counts[-1]
            )
            table["apps"][name] = row
    wins = sum(
        1
        for row in table["apps"].values()
        if row["parallel"]
        .get(str(core_counts[-1]), {})
        .get("measured_speedup_vs_batched", 0.0)
        > 1.0
    )
    table["parallel_wins_at_max_cores"] = wins
    return table


def render(table) -> str:
    cores = table["core_counts"]
    lines = [
        "== E11: parallel runtime — batched vs parallel "
        f"({table['strategy']}, host has {table['host_cpus']} CPU(s)) ==",
        f"{'Benchmark':16s}{'batched it/s':>13s}"
        + "".join(
            f"{f'par@{c} it/s':>13s}{f'meas@{c}':>9s}{f'sim@{c}(raw)':>13s}"
            for c in cores
        )
        + f"  worker busy @{cores[-1]} (traced)",
    ]
    for name, row in table["apps"].items():
        cells = ""
        for c in cores:
            p = row["parallel"][str(c)]
            sim_compute = p.get("simulated_speedup_compute", p["simulated_speedup"])
            cells += (
                f"{p['items_per_sec']:13.0f}"
                f"{p['measured_speedup_vs_batched']:8.2f}x"
                f"{p['simulated_speedup']:6.2f}x"
                f"({sim_compute:.1f})"
            )
        busy = row.get("worker_busy", "")
        lines.append(
            f"{name:16s}{row['batched_items_per_sec']:13.0f}{cells}  {busy}"
        )
    lines.append(
        f"parallel > batched at {cores[-1]} cores: "
        f"{table['parallel_wins_at_max_cores']}/{len(table['apps'])} apps"
    )
    return "\n".join(lines)


def _check(table) -> None:
    assert len(table["apps"]) >= 8, "need >=8 apps in the parallel bench"
    for name, row in table["apps"].items():
        assert row["batched_items_per_sec"] > 0, name
        for cores in table["core_counts"]:
            cell = row["parallel"][str(cores)]
            assert cell["items_per_sec"] > 0, f"{name}@{cores}"
            # The compute-only prediction must still promise a win; the
            # transfer-adjusted one is allowed to (honestly) fall below 1.
            assert cell["simulated_speedup_compute"] >= 1.0, f"{name}@{cores}"
            assert cell["simulated_speedup"] > 0.0, f"{name}@{cores}"


def test_e11_parallel_runtime(report):
    table = run_bench()
    report(render(table))
    RESULT_PATH.write_text(json.dumps(table, indent=2) + "\n")
    _check(table)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    table = run_bench(smoke=smoke)
    print(render(table))
    if smoke:
        # Correctness/plumbing only — don't clobber the committed table
        # with a 3-app run at toy period counts.
        sys.exit(0)
    _check(table)
    RESULT_PATH.write_text(json.dumps(table, indent=2) + "\n")
    print(f"\nwrote {RESULT_PATH}")
