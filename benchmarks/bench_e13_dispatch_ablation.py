"""E13 — dispatch-cost ablation: batched vs codegen across batch sizes.

Both fast engines execute the same vectorized kernels; what separates them
is who runs the steady-state *schedule*.  The batched engine walks a list
of ``CompiledPhase`` objects per chunk — one Python dispatch (attribute
loads, bound-method call, history bump) per phase — while the codegen
engine compiles the whole walk into one generated ``run_chunk`` function of
straight-line statements.  Dispatch cost is therefore a per-*chunk* fixed
cost, and shrinking the chunk (superbatch) size exposes it: at batch size 1
every period pays full dispatch, at 256 it is amortized 256x.

This ablation forces ``plan.chunk_periods`` to 1/16/256 on both engines and
measures throughput on three shapes: FIR (one fused SISO chain — the
cheapest possible schedule), FMRadio (a wide splitjoin with many phases per
period), and DToA (the unit-delay feedback core, where the batched engine's
``CoreLoopRunner`` re-enters its tape machinery every chunk).

What the numbers show: at batch size 1 the two engines *tie* — per-chunk
entry costs (the steady loop itself, channel bookkeeping, one kernel call
per block either way) dominate both, and neither amortizes anything.  The
gap opens as the batch grows: once per-chunk costs are amortized, what is
left is the per-*period* schedule walk, and that is exactly the part
codegen compiled away.  Where the batched engine already vectorizes a whole
chunk per phase (FIR's fused chain), both engines converge on kernel-bound
throughput and the ratio stays near 1x at every size; where it cannot —
DToA's feedback core runs an interpreted per-period loop inside each chunk
— the batched engine plateaus while the generated closed loop keeps
scaling, and the ratio at 256 is the measured price of that dispatch.

Writes ``BENCH_dispatch_ablation.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_e13_dispatch_ablation.py [--smoke]
"""

import json
import sys
import time
import warnings
from pathlib import Path

from repro.apps import ALL_APPS
from repro.bench import geometric_mean
from repro.errors import EngineDowngradeWarning
from repro.graph.builtins import CollectSink
from repro.runtime import Interpreter

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_dispatch_ablation.json"

#: Forced superbatch (chunk) sizes, in steady-state periods per run_chunk /
#: phase-walk invocation.
BATCH_SIZES = (1, 16, 256)

#: (name, periods) — periods sized so the slowest cell (batch size 1 under
#: the batched engine) stays around a second.
APPS = (
    ("FIR", 20000),
    ("FMRadio", 4000),
    ("DToA", 10000),
)

ENGINES = ("batched", "codegen")


def measure_cell(name: str, engine: str, chunk: int, periods: int) -> float:
    """items/second with ``plan.chunk_periods`` pinned to ``chunk``.

    The pin happens before the warmup run, so codegen materializes (and the
    batched core runner builds its tapes) under the ablated chunk size; the
    timed run then never sees a chunk larger than ``chunk`` periods.
    """
    app = ALL_APPS[name]()
    sink = next(f for f in app.filters() if isinstance(f, CollectSink))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", EngineDowngradeWarning)
        interp = Interpreter(app, check=False, engine=engine)
        interp.plan.chunk_periods = chunk
        try:
            interp.run(periods=2)
            produced_before = len(sink.collected)
            start = time.perf_counter()
            interp.run_steady(periods)
            elapsed = time.perf_counter() - start
        finally:
            interp.close()
    outputs = len(sink.collected) - produced_before
    return outputs / elapsed if elapsed > 0 else float("inf")


def run_bench(periods_scale: float = 1.0):
    table = {}
    for name, periods in APPS:
        periods = max(1, int(periods * periods_scale))
        rows = {}
        for chunk in BATCH_SIZES:
            cell = {}
            for engine in ENGINES:
                best = max(
                    measure_cell(name, engine, chunk, periods) for _ in range(3)
                )
                cell[f"{engine}_items_per_sec"] = best
            cell["codegen_over_batched"] = (
                cell["codegen_items_per_sec"] / cell["batched_items_per_sec"]
            )
            rows[str(chunk)] = cell
        table[name] = {"periods": periods, "batch_sizes": rows}
    largest = str(max(BATCH_SIZES))
    entries = list(table.values())
    table["geomean_ratio_at_1"] = geometric_mean(
        [t["batch_sizes"]["1"]["codegen_over_batched"] for t in entries]
    )
    table["geomean_ratio_at_max"] = geometric_mean(
        [t["batch_sizes"][largest]["codegen_over_batched"] for t in entries]
    )
    return table


def render(table) -> str:
    lines = [
        "== E13: dispatch-cost ablation — batched vs codegen by batch size ==",
        f"{'Benchmark':12s}{'batch':>7s}{'batched it/s':>14s}{'codegen it/s':>14s}"
        f"{'codegen/batched':>17s}",
    ]
    for name, entry in table.items():
        if not isinstance(entry, dict):
            continue
        for chunk, cell in entry["batch_sizes"].items():
            lines.append(
                f"{name:12s}{chunk:>7s}{cell['batched_items_per_sec']:14.0f}"
                f"{cell['codegen_items_per_sec']:14.0f}"
                f"{cell['codegen_over_batched']:16.2f}x"
            )
    lines.append(
        f"\ngeomean codegen/batched: {table['geomean_ratio_at_1']:.2f}x at batch "
        f"size 1 (per-chunk entry costs dominate both engines), "
        f"{table['geomean_ratio_at_max']:.2f}x at {max(BATCH_SIZES)} "
        "(what is left once amortized is the dispatch the codegen killed)"
    )
    return "\n".join(lines)


def _check(table) -> None:
    # The generated module must never lose to the dispatch loop (0.9 leaves
    # room for timer noise where the two engines genuinely tie)...
    for name, entry in table.items():
        if not isinstance(entry, dict):
            continue
        for chunk, cell in entry["batch_sizes"].items():
            ratio = cell["codegen_over_batched"]
            assert ratio >= 0.9, (
                f"{name}: codegen slower than batched at batch {chunk} "
                f"({ratio:.2f}x)"
            )
    # ...and on the core-bound shape the closed loop must clearly win once
    # per-chunk costs are amortized.
    dtoa_max = table["DToA"]["batch_sizes"][str(max(BATCH_SIZES))][
        "codegen_over_batched"
    ]
    assert dtoa_max >= 1.5, (
        f"DToA at batch {max(BATCH_SIZES)}: codegen only {dtoa_max:.2f}x over "
        "batched; the inlined core has regressed toward the interpreted runner"
    )


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    table = run_bench(periods_scale=0.01 if smoke else 1.0)
    print(render(table))
    if not smoke:
        write = json.dumps(table, indent=2) + "\n"
        RESULT_PATH.write_text(write)
        _check(table)
        print(f"\nwrote {RESULT_PATH}")
