"""E6 — Figure `vs-space`: the combined technique vs. prior work.

The comparison target is the earlier purely space-multiplexed StreamIt
backend (one fused filter per tile, hardware pipelining, no data
parallelism).  Paper: the combined technique improves on it overall —
e.g. Beamformer +38%, Vocoder +30% once software pipelining kicks in —
while space multiplexing stays competitive on long pipelines with little
splitting (TDE, FFT-like apps).
"""

from repro.bench import geometric_mean, render_bars, speedup_table, strategy_result
from repro.machine.raw import RawMachine
from repro.mapping.strategies import combined, space_multiplex
from repro.apps import beamformer

STRATEGIES = ("space", "combined")


def test_e6_vs_space_multiplexing(benchmark, report):
    table = benchmark.pedantic(lambda: speedup_table(STRATEGIES), rounds=1, iterations=1)
    report(render_bars(table, STRATEGIES, "== E6: Task+Pipeline (prior work) vs Task+Data+SWP =="))

    geo = {s: geometric_mean([table[a][s] for a in table]) for s in STRATEGIES}
    # The combined technique improves upon the prior space-multiplexing work.
    assert geo["combined"] > 1.2 * geo["space"]
    # Apps where a single filter dominates: fission is decisive, and the
    # space partitioner (which cannot fiss) falls far behind.
    for app in ("DCT", "MPEG2Decoder"):
        assert table[app]["combined"] > 2.0 * table[app]["space"]
    # Most individual benchmarks favor the combined technique.
    wins = sum(1 for a in table if table[a]["combined"] > table[a]["space"])
    assert wins >= 8


def test_e6_beamformer_combined_beats_space(benchmark):
    """The stateful-benchmark narrative: task+data alone can lose to the
    space partitioner, but adding SWP wins (Beamformer +38%, Vocoder +30%)."""

    def compute():
        machine = RawMachine()
        return (
            combined(beamformer.build(), machine).speedup,
            space_multiplex(beamformer.build(), machine).speedup,
        )

    combined_speedup, space_speedup = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert combined_speedup > space_speedup

    vocoder_combined = strategy_result("Vocoder", "combined").speedup
    vocoder_space = strategy_result("Vocoder", "space").speedup
    assert vocoder_combined > vocoder_space
