"""FIR — the canonical linear benchmark: one long finite-impulse-response
filter over a synthetic signal (the paper's five-tap FIR block diagram,
scaled up to a realistic tap count)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.apps.common import FIRFilter, fir_reference, lowpass_taps, signal, source_and_sink
from repro.graph.composites import Pipeline

DEFAULT_TAPS = 128


def build(n_taps: int = DEFAULT_TAPS, input_length: int = 256) -> Pipeline:
    """Source -> FIR(n_taps) -> sink."""
    source, sink = source_and_sink(signal(input_length))
    return Pipeline(
        source,
        FIRFilter(lowpass_taps(n_taps, 0.2), name="fir"),
        sink,
        name="FIR",
    )


def reference(x: np.ndarray, n_taps: int = DEFAULT_TAPS) -> np.ndarray:
    """Numpy model of the app's filter chain."""
    return fir_reference(np.asarray(x), lowpass_taps(n_taps, 0.2))
