"""DToA — a one-bit digital-to-analog front end: a 1-level oversampler
followed by a first-order noise shaper built as a FeedbackLoop (the error
between the quantized output and the input is fed back), then an analog
smoothing FIR.  Exercises the FeedbackLoop construct inside a real app."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.common import FIRFilter, Scale, lowpass_taps, signal, source_and_sink
from repro.graph.base import Filter
from repro.graph.builtins import Expander
from repro.graph.composites import FeedbackLoop, Pipeline
from repro.graph.splitjoin import joiner_roundrobin, roundrobin

DEFAULT_TAPS = 64


class ErrorShaper(Filter):
    """Subtracts the fed-back error estimate from the incoming sample.

    pop 2 (one signal item joined round-robin with one feedback item),
    push 2 (the shaped output and the new feedback value) — a linear body,
    so the loop's *body* is analyzable even though the loop is not
    collapsed.
    """

    def __init__(self, leak: float = 0.5, name: Optional[str] = None) -> None:
        super().__init__(pop=2, push=2, name=name)
        self.leak = float(leak)

    def work(self) -> None:
        sample = self.pop()
        fed_back = self.pop()
        shaped = sample - self.leak * fed_back
        self.push(shaped)        # to the output path
        self.push(shaped * 0.5)  # error estimate back around the loop


def build(n_taps: int = DEFAULT_TAPS, input_length: int = 128) -> Pipeline:
    source, sink = source_and_sink(signal(input_length))
    shaper = FeedbackLoop(
        joiner_roundrobin(1, 1),
        ErrorShaper(name="shape"),
        roundrobin(1, 1),
        Scale(1.0, name="loopgain"),
        delay=1,
        init_path=lambda i: 0.0,
        name="noise_shaper",
    )
    return Pipeline(
        source,
        Expander(2, name="up"),
        FIRFilter(lowpass_taps(n_taps, 0.25), name="interp"),
        shaper,
        FIRFilter(lowpass_taps(16, 0.4), name="smooth"),
        sink,
        name="DToA",
    )


def reference(x: np.ndarray, n_taps: int = DEFAULT_TAPS) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    up = np.zeros(len(x) * 2)
    up[::2] = x
    taps = np.asarray(lowpass_taps(n_taps, 0.25))
    n = len(up) - (len(taps) - 1)
    interp = np.array([up[j : j + len(taps)] @ taps for j in range(max(n, 0))])
    # First-order noise shaper with unit-delay feedback (leak 0.5, gain 0.5).
    shaped = np.empty_like(interp)
    fb = 0.0
    for i, sample in enumerate(interp):
        shaped[i] = sample - 0.5 * fb
        fb = shaped[i] * 0.5
    smooth = np.asarray(lowpass_taps(16, 0.4))
    n2 = len(shaped) - (len(smooth) - 1)
    return np.array([shaped[j : j + len(smooth)] @ smooth for j in range(max(n2, 0))])
