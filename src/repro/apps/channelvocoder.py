"""ChannelVocoder — a channel vocoder: a wide split-join where each channel
band-pass filters the input and tracks its envelope with a peeking
low-pass magnitude filter.  Stateless but heavily peeking, so coarse data
parallelism must pay duplication costs to fiss it.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.apps.common import FIRFilter, bandpass_taps, lowpass_taps, signal, source_and_sink
from repro.graph.base import Filter
from repro.graph.composites import Pipeline, SplitJoin
from repro.graph.splitjoin import duplicate, joiner_roundrobin

N_CHANNELS = 16
DEFAULT_TAPS = 24


class EnvelopeFollower(Filter):
    """Windowed mean absolute value — nonlinear (abs) and peeking."""

    def __init__(self, window: int, name: Optional[str] = None) -> None:
        super().__init__(peek=window, pop=1, push=1, name=name)
        self.window = window

    def work(self) -> None:
        total = 0.0
        for i in range(self.window):
            value = self.peek(i)
            if value < 0.0:
                value = -value
            total += value
        self.pop()
        self.push(total / self.window)

    supports_work_batch = True

    def work_batch(self, n: int) -> None:
        # Accumulate |x| tap by tap across all firings — the same i-order
        # additions as the scalar loop, so sums are bit-identical.
        w = self.window
        window = self.input.peek_block(n - 1 + w)
        total = np.zeros(n)
        for i in range(w):
            total += np.abs(window[i : i + n])
        self.input.drop(n)
        self.output.push_block(total / w)


def _bands(n_taps: int) -> List[List[float]]:
    edges = np.linspace(0.01, 0.49, N_CHANNELS + 1)
    return [
        bandpass_taps(n_taps, float(edges[i]), float(edges[i + 1]))
        for i in range(N_CHANNELS)
    ]


def build(n_taps: int = DEFAULT_TAPS, window: int = 16, input_length: int = 256) -> Pipeline:
    source, sink = source_and_sink(signal(input_length))
    channels = []
    for i, taps in enumerate(_bands(n_taps)):
        channels.append(
            Pipeline(
                FIRFilter(taps, name=f"bp{i}"),
                EnvelopeFollower(window, name=f"env{i}"),
                name=f"chan{i}",
            )
        )
    bank = SplitJoin(duplicate(), channels, joiner_roundrobin(), name="channels")
    return Pipeline(source, bank, sink, name="ChannelVocoder")


def reference(x: np.ndarray, n_taps: int = DEFAULT_TAPS, window: int = 16) -> np.ndarray:
    from repro.apps.common import fir_reference

    x = np.asarray(x, dtype=np.float64)
    outs = []
    for taps in _bands(n_taps):
        bp = fir_reference(x, taps)
        n = len(bp) - (window - 1)
        outs.append(
            np.array([np.abs(bp[j : j + window]).mean() for j in range(max(n, 0))])
        )
    n = min(len(o) for o in outs)
    interleaved = np.empty(n * N_CHANNELS)
    for i, o in enumerate(outs):
        interleaved[i::N_CHANNELS] = o[:n]
    return interleaved
