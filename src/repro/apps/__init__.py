"""The benchmark application suite.

Two groups, matching the paper:

* the 12-app **evaluation suite** (Fig. "Benchmark characteristics"):
  BitonicSort, ChannelVocoder, DCT, DES, FFT, FilterBank, FMRadio,
  Serpent, TDE, MPEG2Decoder, Vocoder, Radar;
* the **linear-optimization suite** (title/abstract experiments): FIR,
  RateConvert, TargetDetect, FMRadio, Radar, FilterBank, Vocoder,
  Oversampler, DToA;
* plus FreqHopRadio (teleport messaging) and Beamformer (prior-work
  comparison).

Each module exposes ``build(...) -> Pipeline`` (a closed stream with its
own source and sink) and, where practical, a numpy ``reference`` model.
"""

from typing import Callable, Dict

from repro.apps import (
    beamformer,
    bitonic,
    channelvocoder,
    dct,
    des,
    dtoa,
    fft,
    filterbank,
    fir,
    fmradio,
    freqhop,
    mpeg2,
    oversampler,
    radar,
    rateconvert,
    serpent,
    targetdetect,
    tde,
    vocoder,
)

#: The 12 applications of the evaluation suite, in the paper's (stateful-
#: work ascending) presentation order.
EVALUATION_SUITE: Dict[str, Callable] = {
    "BitonicSort": bitonic.build,
    "ChannelVocoder": channelvocoder.build,
    "DCT": dct.build,
    "DES": des.build,
    "FFT": fft.build,
    "FilterBank": filterbank.build,
    "FMRadio": fmradio.build,
    "Serpent": serpent.build,
    "TDE": tde.build,
    "MPEG2Decoder": mpeg2.build,
    "Vocoder": vocoder.build,
    "Radar": radar.build,
}

#: The linear-optimization study's applications.
LINEAR_SUITE: Dict[str, Callable] = {
    "FIR": fir.build,
    "RateConvert": rateconvert.build,
    "TargetDetect": targetdetect.build,
    "FMRadio": fmradio.build,
    "FilterBank": filterbank.build,
    "Vocoder": vocoder.build,
    "Oversampler": oversampler.build,
    "DToA": dtoa.build,
}

ALL_APPS: Dict[str, Callable] = {
    **EVALUATION_SUITE,
    **LINEAR_SUITE,
    "Beamformer": beamformer.build,
    "FreqHopRadio": freqhop.build_teleport,
}

__all__ = [
    "EVALUATION_SUITE",
    "LINEAR_SUITE",
    "ALL_APPS",
    "beamformer",
    "bitonic",
    "channelvocoder",
    "dct",
    "des",
    "dtoa",
    "fft",
    "filterbank",
    "fir",
    "fmradio",
    "freqhop",
    "mpeg2",
    "oversampler",
    "radar",
    "rateconvert",
    "serpent",
    "targetdetect",
    "tde",
    "vocoder",
]
