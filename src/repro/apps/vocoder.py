"""Vocoder — a phase vocoder: analysis DFT bank, rectangular-to-polar
conversion, per-bin phase unwrapping (the *stateful* step: each unwrapper
remembers the previous phase), spectral modification, polar-to-rectangular
and synthesis.  A mostly-stateless graph with a thin stateful band —
data parallelism helps everywhere except the unwrappers, and adding
software pipelining on top gives the large combined win the evaluation
reports for this benchmark.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.apps.common import signal, source_and_sink
from repro.graph.base import Filter
from repro.graph.builtins import Identity
from repro.graph.composites import Pipeline, SplitJoin
from repro.graph.splitjoin import duplicate, joiner_roundrobin, roundrobin

N_BINS = 8
WINDOW = 32
SPEED = 1.2


class DFTBin(Filter):
    """Sliding-window DFT for one bin: linear, heavily peeking."""

    def __init__(self, k: int, window: int, name: Optional[str] = None) -> None:
        super().__init__(peek=window, pop=1, push=2, name=name)
        self.cos_t = tuple(math.cos(2 * math.pi * k * i / window) for i in range(window))
        self.sin_t = tuple(-math.sin(2 * math.pi * k * i / window) for i in range(window))
        self.window = window

    def work(self) -> None:
        re = 0.0
        im = 0.0
        for i in range(self.window):
            sample = self.peek(i)
            re += sample * self.cos_t[i]
            im += sample * self.sin_t[i]
        self.pop()
        self.push(re)
        self.push(im)


class RectToPolar(Filter):
    """(re, im) -> (magnitude, phase): nonlinear, stateless."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(pop=2, push=2, name=name)

    def work(self) -> None:
        re = self.pop()
        im = self.pop()
        self.push(math.sqrt(re * re + im * im))
        self.push(math.atan2(im, re))


class PhaseUnwrap(Filter):
    """Stateful: unwraps and rescales the phase increment per bin."""

    def __init__(self, speed: float, name: Optional[str] = None) -> None:
        super().__init__(pop=1, push=1, name=name)
        self.speed = float(speed)
        self.previous = 0.0
        self.accumulated = 0.0

    def init(self) -> None:
        self.previous = 0.0
        self.accumulated = 0.0

    def work(self) -> None:
        phase = self.pop()
        delta = phase - self.previous
        while delta > math.pi:
            delta -= 2 * math.pi
        while delta < -math.pi:
            delta += 2 * math.pi
        self.previous = phase
        self.accumulated += delta * self.speed
        self.push(self.accumulated)

    supports_work_batch = True

    def work_batch(self, n: int) -> None:
        # Each delta depends only on consecutive inputs, and the accumulator
        # is a strict left fold — np.add.accumulate reproduces the scalar
        # addition order bit-for-bit.
        phases = self.input.pop_block(n)
        prev = np.concatenate(([self.previous], phases[:-1]))
        delta = phases - prev
        while np.any(delta > math.pi):
            delta = np.where(delta > math.pi, delta - 2 * math.pi, delta)
        while np.any(delta < -math.pi):
            delta = np.where(delta < -math.pi, delta + 2 * math.pi, delta)
        acc = np.add.accumulate(np.concatenate(([self.accumulated], delta * self.speed)))
        self.previous = float(phases[-1])
        self.accumulated = float(acc[-1])
        self.output.push_block(acc[1:])


class PolarToRect(Filter):
    """(magnitude, phase) -> (re, im): nonlinear, stateless."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(pop=2, push=2, name=name)

    def work(self) -> None:
        mag = self.pop()
        phase = self.pop()
        self.push(mag * math.cos(phase))
        self.push(mag * math.sin(phase))


class SumReals(Filter):
    """Synthesis: sums the real parts of all bins (linear)."""

    def __init__(self, n_bins: int, name: Optional[str] = None) -> None:
        super().__init__(pop=2 * n_bins, push=1, name=name)
        self.n_bins = n_bins

    def work(self) -> None:
        total = 0.0
        for k in range(self.n_bins):
            total += self.peek(2 * k)
        for _ in range(2 * self.n_bins):
            self.pop()
        self.push(total / self.n_bins)


def _bin_pipeline(k: int) -> Pipeline:
    # Per-bin: DFT -> polar -> (magnitude passthrough | phase unwrap) -> rect
    mag_phase = SplitJoin(
        roundrobin(1, 1),
        [Identity(name=f"bin{k}_mag"), PhaseUnwrap(SPEED, name=f"bin{k}_unwrap")],
        joiner_roundrobin(1, 1),
        name=f"bin{k}_magphase",
    )
    return Pipeline(
        DFTBin(k, WINDOW, name=f"bin{k}_dft"),
        RectToPolar(name=f"bin{k}_r2p"),
        mag_phase,
        PolarToRect(name=f"bin{k}_p2r"),
        name=f"bin{k}",
    )


def build(input_length: int = 256) -> Pipeline:
    source, sink = source_and_sink(signal(max(input_length, WINDOW)))
    analysis = SplitJoin(
        duplicate(),
        [_bin_pipeline(k) for k in range(N_BINS)],
        joiner_roundrobin(*([2] * N_BINS)),
        name="bins",
    )
    return Pipeline(source, analysis, SumReals(N_BINS, name="synthesis"), sink, name="Vocoder")


def reference(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    n_firings = len(x) - (WINDOW - 1)
    if n_firings <= 0:
        return np.zeros(0)
    out = np.zeros(n_firings)
    idx = np.arange(WINDOW)
    for k in range(N_BINS):
        cos_t = np.cos(2 * np.pi * k * idx / WINDOW)
        sin_t = -np.sin(2 * np.pi * k * idx / WINDOW)
        prev = 0.0
        acc = 0.0
        for f in range(n_firings):
            window = x[f : f + WINDOW]
            re = float(window @ cos_t)
            im = float(window @ sin_t)
            mag = math.hypot(re, im)
            phase = math.atan2(im, re)
            delta = phase - prev
            while delta > math.pi:
                delta -= 2 * math.pi
            while delta < -math.pi:
                delta += 2 * math.pi
            prev = phase
            acc += delta * SPEED
            out[f] += mag * math.cos(acc)
    return out / N_BINS
