"""FFT — an N-point complex FFT in the classic StreamIt structure:
a bit-reversal reordering stage followed by ``log2(N)`` combine stages
(the paper's butterfly figure).  The stream carries interleaved complex
samples ``re0, im0, re1, im1, …``; every stage is a linear filter, so the
whole kernel is one large linear region.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.apps.common import signal, source_and_sink
from repro.graph.base import Filter
from repro.graph.composites import Pipeline

DEFAULT_N = 64


class FFTReorderSimple(Filter):
    """One deinterleave pass: evens then odds, over ``size`` complex items."""

    def __init__(self, size: int, name: Optional[str] = None) -> None:
        super().__init__(pop=2 * size, push=2 * size, name=name)
        self.size = size

    def work(self) -> None:
        for i in range(0, self.size, 2):
            self.push(self.peek(2 * i))
            self.push(self.peek(2 * i + 1))
        for i in range(1, self.size, 2):
            self.push(self.peek(2 * i))
            self.push(self.peek(2 * i + 1))
        for _ in range(2 * self.size):
            self.pop()

    supports_work_batch = True

    def work_batch(self, n: int) -> None:
        # Pure deinterleave: even-indexed complex pairs, then odd-indexed.
        size = self.size
        pairs = self.input.pop_block(n * 2 * size).reshape(n, size, 2)
        out = np.concatenate((pairs[:, 0::2], pairs[:, 1::2]), axis=1)
        self.output.push_block(out.reshape(n, 2 * size))


class CombineDFT(Filter):
    """One radix-2 combine stage over groups of ``2w`` complex items.

    For each of the ``w`` butterflies: ``out[i] = a[i] + t_i · b[i]``,
    ``out[i+w] = a[i] - t_i · b[i]`` with twiddle ``t_i = e^{-2πi·i/(2w)}``.
    All coefficients are compile-time constants, so the stage is linear.
    """

    def __init__(self, w: int, inverse: bool = False, name: Optional[str] = None) -> None:
        super().__init__(pop=4 * w, push=4 * w, name=name)
        self.w = w
        sign = 1.0 if inverse else -1.0
        self.wr = tuple(math.cos(2 * math.pi * i / (2 * w)) for i in range(w))
        self.wi = tuple(sign * math.sin(2 * math.pi * i / (2 * w)) for i in range(w))

    def work(self) -> None:
        w = self.w
        results = [0.0] * (4 * w)
        for i in range(w):
            ar = self.peek(2 * i)
            ai = self.peek(2 * i + 1)
            br = self.peek(2 * (i + w))
            bi = self.peek(2 * (i + w) + 1)
            tr = br * self.wr[i] - bi * self.wi[i]
            ti = br * self.wi[i] + bi * self.wr[i]
            results[2 * i] = ar + tr
            results[2 * i + 1] = ai + ti
            results[2 * (i + w)] = ar - tr
            results[2 * (i + w) + 1] = ai - ti
        for _ in range(4 * w):
            self.pop()
        for value in results:
            self.push(value)

    supports_work_batch = True

    def work_batch(self, n: int) -> None:
        # Same multiply/add expressions as the scalar butterflies, evaluated
        # columnwise — elementwise identical, so outputs are bit-exact.
        w = self.w
        block = self.input.pop_block(n * 4 * w).reshape(n, 2, w, 2)
        ar = block[:, 0, :, 0]
        ai = block[:, 0, :, 1]
        br = block[:, 1, :, 0]
        bi = block[:, 1, :, 1]
        wr = np.asarray(self.wr)
        wi = np.asarray(self.wi)
        tr = br * wr - bi * wi
        ti = br * wi + bi * wr
        out = np.empty((n, 2, w, 2))
        out[:, 0, :, 0] = ar + tr
        out[:, 0, :, 1] = ai + ti
        out[:, 1, :, 0] = ar - tr
        out[:, 1, :, 1] = ai - ti
        self.output.push_block(out.reshape(n, 4 * w))


class ComplexScale(Filter):
    """Scales interleaved complex items by 1/N (for the inverse FFT)."""

    def __init__(self, factor: float, name: Optional[str] = None) -> None:
        super().__init__(pop=2, push=2, name=name)
        self.factor = float(factor)

    def work(self) -> None:
        self.push(self.pop() * self.factor)
        self.push(self.pop() * self.factor)


def fft_kernel(n: int = DEFAULT_N, inverse: bool = False, prefix: str = "fft") -> Pipeline:
    """The FFT as a stream: reorder stages then combine stages."""
    if n & (n - 1) or n < 2:
        raise ValueError(f"FFT size must be a power of two >= 2, got {n}")
    stages: List[Filter] = []
    size = n
    while size >= 4:
        stages.append(FFTReorderSimple(size, name=f"{prefix}_reorder{size}"))
        size //= 2
    w = 1
    while w < n:
        stages.append(CombineDFT(w, inverse=inverse, name=f"{prefix}_combine{w}"))
        w *= 2
    kernel = Pipeline(*stages, name=f"{prefix.upper()}({n})")
    return kernel


class RealToComplex(Filter):
    """Pairs each real sample with a zero imaginary part."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(pop=1, push=2, name=name)

    def work(self) -> None:
        self.push(self.pop())
        self.push(0.0)


def build(n: int = DEFAULT_N, input_length: int = 256) -> Pipeline:
    source, sink = source_and_sink(signal(max(input_length, n)))
    return Pipeline(
        source,
        RealToComplex(name="re2c"),
        fft_kernel(n),
        sink,
        name="FFT",
    )


def reference(x: np.ndarray, n: int = DEFAULT_N) -> np.ndarray:
    """Interleaved complex FFT of consecutive n-sample blocks of real input."""
    x = np.asarray(x, dtype=np.float64)
    n_blocks = len(x) // n
    out = np.empty(n_blocks * 2 * n)
    for b in range(n_blocks):
        spec = np.fft.fft(x[b * n : (b + 1) * n])
        out[b * 2 * n : (b + 1) * 2 * n : 2] = spec.real
        out[b * 2 * n + 1 : (b + 1) * 2 * n : 2] = spec.imag
    return out
