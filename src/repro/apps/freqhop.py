"""FreqHopRadio — the paper's trunked-radio example, in both styles.

A frequency-hopping receiver: an RF-to-IF mixer driven by a tunable weight
table, a boostable FIR stage, an FFT with magnitude detection, and
monitors that retune the mixer when energy appears at a hop frequency.

Two implementations of the *control path* are provided:

* :func:`build_teleport` — the paper's contribution: detectors send
  ``setf`` messages to the upstream ``RFtoIF`` through a :class:`Portal`
  with a latency bound; the steady-state dataflow carries data only.
* :func:`build_manual` — the status-quo alternative the paper's 49%
  improvement is measured against: control tokens travel through an
  explicit feedback loop merged round-robin with the data, so every block
  pays the joiner/splitter synchronization and the mixer must parse a
  control token per block.

Both compute the same radio; benchmark E8 compares their throughput.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.apps.common import signal, source_and_sink
from repro.apps.fft import RealToComplex, fft_kernel
from repro.graph.base import Filter
from repro.graph.builtins import Identity
from repro.graph.composites import FeedbackLoop, Pipeline, SplitJoin
from repro.graph.splitjoin import joiner_roundrobin, roundrobin
from repro.runtime.messaging import Portal, TimeInterval

N = 16  # FFT size / control block size
CARRIER_FREQ = 64.0
START_FREQ = 8.0
HOP_FREQS = (4.0, 6.0, 10.0, 12.0)
HOP_THRESHOLD = 2.5


def _weights_for(freq: float) -> List[float]:
    size = max(4, int(CARRIER_FREQ / freq))
    return [math.sin(math.pi * i / size) for i in range(size)]


class RFtoIF(Filter):
    """The tunable mixer (paper Figure "Trunked Radio"): multiplies each
    sample by a periodic weight table.  Stateful (phase counter); retuned
    by ``setf`` teleport messages."""

    def __init__(self, freq: float, name: Optional[str] = None) -> None:
        super().__init__(pop=1, push=1, name=name)
        self.weights = _weights_for(freq)
        self.count = 0
        self.freq = freq
        self.hops = 0  # messages received (for tests/demos)

    def init(self) -> None:
        self.count = 0

    def setf(self, freq: float) -> None:
        """Teleport message handler: retune the mixer."""
        self.freq = freq
        self.weights = _weights_for(freq)
        self.count = 0
        self.hops += 1

    def work(self) -> None:
        self.push(self.pop() * self.weights[self.count])
        self.count += 1
        if self.count == len(self.weights):
            self.count = 0

    supports_work_batch = True

    def work_batch(self, n: int) -> None:
        # Teleport retunes (``setf``) land between sub-batches: the plan
        # splits receiver batches at delivery points, so within one call the
        # weight table is fixed and only the phase counter advances.
        weights = np.asarray(self.weights)
        length = weights.size
        block = self.input.pop_block(n)
        phase = (self.count + np.arange(n)) % length
        self.output.push_block(block * weights[phase])
        self.count = int((self.count + n) % length)


class Booster(Filter):
    """A switchable FIR gain stage; toggled by best-effort messages."""

    def __init__(self, taps: int = 8, name: Optional[str] = None) -> None:
        super().__init__(peek=taps, pop=1, push=1, name=name)
        self.boost = tuple(1.0 / taps for _ in range(taps))
        self.passthrough = tuple([1.0] + [0.0] * (taps - 1))
        self.active = self.passthrough
        self.switches = 0

    def set_enabled(self, enabled: bool) -> None:
        """Message handler: engage or bypass the boost filter."""
        self.active = self.boost if enabled else self.passthrough
        self.switches += 1

    def work(self) -> None:
        total = 0.0
        for i in range(len(self.active)):
            total += self.peek(i) * self.active[i]
        self.pop()
        self.push(total)


class ComplexMagnitude(Filter):
    """(re, im) -> |z| (nonlinear)."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(pop=2, push=1, name=name)

    def work(self) -> None:
        re = self.pop()
        im = self.pop()
        self.push(math.sqrt(re * re + im * im))


class HopDetector(Filter):
    """Watches one FFT bin; on a *rising* energy crossing, teleports
    ``setf`` (hysteresis avoids re-sending while the bin stays hot).

    ``latency`` bounds the wavefront delay of the retune, mirroring the
    paper's ``TimeInterval(4N, 6N)``.
    """

    def __init__(
        self,
        portal: Portal,
        freq: float,
        threshold: float = HOP_THRESHOLD,
        latency: int = 6,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(pop=1, push=1, name=name)
        self.portal = portal
        self.freq = freq
        self.threshold = threshold
        self.latency = latency
        self.cooldown = 64
        self._quiet = 0

    def work(self) -> None:
        value = self.pop()
        if self._quiet > 0:
            self._quiet -= 1
        elif value >= self.threshold:
            self.portal.setf(self.freq, interval=TimeInterval(max_time=self.latency))
            self._quiet = self.cooldown
        self.push(value)


class CheckQuality(Filter):
    """Stateful signal-quality tracker; toggles the booster best-effort."""

    def __init__(self, portal: Portal, name: Optional[str] = None) -> None:
        super().__init__(pop=1, push=1, name=name)
        self.portal = portal
        self.ave_hi = 0.0
        self.ave_lo = 1.0
        self.boost_on = False

    def work(self) -> None:
        value = self.pop()
        self.ave_hi = max(0.9 * self.ave_hi, value)
        self.ave_lo = min(1.1 * self.ave_lo, value)
        spread = self.ave_hi - self.ave_lo
        if spread < 0.5 and not self.boost_on:
            self.portal.set_enabled(True)
            self.boost_on = True
        elif spread > 4.0 and self.boost_on:
            self.portal.set_enabled(False)
            self.boost_on = False
        self.push(value)


def check_freq_hop(portal: Portal, latency: int = 6) -> SplitJoin:
    """The paper's CheckFreqHop: detectors at four hop bins, identity
    elsewhere — weights ``(N/4-2, 1, 1, N/2, 1, 1, N/4-2)``."""
    weights = (N // 4 - 2, 1, 1, N // 2, 1, 1, N // 4 - 2)
    children: List[Filter] = [
        Identity(name="cfh_lo"),
        HopDetector(portal, HOP_FREQS[0], latency=latency, name="cfh_d0"),
        HopDetector(portal, HOP_FREQS[1], latency=latency, name="cfh_d1"),
        Identity(name="cfh_mid"),
        HopDetector(portal, HOP_FREQS[2], latency=latency, name="cfh_d2"),
        HopDetector(portal, HOP_FREQS[3], latency=latency, name="cfh_d3"),
        Identity(name="cfh_hi"),
    ]
    return SplitJoin(
        roundrobin(*weights), children, joiner_roundrobin(*weights), name="check_freq_hop"
    )


def build_teleport(input_length: int = 256, latency: int = 6) -> Pipeline:
    """The radio with teleport-messaging control (the paper's design)."""
    source, sink = source_and_sink(signal(max(input_length, N)))
    freq_hop = Portal(name="freqHop")
    rf2if = RFtoIF(START_FREQ, name="rf2if")
    freq_hop.register(rf2if)
    return Pipeline(
        source,
        rf2if,
        RealToComplex(name="re2c"),
        fft_kernel(N, prefix="radio"),
        ComplexMagnitude(name="mag"),
        check_freq_hop(freq_hop, latency=latency),
        sink,
        name="FreqHopRadio",
    )


def build(input_length: int = 256) -> Pipeline:
    """The full demo radio: hopping + booster quality control."""
    source, sink = source_and_sink(signal(max(input_length, N)))
    freq_hop = Portal(name="freqHop")
    on_off = Portal(name="boosterSwitch")
    rf2if = RFtoIF(START_FREQ, name="rf2if")
    booster = Booster(name="booster")
    freq_hop.register(rf2if)
    on_off.register(booster)
    return Pipeline(
        source,
        rf2if,
        booster,
        RealToComplex(name="re2c"),
        fft_kernel(N, prefix="radio"),
        ComplexMagnitude(name="mag"),
        check_freq_hop(freq_hop),
        CheckQuality(on_off, name="quality"),
        sink,
        name="TrunkedRadio",
    )


# ---------------------------------------------------------------------------
# Manual (control-in-stream) alternative
# ---------------------------------------------------------------------------


class ManualRFtoIF(Filter):
    """The mixer with in-band control: every block starts with a control
    token (0 = no change, else the new frequency)."""

    def __init__(self, freq: float, name: Optional[str] = None) -> None:
        super().__init__(pop=N + 1, push=N, name=name)
        self.weights = _weights_for(freq)
        self.count = 0
        self.freq = freq
        self.hops = 0

    def init(self) -> None:
        self.count = 0

    def work(self) -> None:
        # The joiner delivers the data block first, then the control token
        # (which retunes the mixer for the *next* block — one block of
        # control latency, like a teleport message with latency N).
        for _ in range(N):
            self.push(self.pop() * self.weights[self.count])
            self.count += 1
            if self.count == len(self.weights):
                self.count = 0
        control = self.pop()
        if control != 0.0:
            self.freq = control
            self.weights = _weights_for(control)
            self.count = 0
            self.hops += 1


class ManualHopCheck(Filter):
    """Scans all four hop bins per block; emits a control token on rising
    crossings (0 otherwise).  Even an idle control path costs one token of
    channel traffic and one loop synchronization per block — the overhead
    teleport messaging eliminates."""

    def __init__(self, threshold: float = HOP_THRESHOLD, name: Optional[str] = None) -> None:
        super().__init__(pop=N, push=N + 1, name=name)
        self.threshold = threshold
        lo = N // 4 - 2
        self.monitored = (lo, lo + 1, lo + 2 + N // 2, lo + 3 + N // 2)
        self.cooldown = 64
        self._quiet = [0] * 4

    def work(self) -> None:
        control = 0.0
        for k in range(4):
            if self._quiet[k] > 0:
                self._quiet[k] -= 1
            elif self.peek(self.monitored[k]) >= self.threshold:
                control = HOP_FREQS[k]
                self._quiet[k] = self.cooldown
        for _ in range(N):
            self.push(self.pop())
        self.push(control)


def build_manual(input_length: int = 256) -> Pipeline:
    """The radio with an explicit control feedback loop (the baseline the
    paper's 49% improvement is measured against)."""
    source, sink = source_and_sink(signal(max(input_length, N)))
    body = Pipeline(
        ManualRFtoIF(START_FREQ, name="rf2if_manual"),
        RealToComplex(name="re2c"),
        fft_kernel(N, prefix="radio"),
        ComplexMagnitude(name="mag"),
        ManualHopCheck(name="hopcheck"),
        name="radio_body",
    )
    loop = FeedbackLoop(
        joiner_roundrobin(N, 1),
        body,
        roundrobin(N, 1),
        Identity(name="control_return"),
        delay=1,
        init_path=lambda i: 0.0,
        name="control_loop",
    )
    return Pipeline(source, loop, sink, name="FreqHopRadioManual")
