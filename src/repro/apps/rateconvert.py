"""RateConvert — audio sample-rate conversion (the paper's expander /
compressor example): up-sample by 2, low-pass interpolate, down-sample by 3.
The whole signal path is linear, so the optimizer collapses it to a single
multi-rate node."""

from __future__ import annotations

import numpy as np

from repro.apps.common import FIRFilter, lowpass_taps, signal, source_and_sink
from repro.graph.builtins import Decimator, Expander
from repro.graph.composites import Pipeline

DEFAULT_TAPS = 96
UP = 2
DOWN = 3


def build(n_taps: int = DEFAULT_TAPS, input_length: int = 300) -> Pipeline:
    """Source -> up(2) -> FIR -> down(3) -> sink."""
    source, sink = source_and_sink(signal(input_length))
    return Pipeline(
        source,
        Expander(UP, name="expand"),
        FIRFilter(lowpass_taps(n_taps, 1.0 / (2 * max(UP, DOWN))), name="interp"),
        Decimator(DOWN, name="compress"),
        sink,
        name="RateConvert",
    )


def reference(x: np.ndarray, n_taps: int = DEFAULT_TAPS) -> np.ndarray:
    """Numpy model: zero-stuff, convolve, decimate."""
    x = np.asarray(x, dtype=np.float64)
    up = np.zeros(len(x) * UP)
    up[::UP] = x
    taps = np.asarray(lowpass_taps(n_taps, 1.0 / (2 * max(UP, DOWN))))
    n_fir = len(up) - (len(taps) - 1)
    fir_out = np.array([up[j : j + len(taps)] @ taps for j in range(max(n_fir, 0))])
    n_dec = len(fir_out) // DOWN
    return fir_out[: n_dec * DOWN : DOWN]
