"""FMRadio — the paper's running example: a software FM receiver.

Pipeline: antenna source -> low-pass front end -> FM demodulator -> a
multi-band equalizer (duplicate split-join of band-pass filters whose
outputs are summed) -> speaker sink.  The demodulator is nonlinear (a
product of adjacent samples), the equalizer is a large linear region.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.apps.common import Adder, FIRFilter, bandpass_taps, lowpass_taps, signal, source_and_sink
from repro.graph.base import Filter
from repro.graph.composites import Pipeline, SplitJoin
from repro.graph.splitjoin import duplicate, joiner_roundrobin

N_BANDS = 6
DEFAULT_TAPS = 64


class FMDemodulator(Filter):
    """Nonlinear FM discriminator: ``y = gain · x[t] · x[t+1]``.

    (The classic StreamIt FMRadio uses this adjacent-product demodulator;
    it peeks one sample ahead and is stateless.)
    """

    def __init__(self, gain: float = 2.0, name: Optional[str] = None) -> None:
        super().__init__(peek=2, pop=1, push=1, name=name)
        self.gain = float(gain)

    def work(self) -> None:
        current = self.peek(0)
        ahead = self.peek(1)
        self.pop()
        self.push(self.gain * current * ahead)


def _equalizer_bands(n_taps: int) -> List[List[float]]:
    edges = np.linspace(0.02, 0.48, N_BANDS + 1)
    return [bandpass_taps(n_taps, float(edges[i]), float(edges[i + 1])) for i in range(N_BANDS)]


def equalizer(n_taps: int = DEFAULT_TAPS) -> Pipeline:
    """The linear equalizer: duplicate -> band gains -> sum."""
    gains = [1.0 + 0.2 * i for i in range(N_BANDS)]
    branches: List[Filter] = []
    for i, taps in enumerate(_equalizer_bands(n_taps)):
        branches.append(
            FIRFilter([g * gains[i] for g in taps], name=f"band{i}")
        )
    bank = SplitJoin(duplicate(), branches, joiner_roundrobin(), name="eq_bank")
    return Pipeline(bank, Adder(N_BANDS, name="eq_sum"), name="equalizer")


def build(n_taps: int = DEFAULT_TAPS, input_length: int = 256) -> Pipeline:
    source, sink = source_and_sink(signal(input_length))
    return Pipeline(
        source,
        FIRFilter(lowpass_taps(n_taps, 0.3), name="front_lp"),
        FMDemodulator(name="demod"),
        equalizer(n_taps),
        sink,
        name="FMRadio",
    )


def reference(x: np.ndarray, n_taps: int = DEFAULT_TAPS) -> np.ndarray:
    from repro.apps.common import fir_reference

    x = np.asarray(x, dtype=np.float64)
    front = fir_reference(x, lowpass_taps(n_taps, 0.3))
    demod = 2.0 * front[:-1] * front[1:]
    gains = [1.0 + 0.2 * i for i in range(N_BANDS)]
    bands = [
        fir_reference(demod, [g * gains[i] for g in taps])
        for i, taps in enumerate(_equalizer_bands(n_taps))
    ]
    n = min(len(b) for b in bands)
    return np.sum([b[:n] for b in bands], axis=0)
