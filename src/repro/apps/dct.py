"""DCT — a 16x16 IEEE-reference two-dimensional discrete cosine transform.

Blocks of 256 samples (16x16, row-major) flow through: a row DCT (one
matrix filter applied per 16-sample row), a transpose realized as a
round-robin split-join of identities, a second row DCT (the columns), and
an inverse transpose.  The row-DCT filter performs the overwhelming
majority of the work — the single-bottleneck shape the evaluation
highlights (coarse data parallelism fisses it; fine-grained fission
flounders on the synchronization).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.apps.common import MatrixFilter, signal, source_and_sink
from repro.graph.builtins import Identity
from repro.graph.composites import Pipeline, SplitJoin
from repro.graph.splitjoin import joiner_roundrobin, roundrobin

SIZE = 16


def dct_matrix(n: int = SIZE) -> np.ndarray:
    """The orthonormal DCT-II matrix."""
    m = np.zeros((n, n))
    for k in range(n):
        for i in range(n):
            m[k, i] = math.cos(math.pi * (i + 0.5) * k / n)
    m[0, :] *= math.sqrt(1.0 / n)
    m[1:, :] *= math.sqrt(2.0 / n)
    return m


def transpose_splitjoin(n: int, name: str) -> SplitJoin:
    """Transpose an n x n block: distribute one item per branch round-robin,
    collect n items per branch — a pure data-reordering split-join."""
    return SplitJoin(
        roundrobin(*([1] * n)),
        [Identity(name=f"{name}_id{i}") for i in range(n)],
        joiner_roundrobin(*([n] * n)),
        name=name,
    )


def build(n: int = SIZE, input_length: int = 256) -> Pipeline:
    source, sink = source_and_sink(signal(max(input_length, n * n)))
    m = dct_matrix(n)
    return Pipeline(
        source,
        MatrixFilter(m.tolist(), name="row_dct"),
        transpose_splitjoin(n, "transpose"),
        MatrixFilter(m.tolist(), name="col_dct"),
        transpose_splitjoin(n, "untranspose"),
        sink,
        name="DCT",
    )


def reference(x: np.ndarray, n: int = SIZE) -> np.ndarray:
    """2-D DCT per 16x16 block, row-major in, row-major out."""
    x = np.asarray(x, dtype=np.float64)
    m = dct_matrix(n)
    n_blocks = len(x) // (n * n)
    out = np.empty(n_blocks * n * n)
    for b in range(n_blocks):
        block = x[b * n * n : (b + 1) * n * n].reshape(n, n)
        out[b * n * n : (b + 1) * n * n] = (m @ block @ m.T).reshape(-1)
    return out
