"""TDE — time-delay equalization: convolve each block with a fixed channel
equalizer in the frequency domain: FFT, per-bin complex multiply by the
equalizer response, inverse FFT with 1/N scaling.  A long pipeline of
linear block filters with essentially no splitting — the shape on which
software pipelining shines in the evaluation."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.apps.common import signal, source_and_sink
from repro.apps.fft import ComplexScale, RealToComplex, fft_kernel
from repro.graph.base import Filter
from repro.graph.composites import Pipeline

DEFAULT_N = 32


def equalizer_response(n: int) -> np.ndarray:
    """A fixed, deterministic frequency response (unit-magnitude phase ramp
    with mild magnitude ripple)."""
    k = np.arange(n)
    mag = 1.0 + 0.25 * np.cos(2 * np.pi * k / n)
    phase = -2.0 * np.pi * k * 3 / n
    return mag * np.exp(1j * phase)


class BinMultiply(Filter):
    """Multiplies each complex bin by the equalizer coefficient (linear).

    One firing processes a whole n-bin block so each bin sees its own
    constant coefficient without cross-firing state.
    """

    def __init__(self, n: int, name: Optional[str] = None) -> None:
        super().__init__(pop=2 * n, push=2 * n, name=name)
        h = equalizer_response(n)
        self.hr = tuple(float(v) for v in h.real)
        self.hi = tuple(float(v) for v in h.imag)
        self.n = n

    def work(self) -> None:
        for k in range(self.n):
            re = self.peek(2 * k)
            im = self.peek(2 * k + 1)
            self.push(re * self.hr[k] - im * self.hi[k])
            self.push(re * self.hi[k] + im * self.hr[k])
        for _ in range(2 * self.n):
            self.pop()


class ComplexToReal(Filter):
    """Drops imaginary parts (the equalized signal is real up to rounding)."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(pop=2, push=1, name=name)

    def work(self) -> None:
        self.push(self.pop())
        self.pop()


def build(n: int = DEFAULT_N, input_length: int = 256) -> Pipeline:
    source, sink = source_and_sink(signal(max(input_length, n)))
    return Pipeline(
        source,
        RealToComplex(name="re2c"),
        fft_kernel(n, prefix="fwd"),
        BinMultiply(n, name="equalize"),
        fft_kernel(n, inverse=True, prefix="inv"),
        ComplexScale(1.0 / n, name="scale"),
        ComplexToReal(name="c2re"),
        sink,
        name="TDE",
    )


def reference(x: np.ndarray, n: int = DEFAULT_N) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    h = equalizer_response(n)
    n_blocks = len(x) // n
    out = np.empty(n_blocks * n)
    for b in range(n_blocks):
        spec = np.fft.fft(x[b * n : (b + 1) * n]) * h
        out[b * n : (b + 1) * n] = np.fft.ifft(spec).real
    return out
