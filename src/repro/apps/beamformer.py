"""Beamformer — the stateless coarse-grained beamformer used in the
evaluation's comparison with prior (space-multiplexing) work: twelve
channels of steering-delay FIRs feed four beam-forming weight filters with
a magnitude detector per beam.  Unlike Radar, the channel filters here are
written statelessly (peeking delay lines), so data parallelism applies.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.apps.common import FIRFilter, lowpass_taps, signal, source_and_sink
from repro.apps.radar import BeamWeights, MagnitudeDetector
from repro.graph.base import Filter
from repro.graph.composites import Pipeline, SplitJoin
from repro.graph.splitjoin import duplicate, joiner_roundrobin, roundrobin

N_CHANNELS = 12
N_BEAMS = 4
FIR_TAPS = 24


class Magnitude(Filter):
    """|x| — nonlinear, stateless (unlike Radar's averaging detector)."""

    def __init__(self, name=None) -> None:
        super().__init__(pop=1, push=1, name=name)

    def work(self) -> None:
        value = self.pop()
        if value < 0.0:
            value = -value
        self.push(value)

    supports_work_batch = True

    def work_batch(self, n: int) -> None:
        self.output.push_block(np.abs(self.input.pop_block(n)))


def _steer_taps(channel: int) -> List[float]:
    base = lowpass_taps(FIR_TAPS, 0.25)
    shift = channel % 4
    return base[shift:] + base[:shift]


def build(input_length: int = 240) -> Pipeline:
    source, sink = source_and_sink(signal(max(input_length, N_CHANNELS)))
    channels = SplitJoin(
        roundrobin(*([1] * N_CHANNELS)),
        [
            FIRFilter(_steer_taps(c), name=f"steer{c}")
            for c in range(N_CHANNELS)
        ],
        joiner_roundrobin(*([1] * N_CHANNELS)),
        name="steering",
    )
    beams = SplitJoin(
        duplicate(),
        [
            Pipeline(
                BeamWeights(
                    [
                        math.cos(2 * math.pi * b * c / N_CHANNELS) / N_CHANNELS
                        for c in range(N_CHANNELS)
                    ],
                    name=f"beam{b}_weights",
                ),
                Magnitude(name=f"beam{b}_mag"),
                name=f"beam{b}",
            )
            for b in range(N_BEAMS)
        ],
        joiner_roundrobin(),
        name="beams",
    )
    return Pipeline(source, channels, beams, sink, name="Beamformer")


def reference(x: np.ndarray) -> np.ndarray:
    from repro.apps.common import fir_reference

    x = np.asarray(x, dtype=np.float64)
    n_frames = len(x) // N_CHANNELS
    chans = [x[c::N_CHANNELS][:n_frames] for c in range(N_CHANNELS)]
    filtered = [fir_reference(chans[c], _steer_taps(c)) for c in range(N_CHANNELS)]
    n = min(len(f) for f in filtered)
    stacked = np.stack([f[:n] for f in filtered], axis=1)
    out = []
    for f in range(n):
        for b in range(N_BEAMS):
            w = np.array(
                [math.cos(2 * math.pi * b * c / N_CHANNELS) / N_CHANNELS for c in range(N_CHANNELS)]
            )
            out.append(abs(float(w @ stacked[f])))
    return np.asarray(out)
