"""Radar — the PCA radar front end (beamformer with stateful channel FIRs).

Twelve input channels are deinterleaved round-robin; each channel runs a
*stateful* decimating FIR (it keeps its delay line as filter state across
firings, as the original StreamIt Radar does), the channels are
re-interleaved and combined into four beams, and each beam's magnitude is
tracked by a stateful detector.  Nearly all of the steady-state work is in
the stateful channel filters — this is the benchmark on which coarse data
parallelism is "paralyzed by the preponderance of stateful computation"
and software pipelining shines.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.apps.common import lowpass_taps, signal, source_and_sink
from repro.graph.base import Filter
from repro.graph.composites import Pipeline, SplitJoin
from repro.graph.splitjoin import duplicate, joiner_roundrobin, roundrobin

N_CHANNELS = 12
N_BEAMS = 4
FIR_TAPS = 32
DECIMATION = 2


class BeamFirFilter(Filter):
    """A decimating FIR that carries its delay line as *state*.

    Instead of peeking (which would be stateless), the filter maintains
    ``self.history`` across firings and mutates it every invocation —
    faithful to the original Radar implementation and deliberately
    unfissable.
    """

    def __init__(self, taps: List[float], decimation: int, name: Optional[str] = None) -> None:
        super().__init__(pop=decimation, push=1, name=name)
        self.taps = tuple(float(t) for t in taps)
        self.decimation = decimation
        self.history = [0.0] * len(taps)
        self.pos = 0

    def init(self) -> None:
        self.history = [0.0] * len(self.taps)
        self.pos = 0

    def work(self) -> None:
        for _ in range(self.decimation):
            self.history[self.pos] = self.pop()
            self.pos = (self.pos + 1) % len(self.history)
        total = 0.0
        n = len(self.history)
        for i in range(n):
            total += self.taps[i] * self.history[(self.pos - 1 - i) % n]
        self.push(total)

    supports_work_batch = True

    def work_batch(self, n: int) -> None:
        # Concatenate the delay line (unrolled oldest-first) with the new
        # block; firing k's tap-i operand is then a strided slice, so the
        # accumulation runs tap-major with the scalar loop's i-order (bit-
        # identical sums), and the ring state is rebuilt from the tail.
        taps, dec = self.taps, self.decimation
        t = len(taps)
        pos = self.pos
        block = self.input.pop_block(n * dec)
        full = np.empty(t + n * dec)
        for m in range(t):
            full[m] = self.history[(pos + m) % t]
        full[t:] = block
        total = np.zeros(n)
        for i in range(t):
            start = t + dec - 1 - i
            total += taps[i] * full[start : start + n * dec : dec]
        self.output.push_block(total)
        new_pos = (pos + n * dec) % t
        history = self.history
        for i in range(t):
            history[(new_pos - 1 - i) % t] = float(full[t + n * dec - 1 - i])
        self.pos = new_pos


class BeamWeights(Filter):
    """Linear beamforming: a weighted sum over the channel vector."""

    def __init__(self, weights: List[float], name: Optional[str] = None) -> None:
        super().__init__(pop=len(weights), push=1, name=name)
        self.weights = tuple(float(w) for w in weights)

    def work(self) -> None:
        total = 0.0
        for i in range(len(self.weights)):
            total += self.peek(i) * self.weights[i]
        for _ in range(len(self.weights)):
            self.pop()
        self.push(total)


class MagnitudeDetector(Filter):
    """Stateful detector: exponential-average magnitude tracking."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(pop=1, push=1, name=name)
        self.average = 0.0

    def init(self) -> None:
        self.average = 0.0

    def work(self) -> None:
        value = self.pop()
        if value < 0.0:
            value = -value
        self.average = 0.9 * self.average + 0.1 * value
        self.push(self.average)

    supports_work_batch = True

    def work_batch(self, n: int) -> None:
        # The EMA is a serial recurrence, so the loop stays scalar — but
        # hoisting channel I/O out of it still removes per-firing dispatch.
        values = self.input.pop_block(n).tolist()
        average = self.average
        out = [0.0] * n
        for i, value in enumerate(values):
            if value < 0.0:
                value = -value
            average = 0.9 * average + 0.1 * value
            out[i] = average
        self.average = average
        self.output.push_block(np.asarray(out))


def _beam_weights(beam: int) -> List[float]:
    return [
        math.cos(2 * math.pi * beam * c / N_CHANNELS) / N_CHANNELS
        for c in range(N_CHANNELS)
    ]


def build(input_length: int = 240) -> Pipeline:
    source, sink = source_and_sink(signal(max(input_length, N_CHANNELS * DECIMATION)))
    channel_taps = lowpass_taps(FIR_TAPS, 0.22)
    channels = SplitJoin(
        roundrobin(*([DECIMATION] * N_CHANNELS)),
        [
            BeamFirFilter(channel_taps, DECIMATION, name=f"chan_fir{c}")
            for c in range(N_CHANNELS)
        ],
        joiner_roundrobin(*([1] * N_CHANNELS)),
        name="channels",
    )
    beams = SplitJoin(
        duplicate(),
        [
            Pipeline(
                BeamWeights(_beam_weights(b), name=f"beam{b}_weights"),
                MagnitudeDetector(name=f"beam{b}_detect"),
                name=f"beam{b}",
            )
            for b in range(N_BEAMS)
        ],
        joiner_roundrobin(),
        name="beams",
    )
    return Pipeline(source, channels, beams, sink, name="Radar")


def reference(x: np.ndarray) -> np.ndarray:
    """Numpy model of the channelized beamformer."""
    x = np.asarray(x, dtype=np.float64)
    taps = np.asarray(lowpass_taps(FIR_TAPS, 0.22))
    n_frames = len(x) // (N_CHANNELS * DECIMATION)
    chan_out = np.zeros((n_frames, N_CHANNELS))
    histories = np.zeros((N_CHANNELS, FIR_TAPS))
    pos = np.zeros(N_CHANNELS, dtype=int)
    for f in range(n_frames):
        frame = x[f * N_CHANNELS * DECIMATION : (f + 1) * N_CHANNELS * DECIMATION]
        for c in range(N_CHANNELS):
            for d in range(DECIMATION):
                histories[c, pos[c]] = frame[c * DECIMATION + d]
                pos[c] = (pos[c] + 1) % FIR_TAPS
            idx = (pos[c] - 1 - np.arange(FIR_TAPS)) % FIR_TAPS
            chan_out[f, c] = taps @ histories[c, idx]
    out = []
    averages = np.zeros(N_BEAMS)
    for f in range(n_frames):
        for b in range(N_BEAMS):
            value = abs(float(np.asarray(_beam_weights(b)) @ chan_out[f]))
            averages[b] = 0.9 * averages[b] + 0.1 * value
            out.append(averages[b])
    return np.asarray(out)
