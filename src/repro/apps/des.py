"""DES — the Data Encryption Standard block cipher over bit streams.

Blocks of 64 bits (items are 0.0/1.0) pass through an initial permutation,
16 Feistel rounds, and a final permutation.  Each round duplicates the
block to three extractor branches (the new left half, the F-function path
with expansion / round-key XOR / S-boxes / P-permutation, and the old left
half) and recombines with a bitwise XOR — reproducing the "somewhat
complicated graph repeated between filters" structure the evaluation
describes.  Round keys are derived from a fixed seed key; permutations are
deterministic pseudo-DES tables (the exact tables do not affect compiler
behaviour, only the bit shuffling structure, which is preserved).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.apps.common import signal, source_and_sink
from repro.graph.base import Filter
from repro.graph.composites import Pipeline, SplitJoin
from repro.graph.splitjoin import duplicate, joiner_roundrobin, roundrobin

N_ROUNDS = 16
BLOCK = 64
HALF = 32


def _permutation(n: int, seed: int) -> List[int]:
    rng = np.random.default_rng(seed)
    return [int(v) for v in rng.permutation(n)]


def _round_key(round_index: int) -> List[int]:
    rng = np.random.default_rng(1000 + round_index)
    return [int(v) for v in rng.integers(0, 2, size=48)]


#: Eight S-boxes, each mapping 6 input bits to 4 output bits.
def _sbox_table(box: int) -> List[int]:
    rng = np.random.default_rng(2000 + box)
    return [int(v) for v in rng.integers(0, 16, size=64)]


_EXPANSION = _permutation(HALF, seed=77)[:48] + [
    int(v) for v in np.random.default_rng(78).integers(0, HALF, size=16)
]
_EXPANSION = _EXPANSION[:48]
_PPERM = _permutation(HALF, seed=79)
_IP = _permutation(BLOCK, seed=80)
_FP = _permutation(BLOCK, seed=81)


class PermuteBits(Filter):
    """Pushes ``peek(perm[i])`` for each output position (linear)."""

    def __init__(self, perm: Sequence[int], pop: Optional[int] = None, name: Optional[str] = None) -> None:
        perm = [int(p) for p in perm]
        pop = pop if pop is not None else len(perm)
        super().__init__(peek=max(pop, max(perm) + 1), pop=pop, push=len(perm), name=name)
        self.perm = tuple(perm)

    def work(self) -> None:
        for i in range(len(self.perm)):
            self.push(self.peek(self.perm[i]))
        for _ in range(self.rate.pop):
            self.pop()

    supports_work_batch = True

    def work_batch(self, n: int) -> None:
        # Pure data movement: gather the permuted columns in one fancy index.
        peek, pop = self.rate.peek, self.rate.pop
        perm = list(self.perm)
        if peek == pop:
            windows = self.input.pop_block(n * pop).reshape(n, pop)
            self.output.push_block(windows[:, perm])
        else:
            from numpy.lib.stride_tricks import sliding_window_view

            base = self.input.peek_block((n - 1) * pop + peek)
            windows = sliding_window_view(base, peek)[::pop]
            out = windows[:, perm]
            self.input.drop(n * pop)
            self.output.push_block(out)


class SelectHalf(Filter):
    """Extracts the left (0) or right (1) half of a 64-bit block (linear)."""

    def __init__(self, half: int, name: Optional[str] = None) -> None:
        super().__init__(pop=BLOCK, push=HALF, name=name)
        self.offset = half * HALF

    def work(self) -> None:
        for i in range(HALF):
            self.push(self.peek(self.offset + i))
        for _ in range(BLOCK):
            self.pop()

    supports_work_batch = True

    def work_batch(self, n: int) -> None:
        blocks = self.input.pop_block(n * BLOCK).reshape(n, BLOCK)
        self.output.push_block(blocks[:, self.offset : self.offset + HALF])


class KeyXor(Filter):
    """XOR with a constant round key: affine over bits (k=0 -> x, k=1 -> 1-x)."""

    def __init__(self, key: Sequence[int], name: Optional[str] = None) -> None:
        key = [int(k) for k in key]
        super().__init__(pop=len(key), push=len(key), name=name)
        self.key = tuple(key)

    def work(self) -> None:
        for i in range(len(self.key)):
            bit = self.peek(i)
            if self.key[i] == 1:
                self.push(1.0 - bit)
            else:
                self.push(bit)
        for _ in range(len(self.key)):
            self.pop()

    supports_work_batch = True

    def work_batch(self, n: int) -> None:
        # k=1 columns compute 1.0 - bit (the scalar's exact expression);
        # k=0 columns pass through untouched.
        length = len(self.key)
        blocks = self.input.pop_block(n * length).reshape(n, length)
        flip = np.asarray(self.key) == 1
        self.output.push_block(np.where(flip, 1.0 - blocks, blocks))


class SBox(Filter):
    """One DES S-box: 6 bits in, 4 bits out via table lookup (nonlinear)."""

    def __init__(self, box: int, name: Optional[str] = None) -> None:
        super().__init__(pop=6, push=4, name=name)
        self.table = tuple(_sbox_table(box))

    def work(self) -> None:
        index = 0
        for i in range(6):
            index = index * 2 + int(self.pop())
        value = self.table[index]
        for shift in (8, 4, 2, 1):
            if value >= shift:
                self.push(1.0)
                value -= shift
            else:
                self.push(0.0)

    supports_work_batch = True

    def work_batch(self, n: int) -> None:
        # Bits are exact 0.0/1.0 floats, so the weighted sum reproduces the
        # scalar accumulation exactly; output bits are table bit extraction.
        bits = self.input.pop_block(n * 6).reshape(n, 6)
        index = (bits @ np.array([32.0, 16.0, 8.0, 4.0, 2.0, 1.0])).astype(np.intp)
        values = np.asarray(self.table, dtype=np.int64)[index]
        out = np.empty((n, 4))
        for j, bit in enumerate((3, 2, 1, 0)):
            out[:, j] = (values >> bit) & 1
        self.output.push_block(out)


class XorHalves(Filter):
    """Combines (newL | F | oldL) -> (newL | oldL XOR F): the Feistel merge."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(pop=HALF * 3, push=BLOCK, name=name)

    def work(self) -> None:
        for i in range(HALF):
            self.push(self.peek(i))
        for i in range(HALF):
            f_bit = self.peek(HALF + i)
            l_bit = self.peek(2 * HALF + i)
            self.push(l_bit + f_bit - 2.0 * l_bit * f_bit)
        for _ in range(HALF * 3):
            self.pop()

    supports_work_batch = True

    def work_batch(self, n: int) -> None:
        blocks = self.input.pop_block(n * HALF * 3).reshape(n, HALF * 3)
        f = blocks[:, HALF : 2 * HALF]
        l = blocks[:, 2 * HALF :]
        out = np.empty((n, BLOCK))
        out[:, :HALF] = blocks[:, :HALF]
        out[:, HALF:] = l + f - 2.0 * l * f
        self.output.push_block(out)


def f_function(round_index: int) -> Pipeline:
    """Expansion -> round-key XOR -> 8 S-boxes -> P permutation."""
    sboxes = SplitJoin(
        roundrobin(*([6] * 8)),
        [SBox(b, name=f"r{round_index}_sbox{b}") for b in range(8)],
        joiner_roundrobin(*([4] * 8)),
        name=f"r{round_index}_sboxes",
    )
    return Pipeline(
        SelectHalf(1, name=f"r{round_index}_selR"),
        PermuteBits(_EXPANSION, pop=HALF, name=f"r{round_index}_expand"),
        KeyXor(_round_key(round_index), name=f"r{round_index}_keyxor"),
        sboxes,
        PermuteBits(_PPERM, name=f"r{round_index}_pperm"),
        name=f"r{round_index}_f",
    )


def feistel_round(round_index: int) -> Pipeline:
    branches = SplitJoin(
        duplicate(),
        [
            SelectHalf(1, name=f"r{round_index}_newL"),
            f_function(round_index),
            SelectHalf(0, name=f"r{round_index}_oldL"),
        ],
        joiner_roundrobin(HALF, HALF, HALF),
        name=f"r{round_index}_split",
    )
    return Pipeline(branches, XorHalves(name=f"r{round_index}_merge"), name=f"round{round_index}")


class Binarize(Filter):
    """Quantizes the analog test signal to a bit stream (nonlinear)."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(pop=1, push=1, name=name)

    def work(self) -> None:
        value = self.pop()
        if value > 0.0:
            self.push(1.0)
        else:
            self.push(0.0)

    supports_work_batch = True

    def work_batch(self, n: int) -> None:
        values = self.input.pop_block(n)
        self.output.push_block(np.where(values > 0.0, 1.0, 0.0))


def build(n_rounds: int = N_ROUNDS, input_length: int = 256) -> Pipeline:
    source, sink = source_and_sink(signal(max(input_length, BLOCK)))
    rounds = [feistel_round(r) for r in range(n_rounds)]
    return Pipeline(
        source,
        Binarize(name="binarize"),
        PermuteBits(_IP, name="initial_perm"),
        *rounds,
        PermuteBits(_FP, name="final_perm"),
        sink,
        name="DES",
    )


def reference(x: np.ndarray, n_rounds: int = N_ROUNDS) -> np.ndarray:
    """Numpy model of the (pseudo-keyed) cipher over 64-bit blocks."""
    bits = (np.asarray(x) > 0).astype(np.float64)
    n_blocks = len(bits) // BLOCK
    out = np.empty(n_blocks * BLOCK)
    for blk in range(n_blocks):
        block = bits[blk * BLOCK : (blk + 1) * BLOCK][np.asarray(_IP)]
        for r in range(n_rounds):
            left, right = block[:HALF], block[HALF:]
            expanded = right[np.asarray(_EXPANSION)]
            keyed = np.abs(expanded - np.asarray(_round_key(r)))
            f_out = np.empty(HALF)
            for b in range(8):
                six = keyed[b * 6 : (b + 1) * 6]
                index = int(six @ np.array([32, 16, 8, 4, 2, 1]))
                val = _sbox_table(b)[index]
                f_out[b * 4 : (b + 1) * 4] = [(val >> s) & 1 for s in (3, 2, 1, 0)]
            f_out = f_out[np.asarray(_PPERM)]
            block = np.concatenate([right, np.abs(left - f_out)])
        out[blk * BLOCK : (blk + 1) * BLOCK] = block[np.asarray(_FP)]
    return out
