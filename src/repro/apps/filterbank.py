"""FilterBank — a multirate analysis/synthesis filter bank.

Eight branches, each band-pass filtering, decimating by the branch count,
re-expanding, and synthesis filtering; branch outputs are summed.  Wide,
load-balanced, fully linear split-join — the shape that rewards both task
and data parallelism in the evaluation.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.apps.common import Adder, FIRFilter, bandpass_taps, signal, source_and_sink
from repro.graph.builtins import Expander
from repro.graph.composites import Pipeline, SplitJoin
from repro.graph.splitjoin import duplicate, joiner_roundrobin

N_BRANCHES = 8
DEFAULT_TAPS = 32


def _bands(n_taps: int) -> List[List[float]]:
    edges = np.linspace(0.01, 0.49, N_BRANCHES + 1)
    return [
        bandpass_taps(n_taps, float(edges[i]), float(edges[i + 1]))
        for i in range(N_BRANCHES)
    ]


def build(n_taps: int = DEFAULT_TAPS, input_length: int = 256) -> Pipeline:
    source, sink = source_and_sink(signal(input_length))
    branches = []
    for i, taps in enumerate(_bands(n_taps)):
        branches.append(
            Pipeline(
                FIRFilter(taps, decimation=N_BRANCHES, name=f"analyze{i}"),
                Expander(N_BRANCHES, name=f"expand{i}"),
                FIRFilter(taps, name=f"synth{i}"),
                name=f"branch{i}",
            )
        )
    bank = SplitJoin(duplicate(), branches, joiner_roundrobin(), name="bank")
    return Pipeline(source, bank, Adder(N_BRANCHES, name="combine"), sink, name="FilterBank")


def reference(x: np.ndarray, n_taps: int = DEFAULT_TAPS) -> np.ndarray:
    from repro.apps.common import fir_reference

    x = np.asarray(x, dtype=np.float64)
    outs = []
    for taps in _bands(n_taps):
        analyzed = fir_reference(x, taps, decimation=N_BRANCHES)
        up = np.zeros(len(analyzed) * N_BRANCHES)
        up[::N_BRANCHES] = analyzed
        outs.append(fir_reference(up, taps))
    n = min(len(o) for o in outs)
    return np.sum([o[:n] for o in outs], axis=0)
