"""Oversampler — a 16x audio oversampler: four cascaded stages, each
up-sampling by two and interpolating with a half-band FIR.  Entirely linear;
frequency translation wins big here because every stage is convolutional."""

from __future__ import annotations

import numpy as np

from repro.apps.common import FIRFilter, lowpass_taps, signal, source_and_sink
from repro.graph.builtins import Expander
from repro.graph.composites import Pipeline

N_STAGES = 4
DEFAULT_TAPS = 64


def build(n_taps: int = DEFAULT_TAPS, input_length: int = 128) -> Pipeline:
    source, sink = source_and_sink(signal(input_length))
    stages = []
    for s in range(N_STAGES):
        stages.append(Expander(2, name=f"up{s}"))
        stages.append(FIRFilter(lowpass_taps(n_taps, 0.25), name=f"halfband{s}"))
    return Pipeline(source, *stages, sink, name="Oversampler")


def reference(x: np.ndarray, n_taps: int = DEFAULT_TAPS) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    taps = np.asarray(lowpass_taps(n_taps, 0.25))
    for _ in range(N_STAGES):
        up = np.zeros(len(x) * 2)
        up[::2] = x
        n = len(up) - (len(taps) - 1)
        x = np.array([up[j : j + len(taps)] @ taps for j in range(max(n, 0))])
    return x
