"""MPEG2Decoder — the block-decoding and motion-vector-decoding third of an
MPEG-2 decoder.  A round-robin split separates each macroblock record (64
DCT coefficients + 8 motion-vector deltas); the block path runs zig-zag
reordering (linear permutation), an *adaptively scaled* inverse quantizer
(the decoder's tiny stateful component), and an 8x8 IEEE inverse DCT
(rows, transpose, columns — the heavy linear work); the motion path runs a
stateful delta-decoding predictor.  Saturation clamps the joined output.
The stateful work is insignificant next to the IDCT, matching the paper's
characterization.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.apps.common import MatrixFilter, signal, source_and_sink
from repro.apps.dct import transpose_splitjoin
from repro.apps.des import PermuteBits
from repro.graph.base import Filter
from repro.graph.composites import Pipeline, SplitJoin
from repro.graph.splitjoin import joiner_roundrobin, roundrobin

BLOCK = 64
MV = 8
SIZE = 8


def zigzag_order() -> List[int]:
    """The standard 8x8 zig-zag scan order."""
    order = sorted(
        ((r, c) for r in range(SIZE) for c in range(SIZE)),
        key=lambda rc: (rc[0] + rc[1], rc[1] if (rc[0] + rc[1]) % 2 else rc[0]),
    )
    positions = [r * SIZE + c for r, c in order]
    inverse = [0] * BLOCK
    for scan_index, pos in enumerate(positions):
        inverse[pos] = scan_index
    return inverse


def idct_matrix() -> np.ndarray:
    m = np.zeros((SIZE, SIZE))
    for k in range(SIZE):
        for i in range(SIZE):
            m[k, i] = math.cos(math.pi * (i + 0.5) * k / SIZE)
    m[0, :] *= math.sqrt(1.0 / SIZE)
    m[1:, :] *= math.sqrt(2.0 / SIZE)
    return m.T  # inverse of the orthonormal DCT is its transpose


class InverseQuantizer(Filter):
    """Dequantizes a block, adapting its scale from the DC coefficient.

    The scale update across blocks is the decoder's (insignificant)
    stateful computation.
    """

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(pop=BLOCK, push=BLOCK, name=name)
        self.scale = 1.0

    def init(self) -> None:
        self.scale = 1.0

    def work(self) -> None:
        dc = self.peek(0)
        for i in range(BLOCK):
            self.push(self.peek(i) * self.scale)
        for _ in range(BLOCK):
            self.pop()
        # Adapt the quantizer scale for the next block (bounded).
        self.scale = 0.95 * self.scale + 0.05 * (1.0 + 0.1 * (dc if dc < 4.0 else 4.0))

    supports_work_batch = True

    def work_batch(self, n: int) -> None:
        # The scale recurrence is sequential across blocks, but it is one
        # Python-float update per *block*; the 64 multiplies per block are
        # where the time goes, and those vectorize row-wise.
        blocks = self.input.peek_block(n * BLOCK).reshape(n, BLOCK)
        scales = np.empty(n)
        scale = self.scale
        for k in range(n):
            scales[k] = scale
            dc = float(blocks[k, 0])
            scale = 0.95 * scale + 0.05 * (1.0 + 0.1 * (dc if dc < 4.0 else 4.0))
        out = blocks * scales[:, None]
        self.scale = scale
        self.input.drop(n * BLOCK)
        self.output.push_block(out)


class MotionVectorDecode(Filter):
    """Stateful delta decoder: motion vectors are coded as differences."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(pop=MV, push=MV, name=name)
        self.predictors = [0.0] * MV

    def init(self) -> None:
        self.predictors = [0.0] * MV

    def work(self) -> None:
        for i in range(MV):
            delta = self.pop()
            self.predictors[i] = self.predictors[i] * 0.5 + delta
            self.push(self.predictors[i])

    supports_work_batch = True

    def work_batch(self, n: int) -> None:
        # Per-lane serial recurrence — the loop stays scalar, but hoisting
        # channel I/O out of it removes per-firing dispatch.
        values = self.input.pop_block(n * MV).tolist()
        predictors = self.predictors
        out = [0.0] * (n * MV)
        k = 0
        for _ in range(n):
            for i in range(MV):
                p = predictors[i] * 0.5 + values[k]
                predictors[i] = p
                out[k] = p
                k += 1
        self.output.push_block(np.asarray(out))


class Saturate(Filter):
    """Clamps samples into the displayable range (nonlinear)."""

    def __init__(self, lo: float = -4.0, hi: float = 4.0, name: Optional[str] = None) -> None:
        super().__init__(pop=1, push=1, name=name)
        self.lo = lo
        self.hi = hi

    def work(self) -> None:
        value = self.pop()
        if value < self.lo:
            value = self.lo
        if value > self.hi:
            value = self.hi
        self.push(value)

    supports_work_batch = True

    def work_batch(self, n: int) -> None:
        values = self.input.pop_block(n)
        self.output.push_block(np.minimum(np.maximum(values, self.lo), self.hi))


def block_decode() -> Pipeline:
    m = idct_matrix()
    return Pipeline(
        PermuteBits(zigzag_order(), name="zigzag"),
        InverseQuantizer(name="iquant"),
        MatrixFilter(m.tolist(), name="idct_rows"),
        transpose_splitjoin(SIZE, "idct_t1"),
        MatrixFilter(m.tolist(), name="idct_cols"),
        transpose_splitjoin(SIZE, "idct_t2"),
        name="block_decode",
    )


def build(input_length: int = 288) -> Pipeline:
    source, sink = source_and_sink(signal(max(input_length, BLOCK + MV)))
    decode = SplitJoin(
        roundrobin(BLOCK, MV),
        [block_decode(), MotionVectorDecode(name="mv_decode")],
        joiner_roundrobin(BLOCK, MV),
        name="decode_paths",
    )
    return Pipeline(source, decode, Saturate(name="saturate"), sink, name="MPEG2Decoder")


def reference(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    record = BLOCK + MV
    n_records = len(x) // record
    zz = np.asarray(zigzag_order())
    m = idct_matrix()
    out = np.empty(n_records * record)
    scale = 1.0
    predictors = np.zeros(MV)
    for r in range(n_records):
        rec = x[r * record : (r + 1) * record]
        block = rec[:BLOCK][zz]
        dc = block[0]
        deq = block * scale
        scale = 0.95 * scale + 0.05 * (1.0 + 0.1 * min(dc, 4.0))
        pixels = (m @ deq.reshape(SIZE, SIZE) @ m.T).reshape(-1)
        mv = np.empty(MV)
        for i in range(MV):
            predictors[i] = predictors[i] * 0.5 + rec[BLOCK + i]
            mv[i] = predictors[i]
        joined = np.concatenate([pixels, mv])
        out[r * record : (r + 1) * record] = np.clip(joined, -4.0, 4.0)
    return out
