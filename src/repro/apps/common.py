"""Shared utilities for the benchmark applications.

Every application exposes ``build(...) -> Pipeline`` returning a *closed*
stream (with its own source and sink) plus, where a simple closed form
exists, a numpy ``reference`` model used by the correctness tests.  Inputs
are deterministic, seeded synthetic signals — throughput of these
static-rate programs is input-independent, and references validate the
numerics (see DESIGN.md's substitution table).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.graph.base import Filter
from repro.graph.builtins import ArraySource, CollectSink


def signal(n: int, seed: int = 12345) -> List[float]:
    """A deterministic test signal: two tones plus seeded noise."""
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    wave = (
        np.sin(2 * np.pi * t / 16.0)
        + 0.5 * np.sin(2 * np.pi * t / 5.0 + 0.7)
        + 0.25 * rng.standard_normal(n)
    )
    return [float(v) for v in wave]


def lowpass_taps(n_taps: int, cutoff: float, gain: float = 1.0) -> List[float]:
    """Windowed-sinc low-pass FIR taps (Hamming window).

    ``cutoff`` is the normalized cutoff in (0, 0.5] (fraction of the sample
    rate).
    """
    if not 0 < cutoff <= 0.5:
        raise ValueError(f"cutoff must be in (0, 0.5], got {cutoff}")
    taps = []
    mid = (n_taps - 1) / 2.0
    for i in range(n_taps):
        x = i - mid
        core = 2 * cutoff if x == 0 else math.sin(2 * math.pi * cutoff * x) / (math.pi * x)
        window = 0.54 - 0.46 * math.cos(2 * math.pi * i / max(n_taps - 1, 1))
        taps.append(gain * core * window)
    return taps


def bandpass_taps(n_taps: int, low: float, high: float, gain: float = 1.0) -> List[float]:
    """Band-pass FIR taps as the difference of two low-pass prototypes."""
    hi = lowpass_taps(n_taps, high, gain)
    lo = lowpass_taps(n_taps, low, gain)
    return [h - l for h, l in zip(hi, lo)]


class FIRFilter(Filter):
    """A single-output sliding-window FIR filter (linear, peeking).

    ``y = Σ_i coeffs[i] · peek(i)`` — ``coeffs[0]`` weights the oldest item
    in the window.
    """

    supports_work_batch = True

    def __init__(self, coeffs: Sequence[float], decimation: int = 1, name: Optional[str] = None) -> None:
        coeffs = [float(c) for c in coeffs]
        super().__init__(
            peek=max(len(coeffs), decimation), pop=decimation, push=1, name=name
        )
        self.coeffs = tuple(coeffs)

    def work(self) -> None:
        total = 0.0
        for i in range(len(self.coeffs)):
            total += self.peek(i) * self.coeffs[i]
        for _ in range(self.rate.pop):
            self.pop()
        self.push(total)

    def work_batch(self, n: int) -> None:
        # Vectorized across firings, tap-sequential within each firing —
        # firing j accumulates window[j*pop + i] * coeffs[i] in the same
        # order as work(), so outputs are bit-identical to the scalar path.
        pop = self.rate.pop
        window = self.input.peek_block((n - 1) * pop + self.rate.peek)
        total = np.zeros(n)
        stop = (n - 1) * pop + 1
        for i, c in enumerate(self.coeffs):
            total += window[i : i + stop : pop] * c
        self.input.drop(n * pop)
        self.output.push_block(total)


class Adder(Filter):
    """Sums groups of ``n`` consecutive items into one (linear)."""

    supports_work_batch = True

    def __init__(self, n: int, name: Optional[str] = None) -> None:
        super().__init__(pop=n, push=1, name=name)
        self.n = n

    def work(self) -> None:
        total = 0.0
        for _ in range(self.n):
            total += self.pop()
        self.push(total)

    def work_batch(self, n: int) -> None:
        groups = self.input.pop_block(n * self.n).reshape(n, self.n)
        total = np.zeros(n)
        for c in range(self.n):  # left-to-right sum, as work() accumulates
            total += groups[:, c]
        self.output.push_block(total)


class Scale(Filter):
    """Multiplies every item by a constant (linear)."""

    supports_work_batch = True

    def __init__(self, factor: float, name: Optional[str] = None) -> None:
        super().__init__(pop=1, push=1, name=name)
        self.factor = float(factor)

    def work(self) -> None:
        self.push(self.pop() * self.factor)

    def work_batch(self, n: int) -> None:
        self.output.push_block(self.input.pop_block(n) * self.factor)


class MatrixFilter(Filter):
    """Applies a fixed matrix to blocks of the stream (linear).

    Per firing: pops ``A.shape[1]`` items, pushes ``A.shape[0]`` items
    ``y = A @ x``.  The work function is written in the analyzable subset so
    linear extraction recovers ``A`` exactly.
    """

    def __init__(self, matrix: Sequence[Sequence[float]], name: Optional[str] = None) -> None:
        rows = [tuple(float(v) for v in row) for row in matrix]
        n_out = len(rows)
        n_in = len(rows[0])
        super().__init__(pop=n_in, push=n_out, name=name)
        self.matrix = tuple(rows)
        self.n_in = n_in
        self.n_out = n_out

    supports_work_batch = True

    def work(self) -> None:
        for r in range(self.n_out):
            total = 0.0
            for c in range(self.n_in):
                total += self.peek(c) * self.matrix[r][c]
            self.push(total)
        for _ in range(self.n_in):
            self.pop()

    def work_batch(self, n: int) -> None:
        # The order-preserving form costs n_out * n_in vector ops per batch;
        # for small batches the scalar loop is cheaper.
        if n < 16:
            for _ in range(n):
                self.work()
            return
        blocks = self.input.pop_block(n * self.n_in).reshape(n, self.n_in)
        out = np.empty((n, self.n_out))
        for r in range(self.n_out):
            total = np.zeros(n)
            for c in range(self.n_in):
                total += blocks[:, c] * self.matrix[r][c]
            out[:, r] = total
        self.output.push_block(out)


def source_and_sink(data: Sequence[float]):
    """A fresh (ArraySource, CollectSink) pair for app builders."""
    return ArraySource(list(data), name="source"), CollectSink(name="sink")


def fir_reference(x: np.ndarray, coeffs: Sequence[float], decimation: int = 1) -> np.ndarray:
    """Reference output of :class:`FIRFilter` over an input array."""
    h = np.asarray(coeffs, dtype=np.float64)
    peek = max(len(h), decimation)
    n_firings = (len(x) - (peek - decimation)) // decimation
    out = np.empty(max(n_firings, 0))
    for j in range(len(out)):
        window = x[j * decimation : j * decimation + len(h)]
        out[j] = float(window @ h)
    return out
