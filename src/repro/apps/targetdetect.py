"""TargetDetect — matched-filter target detection.

The input is broadcast (duplicate splitter) to four matched FIR filters
tuned to different target signatures; a round-robin join interleaves the
correlator outputs and a threshold detector marks hits.  The split-join of
FIRs is linear and collapses to one 4-output node."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.apps.common import FIRFilter, bandpass_taps, signal, source_and_sink
from repro.graph.base import Filter
from repro.graph.composites import Pipeline, SplitJoin
from repro.graph.splitjoin import duplicate, joiner_roundrobin

N_TARGETS = 4
DEFAULT_TAPS = 64


class ThresholdDetect(Filter):
    """Nonlinear detector: passes the correlation if above threshold."""

    def __init__(self, threshold: float, name: Optional[str] = None) -> None:
        super().__init__(pop=1, push=1, name=name)
        self.threshold = float(threshold)

    def work(self) -> None:
        value = self.pop()
        if value > self.threshold:
            self.push(value)
        else:
            self.push(0.0)

    supports_work_batch = True

    def work_batch(self, n: int) -> None:
        values = self.input.pop_block(n)
        self.output.push_block(np.where(values > self.threshold, values, 0.0))


def _target_bands(n_taps: int) -> List[List[float]]:
    bands = [(0.02, 0.10), (0.10, 0.20), (0.20, 0.32), (0.32, 0.45)]
    return [bandpass_taps(n_taps, lo, hi) for lo, hi in bands]


def build(n_taps: int = DEFAULT_TAPS, input_length: int = 256, threshold: float = 0.4) -> Pipeline:
    source, sink = source_and_sink(signal(input_length))
    matched = SplitJoin(
        duplicate(),
        [FIRFilter(taps, name=f"match{i}") for i, taps in enumerate(_target_bands(n_taps))],
        joiner_roundrobin(),
        name="matchbank",
    )
    return Pipeline(
        source,
        matched,
        ThresholdDetect(threshold, name="detect"),
        sink,
        name="TargetDetect",
    )


def reference(x: np.ndarray, n_taps: int = DEFAULT_TAPS, threshold: float = 0.4) -> np.ndarray:
    from repro.apps.common import fir_reference

    outs = [fir_reference(np.asarray(x), taps) for taps in _target_bands(n_taps)]
    n = min(len(o) for o in outs)
    interleaved = np.empty(n * N_TARGETS)
    for i, o in enumerate(outs):
        interleaved[i::N_TARGETS] = o[:n]
    return np.where(interleaved > threshold, interleaved, 0.0)
