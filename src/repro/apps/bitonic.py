"""BitonicSort — a bitonic sorting network over blocks of N keys.

Every compare-exchange is its own two-item filter, wired up by
data-reordering split-joins — deliberately fine-grained, exactly the
granularity mismatch the evaluation describes (task parallelism is far too
fine for the communication substrate until the graph is coarsened).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.apps.common import signal, source_and_sink
from repro.graph.base import Filter
from repro.graph.builtins import Identity
from repro.graph.composites import Pipeline, SplitJoin
from repro.graph.splitjoin import joiner_roundrobin, roundrobin

DEFAULT_N = 8


class CompareExchange(Filter):
    """Sorts a pair: pushes (min, max) if ascending else (max, min)."""

    def __init__(self, ascending: bool, name: Optional[str] = None) -> None:
        super().__init__(pop=2, push=2, name=name)
        self.ascending = ascending

    def work(self) -> None:
        a = self.pop()
        b = self.pop()
        if self.ascending:
            if a <= b:
                self.push(a)
                self.push(b)
            else:
                self.push(b)
                self.push(a)
        else:
            if a >= b:
                self.push(a)
                self.push(b)
            else:
                self.push(b)
                self.push(a)

    supports_work_batch = True

    def work_batch(self, n: int) -> None:
        pairs = self.input.pop_block(2 * n).reshape(n, 2)
        lo = np.minimum(pairs[:, 0], pairs[:, 1])
        hi = np.maximum(pairs[:, 0], pairs[:, 1])
        out = np.empty((n, 2))
        if self.ascending:
            out[:, 0], out[:, 1] = lo, hi
        else:
            out[:, 0], out[:, 1] = hi, lo
        self.output.push_block(out)


def _pairing_stage(n: int, k: int, j: int, tag: str) -> Pipeline:
    """One bitonic stage: pair elements at distance ``j``; direction from
    bit ``k`` of the element index."""
    # Bring partners (i, i+j) adjacent: split alternating j-blocks.
    gather = SplitJoin(
        roundrobin(j, j),
        [Identity(name=f"{tag}_ga"), Identity(name=f"{tag}_gb")],
        joiner_roundrobin(1, 1),
        name=f"{tag}_gather",
    )
    # One compare-exchange lane per pair position in the block.
    lanes: List[Filter] = []
    for p in range(n // 2):
        i = (p // j) * 2 * j + (p % j)
        ascending = (i & k) == 0
        lanes.append(CompareExchange(ascending, name=f"{tag}_ce{p}"))
    exchange = SplitJoin(
        roundrobin(*([2] * (n // 2))),
        lanes,
        joiner_roundrobin(*([2] * (n // 2))),
        name=f"{tag}_lanes",
    )
    scatter = SplitJoin(
        roundrobin(1, 1),
        [Identity(name=f"{tag}_sa"), Identity(name=f"{tag}_sb")],
        joiner_roundrobin(j, j),
        name=f"{tag}_scatter",
    )
    return Pipeline(gather, exchange, scatter, name=f"{tag}")


def build(n: int = DEFAULT_N, input_length: int = 64) -> Pipeline:
    if n & (n - 1) or n < 2:
        raise ValueError(f"bitonic sort size must be a power of two, got {n}")
    source, sink = source_and_sink(signal(max(input_length, n)))
    stages = []
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            stages.append(_pairing_stage(n, k, j, tag=f"s{k}_{j}"))
            j //= 2
        k *= 2
    return Pipeline(source, *stages, sink, name="BitonicSort")


def reference(x: np.ndarray, n: int = DEFAULT_N) -> np.ndarray:
    """Blockwise ascending sort (the network's net effect)."""
    x = np.asarray(x, dtype=np.float64)
    n_blocks = len(x) // n
    out = np.empty(n_blocks * n)
    for b in range(n_blocks):
        out[b * n : (b + 1) * n] = np.sort(x[b * n : (b + 1) * n])
    return out
