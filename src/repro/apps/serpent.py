"""Serpent — the Serpent block cipher's stream structure: a long pipeline
of identical rounds over 128-bit blocks, each round a key XOR (affine), a
layer of 32 parallel 4-bit S-boxes (nonlinear, a wide but cheap split-join)
and a fixed linear bit permutation.  Load-balanced pipeline with narrow
communication — fused down to a pipeline it pipeline-parallelizes well, the
behaviour the evaluation's comparison section discusses.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.apps.common import signal, source_and_sink
from repro.apps.des import Binarize, KeyXor, PermuteBits
from repro.graph.base import Filter
from repro.graph.composites import Pipeline, SplitJoin
from repro.graph.splitjoin import joiner_roundrobin, roundrobin

N_ROUNDS = 8  # reduced from 32 to keep simulated steady states tractable
BLOCK = 128


def _round_key(round_index: int) -> List[int]:
    rng = np.random.default_rng(3000 + round_index)
    return [int(v) for v in rng.integers(0, 2, size=BLOCK)]


def _sbox_table(round_index: int) -> List[int]:
    rng = np.random.default_rng(4000 + (round_index % 8))
    return [int(v) for v in rng.permutation(16)]


def _linear_perm(round_index: int) -> List[int]:
    rng = np.random.default_rng(5000 + round_index)
    return [int(v) for v in rng.permutation(BLOCK)]


class SerpentSBox(Filter):
    """A 4-bit-wide S-box substitution (nonlinear table lookup)."""

    def __init__(self, table: List[int], name: Optional[str] = None) -> None:
        super().__init__(pop=4, push=4, name=name)
        self.table = tuple(int(t) for t in table)

    def work(self) -> None:
        index = 0
        for _ in range(4):
            index = index * 2 + int(self.pop())
        value = self.table[index]
        for shift in (8, 4, 2, 1):
            if value >= shift:
                self.push(1.0)
                value -= shift
            else:
                self.push(0.0)

    supports_work_batch = True

    def work_batch(self, n: int) -> None:
        bits = self.input.pop_block(n * 4).reshape(n, 4)
        index = (bits @ np.array([8.0, 4.0, 2.0, 1.0])).astype(np.intp)
        values = np.asarray(self.table, dtype=np.int64)[index]
        out = np.empty((n, 4))
        for j, bit in enumerate((3, 2, 1, 0)):
            out[:, j] = (values >> bit) & 1
        self.output.push_block(out)


def serpent_round(round_index: int) -> Pipeline:
    table = _sbox_table(round_index)
    sbox_layer = SplitJoin(
        roundrobin(*([4] * (BLOCK // 4))),
        [
            SerpentSBox(table, name=f"r{round_index}_sbox{i}")
            for i in range(BLOCK // 4)
        ],
        joiner_roundrobin(*([4] * (BLOCK // 4))),
        name=f"r{round_index}_sboxes",
    )
    return Pipeline(
        KeyXor(_round_key(round_index), name=f"r{round_index}_keyxor"),
        sbox_layer,
        PermuteBits(_linear_perm(round_index), name=f"r{round_index}_linear"),
        name=f"serpent_round{round_index}",
    )


def build(n_rounds: int = N_ROUNDS, input_length: int = 256) -> Pipeline:
    source, sink = source_and_sink(signal(max(input_length, BLOCK)))
    rounds = [serpent_round(r) for r in range(n_rounds)]
    return Pipeline(
        source,
        Binarize(name="binarize"),
        *rounds,
        KeyXor(_round_key(99), name="final_keyxor"),
        sink,
        name="Serpent",
    )


def reference(x: np.ndarray, n_rounds: int = N_ROUNDS) -> np.ndarray:
    bits = (np.asarray(x) > 0).astype(np.float64)
    n_blocks = len(bits) // BLOCK
    out = np.empty(n_blocks * BLOCK)
    for blk in range(n_blocks):
        block = bits[blk * BLOCK : (blk + 1) * BLOCK].copy()
        for r in range(n_rounds):
            block = np.abs(block - np.asarray(_round_key(r)))
            table = _sbox_table(r)
            for i in range(BLOCK // 4):
                nibble = block[i * 4 : (i + 1) * 4]
                index = int(nibble @ np.array([8, 4, 2, 1]))
                val = table[index]
                block[i * 4 : (i + 1) * 4] = [(val >> s) & 1 for s in (3, 2, 1, 0)]
            block = block[np.asarray(_linear_perm(r))]
        block = np.abs(block - np.asarray(_round_key(99)))
        out[blk * BLOCK : (blk + 1) * BLOCK] = block
    return out
