"""Linearity pre-screen: cheap static gate in front of linear extraction.

:mod:`repro.linear.extraction` runs a full affine abstract interpretation
of ``work()`` to recover a :class:`~repro.linear.representation.LinearRep`.
That interpretation is comparatively expensive and — before this pass —
was applied to *every* filter during ``collapse_linear``.  Worse, its
treatment of subscript stores can write through aliases into **live**
attribute lists of the instance under analysis.

This pre-screen uses the alias-aware effects pass to answer, without any
abstract interpretation, the questions whose answers are always "not
linear":

* sources and sinks (pop == 0 or push == 0) have no input-to-output map;
* any state write (including aliased and helper-reached ones) makes the
  filter stateful;
* dynamic effects (``setattr``, ``self.__dict__``) or ``self`` escaping
  mean statefulness cannot be ruled out;
* teleport-message sends are side effects a linear node cannot represent.

Only filters that pass the screen are handed to the extraction
interpreter, which both speeds up ``collapse_linear`` on big graphs and
keeps the interpreter away from filters whose aliasing it could mishandle.
"""

from __future__ import annotations

from typing import Tuple

from repro.analysis.effects import EffectsReport, classify
from repro.graph.base import Filter


def affine_prescreen(filt: Filter) -> Tuple[bool, str]:
    """(candidate?, reason).  ``reason`` explains a ``False`` verdict.

    The reasons for the common rejections intentionally match the wording
    :func:`repro.linear.extraction.try_extract` has always used, so callers
    that branch on ``ExtractionResult.reason`` keep working.
    """
    report = classify(filt)
    return affine_prescreen_report(filt, report)


def affine_prescreen_report(
    filt: Filter, report: EffectsReport
) -> Tuple[bool, str]:
    """Pre-screen using an already-computed effects report."""
    rate = filt.rate
    if rate.pop == 0 or rate.push == 0:
        return False, "source or sink filter"
    if report.mutated:
        return False, f"stateful: work mutates {sorted(report.mutated)}"
    if report.dynamic:
        return False, f"stateful: unanalyzable effects ({report.dynamic[0]})"
    if report.escapes:
        return False, f"stateful: self escapes work() ({report.escapes[0]})"
    if report.message_sends:
        sends = ", ".join(f"self.{a}.{m}()" for a, m in report.message_sends)
        return False, f"sends teleport messages ({sends})"
    return True, "affine candidate"
