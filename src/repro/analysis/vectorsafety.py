"""Vectorization-safety proof for the batched execution engine.

:class:`~repro.runtime.vectorize.BatchExecutor` lifts a filter's ``work()``
to operate on whole batch *columns* instead of scalars.  Historically the
only safety evidence was empirical: run a trial clone for 32 firings and
compare bit-exactly against the scalar path.  This module derives the same
guarantee *statically* from the effects and rate passes, so provably-safe
filters skip the trial clone entirely (``trusted=True``) and unprovable
ones carry a structured machine-readable reason for their downgrade.

A filter is **certified** when all of the following hold:

* ``work()`` is pure: no state writes, no dynamic effects, no ``self``
  escapes, and no teleport-message sends;
* its channel counts are exact and match the declared rates, with all
  peek offsets in bounds;
* every operation applied to stream data is columnwise-exact: arithmetic,
  ``abs``, and the ``math`` functions the lifted namespace rebinds
  (``VECTOR_SAFE_MATH``) — and only in ``work()`` itself, since helper
  bodies keep their own (scalar) ``math`` binding;
* control flow never branches on stream data.

Everything else produces a :class:`VectorProof` with ``certified=False``
and the list of blocking reasons, which surfaces as an ``SL301``
diagnostic and as the structured downgrade reason on the executor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.effects import EffectsReport
from repro.analysis.rates import RateReport
from repro.graph.base import Filter


@dataclass(frozen=True)
class VectorProof:
    """Outcome of the static vectorization-safety analysis."""

    certified: bool
    #: Reasons certification failed (empty when certified).
    reasons: Tuple[str, ...] = ()

    def diagnostic(self, filt: Filter) -> Diagnostic:
        if self.certified:
            return Diagnostic.make(
                "SL300",
                "work() is statically proven safe for trusted batch execution",
                filt,
            )
        summary = "; ".join(self.reasons[:3])
        if len(self.reasons) > 3:
            summary += f"; and {len(self.reasons) - 3} more"
        return Diagnostic.make(
            "SL301", f"not provably batch-safe: {summary}", filt
        )


def prove_vectorizable(
    filt: Filter,
    effects: EffectsReport,
    rates: Optional[RateReport],
) -> VectorProof:
    """Statically decide whether ``filt`` may take the trusted lift path."""
    reasons: List[str] = []
    rate = filt.rate
    if getattr(type(filt), "stateless", None) is False:
        reasons.append("filter opts out via stateless=False")
    if rate.pop < 1:
        reasons.append("sources (pop == 0) are not batch-lifted")
    if effects.classification == "stateful" or effects.mutated:
        mutated = ", ".join(effects.mutated) or "state"
        reasons.append(f"work() mutates {mutated}")
    if effects.dynamic:
        reasons.extend(effects.dynamic)
    if effects.escapes:
        reasons.extend(effects.escapes)
    if effects.message_sends:
        sends = ", ".join(f"self.{a}.{m}()" for a, m in effects.message_sends)
        reasons.append(f"sends teleport messages ({sends})")
    if rates is None:
        reasons.append("rate analysis unavailable")
    else:
        if rates.peek_violations:
            reasons.extend(rates.peek_violations)
        if not rates.exact:
            detail = rates.dynamic[0] if rates.dynamic else (
                f"pop {rates.pop} / push {rates.push} not exact"
            )
            reasons.append(f"channel counts are not exact ({detail})")
        else:
            if rates.pop.lo != rate.pop:
                reasons.append(
                    f"inferred pop count {rates.pop} differs from declared {rate.pop}"
                )
            if rates.push.lo != rate.push:
                reasons.append(
                    f"inferred push count {rates.push} differs from declared {rate.push}"
                )
            if math.isinf(rates.max_peek):
                reasons.append("peek offsets are not statically bounded")
            elif rates.max_peek >= rate.peek:
                reasons.append(
                    f"peek offset {int(rates.max_peek)} reaches past the "
                    f"declared peek window {rate.peek}"
                )
        reasons.extend(rates.cert_blockers)
    # de-dup, preserving order
    reasons = list(dict.fromkeys(reasons))
    return VectorProof(certified=not reasons, reasons=tuple(reasons))
