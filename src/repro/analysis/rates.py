"""Static rate analysis: symbolically count ``push``/``pop``/``peek``.

An abstract interpreter over a filter's ``work()`` AST.  Values live in a
three-level domain:

* **concrete** Python values (ints, floats, lists, modules, …) — evaluated
  exactly, so constant-bound loops contribute exact channel counts;
* :data:`DATA` — a value derived from the input channel (``pop``/``peek``
  results and anything computed from them);
* :data:`UNKNOWN` — a non-channel value the analysis cannot resolve (reads
  of mutated attributes, results of opaque calls).

Channel counts are intervals.  Conditionals with concrete tests follow one
arm; tests over :data:`DATA`/:data:`UNKNOWN` run *both* arms and merge the
counts (min/max), so a conditional that pushes on both branches still has
an exact rate.  ``while`` loops and iterations over non-concrete values
cannot be bounded: if their body touches a channel the report is flagged
*dynamic* and no exactness claims are made (→ ``SL005`` instead of a false
``SL001``).

Safety rules — the analyzer must never perturb the program under analysis:

* **no foreign calls**: only a small whitelist of builtins, ``math``/
  ``numpy`` functions, and the filter's own plain helper methods are ever
  invoked/inlined.  Anything else yields :data:`UNKNOWN` *without being
  called* (a ``self.portal.retune(…)`` must not send a real message at
  lint time!);
* **no instance mutation**: mutable attribute values are shallow-copied on
  read, and stores into containers that alias live objects are skipped.

The pass also records *certification blockers*: reasons the computation is
not provably safe to run column-wise over a whole batch.  These feed the
vectorization proof in :mod:`repro.analysis.vectorsafety`.
"""

from __future__ import annotations

import ast
import math
import operator
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.effects import (
    CHANNEL_ATTRS,
    SourceUnavailable,
    method_ast,
)
from repro.graph.base import Filter

try:  # numpy is an optional acceleration dependency elsewhere in the repo
    import numpy as _np
except Exception:  # pragma: no cover - environment without numpy
    _np = None

#: math functions that vectorize bit-exactly (or via a guarded wrapper) in
#: runtime/vectorize.py; calling any other function on DATA blocks the proof.
VECTOR_SAFE_MATH = frozenset(
    {
        "sqrt", "sin", "cos", "floor", "ceil", "trunc", "fabs", "copysign",
        "atan2", "hypot", "fmod", "pow", "atan", "asin", "acos", "tan",
        "exp", "expm1", "log", "log1p", "log2", "log10", "sinh", "cosh",
        "tanh",
    }
)


class _Data:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "DATA"


class _Unknown:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "UNKNOWN"


class _Self:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "SELF"


class _Channel:
    __slots__ = ("direction",)

    def __init__(self, direction: str) -> None:
        self.direction = direction


DATA = _Data()
UNKNOWN = _Unknown()
SELF = _Self()


def _tainted(*values: Any) -> Any:
    """Combine taints: DATA dominates UNKNOWN dominates concrete."""
    if any(v is DATA for v in values):
        return DATA
    if any(v is UNKNOWN for v in values):
        return UNKNOWN
    return None


@dataclass
class Interval:
    lo: float
    hi: float

    @staticmethod
    def exactly(n: float) -> "Interval":
        return Interval(n, n)

    def bump(self, n: float = 1) -> None:
        self.lo += n
        self.hi += n

    def merged(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def copy(self) -> "Interval":
        return Interval(self.lo, self.hi)

    @property
    def exact(self) -> bool:
        return self.lo == self.hi and math.isfinite(self.lo)

    def __str__(self) -> str:
        if self.exact:
            return str(int(self.lo))
        hi = "inf" if math.isinf(self.hi) else str(int(self.hi))
        return f"[{int(self.lo)}, {hi}]"


@dataclass
class RateReport:
    """Result of symbolically executing one ``work()``."""

    pop: Interval
    push: Interval
    #: Largest peek offset (relative to the pre-firing window) that can be
    #: reached; -1 when work never peeks.
    max_peek: float
    #: Reasons exact counting was impossible (→ SL005).
    dynamic: Tuple[str, ...]
    #: Definite peek-out-of-bounds findings (→ SL003).
    peek_violations: Tuple[str, ...]
    #: Reasons batch (column-wise) execution is not provably safe.
    cert_blockers: Tuple[str, ...]

    @property
    def exact(self) -> bool:
        return not self.dynamic and self.pop.exact and self.push.exact


class _PathRaise(Exception):
    """The analyzed path raises: it contributes no steady-state counts."""


class _Return(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _GiveUp(Exception):
    """Budget exceeded or structurally unanalyzable; degrade to dynamic."""


_BIN_OPS = {
    ast.Add: operator.add, ast.Sub: operator.sub, ast.Mult: operator.mul,
    ast.Div: operator.truediv, ast.FloorDiv: operator.floordiv,
    ast.Mod: operator.mod, ast.Pow: operator.pow,
    ast.LShift: operator.lshift, ast.RShift: operator.rshift,
    ast.BitOr: operator.or_, ast.BitAnd: operator.and_,
    ast.BitXor: operator.xor, ast.MatMult: operator.matmul,
}
_UNARY_OPS = {
    ast.UAdd: operator.pos, ast.USub: operator.neg,
    ast.Invert: operator.invert, ast.Not: operator.not_,
}
_CMP_OPS = {
    ast.Eq: operator.eq, ast.NotEq: operator.ne, ast.Lt: operator.lt,
    ast.LtE: operator.le, ast.Gt: operator.gt, ast.GtE: operator.ge,
    ast.Is: operator.is_, ast.IsNot: operator.is_not,
    ast.In: lambda a, b: a in b, ast.NotIn: lambda a, b: a not in b,
}

_SAFE_BUILTINS = {
    range, len, abs, min, max, int, float, bool, round, sum, divmod,
    list, tuple, enumerate, zip, reversed, sorted, complex, str,
}
#: Safe builtins that also map elementwise over a batch column.
_DATA_SAFE_BUILTINS = {abs}

_MAX_STEPS = 2_000_000
_MAX_CALL_DEPTH = 8


class _State:
    """Mutable per-path state: environment + channel counters."""

    __slots__ = ("env", "pop", "push")

    def __init__(self, env: Dict[str, Any], pop: Interval, push: Interval) -> None:
        self.env = env
        self.pop = pop
        self.push = push

    def clone(self) -> "_State":
        return _State(dict(self.env), self.pop.copy(), self.push.copy())

    def merge(self, other: "_State") -> None:
        self.pop = self.pop.merged(other.pop)
        self.push = self.push.merged(other.push)
        merged: Dict[str, Any] = {}
        for name, val in self.env.items():
            if name not in other.env:
                continue
            oval = other.env[name]
            if val is oval:
                merged[name] = val
            else:
                try:
                    same = bool(val == oval)
                except Exception:
                    same = False
                if same and type(val) is type(oval):
                    merged[name] = val
                else:
                    taint = _tainted(val, oval)
                    merged[name] = taint if taint is not None else UNKNOWN
        self.env = merged


class RateAnalyzer:
    """Symbolic executor for one filter instance's ``work()``."""

    def __init__(self, filt: Filter, unstable_attrs: Set[str]) -> None:
        self.filt = filt
        self.cls = type(filt)
        self.unstable = set(unstable_attrs)
        self.max_peek: float = -1
        self.dynamic: List[str] = []
        self.violations: List[str] = []
        self.blockers: List[str] = []
        self.steps = 0
        #: id()s of objects owned by the live instance — never mutate them.
        self.foreign: Set[int] = set()
        #: True once a channel reference was stored somewhere the analysis
        #: cannot see through (an attribute of an opaque object, an argument
        #: to an unevaluated call).  After that, any opaque call may drive
        #: this filter's channels, so such calls must degrade to dynamic.
        self.channel_escaped = False
        self.ended: List[_State] = []

    # -- notes ---------------------------------------------------------------

    def note_dynamic(self, reason: str) -> None:
        if reason not in self.dynamic:
            self.dynamic.append(reason)

    def note_blocker(self, reason: str) -> None:
        if reason not in self.blockers:
            self.blockers.append(reason)

    def note_violation(self, reason: str) -> None:
        if reason not in self.violations:
            self.violations.append(reason)

    def tick(self) -> None:
        self.steps += 1
        if self.steps > _MAX_STEPS:
            self.note_dynamic("analysis budget exceeded")
            raise _GiveUp

    # -- entry ---------------------------------------------------------------

    def run(self) -> RateReport:
        pop = Interval.exactly(0)
        push = Interval.exactly(0)
        try:
            fn = method_ast(self.cls)
        except SourceUnavailable as exc:
            self.note_dynamic(str(exc))
            self.note_blocker("work() source unavailable")
            return self._report(Interval(0, math.inf), Interval(0, math.inf))
        self_name = fn.args.args[0].arg if fn.args.args else "self"
        state = _State({self_name: SELF}, pop, push)
        try:
            try:
                self.exec_body(fn.body, state, depth=0)
            except _Return:
                pass
            except (_Break, _Continue):
                self.note_dynamic("break/continue outside a loop")
        except _PathRaise:
            # Every path raises: work cannot complete a firing.  Report what
            # was counted before the raise and flag it.
            self.note_dynamic("work() unconditionally raises")
            self.note_blocker("work() unconditionally raises")
        except _GiveUp:
            state.pop = state.pop.merged(Interval(state.pop.lo, math.inf))
            state.push = state.push.merged(Interval(state.push.lo, math.inf))
            self.note_blocker("rate analysis gave up")
        for done in self.ended:
            state.pop = state.pop.merged(done.pop)
            state.push = state.push.merged(done.push)
        return self._report(state.pop, state.push)

    def _report(self, pop: Interval, push: Interval) -> RateReport:
        return RateReport(
            pop=pop,
            push=push,
            max_peek=self.max_peek,
            dynamic=tuple(self.dynamic),
            peek_violations=tuple(self.violations),
            cert_blockers=tuple(self.blockers),
        )

    # -- channel ops ---------------------------------------------------------

    def do_pop(self, state: _State) -> Any:
        if state.pop.exact and state.pop.hi == self.filt.rate.pop:
            self.note_violation(
                f"work() pops more than the declared pop rate "
                f"{self.filt.rate.pop}"
            )
        state.pop.bump()
        return DATA

    def do_peek(self, state: _State, index: Any) -> Any:
        declared = self.filt.rate.peek
        if isinstance(index, bool) or not isinstance(index, (int, float)):
            taint = _tainted(index)
            if taint is DATA:
                self.note_blocker("peek index depends on stream data")
            # peek() never consumes, so an unresolvable index costs only the
            # static peek bound — the pop/push counts stay exact.
            self.max_peek = math.inf
            self.note_blocker("peek index is not statically resolvable")
            return DATA
        if index < 0:
            self.note_violation(f"negative peek index {index!r}")
            return DATA
        lo_off = state.pop.lo + index
        hi_off = state.pop.hi + index
        if lo_off >= declared:
            self.note_violation(
                f"peek offset {int(lo_off)} out of bounds for declared "
                f"peek rate {declared}"
            )
        self.max_peek = max(self.max_peek, hi_off)
        return DATA

    def do_push(self, state: _State, value: Any) -> None:
        if value is UNKNOWN:
            self.note_blocker("pushes a value the analysis cannot type")
        elif value is not DATA and not isinstance(value, (int, float, complex, bool)):
            self.note_blocker(
                f"pushes a non-scalar {type(value).__name__} value"
            )
        if state.push.exact and state.push.hi == self.filt.rate.push:
            self.note_violation(
                f"work() pushes more than the declared push rate "
                f"{self.filt.rate.push}"
            )
        state.push.bump()

    # -- statements ----------------------------------------------------------

    def exec_body(self, stmts: List[ast.stmt], state: _State, depth: int) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt, state, depth)

    def exec_stmt(self, stmt: ast.stmt, state: _State, depth: int) -> None:
        self.tick()
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value, state, depth)
        elif isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, state, depth)
            for target in stmt.targets:
                self.assign(target, value, state, depth)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self.eval(stmt.value, state, depth)
                self.assign(stmt.target, value, state, depth)
        elif isinstance(stmt, ast.AugAssign):
            load = ast.copy_location(
                ast.BinOp(
                    left=_as_load(stmt.target), op=stmt.op, right=stmt.value
                ),
                stmt,
            )
            value = self.eval(load, state, depth)
            self.assign(stmt.target, value, state, depth)
        elif isinstance(stmt, ast.If):
            self.exec_if(stmt, state, depth)
        elif isinstance(stmt, ast.For):
            self.exec_for(stmt, state, depth)
        elif isinstance(stmt, ast.While):
            self.exec_while(stmt, state, depth)
        elif isinstance(stmt, ast.Return):
            value = self.eval(stmt.value, state, depth) if stmt.value else None
            raise _Return(value)
        elif isinstance(stmt, ast.Raise):
            raise _PathRaise
        elif isinstance(stmt, ast.Assert):
            test = self.eval(stmt.test, state, depth)
            if _tainted(test) is None:
                try:
                    if not test:
                        raise _PathRaise
                except _PathRaise:
                    raise
                except Exception:
                    pass
        elif isinstance(stmt, (ast.Break,)):
            raise _Break
        elif isinstance(stmt, ast.Continue):
            raise _Continue
        elif isinstance(stmt, ast.Pass):
            pass
        elif isinstance(stmt, ast.Delete):
            pass
        elif isinstance(stmt, (ast.Global, ast.Nonlocal)):
            pass  # effects pass reports these
        elif isinstance(stmt, ast.Try):
            self.exec_try(stmt, state, depth)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            self._degrade_if_channel_ops(stmt, "nested definition")
            state.env[stmt.name] = UNKNOWN
            self.note_blocker(f"nested {type(stmt).__name__} in work()")
        else:
            # try/with/match/… — too much control-flow ambiguity to model.
            self._degrade_if_channel_ops(stmt, type(stmt).__name__)
            self._havoc_assigned(stmt, state)
            self.note_blocker(f"unmodelled statement {type(stmt).__name__}")

    def exec_try(self, stmt: ast.Try, state: _State, depth: int) -> None:
        """Model try/finally exactly; try/except degrades to dynamic.

        Without handlers the body either completes or aborts the firing, so
        counting the body then the finalizer is exact.  With ``except``
        clauses the transfer points are unknowable statically.
        """
        if stmt.handlers:
            self._degrade_if_channel_ops(stmt, "try/except")
            self._havoc_assigned(stmt, state)
            self.note_blocker("try/except in work()")
            return
        try:
            self.exec_body(stmt.body, state, depth)
        except (_Return, _Break, _Continue, _PathRaise):
            self.exec_body(stmt.finalbody, state, depth)
            raise
        self.exec_body(stmt.orelse, state, depth)
        self.exec_body(stmt.finalbody, state, depth)

    def _degrade_if_channel_ops(self, node: ast.AST, what: str) -> None:
        if _has_consuming_ops(node):
            self.note_dynamic(f"channel operation inside unanalyzable {what}")
        elif _has_channel_ops(node):
            self.max_peek = math.inf
            self.note_blocker(f"peek inside unanalyzable {what}")

    def _havoc_assigned(self, node: ast.AST, state: _State) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, (ast.Store, ast.Del)):
                state.env[sub.id] = UNKNOWN

    # -- branching -----------------------------------------------------------

    def exec_if(self, stmt: ast.If, state: _State, depth: int) -> None:
        test = self.eval(stmt.test, state, depth)
        taint = _tainted(test)
        if taint is None:
            try:
                taken = bool(test)
            except Exception:
                taint = UNKNOWN
            else:
                self.exec_body(stmt.body if taken else stmt.orelse, state, depth)
                return
        if taint is DATA:
            self.note_blocker("branch condition depends on stream data")
        else:
            self.note_blocker("branch condition is not statically resolvable")
        self._run_both(stmt.body, stmt.orelse, state, depth)

    def _run_both(
        self,
        body: List[ast.stmt],
        orelse: List[ast.stmt],
        state: _State,
        depth: int,
    ) -> None:
        """Execute both arms of an unresolvable branch and merge counts."""
        outcomes: List[Tuple[str, Optional[_State], Optional[BaseException]]] = []
        for arm in (body, orelse):
            arm_state = state.clone()
            try:
                self.exec_body(arm, arm_state, depth)
            except _PathRaise:
                outcomes.append(("raise", None, None))
            except _Return:
                self.ended.append(arm_state)
                outcomes.append(("return", None, None))
            except (_Break, _Continue) as exc:
                self.note_dynamic(
                    "break/continue under a data-dependent condition"
                )
                outcomes.append(("jump", arm_state, exc))
            else:
                outcomes.append(("fall", arm_state, None))
        fallthrough = [s for kind, s, _ in outcomes if kind == "fall" and s]
        if fallthrough:
            merged = fallthrough[0]
            for extra in fallthrough[1:]:
                merged.merge(extra)
            # jump arms contribute their counts conservatively
            for kind, s, _ in outcomes:
                if kind == "jump" and s is not None:
                    merged.merge(s)
            state.env = merged.env
            state.pop = merged.pop
            state.push = merged.push
            return
        # No arm falls through: propagate the strongest control transfer.
        for kind, s, exc in outcomes:
            if kind == "jump" and exc is not None:
                if s is not None:
                    state.env = s.env
                    state.pop = s.pop
                    state.push = s.push
                raise exc
        if any(kind == "return" for kind, _, _ in outcomes):
            raise _Return(None)
        raise _PathRaise

    # -- loops ---------------------------------------------------------------

    def exec_for(self, stmt: ast.For, state: _State, depth: int) -> None:
        iterable = self.eval(stmt.iter, state, depth)
        taint = _tainted(iterable)
        if taint is not None:
            if taint is DATA:
                self.note_blocker("loop iterates over stream data")
            self._dynamic_loop(stmt, state, depth, "for loop over an unresolvable iterable")
            return
        try:
            items = list(iterable)
        except TypeError:
            self.note_dynamic("for loop over a non-iterable value")
            self._dynamic_loop(stmt, state, depth, "for loop over a non-iterable")
            return
        for item in items:
            self.tick()
            self.assign(stmt.target, item, state, depth)
            try:
                self.exec_body(stmt.body, state, depth)
            except _Break:
                break
            except _Continue:
                continue
        else:
            self.exec_body(stmt.orelse, state, depth)

    def exec_while(self, stmt: ast.While, state: _State, depth: int) -> None:
        # Try bounded concrete execution first (e.g. ``while i < n: i += 1``).
        snapshot = state.clone()
        bounded = self._try_concrete_while(stmt, state, depth)
        if bounded:
            return
        state.env = snapshot.env
        state.pop = snapshot.pop
        state.push = snapshot.push
        test = self.eval(stmt.test, state, depth)
        if _tainted(test) is DATA:
            self.note_blocker("while condition depends on stream data")
        else:
            self.note_blocker("while loop is not statically bounded")
        self._dynamic_loop(stmt, state, depth, "while loop with an unresolvable bound")

    def _try_concrete_while(self, stmt: ast.While, state: _State, depth: int) -> bool:
        """Concretely iterate a while loop; False if any test is non-concrete."""
        iterations = 0
        while True:
            self.tick()
            test = self.eval(stmt.test, state, depth)
            if _tainted(test) is not None:
                return False
            try:
                alive = bool(test)
            except Exception:
                return False
            if not alive:
                self.exec_body(stmt.orelse, state, depth)
                return True
            iterations += 1
            if iterations > 100_000:
                self.note_dynamic("while loop exceeded the iteration budget")
                return False
            try:
                self.exec_body(stmt.body, state, depth)
            except _Break:
                return True
            except _Continue:
                continue

    def _dynamic_loop(self, stmt: ast.AST, state: _State, depth: int, what: str) -> None:
        """A loop whose trip count is unknown: body 0..inf times."""
        body = stmt.body if hasattr(stmt, "body") else []
        if _has_consuming_ops(stmt):
            self.note_dynamic(f"channel operation inside {what}")
        elif _has_channel_ops(stmt):
            # peek() never consumes: a loop of peeks with an unknown trip
            # count leaves the pop/push counts exact — only the reachable
            # peek window is lost (the probe below may see a resolvable
            # index, but iteration-varying state can reach further).
            self.max_peek = math.inf
            self.note_blocker(f"peek window unbounded inside {what}")
        before_pop, before_push = state.pop.copy(), state.push.copy()
        # Havoc loop-assigned names, then analyze the body once for peek
        # bounds and nested findings; counts widen to [before, inf).
        self._havoc_assigned(stmt, state)
        probe = state.clone()
        try:
            self.exec_body(body, probe, depth)
        except (_Return, _Break, _Continue, _PathRaise):
            pass
        if probe.pop.hi > before_pop.hi:
            state.pop = Interval(before_pop.lo, math.inf)
        if probe.push.hi > before_push.hi:
            state.push = Interval(before_push.lo, math.inf)
        self._havoc_assigned(stmt, state)

    # -- assignment ----------------------------------------------------------

    def assign(self, target: ast.expr, value: Any, state: _State, depth: int) -> None:
        if isinstance(target, ast.Name):
            state.env[target.id] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            taint = _tainted(value)
            if taint is None:
                try:
                    items = list(value)
                except TypeError:
                    items = None
                if items is not None and len(items) == len(target.elts) and not any(
                    isinstance(e, ast.Starred) for e in target.elts
                ):
                    for elt, item in zip(target.elts, items):
                        self.assign(elt, item, state, depth)
                    return
                taint = UNKNOWN
            for elt in target.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                self.assign(inner, taint, state, depth)
            return
        if isinstance(target, ast.Subscript):
            container = self.eval(target.value, state, depth)
            index = self.eval(target.slice, state, depth)
            if _tainted(index) is DATA:
                self.note_blocker("store index depends on stream data")
            if _tainted(container) is not None or id(container) in self.foreign:
                return
            if _tainted(index) is not None:
                return
            try:
                container[index] = value
            except Exception:
                pass
            return
        if isinstance(target, ast.Attribute):
            # self.X = … — a state write; the effects pass reports it.  The
            # attribute becomes unstable for the rest of this analysis.
            base = self.eval(target.value, state, depth)
            if isinstance(value, _Channel):
                # A channel reference now lives inside an object the analysis
                # reads back as opaque (delegation idiom: inner.output =
                # self.output); later opaque calls may push/pop through it.
                self.channel_escaped = True
            if base is SELF:
                self.unstable.add(target.attr)
            return
        if isinstance(target, ast.Starred):
            self.assign(target.value, UNKNOWN, state, depth)
            return

    # -- expressions ---------------------------------------------------------

    def eval(self, node: ast.expr, state: _State, depth: int) -> Any:
        self.tick()
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            if node.id in state.env:
                return state.env[node.id]
            return self._global(node.id)
        if isinstance(node, ast.Attribute):
            return self.eval_attribute(node, state, depth)
        if isinstance(node, ast.Call):
            return self.eval_call(node, state, depth)
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left, state, depth)
            right = self.eval(node.right, state, depth)
            taint = _tainted(left, right)
            if taint is not None:
                return taint
            op = _BIN_OPS.get(type(node.op))
            if op is None:
                return UNKNOWN
            try:
                return op(left, right)
            except Exception:
                return UNKNOWN
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(node.operand, state, depth)
            taint = _tainted(operand)
            if taint is not None:
                if isinstance(node.op, ast.Not) and taint is DATA:
                    self.note_blocker("boolean not applied to stream data")
                return taint
            op = _UNARY_OPS.get(type(node.op))
            if op is None:
                return UNKNOWN
            try:
                return op(operand)
            except Exception:
                return UNKNOWN
        if isinstance(node, ast.Compare):
            values = [self.eval(node.left, state, depth)]
            values.extend(self.eval(c, state, depth) for c in node.comparators)
            taint = _tainted(*values)
            if taint is not None:
                if taint is DATA:
                    self.note_blocker("comparison over stream data")
                return taint
            try:
                result = True
                left = values[0]
                for op_node, right in zip(node.ops, values[1:]):
                    op = _CMP_OPS.get(type(op_node))
                    if op is None:
                        return UNKNOWN
                    if not op(left, right):
                        result = False
                        break
                    left = right
                return result
            except Exception:
                return UNKNOWN
        if isinstance(node, ast.BoolOp):
            values = [self.eval(v, state, depth) for v in node.values]
            taint = _tainted(*values)
            if taint is not None:
                if taint is DATA:
                    self.note_blocker("boolean operator over stream data")
                return taint
            try:
                if isinstance(node.op, ast.And):
                    result: Any = True
                    for v in values:
                        result = v
                        if not v:
                            break
                    return result
                result = False
                for v in values:
                    result = v
                    if v:
                        break
                return result
            except Exception:
                return UNKNOWN
        if isinstance(node, ast.IfExp):
            test = self.eval(node.test, state, depth)
            taint = _tainted(test)
            if taint is None:
                try:
                    taken = bool(test)
                except Exception:
                    taint = UNKNOWN
                else:
                    return self.eval(node.body if taken else node.orelse, state, depth)
            if taint is DATA:
                self.note_blocker("conditional expression over stream data")
            else:
                self.note_blocker("conditional expression is not statically resolvable")
            a = self.eval(node.body, state, depth)
            b = self.eval(node.orelse, state, depth)
            if a is b:
                return a
            inner = _tainted(a, b)
            return inner if inner is not None else UNKNOWN
        if isinstance(node, ast.Subscript):
            container = self.eval(node.value, state, depth)
            index = self.eval(node.slice, state, depth)
            taint = _tainted(container, index)
            if taint is not None:
                if _tainted(index) is DATA:
                    self.note_blocker("subscript index depends on stream data")
                return taint
            try:
                result = container[index]
            except Exception:
                return UNKNOWN
            if id(container) in self.foreign:
                result = self._import_value(result)
            return result
        if isinstance(node, (ast.List, ast.Set)):
            items = [self.eval(e, state, depth) for e in node.elts]
            return items if isinstance(node, ast.List) else UNKNOWN
        if isinstance(node, ast.Tuple):
            return tuple(self.eval(e, state, depth) for e in node.elts)
        if isinstance(node, ast.Dict):
            result: Dict[Any, Any] = {}
            for k, v in zip(node.keys, node.values):
                if k is None:
                    return UNKNOWN
                key = self.eval(k, state, depth)
                if _tainted(key) is not None:
                    return UNKNOWN
                result[key] = self.eval(v, state, depth)
            return result
        if isinstance(node, ast.Slice):
            lower = self.eval(node.lower, state, depth) if node.lower else None
            upper = self.eval(node.upper, state, depth) if node.upper else None
            step = self.eval(node.step, state, depth) if node.step else None
            taint = _tainted(
                *(v for v in (lower, upper, step) if v is not None)
            )
            if taint is not None:
                return taint
            return slice(lower, upper, step)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self.eval_comprehension(node, state, depth)
        if isinstance(node, ast.Starred):
            return self.eval(node.value, state, depth)
        if isinstance(node, ast.Lambda):
            self.note_blocker("lambda in work()")
            return UNKNOWN
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            return UNKNOWN
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value, state, depth)
            self.assign(node.target, value, state, depth)
            return value
        self.note_blocker(f"unmodelled expression {type(node).__name__}")
        if _has_consuming_ops(node):
            self.note_dynamic(
                f"channel operation inside unmodelled {type(node).__name__}"
            )
        elif _has_channel_ops(node):
            self.max_peek = math.inf
        return UNKNOWN

    def eval_comprehension(self, node: ast.expr, state: _State, depth: int) -> Any:
        gens = node.generators
        if len(gens) != 1 or gens[0].is_async:
            self.note_blocker("nested/async comprehension in work()")
            self._degrade_if_channel_ops(node, "comprehension")
            return UNKNOWN
        gen = gens[0]
        iterable = self.eval(gen.iter, state, depth)
        if _tainted(iterable) is not None:
            if _tainted(iterable) is DATA:
                self.note_blocker("comprehension iterates over stream data")
            self._degrade_if_channel_ops(node, "comprehension")
            return UNKNOWN
        try:
            items = list(iterable)
        except TypeError:
            self._degrade_if_channel_ops(node, "comprehension")
            return UNKNOWN
        out: List[Any] = []
        inner = state  # comprehension shares counts; env writes are scoped
        saved = dict(inner.env)
        try:
            for item in items:
                self.tick()
                self.assign(gen.target, item, inner, depth)
                keep = True
                for cond in gen.ifs:
                    test = self.eval(cond, inner, depth)
                    if _tainted(test) is not None:
                        self.note_blocker("comprehension filter is not resolvable")
                        self._degrade_if_channel_ops(node, "comprehension filter")
                        return UNKNOWN
                    if not test:
                        keep = False
                        break
                if keep:
                    out.append(self.eval(node.elt, inner, depth))
        finally:
            inner.env = saved
        return out

    # -- attribute / global resolution ---------------------------------------

    def _global(self, name: str) -> Any:
        fn = inspect_unwrap(getattr(self.cls, "work"))
        globs = getattr(fn, "__globals__", {})
        if name in globs:
            value = globs[name]
            self.foreign.add(id(value))
            return value
        builtins_mod = globs.get("__builtins__", __builtins__)
        builtins_dict = (
            builtins_mod if isinstance(builtins_mod, dict) else vars(builtins_mod)
        )
        if name in builtins_dict:
            return builtins_dict[name]
        return UNKNOWN

    def eval_attribute(self, node: ast.Attribute, state: _State, depth: int) -> Any:
        owner = self.eval(node.value, state, depth)
        if owner is SELF:
            attr = node.attr
            if attr in CHANNEL_ATTRS:
                return _Channel("in" if attr == "input" else "out")
            if attr in self.unstable:
                return UNKNOWN
            try:
                value = getattr(self.filt, attr)
            except AttributeError:
                self.note_dynamic(f"work() reads undefined attribute self.{attr}")
                return UNKNOWN
            return self._import_value(value)
        taint = _tainted(owner)
        if taint is DATA:
            self.note_blocker(f"attribute access .{node.attr} on stream data")
            return DATA
        if taint is UNKNOWN:
            return UNKNOWN
        if isinstance(owner, _Channel):
            return UNKNOWN
        try:
            value = getattr(owner, node.attr)
        except Exception:
            return UNKNOWN
        if id(owner) in self.foreign:
            value = self._import_value(value)
        return value

    def _import_value(self, value: Any) -> Any:
        """Bring a live object into the analysis without risking mutation."""
        if isinstance(value, (list, set)):
            copied = type(value)(value)
            return copied
        if isinstance(value, dict):
            return dict(value)
        if isinstance(value, bytearray):
            return bytearray(value)
        if _np is not None and isinstance(value, _np.ndarray):
            return value.copy()
        if isinstance(value, (int, float, complex, bool, str, bytes, tuple, frozenset, type(None))):
            return value
        # Opaque live object (Portal, callable, module instance, …): usable
        # for identity/marker checks but never mutated or called blindly.
        self.foreign.add(id(value))
        return value

    # -- calls ---------------------------------------------------------------

    def eval_call(self, node: ast.Call, state: _State, depth: int) -> Any:
        func = node.func
        if isinstance(func, ast.Attribute):
            owner = self.eval(func.value, state, depth)
            method = func.attr
            if owner is SELF:
                return self.call_self_method(node, method, state, depth)
            if isinstance(owner, _Channel):
                return self.call_channel(node, owner, method, state, depth)
            taint = _tainted(owner)
            if taint is not None:
                args = [self.eval(a, state, depth) for a in node.args]
                if taint is DATA:
                    self.note_blocker(
                        f"method call .{method}() on stream data"
                    )
                    return DATA
                if any(_tainted(a) is DATA for a in args):
                    return DATA
                if self.channel_escaped:
                    self.note_dynamic(
                        f"call .{method}() on an opaque object after a "
                        "channel reference escaped"
                    )
                return UNKNOWN
            callee = getattr(owner, method, None)
            return self.call_concrete(node, callee, state, depth)
        callee = self.eval(func, state, depth)
        taint = _tainted(callee)
        if taint is not None:
            if self.channel_escaped:
                self.note_dynamic(
                    "call through an unresolved callee after a channel "
                    "reference escaped"
                )
            self._consume_args(node, state, depth)
            return UNKNOWN
        return self.call_concrete(node, callee, state, depth)

    def _consume_args(self, node: ast.Call, state: _State, depth: int) -> List[Any]:
        args = []
        for a in node.args:
            args.append(self.eval(a, state, depth))
        for kw in node.keywords:
            if kw.value is not None:
                args.append(self.eval(kw.value, state, depth))
        if any(isinstance(a, _Channel) for a in args):
            self.channel_escaped = True
        return args

    def call_channel(
        self, node: ast.Call, channel: _Channel, method: str, state: _State, depth: int
    ) -> Any:
        if channel.direction == "in" and method == "pop" and not node.args:
            return self.do_pop(state)
        if channel.direction == "in" and method == "peek" and len(node.args) == 1:
            return self.do_peek(state, self.eval(node.args[0], state, depth))
        if channel.direction == "out" and method == "push" and len(node.args) == 1:
            self.do_push(state, self.eval(node.args[0], state, depth))
            return None
        self.note_dynamic(f"unmodelled channel call .{method}()")
        self.note_blocker(f"unmodelled channel call .{method}()")
        self._consume_args(node, state, depth)
        return UNKNOWN

    def call_self_method(
        self, node: ast.Call, method: str, state: _State, depth: int
    ) -> Any:
        if method == "pop" and not node.args and not node.keywords:
            return self.do_pop(state)
        if method == "peek" and len(node.args) == 1 and not node.keywords:
            return self.do_peek(state, self.eval(node.args[0], state, depth))
        if method == "push" and len(node.args) == 1 and not node.keywords:
            self.do_push(state, self.eval(node.args[0], state, depth))
            return None
        fn = getattr(self.cls, method, None)
        raw = inspect_unwrap(fn) if fn is not None else None
        if raw is None or not callable(fn) or not _is_plain_function(raw):
            # A callable instance attribute or an unresolvable descriptor:
            # never call it.  If it could touch channels we cannot know.
            args = self._consume_args(node, state, depth)
            self.note_dynamic(f"opaque call self.{method}()")
            if any(_tainted(a) is DATA for a in args):
                self.note_blocker(f"opaque call self.{method}() on stream data")
            else:
                self.note_blocker(f"opaque call self.{method}()")
            return UNKNOWN
        if depth >= _MAX_CALL_DEPTH:
            self.note_dynamic(f"helper call self.{method}() exceeds inline depth")
            self.note_blocker(f"helper call self.{method}() exceeds inline depth")
            self._consume_args(node, state, depth)
            return UNKNOWN
        try:
            helper = method_ast(self.cls, method)
        except SourceUnavailable as exc:
            self.note_dynamic(str(exc))
            self.note_blocker(f"helper self.{method}() source unavailable")
            self._consume_args(node, state, depth)
            return UNKNOWN
        return self.inline_helper(node, helper, method, state, depth)

    def inline_helper(
        self,
        node: ast.Call,
        helper: ast.FunctionDef,
        method: str,
        state: _State,
        depth: int,
    ) -> Any:
        args = [self.eval(a, state, depth) for a in node.args]
        kwargs = {}
        for kw in node.keywords:
            if kw.arg is None:
                self.note_dynamic(f"**kwargs call to self.{method}()")
                self.note_blocker(f"**kwargs call to self.{method}()")
                return UNKNOWN
            kwargs[kw.arg] = self.eval(kw.value, state, depth)
        params = helper.args
        if params.vararg or params.kwarg or params.posonlyargs or params.kwonlyargs:
            self.note_dynamic(f"helper self.{method}() has a complex signature")
            self.note_blocker(f"helper self.{method}() has a complex signature")
            return UNKNOWN
        names = [a.arg for a in params.args]
        env: Dict[str, Any] = {names[0]: SELF} if names else {}
        defaults = params.defaults
        required = names[1:]
        # Apply defaults from the tail.
        for name, default in zip(required[len(required) - len(defaults):], defaults):
            env[name] = self.eval(default, state, depth)
        for name, value in zip(required, args):
            env[name] = value
        for name, value in kwargs.items():
            if name not in names:
                self.note_dynamic(f"bad keyword {name!r} for self.{method}()")
                return UNKNOWN
            env[name] = value
        missing = [n for n in required if n not in env]
        if missing:
            self.note_dynamic(
                f"helper self.{method}() called without argument(s) {missing}"
            )
            return UNKNOWN
        if any(_tainted(v) is DATA for v in env.values()):
            # runtime/vectorize.py only rebinds ``math`` in work()'s own
            # globals; a helper calling real libm on a batch column would
            # fail or silently diverge, so data flowing into helpers blocks
            # certification (counting continues unaffected).
            self.note_blocker(
                f"stream data flows into helper self.{method}()"
            )
        sub = _State(env, state.pop, state.push)
        result: Any = None
        try:
            self.exec_body(helper.body, sub, depth + 1)
        except _Return as ret:
            result = ret.value
        except (_Break, _Continue):
            self.note_dynamic(f"stray break/continue in helper self.{method}()")
            result = UNKNOWN
        state.pop = sub.pop
        state.push = sub.push
        return result

    def call_concrete(self, node: ast.Call, callee: Any, state: _State, depth: int) -> Any:
        args = [self.eval(a, state, depth) for a in node.args]
        kwargs: Dict[str, Any] = {}
        for kw in node.keywords:
            if kw.arg is None:
                return UNKNOWN
            kwargs[kw.arg] = self.eval(kw.value, state, depth)
        if callee is None:
            return UNKNOWN
        has_data = any(_tainted(a) is DATA for a in list(args) + list(kwargs.values()))
        has_unknown = any(
            _tainted(a) is UNKNOWN for a in list(args) + list(kwargs.values())
        )
        if any(a is SELF for a in list(args) + list(kwargs.values())):
            self.note_dynamic("self escapes into a foreign call")
            self.note_blocker("self escapes into a foreign call")
            return UNKNOWN
        module = getattr(callee, "__module__", None) or ""
        is_math = module == "math" or (
            getattr(math, getattr(callee, "__name__", ""), None) is callee
        )
        is_np = _np is not None and (module.startswith("numpy"))
        if has_data:
            if is_math:
                name = getattr(callee, "__name__", "?")
                if name not in VECTOR_SAFE_MATH or depth > 0:
                    self.note_blocker(
                        f"math.{name}() on stream data"
                        + (" inside a helper" if depth > 0 else " is not batch-exact")
                    )
                return DATA
            if callee in _DATA_SAFE_BUILTINS:
                return DATA
            name = getattr(callee, "__name__", repr(callee))
            self.note_blocker(f"call to {name}() on stream data")
            if callee in _SAFE_BUILTINS or is_np:
                return DATA
            return DATA
        if has_unknown:
            return UNKNOWN
        if callee in _SAFE_BUILTINS or is_math or is_np:
            try:
                return callee(*args, **kwargs)
            except Exception:
                return UNKNOWN
        # Foreign callable on concrete args: NOT executed (it could have
        # arbitrary side effects — think portal.setf or file I/O).
        name = getattr(callee, "__name__", type(callee).__name__)
        self.note_dynamic(f"unwhitelisted call {name}() left unevaluated")
        return UNKNOWN


def _as_load(node: ast.expr) -> ast.expr:
    clone = ast.copy_location(ast.parse(ast.unparse(node), mode="eval").body, node)
    return clone


def _has_channel_ops(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            if sub.func.attr in {"pop", "peek", "push", "pop_many", "push_many"}:
                return True
    return False


def _has_consuming_ops(node: ast.AST) -> bool:
    """Channel operations that move the pop/push counters — ``peek`` is
    read-only and excluded, so peek-only constructs never cost exactness."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            if sub.func.attr in {"pop", "push", "pop_many", "push_many"}:
                return True
    return False


def inspect_unwrap(fn: Any) -> Any:
    import inspect

    try:
        return inspect.unwrap(fn)
    except Exception:
        return fn


def _is_plain_function(fn: Any) -> bool:
    import types

    return isinstance(fn, types.FunctionType)


def analyze_rates(filt: Filter, unstable_attrs: Set[str]) -> RateReport:
    """Symbolically execute ``filt.work()`` and report channel counts.

    ``unstable_attrs`` are the attributes the effects pass proved (or
    suspects) are mutated across firings — their reads evaluate to
    :data:`UNKNOWN` so the analysis never trusts a stale build-time value.
    """
    return RateAnalyzer(filt, unstable_attrs).run()
