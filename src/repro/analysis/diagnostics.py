"""The diagnostics engine behind ``streamlint``.

Every finding of the static-analysis passes (:mod:`repro.analysis`) is a
:class:`Diagnostic` with a *stable code* (``SL001``, ``SL102``, …), a
severity, and a human-readable message naming the offending filter
instance.  Stable codes let suppressions, CI gating, and documentation
refer to a finding independently of its message text.

Code space (see the table in DESIGN.md):

* ``SL0xx`` — rate contract violations (``work()`` vs declared rates);
* ``SL1xx`` — effects/purity findings (state writes, dynamic mutation);
* ``SL2xx`` — linearity screening;
* ``SL3xx`` — execution-engine facts (vectorization proofs, downgrades).

A filter class may opt out of specific codes by declaring::

    class Legacy(Filter):
        #: SL005: rates flow through self.fn, which is opaque by design.
        lint_suppress = ("SL005",)

Suppressed diagnostics are still produced (so ``streamlint`` can report
them) but are ignored by validation and by strict-mode exit codes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class Severity(enum.IntEnum):
    """Severity of a diagnostic, ordered so ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.name.lower()


#: code -> (default severity, short title).  The single registry every pass
#: draws from; tests assert codes never change meaning.
CODES: Dict[str, Tuple[Severity, str]] = {
    # -- rate contract (SL0xx) --------------------------------------------
    "SL001": (Severity.ERROR, "push-rate-mismatch"),
    "SL002": (Severity.ERROR, "pop-rate-mismatch"),
    "SL003": (Severity.ERROR, "peek-out-of-bounds"),
    "SL004": (Severity.ERROR, "illegal-declared-rates"),
    "SL005": (Severity.WARNING, "unanalyzable-rates"),
    "SL006": (Severity.ERROR, "missing-work"),
    "SL007": (Severity.INFO, "over-declared-peek"),
    # -- effects / purity (SL1xx) -----------------------------------------
    "SL101": (Severity.INFO, "stateful-filter"),
    "SL102": (Severity.ERROR, "hidden-state-write"),
    "SL103": (Severity.WARNING, "dynamic-state-write"),
    "SL104": (Severity.WARNING, "opaque-self-escape"),
    # -- linearity (SL2xx) -------------------------------------------------
    "SL201": (Severity.INFO, "affine-candidate"),
    # -- execution engines (SL3xx) ----------------------------------------
    "SL300": (Severity.INFO, "vector-certified"),
    "SL301": (Severity.INFO, "not-vectorizable"),
    "SL302": (Severity.WARNING, "engine-scalar-fallback"),
    "SL303": (Severity.WARNING, "superbatch-degraded"),
    "SL304": (Severity.WARNING, "engine-parallel-fallback"),
    "SL305": (Severity.WARNING, "codegen-fallback"),
    "SL306": (Severity.WARNING, "tuned-plan-discarded"),
    # -- whole-graph analysis (SL4xx) --------------------------------------
    "SL401": (Severity.WARNING, "shared-mutable-state"),
    "SL402": (Severity.WARNING, "unbounded-parallel-effects"),
    "SL403": (Severity.WARNING, "portal-crosses-partition"),
    "SL404": (Severity.INFO, "ring-capacity-proved"),
    "SL405": (Severity.INFO, "fusion-region-certified"),
}

#: code -> one-line description, rendered by ``streamlint --codes``.  Keep
#: in sync with :data:`CODES`; a test asserts the key sets match.
CODE_DESCRIPTIONS: Dict[str, str] = {
    "SL001": "work() pushes a different number of items than the declared push rate",
    "SL002": "work() pops a different number of items than the declared pop rate",
    "SL003": "work() peeks beyond the declared peek window",
    "SL004": "declared rates are illegal (negative, or peek below pop)",
    "SL005": "work()'s I/O rates cannot be determined statically",
    "SL006": "filter defines no work() function",
    "SL007": "declared peek window is larger than any access work() makes",
    "SL101": "filter mutates its own state across firings (blocks fission)",
    "SL102": "work() writes filter state through an alias the declaration hides",
    "SL103": "work() mutates state behind a dynamic attribute access",
    "SL104": "self escapes into opaque code, so state writes cannot be ruled out",
    "SL201": "filter body looks affine — a candidate for the linear-dataflow path",
    "SL300": "static proof certifies the generic vector lifting of this filter",
    "SL301": "filter cannot be vectorized generically (stateful or opaque)",
    "SL302": "engine request downgraded to the scalar interpreter",
    "SL303": "superbatching degraded: a feedback core runs period-at-a-time",
    "SL304": "engine request downgraded from parallel to batched execution",
    "SL305": "whole-program codegen fell back to executor calls for some or all blocks",
    "SL306": "cached tuned parameters discarded (plan/host fingerprint mismatch or corrupt entry)",
    "SL401": "two or more filter instances alias the same mutable object and at least one mutates it (a parallel race across forked workers)",
    "SL402": "work()'s effects cannot be bounded statically (dynamic writes or self escapes), so parallel race freedom cannot be proven",
    "SL403": "a teleport portal targets a receiver in a different worker partition than its sender",
    "SL404": "a cross-worker ring's minimal safe capacity was statically proved stall-free (graph-analysis fact)",
    "SL405": "a splitjoin region is certified safe for cross-boundary fusion (graph-analysis fact)",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass."""

    code: str
    message: str
    #: Name of the filter instance (or graph element) the finding is about.
    subject: str = ""
    #: Class name of the subject, for grouping in reports.
    subject_type: str = ""
    severity: Severity = field(default=Severity.ERROR)
    #: True when the subject's class suppresses this code via lint_suppress.
    suppressed: bool = False

    @staticmethod
    def make(code: str, message: str, subject: object = None) -> "Diagnostic":
        """Build a diagnostic with the registered severity for ``code``."""
        if code not in CODES:
            raise KeyError(f"unknown diagnostic code {code!r}")
        severity, _title = CODES[code]
        name = getattr(subject, "name", "") if subject is not None else ""
        type_name = type(subject).__name__ if subject is not None else ""
        return Diagnostic(
            code=code,
            message=message,
            subject=name,
            subject_type=type_name,
            severity=severity,
        )

    @property
    def title(self) -> str:
        return CODES[self.code][1]

    def with_suppression(self, codes: Iterable[str]) -> "Diagnostic":
        if self.code in codes and not self.suppressed:
            return replace(self, suppressed=True)
        return self

    def format(self) -> str:
        where = f" [{self.subject} ({self.subject_type})]" if self.subject else ""
        note = " (suppressed)" if self.suppressed else ""
        return f"{self.code} {self.severity}{note}: {self.message}{where}"

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.format()


def suppressed_codes(obj: object) -> Tuple[str, ...]:
    """The ``lint_suppress`` codes declared by ``obj``'s class (or ``obj``)."""
    codes = getattr(type(obj), "lint_suppress", ()) or ()
    if isinstance(codes, str):  # a lone "SL005" instead of ("SL005",)
        codes = (codes,)
    return tuple(str(c) for c in codes)


class DiagnosticBag:
    """An ordered collection of diagnostics with severity accounting."""

    def __init__(self, items: Optional[Iterable[Diagnostic]] = None) -> None:
        self.items: List[Diagnostic] = list(items) if items else []

    def add(self, diag: Diagnostic) -> None:
        self.items.append(diag)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.items.extend(diags)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def active(self, min_severity: Severity = Severity.INFO) -> List[Diagnostic]:
        """Unsuppressed diagnostics at or above ``min_severity``."""
        return [
            d for d in self.items if not d.suppressed and d.severity >= min_severity
        ]

    def errors(self) -> List[Diagnostic]:
        return self.active(Severity.ERROR)

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.active(Severity.WARNING) if d.severity == Severity.WARNING]

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.items if d.code == code]

    def summary(self) -> Dict[str, int]:
        """Counts per code over unsuppressed diagnostics."""
        counts: Dict[str, int] = {}
        for d in self.items:
            if not d.suppressed:
                counts[d.code] = counts.get(d.code, 0) + 1
        return dict(sorted(counts.items()))

    def sorted(self) -> List[Diagnostic]:
        """Worst first, then by code, then by subject for stable output."""
        return sorted(
            self.items, key=lambda d: (-int(d.severity), d.code, d.subject)
        )
