"""Whole-graph static analysis: races, ring capacities, fusion regions.

PR 3's :mod:`repro.analysis` proves facts about *single* filters (purity,
exact rates, vectorization safety).  This module lifts those facts to the
flattened graph and produces three certified artifacts the execution
engines consume:

**Parallel race/escape detection** (SL401-SL403).  The parallel engine
forks workers, so each process gets copy-on-write copies of every filter.
That is only safe when no two filter instances *alias the same mutable
object* with at least one of them mutating it — after the fork the copies
diverge silently, and the parallel run stops matching the scalar one.
:func:`shared_state_groups` finds such aliases by object identity over the
instances' attribute dictionaries; filters whose effects cannot be bounded
at all (dynamic writes, ``self`` escapes) are flagged SL402 and refused by
:class:`~repro.runtime.parallel.ParallelSession`.  Teleport portals whose
sender and receivers land in different worker partitions are SL403
(messaging is process-local); :func:`repro.mapping.strategies.partition_nodes`
co-locates both hazard kinds instead of discovering corruption at run time.

**Ring-capacity and stall-freedom proofs** (SL404).
:func:`ring_capacity_proofs` replays the per-worker restricted schedules —
at the exact firing granularity the parallel runtime uses (monolithic
``count * batch_periods`` merges or per-period loops) — as a greedy
interleaving over abstract channel occupancies.  The replay is a *witness
schedule*: if it completes ``init`` plus two full batches, then per-worker
in-order execution with each cross edge capped at its replay peak can
never deadlock, because the earliest witness-order unit not yet completed
always has both enough items (its producer is ahead of the witness) and
enough space (its consumer is, too).  The peak is therefore a proved
minimal safe ring capacity, replacing the fixed-capacity guess.

**Certified fusion regions** (SL405).  :func:`certified_fusion_regions`
finds splitjoins whose every branch is a chain of single-input
single-output filters with *pure* effects and *exact* rates, with no
initial items on any internal edge.  Executing such a region's nodes in
the global steady order, once per period, is observationally identical to
the scalar interpreter (same firings, same item routing, same
floating-point order per firing) — so the codegen engine may fuse across
the splitjoin boundary it previously treated as a hard block wall.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis import analyze_filter
from repro.analysis.diagnostics import Diagnostic, DiagnosticBag, suppressed_codes
from repro.graph.composites import SplitJoin
from repro.graph.flatgraph import (
    FILTER,
    JOINER,
    SPLITTER,
    FlatEdge,
    FlatGraph,
    FlatNode,
)
from repro.graph.splitjoin import COMBINE, DUPLICATE, ROUND_ROBIN
from repro.scheduling.steady import ProgramSchedule, restrict_schedule

__all__ = [
    "SharedStateGroup",
    "PortalLink",
    "FusionRegion",
    "RingProof",
    "GraphAnalysis",
    "GraphReport",
    "shared_state_groups",
    "portal_links",
    "certified_fusion_regions",
    "analyze_flat_graph",
    "ring_capacity_proofs",
    "graph_report",
]


# ---------------------------------------------------------------------------
# Shared mutable state across filter instances
# ---------------------------------------------------------------------------

#: Attributes every Filter owns; the framework mutates/rebinds these itself.
_FRAMEWORK_ATTRS = frozenset({"name", "rate", "input", "output", "_uid"})

#: Value types that cannot be mutated in place — aliasing them is harmless.
_IMMUTABLE_TYPES = (
    bool,
    int,
    float,
    complex,
    str,
    bytes,
    tuple,
    frozenset,
    range,
    type(None),
)


def _shareable(value: Any) -> bool:
    """Could aliasing ``value`` across forked workers cause divergence?"""
    if isinstance(value, _IMMUTABLE_TYPES):
        return False
    if inspect.ismodule(value) or inspect.isclass(value):
        return False
    if inspect.isroutine(value):  # plain functions/methods used as callbacks
        return False
    from repro.runtime.messaging import Portal  # late: avoid import cycle

    if isinstance(value, Portal):
        return False  # portal aliasing is the SL403 analysis, not SL401
    return True


@dataclass(frozen=True)
class SharedStateGroup:
    """One mutable object aliased by two or more filter instances."""

    #: ``(filter instance name, attribute)`` for every alias, sorted.
    members: Tuple[Tuple[str, str], ...]
    #: Names of the member filters whose ``work()`` mutates the attribute.
    mutators: Tuple[str, ...]
    #: Type name of the shared object, for the diagnostic message.
    type_name: str

    @property
    def filter_names(self) -> Tuple[str, ...]:
        return tuple(sorted({name for name, _attr in self.members}))

    def payload(self) -> Dict[str, Any]:
        return {
            "members": [list(m) for m in self.members],
            "mutators": list(self.mutators),
            "type": self.type_name,
        }


def shared_state_groups(graph: FlatGraph) -> List[SharedStateGroup]:
    """Mutable objects reachable as attributes of >= 2 filter instances.

    A group is a *race* only when at least one sharer mutates the attribute
    (per the effects pass) — or when a sharer's effects cannot be bounded,
    in which case mutation cannot be ruled out and the sharer counts as a
    mutator conservatively.
    """
    by_id: Dict[int, List[Tuple[FlatNode, str, Any]]] = {}
    for node in graph.filter_nodes():
        for attr, value in sorted(vars(node.filter).items()):
            if attr in _FRAMEWORK_ATTRS or not _shareable(value):
                continue
            by_id.setdefault(id(value), []).append((node, attr, value))
    groups: List[SharedStateGroup] = []
    for entries in by_id.values():
        holders = {n.uid for n, _a, _v in entries}
        if len(holders) < 2:
            continue
        mutators: List[str] = []
        for node, attr, _value in entries:
            effects = analyze_filter(node.filter).effects
            if effects is None or attr in effects.mutated or effects.dynamic:
                mutators.append(node.name)
        if not mutators:
            continue
        groups.append(
            SharedStateGroup(
                members=tuple(sorted((n.name, a) for n, a, _v in entries)),
                mutators=tuple(sorted(set(mutators))),
                type_name=type(entries[0][2]).__name__,
            )
        )
    groups.sort(key=lambda g: g.members)
    return groups


# ---------------------------------------------------------------------------
# Teleport portal inventory
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PortalLink:
    """A teleport portal attribute and the receivers registered on it."""

    sender: str
    attr: str
    receivers: Tuple[str, ...]

    def payload(self) -> Dict[str, Any]:
        return {
            "sender": self.sender,
            "attr": self.attr,
            "receivers": list(self.receivers),
        }


def portal_links(graph: FlatGraph) -> List[PortalLink]:
    """Every Portal attribute on a filter, with its registered receivers."""
    from repro.runtime.messaging import Portal  # late: avoid import cycle

    links: List[PortalLink] = []
    for node in graph.filter_nodes():
        for attr, value in sorted(vars(node.filter).items()):
            if isinstance(value, Portal):
                links.append(
                    PortalLink(
                        sender=node.name,
                        attr=attr,
                        receivers=tuple(r.name for r in value.receivers),
                    )
                )
    links.sort(key=lambda l: (l.sender, l.attr))
    return links


# ---------------------------------------------------------------------------
# Certified cross-splitjoin fusion regions
# ---------------------------------------------------------------------------

_SPLIT_FUSABLE = frozenset({DUPLICATE, ROUND_ROBIN})
_JOIN_FUSABLE = frozenset({ROUND_ROBIN, COMBINE})


@dataclass(frozen=True)
class FusionRegion:
    """A splitjoin certified safe for cross-boundary fusion.

    ``members`` lists the region's flat nodes — splitter, branch filters,
    joiner — and is the unit the codegen engine fuses: the whole region
    runs once per steady period as a single closed loop.  Certification
    (pure effects, exact rates, no initial items) guarantees that loop is
    bit-exact against the scalar schedule: every firing consumes and
    produces the same items in the same order, and a COMBINE joiner's
    reducer sees the same arguments.
    """

    name: str
    splitter: FlatNode
    joiner: FlatNode
    members: Tuple[FlatNode, ...]
    branches: Tuple[Tuple[FlatNode, ...], ...]

    @property
    def filters(self) -> Tuple[FlatNode, ...]:
        """Just the branch filter nodes, in branch order."""
        return tuple(n for branch in self.branches for n in branch)

    @property
    def member_names(self) -> Tuple[str, ...]:
        return tuple(n.name for n in self.members)

    def payload(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "splitter": self.splitter.name,
            "joiner": self.joiner.name,
            "branches": len(self.branches),
            "filters": [n.name for n in self.filters],
        }


def _branch_filter_certified(node: FlatNode) -> bool:
    analysis = analyze_filter(node.filter)
    effects, rates = analysis.effects, analysis.rates
    if effects is None or not effects.pure:
        return False
    if rates is None or not rates.exact:
        return False
    return True


def _region_at(splitter: FlatNode) -> Optional[FusionRegion]:
    if splitter.flavor not in _SPLIT_FUSABLE:
        return None
    if not isinstance(splitter.obj, SplitJoin):
        return None  # feedback-loop splitters never qualify
    joiner: Optional[FlatNode] = None
    branches: List[Tuple[FlatNode, ...]] = []
    for edge in splitter.out_edges:
        if edge.initial:
            return None
        chain: List[FlatNode] = []
        cur = edge.dst
        while cur.kind == FILTER:
            if len(cur.in_edges) != 1 or len(cur.out_edges) != 1:
                return None
            if not _branch_filter_certified(cur):
                return None
            chain.append(cur)
            out = cur.out_edges[0]
            if out.initial:
                return None
            cur = out.dst
        if cur.kind != JOINER:
            return None  # nested splitjoin: not a flat region
        if joiner is None:
            joiner = cur
        elif cur is not joiner:
            return None
        branches.append(tuple(chain))
    if joiner is None or joiner.flavor not in _JOIN_FUSABLE:
        return None
    if joiner.obj is not splitter.obj:
        return None
    if len(joiner.in_edges) != len(splitter.out_edges):
        return None  # a zero-weight branch bypasses the splitter
    members = (splitter,) + tuple(n for b in branches for n in b) + (joiner,)
    return FusionRegion(
        name=splitter.obj.name,
        splitter=splitter,
        joiner=joiner,
        members=members,
        branches=tuple(branches),
    )


def certified_fusion_regions(graph: FlatGraph) -> List[FusionRegion]:
    """Maximal splitjoin regions provably safe to fuse across.

    Each region is *single-appearance by construction* once placed in a
    superbatch plan: the steady schedule is one topological sweep, so each
    member node appears exactly once, and the splitjoin's convexity means
    no node outside the region reads a region-internal edge.
    """
    regions: List[FusionRegion] = []
    for node in graph.nodes:
        if node.kind != SPLITTER:
            continue
        region = _region_at(node)
        if region is not None:
            regions.append(region)
    return regions


# ---------------------------------------------------------------------------
# Whole-graph analysis entry point (partition-independent facts)
# ---------------------------------------------------------------------------


@dataclass
class GraphAnalysis:
    """Partition-independent whole-graph facts plus their diagnostics."""

    shared_state: List[SharedStateGroup]
    portals: List[PortalLink]
    regions: List[FusionRegion]
    #: ``(filter name, reason)`` for filters whose effects are unbounded.
    unbounded: List[Tuple[str, str]]
    bag: DiagnosticBag

    def payload(self) -> Dict[str, Any]:
        return {
            "shared_state": [g.payload() for g in self.shared_state],
            "portals": [p.payload() for p in self.portals],
            "regions": [r.payload() for r in self.regions],
            "unbounded": [list(u) for u in self.unbounded],
        }


def analyze_flat_graph(graph: FlatGraph) -> GraphAnalysis:
    """Run every partition-independent graph pass and collect diagnostics."""
    bag = DiagnosticBag()

    groups = shared_state_groups(graph)
    by_name = {n.name: n for n in graph.filter_nodes()}
    for group in groups:
        who = ", ".join(f"{name}.{attr}" for name, attr in group.members)
        mutated_by = ", ".join(group.mutators)
        subject = by_name.get(group.mutators[0]) if group.mutators else None
        diag = Diagnostic.make(
            "SL401",
            f"{group.type_name} object shared by {who} is mutated by "
            f"{mutated_by}; forked workers would diverge silently",
            subject.filter if subject is not None else None,
        )
        if subject is not None:
            diag = diag.with_suppression(suppressed_codes(subject.filter))
        bag.add(diag)

    unbounded: List[Tuple[str, str]] = []
    for node in graph.filter_nodes():
        effects = analyze_filter(node.filter).effects
        if effects is None:
            continue  # SL006/SL005 territory, reported per-filter
        reasons = tuple(effects.dynamic) + tuple(effects.escapes)
        if not reasons:
            continue
        reason = "; ".join(reasons)
        unbounded.append((node.name, reason))
        bag.add(
            Diagnostic.make(
                "SL402",
                f"effects cannot be bounded statically ({reason}); parallel "
                "race freedom is unprovable",
                node.filter,
            ).with_suppression(suppressed_codes(node.filter))
        )

    portals = portal_links(graph)
    regions = certified_fusion_regions(graph)
    for region in regions:
        bag.add(
            Diagnostic.make(
                "SL405",
                f"splitjoin {region.name!r} certified for cross-boundary "
                f"fusion ({len(region.branches)} branches, "
                f"{len(region.filters)} filters, joiner {region.joiner.flavor})",
                region.splitter.obj,
            )
        )
    return GraphAnalysis(
        shared_state=groups,
        portals=portals,
        regions=regions,
        unbounded=unbounded,
        bag=bag,
    )


# ---------------------------------------------------------------------------
# Static ring-capacity / stall-freedom proof
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RingProof:
    """Proved minimal safe capacity for one cross-worker ring."""

    edge_name: str
    src: str
    dst: str
    src_wid: int
    dst_wid: int
    #: The proved minimal capacity (replay peak), or the legacy fallback
    #: capacity when ``proved`` is False.
    capacity: int
    #: Peak occupancy observed in the replay (== capacity when proved).
    peak_items: int
    proved: bool
    reason: str
    items_per_period: int
    #: The schedule's sequential buffer bound, for comparison.
    schedule_bound: int
    #: Items one batch generation pushes (batch_periods × items_per_period).
    batch_items: int = 0
    #: Certified double-buffered capacity: ``capacity + batch_items``.  The
    #: witness replay proves the barrier-free peak is ``capacity`` (the
    #: replay models no barriers at all), so one extra batch generation of
    #: headroom lets producers run a whole batch ahead of consumers while
    #: the proof's deadlock-freedom argument still applies verbatim — the
    #: 2× bound the double-buffered discipline allocates at the default
    #: REPRO_RING_SLACK=1.  Meaningful only when ``proved`` is True.
    db_capacity: int = 0

    def payload(self) -> Dict[str, Any]:
        return {
            "edge": self.edge_name,
            "src_wid": self.src_wid,
            "dst_wid": self.dst_wid,
            "capacity": self.capacity,
            "peak_items": self.peak_items,
            "proved": self.proved,
            "reason": self.reason,
            "items_per_period": self.items_per_period,
            "schedule_bound": self.schedule_bound,
            "batch_items": self.batch_items,
            "db_capacity": self.db_capacity,
        }


def _edge_need(edge: FlatEdge, count: int) -> int:
    """Items the consumer must see on ``edge`` to fire ``count`` times.

    Mirrors ``ParallelSession._fire``'s pre-wait: ``count`` pops plus the
    filter's lookahead window beyond the last pop.
    """
    extra = edge.dst.peek_extra if edge.dst.kind == FILTER else 0
    return count * edge.pop_rate + extra


def _fallback_capacity(
    program: ProgramSchedule, edge: FlatEdge, batch_periods: int, per_period: int
) -> int:
    """The pre-proof fixed-capacity guess (init peak + two batches + slop)."""
    return program.buffer_bounds[edge] + 2 * batch_periods * per_period + 64


def ring_capacity_proofs(
    program: ProgramSchedule,
    node_wid: Dict[FlatNode, int],
    batch_periods: int = 1,
    monolithic: bool = False,
) -> Dict[FlatEdge, RingProof]:
    """Prove minimal safe ring capacities for a given worker partition.

    Replays the per-worker restricted schedules — merged to the exact
    firing granularity ``ParallelSession._exec_schedule`` uses — as a
    greedy interleaving over abstract occupancies, running the init
    schedule plus **two** full batches (one suffices by periodicity; the
    second confirms the steady peak repeats).  Every unit fires atomically
    once all its input edges hold ``count * pop + peek_extra`` items, the
    same condition the runtime blocks on.

    The completed replay is a witness schedule: in any real execution where
    each worker fires its units in order and each cross edge holds at most
    its replay peak, the earliest witness-order unit not yet completed is
    always enabled — its producers are at least as far along as in the
    witness (enough items) and its consumers are too (enough space) — so
    the session cannot deadlock.  The replay peak is therefore a proved
    minimal safe capacity.

    Because the replay models no barriers, a proved capacity certifies
    **barrier-free** execution directly: the parallel engine's
    double-buffered discipline drops the per-batch barrier for DAG
    strategies whenever every cross edge is proved, and each proof also
    carries the certified 2× bound ``db_capacity = capacity +
    batch_items`` — the allocation that lets producers run one whole
    batch generation ahead (the second buffer) at the default slack.

    If the greedy replay wedges (it should not, for schedules built by
    :func:`~repro.scheduling.steady.build_schedule`), every cross edge
    falls back to the legacy capacity guess with ``proved=False``.
    """
    graph = program.graph
    cross = [
        e for e in graph.edges if node_wid.get(e.src, 0) != node_wid.get(e.dst, 0)
    ]
    if not cross:
        return {}
    per_period = {e: program.reps[e.src] * e.push_rate for e in cross}

    wids = sorted({node_wid.get(n, 0) for n in graph.nodes})
    sequences: Dict[int, List[Tuple[FlatNode, int]]] = {}
    for wid in wids:
        nodes = frozenset(n for n in graph.nodes if node_wid.get(n, 0) == wid)
        init = restrict_schedule(program.init, nodes)
        steady = restrict_schedule(program.steady, nodes)
        if monolithic:
            batch = [(node, count * batch_periods) for node, count in steady]
        else:
            batch = [
                (node, count)
                for _ in range(batch_periods)
                for node, count in steady
            ]
        sequences[wid] = list(init.phases) + batch + batch

    occupancy: Dict[FlatEdge, int] = {e: len(e.initial) for e in graph.edges}
    peak: Dict[FlatEdge, int] = dict(occupancy)
    cursor = {wid: 0 for wid in wids}
    stuck: Optional[str] = None
    while True:
        pending = [wid for wid in wids if cursor[wid] < len(sequences[wid])]
        if not pending:
            break
        progress = False
        for wid in pending:
            seq = sequences[wid]
            while cursor[wid] < len(seq):
                node, count = seq[cursor[wid]]
                if any(
                    occupancy[e] < _edge_need(e, count)
                    for e in node.in_edges
                    if e.pop_rate > 0 or _edge_need(e, count) > 0
                ):
                    break
                cursor[wid] += 1
                progress = True
                for e in node.in_edges:
                    occupancy[e] -= count * e.pop_rate
                for e in node.out_edges:
                    occupancy[e] += count * e.push_rate
                    if occupancy[e] > peak[e]:
                        peak[e] = occupancy[e]
        if not progress:
            blocked = ", ".join(
                f"worker {wid} at {sequences[wid][cursor[wid]][0].name}"
                for wid in pending[:3]
            )
            stuck = f"replay wedged ({blocked}); capacities not proved"
            break

    mode = "monolithic" if monolithic else "per-period"
    proofs: Dict[FlatEdge, RingProof] = {}
    for e in cross:
        if stuck is None:
            capacity = max(1, peak[e])
            proved = True
            reason = (
                f"witness replay of init + 2 {mode} batches "
                f"(batch_periods={batch_periods}) completed with peak "
                f"{peak[e]}"
            )
        else:
            capacity = _fallback_capacity(program, e, batch_periods, per_period[e])
            proved = False
            reason = stuck
        batch_items = batch_periods * per_period[e]
        proofs[e] = RingProof(
            edge_name=f"{e.src.name}->{e.dst.name}",
            src=e.src.name,
            dst=e.dst.name,
            src_wid=node_wid.get(e.src, 0),
            dst_wid=node_wid.get(e.dst, 0),
            capacity=capacity,
            peak_items=peak[e],
            proved=proved,
            reason=reason,
            items_per_period=per_period[e],
            schedule_bound=program.buffer_bounds[e],
            batch_items=batch_items,
            db_capacity=(capacity + batch_items) if proved else 0,
        )
    return proofs


# ---------------------------------------------------------------------------
# Convenience driver for ``streamlint --graph``
# ---------------------------------------------------------------------------


@dataclass
class GraphReport:
    """Everything ``streamlint --graph`` reports for one stream."""

    stream_name: str
    analysis: GraphAnalysis
    proofs: List[RingProof]
    strategy: str
    cores: int
    #: Why the representative partition could not be computed, if it could not.
    partition_error: Optional[str]
    #: Rate-balance / maxloop verification outcome (auxiliary record).
    verified: bool
    verify_detail: str
    bag: DiagnosticBag

    def payload(self) -> Dict[str, Any]:
        data = self.analysis.payload()
        data.update(
            {
                "stream": self.stream_name,
                "strategy": self.strategy,
                "cores": self.cores,
                "verified": self.verified,
                "rings": [p.payload() for p in self.proofs],
                "summary": self.bag.summary(),
            }
        )
        if self.partition_error:
            data["partition_error"] = self.partition_error
        return data


def graph_report(stream, cores: int = 2, strategy: str = "softpipe") -> GraphReport:
    """Run the whole-graph pass on a stream with a representative partition.

    The partition (``strategy`` on ``cores`` workers) exists to make the
    partition-*dependent* facts concrete for lint output: ring-capacity
    proofs per cross edge, and SL403 portal-boundary checks.  The actual
    parallel runtime recomputes proofs for whatever partition it really
    uses.
    """
    from repro.graph.flatgraph import flatten
    from repro.scheduling.steady import build_schedule
    from repro.scheduling.verification import verify_program

    graph = flatten(stream)
    analysis = analyze_flat_graph(graph)
    bag = DiagnosticBag(list(analysis.bag))

    verification = verify_program(stream)

    proofs: List[RingProof] = []
    partition_error: Optional[str] = None
    try:
        from repro.mapping.strategies import partition_nodes

        program = build_schedule(graph)
        part = partition_nodes(stream, graph, program.reps, strategy, cores)
        used = sorted(set(part.values()))
        wid_of_core = {core: i + 1 for i, core in enumerate(used)}
        node_wid = {
            node: wid_of_core.get(part.get(node), 0) if node in part else 0
            for node in graph.nodes
        }
        if len(used) >= 2:
            name_wid = {n.name: w for n, w in node_wid.items()}
            for link in analysis.portals:
                wids = {name_wid.get(link.sender, 0)} | {
                    name_wid.get(r, 0) for r in link.receivers
                }
                if len(wids) > 1:
                    bag.add(
                        Diagnostic.make(
                            "SL403",
                            f"portal {link.sender}.{link.attr} spans worker "
                            f"partitions {sorted(wids)}; teleport delivery "
                            "is process-local",
                        )
                    )
            edge_proofs = ring_capacity_proofs(program, node_wid)
            proofs = sorted(edge_proofs.values(), key=lambda p: p.edge_name)
            for proof in proofs:
                if proof.proved:
                    bag.add(
                        Diagnostic.make(
                            "SL404",
                            f"ring {proof.edge_name} proved stall-free at "
                            f"capacity {proof.capacity} "
                            f"(schedule bound {proof.schedule_bound})",
                        )
                    )
    except Exception as exc:
        partition_error = f"{type(exc).__name__}: {exc}"

    return GraphReport(
        stream_name=getattr(stream, "name", type(stream).__name__),
        analysis=analysis,
        proofs=proofs,
        strategy=strategy,
        cores=cores,
        partition_error=partition_error,
        verified=verification.ok,
        verify_detail=verification.detail,
        bag=bag,
    )
