"""``streamlint`` — audit stream programs with the static-analysis passes.

Usage::

    python -m repro.analysis.lint src/repro/apps --strict
    python -m repro.analysis.lint repro.apps.fft my_module --json OUT.json
    python -m repro.analysis.lint src/repro/apps --graph --json OUT.json

Targets may be dotted module names, single ``.py`` files, or directories
(walked recursively for importable modules).  For every target module the
linter calls each public zero-required-argument ``build*`` factory, flattens
the resulting stream, and reports the analysis diagnostics per filter
instance.

Exit status: ``1`` when any unsuppressed **error** is found, or — with
``--strict`` — any unsuppressed **warning**; ``2`` for usage problems
(nothing importable, no streams found); ``0`` otherwise.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import json
import os
import pkgutil
import sys
import traceback
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis import DiagnosticBag, Severity, analyze_stream
from repro.graph.base import Stream

_SEVERITIES = {
    "info": Severity.INFO,
    "warning": Severity.WARNING,
    "error": Severity.ERROR,
}


def _module_name_for_path(path: str) -> Optional[Tuple[str, str]]:
    """(sys.path root, dotted module name) for a ``.py`` file or package dir."""
    path = os.path.abspath(path)
    if os.path.isfile(path) and path.endswith(".py"):
        base = os.path.splitext(os.path.basename(path))[0]
        parent = os.path.dirname(path)
        parts = [] if base == "__init__" else [base]
    elif os.path.isdir(path):
        parent = path
        parts = []
    else:
        return None
    # Climb while the directory is a package, building the dotted prefix.
    while os.path.isfile(os.path.join(parent, "__init__.py")):
        parts.insert(0, os.path.basename(parent))
        parent = os.path.dirname(parent)
    if not parts:
        return None
    return parent, ".".join(parts)


def _import_target(target: str) -> List[object]:
    """Import a target spec into a list of module objects."""
    root_and_name = _module_name_for_path(target)
    if root_and_name is not None:
        root, name = root_and_name
        if root not in sys.path:
            sys.path.insert(0, root)
    else:
        name = target
    module = importlib.import_module(name)
    modules = [module]
    # A package: also lint its importable submodules.
    if hasattr(module, "__path__"):
        for info in pkgutil.iter_modules(module.__path__):
            if info.name.startswith("_"):
                continue
            modules.append(importlib.import_module(f"{name}.{info.name}"))
    return modules


def _builders(module: object) -> List[Tuple[str, object]]:
    """Public zero-required-argument ``build*`` callables of a module."""
    found = []
    for attr in sorted(vars(module)):
        if not attr.startswith("build"):
            continue
        fn = getattr(module, attr)
        if not callable(fn) or getattr(fn, "__module__", None) != module.__name__:
            continue
        try:
            sig = inspect.signature(fn)
        except (TypeError, ValueError):
            continue
        required = [
            p
            for p in sig.parameters.values()
            if p.default is inspect.Parameter.empty
            and p.kind
            in (
                inspect.Parameter.POSITIONAL_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            )
        ]
        if required:
            continue
        found.append((attr, fn))
    return found


def _lint_module(
    module: object, verbose: bool, graph: bool = False
) -> Tuple[Dict[str, DiagnosticBag], Dict[str, dict], List[str]]:
    """app-label -> diagnostics for every buildable stream in ``module``."""
    apps: Dict[str, DiagnosticBag] = {}
    graphs: Dict[str, dict] = {}
    failures: List[str] = []
    for attr, fn in _builders(module):
        label = f"{module.__name__}.{attr}"
        try:
            stream = fn()
        except Exception as exc:
            failures.append(f"{label}: builder raised {type(exc).__name__}: {exc}")
            if verbose:
                traceback.print_exc()
            continue
        if not isinstance(stream, Stream):
            continue
        try:
            apps[label] = analyze_stream(stream)
        except Exception as exc:
            failures.append(f"{label}: analysis raised {type(exc).__name__}: {exc}")
            if verbose:
                traceback.print_exc()
            continue
        if graph:
            try:
                from repro.analysis.graph import graph_report

                report = graph_report(stream)
                apps[label].extend(report.bag)
                graphs[label] = report.payload()
            except Exception as exc:
                failures.append(
                    f"{label}: graph analysis raised {type(exc).__name__}: {exc}"
                )
                if verbose:
                    traceback.print_exc()
    return apps, graphs, failures


def run_lint(
    targets: Iterable[str],
    strict: bool = False,
    min_severity: Severity = Severity.WARNING,
    json_path: Optional[str] = None,
    verbose: bool = False,
    graph: bool = False,
    out=None,
) -> int:
    out = out or sys.stdout
    apps: Dict[str, DiagnosticBag] = {}
    graphs: Dict[str, dict] = {}
    failures: List[str] = []
    for target in targets:
        try:
            modules = _import_target(target)
        except ImportError as exc:
            print(f"streamlint: cannot import {target!r}: {exc}", file=sys.stderr)
            return 2
        for module in modules:
            module_apps, module_graphs, module_failures = _lint_module(
                module, verbose, graph
            )
            apps.update(module_apps)
            graphs.update(module_graphs)
            failures.extend(module_failures)

    if not apps and not failures:
        print("streamlint: no buildable streams found in targets", file=sys.stderr)
        return 2

    shown_floor = Severity.INFO if verbose else min_severity
    total = DiagnosticBag()
    errors = warnings = suppressed = 0
    for label in sorted(apps):
        bag = apps[label]
        total.extend(bag)
        shown = [
            d
            for d in bag.sorted()
            if (not d.suppressed and d.severity >= shown_floor)
            or (verbose and d.suppressed)
        ]
        for d in shown:
            print(f"{label}: {d.format()}", file=out)
        if graph and label in graphs:
            g = graphs[label]
            rings = g.get("rings", [])
            proved = sum(1 for r in rings if r.get("proved"))
            print(
                f"{label}: graph: {len(g.get('regions', []))} certified "
                f"region(s), {proved}/{len(rings)} ring(s) proved, "
                f"{len(g.get('shared_state', []))} shared-state group(s)",
                file=out,
            )
        errors += len(bag.errors())
        warnings += len(bag.warnings())
        suppressed += sum(1 for d in bag if d.suppressed)
    for failure in failures:
        print(f"streamlint: ERROR {failure}", file=out)

    summary = total.summary()
    checked = len(apps)
    line = (
        f"streamlint: {checked} stream(s), {len(total)} finding(s): "
        f"{errors} error(s), {warnings} warning(s), {suppressed} suppressed"
    )
    if summary:
        line += " | " + " ".join(f"{code}×{n}" for code, n in summary.items())
    print(line, file=out)

    if json_path:
        payload = {
            "targets": list(targets),
            "streams": {
                label: [
                    {
                        "code": d.code,
                        "title": d.title,
                        "severity": str(d.severity),
                        "subject": d.subject,
                        "subject_type": d.subject_type,
                        "message": d.message,
                        "suppressed": d.suppressed,
                    }
                    for d in bag.sorted()
                ]
                for label, bag in sorted(apps.items())
            },
            "summary": summary,
            "errors": errors,
            "warnings": warnings,
            "suppressed": suppressed,
            "builder_failures": failures,
        }
        if graph:
            payload["graph"] = graphs
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    if errors or failures:
        return 1
    if strict and warnings:
        return 1
    return 0


def print_codes(out=None) -> int:
    """``--codes``: the stable diagnostic registry, one line per code."""
    from repro.analysis.diagnostics import CODES, CODE_DESCRIPTIONS

    out = out or sys.stdout
    for code in sorted(CODES):
        severity, title = CODES[code]
        description = CODE_DESCRIPTIONS.get(code, "")
        print(f"{code}  {str(severity):7s} {title:24s} {description}", file=out)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Statically analyze stream programs (streamlint).",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="dotted module names, .py files, or package directories",
    )
    parser.add_argument(
        "--codes",
        action="store_true",
        help="list every stable SLxxx diagnostic code and exit",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on unsuppressed warnings, not just errors",
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help=(
            "also run the whole-graph pass (races, ring-capacity proofs, "
            "certified fusion regions) per stream; adds a 'graph' section "
            "to --json output"
        ),
    )
    parser.add_argument(
        "--min-severity",
        choices=sorted(_SEVERITIES),
        default="warning",
        help="lowest severity to print (default: warning)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="write the full diagnostic report as JSON",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also print INFO and suppressed findings",
    )
    ns = parser.parse_args(argv)
    if ns.codes:
        return print_codes()
    if not ns.targets:
        parser.error("targets are required unless --codes is given")
    return run_lint(
        ns.targets,
        strict=ns.strict,
        min_severity=_SEVERITIES[ns.min_severity],
        json_path=ns.json,
        verbose=ns.verbose,
        graph=ns.graph,
    )


if __name__ == "__main__":
    raise SystemExit(main())
