"""Effects/purity analysis of filter ``work()`` functions.

A class-level AST pass that proves which ``self`` attributes a work
function *reads* and *writes* — including writes reached through loops and
conditionals, through helper-method calls (``self._round(x)`` is resolved
against the class and analyzed recursively), and through **aliases**
(``buf = self.buf; buf[0] = x`` is a write to ``self.buf``).  Constructs it
cannot bound — ``setattr(self, …)``, ``self.__dict__``, ``vars(self)``,
passing ``self`` to unknown code — are reported as *dynamic* effects and
treated conservatively by every consumer.

Two layers:

* :func:`work_effects` — per-class, purely syntactic, cached.  Knows
  nothing about attribute *values*.
* :func:`classify` — per-instance.  Resolves attribute method calls against
  the live instance (a call on a :class:`~repro.runtime.messaging.Portal`
  attribute is a *message send*, not a state write) and produces the
  stateless / peeking / stateful classification the optimizers consume.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.graph.base import Filter

#: Attributes that are runtime wiring, not filter state.
CHANNEL_ATTRS = frozenset({"input", "output"})
#: Channel I/O methods (on ``self`` or on ``self.input``/``self.output``).
CHANNEL_METHODS = frozenset({"pop", "peek", "push", "pop_many", "push_many"})

_DYNAMIC_BUILTINS = frozenset({"setattr", "delattr", "vars"})


class SourceUnavailable(Exception):
    """The method's source text cannot be recovered (C ext, exec, REPL)."""


def method_ast(cls: type, name: str = "work") -> ast.FunctionDef:
    """Parse ``cls.<name>`` into a function AST (raises SourceUnavailable)."""
    fn = inspect.unwrap(getattr(cls, name))
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        raise SourceUnavailable(f"{cls.__name__}.{name}: {exc}")
    tree = ast.parse(source)
    node = tree.body[0]
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise SourceUnavailable(f"{cls.__name__}.{name} is not a plain function")
    return node


@dataclass
class WorkEffects:
    """Class-level effect summary of ``work`` plus reachable helpers."""

    #: ``self`` attributes read (excluding channels).
    reads: Set[str] = field(default_factory=set)
    #: ``self`` attributes written directly, by subscript, or via an alias.
    writes: Set[str] = field(default_factory=set)
    #: ``(attr, method)`` calls on self attributes — possible mutations
    #: (``self.buf.append``) or message sends (``self.portal.retune``).
    attr_calls: Set[Tuple[str, str]] = field(default_factory=set)
    #: Reasons the analysis had to give up on bounding the write set.
    dynamic: List[str] = field(default_factory=list)
    #: Reasons ``self`` escapes to code the analysis cannot see.
    escapes: List[str] = field(default_factory=list)
    #: Helper methods that were resolved and analyzed.
    helpers: Set[str] = field(default_factory=set)

    @property
    def bounded(self) -> bool:
        """True when the write set is provably complete."""
        return not self.dynamic and not self.escapes


#: (class, method name) -> WorkEffects; classes are module-level, so the
#: cache can key on the type object itself for the process lifetime.
_EFFECTS_CACHE: Dict[Tuple[type, str], WorkEffects] = {}


def work_effects(cls: type, method: str = "work") -> WorkEffects:
    """Effects of ``cls.<method>`` including transitively-called helpers."""
    key = (cls, method)
    if key not in _EFFECTS_CACHE:
        eff = WorkEffects()
        try:
            fn = method_ast(cls, method)
        except SourceUnavailable as exc:
            eff.dynamic.append(str(exc))
        else:
            _Scanner(cls, eff, visiting={method}).run(fn)
        _EFFECTS_CACHE[key] = eff
    return _EFFECTS_CACHE[key]


class _Scanner:
    """One method's scan; helper calls recurse with a shared effect set."""

    _MAX_DEPTH = 8

    def __init__(self, cls: type, eff: WorkEffects, visiting: Set[str], depth: int = 0) -> None:
        self.cls = cls
        self.eff = eff
        self.visiting = visiting
        self.depth = depth
        #: local name -> alias: "self" or ("attr", name); absent = plain local.
        self.aliases: Dict[str, object] = {}

    # -- entry ---------------------------------------------------------------

    def run(self, fn: ast.FunctionDef) -> None:
        self_name = fn.args.args[0].arg if fn.args.args else "self"
        self.aliases[self_name] = "self"
        self.body(fn.body)

    # -- alias helpers -------------------------------------------------------

    def _is_self(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and self.aliases.get(node.id) == "self"

    def _self_attr(self, node: ast.expr) -> Optional[str]:
        """``self.X`` (directly or through a self alias) -> ``X``."""
        if isinstance(node, ast.Attribute) and self._is_self(node.value):
            return node.attr
        return None

    def _aliased_attr(self, node: ast.expr) -> Optional[str]:
        """A name bound to ``self.X`` -> ``X``; also ``self.X`` itself."""
        attr = self._self_attr(node)
        if attr is not None:
            return attr
        if isinstance(node, ast.Name):
            alias = self.aliases.get(node.id)
            if isinstance(alias, tuple):
                return alias[1]
        return None

    # -- statements ----------------------------------------------------------

    def body(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self.stmt(stmt)

    def stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self.expr(stmt.value)
            for target in stmt.targets:
                self.target(target, value=stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self.expr(stmt.value)
            # ``buf += …`` may mutate in place: treat like a write even when
            # the target is only an alias of a self attribute.
            attr = self._aliased_attr(stmt.target)
            if attr is not None and attr not in CHANNEL_ATTRS:
                self.eff.writes.add(attr)
            self.target(stmt.target, value=None, keep_alias=True)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.expr(stmt.value)
                self.target(stmt.target, value=stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.expr(stmt.test)
            self.body(stmt.body)
            self.body(stmt.orelse)
        elif isinstance(stmt, ast.For):
            self.expr(stmt.iter)
            self.target(stmt.target, value=None)
            self.body(stmt.body)
            self.body(stmt.orelse)
        elif isinstance(stmt, ast.Expr):
            self.expr(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                if self._is_self(stmt.value):
                    self.eff.escapes.append("work returns self")
                else:
                    self.expr(stmt.value)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                attr = self._aliased_attr(target)
                if attr is not None:
                    self.eff.writes.add(attr)
                else:
                    self.expr_children(target)
        elif isinstance(stmt, (ast.Global, ast.Nonlocal)):
            self.eff.dynamic.append(
                f"declares {' '.join(stmt.names)} {type(stmt).__name__.lower()}"
            )
        elif isinstance(stmt, ast.Assert):
            self.expr(stmt.test)
            if stmt.msg is not None:
                self.expr(stmt.msg)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.expr(stmt.exc)
            if stmt.cause is not None:
                self.expr(stmt.cause)
        elif isinstance(stmt, (ast.Pass, ast.Break, ast.Continue)):
            pass
        elif isinstance(stmt, ast.Try):
            self.body(stmt.body)
            for handler in stmt.handlers:
                self.body(handler.body)
            self.body(stmt.orelse)
            self.body(stmt.finalbody)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.expr(item.context_expr)
            self.body(stmt.body)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # A nested function closing over self can do anything later.
            if any(
                isinstance(n, ast.Name) and self.aliases.get(n.id) == "self"
                for n in ast.walk(stmt)
            ):
                self.eff.escapes.append(f"self captured by nested {stmt.name!r}")
        else:
            self.generic(stmt)

    def target(self, node: ast.expr, value: Optional[ast.expr], keep_alias: bool = False) -> None:
        if isinstance(node, ast.Name):
            if keep_alias:
                return
            # Track aliases created by plain ``x = self`` / ``x = self.attr``.
            if value is not None and self._is_self(value):
                self.aliases[node.id] = "self"
            else:
                attr = value is not None and self._self_attr(value)
                if attr:
                    self.aliases[node.id] = ("attr", attr)
                    if attr not in CHANNEL_ATTRS:
                        self.eff.reads.add(attr)
                else:
                    self.aliases.pop(node.id, None)
            return
        attr = self._self_attr(node)
        if attr is not None:
            self.eff.writes.add(attr)
            return
        if isinstance(node, ast.Subscript):
            attr = self._aliased_attr(node.value)
            if attr is not None and attr not in CHANNEL_ATTRS:
                self.eff.writes.add(attr)
            else:
                self.expr_children(node.value)
            self.expr(node.slice)
            return
        if isinstance(node, ast.Attribute):
            attr = self._aliased_attr(node.value)
            if attr is not None:
                self.eff.writes.add(attr)  # buf.field = … mutates self.buf
            else:
                self.expr(node.value)
            return
        if isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                self.target(elt, value=None)
            return
        if isinstance(node, ast.Starred):
            self.target(node.value, value=None)
            return
        self.generic(node)

    # -- expressions ---------------------------------------------------------

    def expr(self, node: ast.expr) -> None:
        if isinstance(node, ast.Name):
            if self.aliases.get(node.id) == "self":
                self.eff.escapes.append("bare self used as a value")
            return
        if isinstance(node, ast.Attribute):
            attr = self._self_attr(node)
            if attr is not None:
                if attr == "__dict__":
                    self.eff.dynamic.append("touches self.__dict__")
                elif attr not in CHANNEL_ATTRS:
                    self.eff.reads.add(attr)
                return
            self.expr(node.value)
            return
        if isinstance(node, ast.Call):
            self.call(node)
            return
        self.expr_children(node)

    def expr_children(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.expr(child)
            elif isinstance(child, ast.comprehension):
                self.expr(child.iter)
                self.target(child.target, value=None)
                for cond in child.ifs:
                    self.expr(cond)
            else:
                self.generic(child)

    def generic(self, node: ast.AST) -> None:
        """Fallback for unmodelled nodes: flag any bare-self use inside."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and self.aliases.get(sub.id) == "self":
                self.eff.escapes.append(
                    f"self reachable through unmodelled {type(node).__name__}"
                )
                return

    # -- calls ---------------------------------------------------------------

    def call(self, node: ast.Call) -> None:
        func = node.func
        handled_owner = False
        if isinstance(func, ast.Attribute):
            owner, method = func.value, func.attr
            if self._is_self(owner):
                handled_owner = True
                if method not in CHANNEL_METHODS:
                    self.helper_call(method)
            else:
                attr = self._aliased_attr(owner)
                if attr is not None:
                    handled_owner = True
                    if not (attr in CHANNEL_ATTRS and method in CHANNEL_METHODS):
                        # Conservatively a mutation (or a message send —
                        # classify() decides using the instance).
                        self.eff.attr_calls.add((attr, method))
                        self.eff.reads.add(attr)
            if not handled_owner:
                self.expr(owner)
        elif isinstance(func, ast.Name) and func.id in _DYNAMIC_BUILTINS:
            if any(self._is_self(arg) for arg in node.args):
                self.eff.dynamic.append(f"calls {func.id}() on self")
        else:
            self.expr(func)
        for arg in node.args:
            if self._is_self(arg):
                self.eff.escapes.append("self passed as a call argument")
            else:
                self.expr(arg)
        for kw in node.keywords:
            if kw.value is not None and self._is_self(kw.value):
                self.eff.escapes.append("self passed as a call argument")
            elif kw.value is not None:
                self.expr(kw.value)

    def helper_call(self, method: str) -> None:
        """Resolve and recurse into a ``self.<method>(…)`` helper."""
        if method in self.visiting or self.depth >= self._MAX_DEPTH:
            self.eff.dynamic.append(f"recursive helper call self.{method}()")
            return
        fn = getattr(self.cls, method, None)
        if fn is None:
            # A callable stored as an instance attribute (e.g. self.fn);
            # it cannot reach the filter unless self was passed to it.
            self.eff.attr_calls.add((method, "__call__"))
            self.eff.reads.add(method)
            return
        if isinstance(inspect.unwrap(fn), property):
            self.eff.reads.add(method)
            return
        if not inspect.isfunction(inspect.unwrap(fn)):
            self.eff.dynamic.append(f"unresolvable self.{method}() (not a plain method)")
            return
        try:
            helper = method_ast(self.cls, method)
        except SourceUnavailable as exc:
            self.eff.dynamic.append(str(exc))
            return
        self.eff.helpers.add(method)
        sub = _Scanner(
            self.cls, self.eff, visiting=self.visiting | {method}, depth=self.depth + 1
        )
        sub.run(helper)


# ---------------------------------------------------------------------------
# Instance-level classification
# ---------------------------------------------------------------------------

STATELESS = "stateless"
PEEKING = "peeking"
STATEFUL = "stateful"


@dataclass
class EffectsReport:
    """Instance-level effect summary consumed by the optimizers."""

    classification: str
    #: Complete mutated-attribute set (empty unless provably bounded).
    mutated: Tuple[str, ...]
    #: ``(attr, method)`` teleport sends through Portal attributes.
    message_sends: Tuple[Tuple[str, str], ...]
    dynamic: Tuple[str, ...]
    escapes: Tuple[str, ...]
    effects: WorkEffects

    @property
    def pure(self) -> bool:
        """No state writes, no dynamic effects, no escapes, no sends."""
        return (
            self.classification != STATEFUL
            and not self.message_sends
            and not self.dynamic
            and not self.escapes
        )


def classify(filt: Filter) -> EffectsReport:
    """Classify a filter instance as stateless / peeking / stateful."""
    eff = work_effects(type(filt))
    from repro.runtime.messaging import Portal  # late: avoid import cycles

    sends: List[Tuple[str, str]] = []
    mutated = set(eff.writes)
    for attr, method in sorted(eff.attr_calls):
        if isinstance(getattr(filt, attr, None), Portal):
            sends.append((attr, method))
        else:
            mutated.add(attr)
    if mutated or eff.dynamic or eff.escapes:
        kind = STATEFUL
    elif filt.rate.extra_peek > 0:
        kind = PEEKING
    else:
        kind = STATELESS
    return EffectsReport(
        classification=kind,
        mutated=tuple(sorted(mutated)),
        message_sends=tuple(sends),
        dynamic=tuple(eff.dynamic),
        escapes=tuple(dict.fromkeys(eff.escapes)),
        effects=eff,
    )
