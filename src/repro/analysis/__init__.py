"""``repro.analysis`` — static analysis of filter ``work()`` functions.

The pass pipeline (see DESIGN.md "Static analysis layer"):

1. :mod:`~repro.analysis.effects` — effects/purity: which ``self``
   attributes does ``work()`` read/write (through loops, branches, helper
   methods, aliases)?  Classifies stateless / peeking / stateful.
2. :mod:`~repro.analysis.rates` — symbolic channel counting: do the
   ``push``/``pop``/``peek`` occurrences match the declared rates, and do
   peek offsets stay in bounds?
3. :mod:`~repro.analysis.linearity` — affine pre-screen gating
   :func:`repro.linear.extraction.try_extract`.
4. :mod:`~repro.analysis.vectorsafety` — a machine-checkable proof that
   batched (column-wise) execution is bit-exact, consumed by
   :class:`repro.runtime.vectorize.BatchExecutor`.

All findings are :class:`~repro.analysis.diagnostics.Diagnostic` objects
with stable ``SLxxx`` codes; :func:`analyze_filter` bundles them (and the
raw pass results) into a cached :class:`FilterAnalysis` per instance.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Optional

from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticBag,
    Severity,
    suppressed_codes,
)
from repro.analysis.effects import (
    EffectsReport,
    WorkEffects,
    classify,
    work_effects,
)
from repro.analysis.linearity import affine_prescreen, affine_prescreen_report
from repro.analysis.rates import RateReport, analyze_rates
from repro.analysis.vectorsafety import VectorProof, prove_vectorizable
from repro.graph.base import Filter

__all__ = [
    "CODES",
    "Diagnostic",
    "DiagnosticBag",
    "EffectsReport",
    "FilterAnalysis",
    "RateReport",
    "Severity",
    "VectorProof",
    "WorkEffects",
    "affine_prescreen",
    "analyze_filter",
    "analyze_graph",
    "analyze_rates",
    "analyze_stream",
    "classify",
    "prove_vectorizable",
    "suppressed_codes",
    "work_effects",
]


@dataclass
class FilterAnalysis:
    """Everything the static passes know about one filter instance."""

    filter_name: str
    class_name: str
    effects: Optional[EffectsReport]
    rates: Optional[RateReport]
    affine_candidate: bool
    affine_reason: str
    proof: VectorProof
    diagnostics: DiagnosticBag

    @property
    def certified(self) -> bool:
        return self.proof.certified


_CACHE: "weakref.WeakKeyDictionary[Filter, FilterAnalysis]" = (
    weakref.WeakKeyDictionary()
)


def analyze_filter(filt: Filter, refresh: bool = False) -> FilterAnalysis:
    """Run (or fetch the cached) full analysis pipeline for one instance.

    Analyses are cached per live instance: attribute values read during
    rate analysis are the instance's *current* values, so callers that
    mutate configuration attributes after construction (or that analyze
    before ``init()``) can pass ``refresh=True``.
    """
    if not refresh:
        try:
            cached = _CACHE.get(filt)
        except TypeError:  # unhashable/unweakrefable exotic subclass
            cached = None
        if cached is not None:
            return cached
    analysis = _analyze(filt)
    try:
        _CACHE[filt] = analysis
    except TypeError:
        pass
    return analysis


def _analyze(filt: Filter) -> FilterAnalysis:
    bag = DiagnosticBag()
    suppress = suppressed_codes(filt)

    def emit(code: str, message: str) -> None:
        bag.add(Diagnostic.make(code, message, filt).with_suppression(suppress))

    # Declared-rate invariants first: everything else assumes sane rates.
    rate = filt.rate
    rate_ok = _check_declared_rates(filt, emit)

    if type(filt).work is Filter.work:
        emit(
            "SL006",
            f"filter {filt.name!r} ({type(filt).__name__}) does not implement work()",
        )
        proof = VectorProof(False, ("work() is not implemented",))
        return FilterAnalysis(
            filter_name=filt.name,
            class_name=type(filt).__name__,
            effects=None,
            rates=None,
            affine_candidate=False,
            affine_reason="work() is not implemented",
            proof=proof,
            diagnostics=bag,
        )

    try:
        effects = classify(filt)
        unstable = set(effects.mutated) | {a for a, _ in effects.message_sends}
        rates = analyze_rates(filt, unstable) if rate_ok else None
    except Exception as exc:  # analyzer bug: degrade, never break the build
        emit("SL005", f"internal analysis error: {type(exc).__name__}: {exc}")
        proof = VectorProof(False, (f"internal analysis error: {exc}",))
        return FilterAnalysis(
            filter_name=filt.name,
            class_name=type(filt).__name__,
            effects=None,
            rates=None,
            affine_candidate=False,
            affine_reason=f"internal analysis error: {exc}",
            proof=proof,
            diagnostics=bag,
        )

    _emit_effects_diags(filt, effects, emit)
    if rates is not None:
        _emit_rate_diags(filt, rates, emit)

    affine_ok, affine_reason = affine_prescreen_report(filt, effects)
    if affine_ok:
        emit("SL201", f"filter {filt.name!r} is an affine (linear-node) candidate")

    proof = prove_vectorizable(filt, effects, rates)
    bag.add(proof.diagnostic(filt).with_suppression(suppress))

    return FilterAnalysis(
        filter_name=filt.name,
        class_name=type(filt).__name__,
        effects=effects,
        rates=rates,
        affine_candidate=affine_ok,
        affine_reason=affine_reason,
        proof=proof,
        diagnostics=bag,
    )


def _check_declared_rates(filt: Filter, emit) -> bool:
    """SL004 for tampered/inconsistent declared rates; True when sane."""
    rate = filt.rate
    ok = True
    values = {"peek": rate.peek, "pop": rate.pop, "push": rate.push}
    for field_name, value in values.items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            emit(
                "SL004",
                f"filter {filt.name!r} declares an illegal {field_name} rate "
                f"{value!r} (rates must be non-negative ints)",
            )
            ok = False
    if ok and rate.peek < rate.pop:
        emit(
            "SL004",
            f"filter {filt.name!r} declares peek={rate.peek} < pop={rate.pop}; "
            f"a filter must be able to inspect everything it consumes",
        )
        ok = False
    return ok


def _emit_effects_diags(filt: Filter, effects: EffectsReport, emit) -> None:
    claims_stateless = getattr(type(filt), "stateless", None) is True
    if effects.mutated:
        mutated = ", ".join(f"self.{a}" for a in effects.mutated)
        if claims_stateless:
            emit(
                "SL102",
                f"filter {filt.name!r} declares stateless=True but work() "
                f"writes {mutated}",
            )
        else:
            emit(
                "SL101",
                f"filter {filt.name!r} is stateful: work() writes {mutated}",
            )
    for reason in effects.dynamic:
        if claims_stateless:
            emit(
                "SL102",
                f"filter {filt.name!r} declares stateless=True but its state "
                f"writes cannot be bounded: {reason}",
            )
        else:
            emit(
                "SL103",
                f"state writes of filter {filt.name!r} cannot be statically "
                f"bounded: {reason}",
            )
    for reason in effects.escapes:
        emit(
            "SL104",
            f"self escapes work() of filter {filt.name!r}: {reason}; "
            f"no static effect guarantees apply",
        )


def _emit_rate_diags(filt: Filter, rates: RateReport, emit) -> None:
    rate = filt.rate
    name = filt.name
    for violation in rates.peek_violations:
        emit("SL003", f"filter {name!r}: {violation}")
    if rates.dynamic:
        reasons = "; ".join(rates.dynamic[:3])
        emit(
            "SL005",
            f"channel rates of filter {name!r} are not statically analyzable: "
            f"{reasons}",
        )
        return
    # Counts are bounded intervals (exact or both-branch merges).
    for kind, verb, declared, counted, code in (
        ("push", "pushes", rate.push, rates.push, "SL001"),
        ("pop", "pops", rate.pop, rates.pop, "SL002"),
    ):
        if counted.exact:
            if counted.lo != declared:
                emit(
                    code,
                    f"filter {name!r} declares {kind}={declared} but work() "
                    f"always {verb} {int(counted.lo)} item(s) per firing",
                )
        elif not (counted.lo <= declared <= counted.hi):
            emit(
                code,
                f"filter {name!r} declares {kind}={declared} but work() "
                f"{verb} {counted} item(s) per firing",
            )
        else:
            emit(
                "SL005",
                f"filter {name!r}: {kind} count {counted} is data-dependent "
                f"(declared {kind}={declared} lies inside the range)",
            )
    if rates.exact and not rates.peek_violations:
        used = max(rates.max_peek + 1, rates.pop.hi)
        if rate.peek > used and rate.peek > rate.pop:
            emit(
                "SL007",
                f"filter {name!r} declares peek={rate.peek} but work() only "
                f"inspects the first {int(used)} item(s); over-declared peek "
                f"inflates scheduling latency",
            )


def analyze_graph(graph) -> DiagnosticBag:
    """Analyze every filter node of a :class:`FlatGraph`."""
    bag = DiagnosticBag()
    for node in graph.filter_nodes():
        bag.extend(analyze_filter(node.filter).diagnostics)
    return bag


def analyze_stream(stream) -> DiagnosticBag:
    """Flatten a stream (without validating) and analyze its filters."""
    from repro.graph.flatgraph import flatten

    return analyze_graph(flatten(stream))
