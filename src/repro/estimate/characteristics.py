"""Benchmark characteristics — the data behind the paper's `benchchar` table.

For each application we compute the columns the figure reports: filter
counts (total / peeking / stateful), shortest and longest source-to-sink
path through the stream graph, the static computation-to-communication
ratio for one steady state, and the percentage of steady-state work
performed by stateful filters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.estimate.work import node_work
from repro.graph.base import Stream
from repro.graph.flatgraph import FILTER, FlatGraph, FlatNode, flatten
from repro.linear.extraction import is_stateful
from repro.scheduling.rates import repetitions


@dataclass(frozen=True)
class Characteristics:
    """One row of the benchmark-characteristics table."""

    name: str
    filters: int
    peeking: int
    stateful: int
    shortest_path: int
    longest_path: int
    comp_comm_ratio: float
    stateful_work_pct: float

    def row(self) -> Tuple:
        return (
            self.name,
            self.filters,
            self.peeking,
            self.stateful,
            self.shortest_path,
            self.longest_path,
            round(self.comp_comm_ratio, 1),
            round(self.stateful_work_pct, 1),
        )


def _paths(graph: FlatGraph) -> Tuple[int, int]:
    """Shortest and longest source-to-sink path length, counted in filters."""
    order = graph.topological_order()
    weight = {n: (1 if n.kind == FILTER else 0) for n in graph.nodes}
    shortest: Dict[FlatNode, int] = {}
    longest: Dict[FlatNode, int] = {}
    for node in order:
        preds = [e.src for e in node.in_edges if not e.initial]
        if not preds:
            shortest[node] = weight[node]
            longest[node] = weight[node]
        else:
            shortest[node] = min(shortest[p] for p in preds) + weight[node]
            longest[node] = max(longest[p] for p in preds) + weight[node]
    sinks = graph.sinks
    return min(shortest[s] for s in sinks), max(longest[s] for s in sinks)


def characterize(name: str, stream: Stream) -> Characteristics:
    """Compute the benchmark-characteristics row for one application.

    Following the paper, file-I/O endpoints (sources and sinks) count
    toward the filter total but are excluded from the stateful-work
    accounting (they are not mapped to cores).
    """
    graph = flatten(stream)
    reps = repetitions(graph)

    filters = [n for n in graph.nodes if n.kind == FILTER]
    interior = [
        n for n in filters if n.filter.rate.pop > 0 and n.filter.rate.push > 0
    ]
    peeking = [n for n in interior if n.filter.rate.extra_peek > 0]
    stateful = [n for n in interior if is_stateful(n.filter)]

    total_work = sum(node_work(n) * reps[n] for n in interior)
    stateful_work = sum(node_work(n) * reps[n] for n in stateful)
    comm_items = sum(reps[e.src] * e.push_rate for e in graph.edges)

    shortest, longest = _paths(graph)
    return Characteristics(
        name=name,
        filters=len(filters),
        peeking=len(peeking),
        stateful=len(stateful),
        shortest_path=shortest,
        longest_path=longest,
        comp_comm_ratio=total_work / max(comm_items, 1),
        stateful_work_pct=100.0 * stateful_work / max(total_work, 1e-12),
    )


def characteristics_table(apps: Dict[str, object]) -> List[Characteristics]:
    """Rows for a suite of app builders, sorted by stateful work ascending
    (the paper's presentation order)."""
    rows = [characterize(name, builder()) for name, builder in apps.items()]
    rows.sort(key=lambda r: (r.stateful_work_pct, r.name))
    return rows


def format_table(rows: List[Characteristics]) -> str:
    """Render rows like the paper's figure."""
    header = (
        f"{'Benchmark':16s} {'Filters':>7s} {'Peeking':>7s} {'Stateful':>8s} "
        f"{'ShortPath':>9s} {'LongPath':>8s} {'Comp/Comm':>9s} {'Stateful%':>9s}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.name:16s} {r.filters:7d} {r.peeking:7d} {r.stateful:8d} "
            f"{r.shortest_path:9d} {r.longest_path:8d} {r.comp_comm_ratio:9.1f} "
            f"{r.stateful_work_pct:9.1f}"
        )
    return "\n".join(lines)
