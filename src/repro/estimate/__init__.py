"""Static estimation: per-filter work, program characteristics."""

from repro.estimate.characteristics import (
    Characteristics,
    characteristics_table,
    characterize,
    format_table,
)
from repro.estimate.work import (
    DEFAULT_TRIP,
    ITEM_MOVE_COST,
    TRANSCENDENTAL_COST,
    node_work,
    steady_state_work,
    work_per_firing,
)

__all__ = [
    "Characteristics",
    "characterize",
    "characteristics_table",
    "format_table",
    "work_per_firing",
    "node_work",
    "steady_state_work",
    "DEFAULT_TRIP",
    "ITEM_MOVE_COST",
    "TRANSCENDENTAL_COST",
]
