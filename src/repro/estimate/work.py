"""Static work estimation: cycles per work-function invocation.

The StreamIt compiler drives partitioning and load balancing with a static
estimate of each filter's work per firing.  We reproduce that role with a
deterministic AST cost walk over the filter's ``work`` function:

* arithmetic / comparison operators cost 1 unit (one issue slot on the
  modeled single-issue core), transcendental calls cost
  ``TRANSCENDENTAL_COST``,
* channel operations (``pop``/``peek``/``push``) cost 1 unit each,
* ``for range(...)`` loops are scaled by their trip count when the bounds
  resolve to compile-time constants (literals, instance attributes,
  ``len`` of instance sequences); otherwise a default trip count is
  assumed,
* ``if`` branches cost the maximum of their arms (worst case, as a static
  scheduler must assume).

Estimates are cached per filter *class + rate signature* since the walk is
pure.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Optional

import numpy as np

from repro.graph.base import Filter
from repro.graph.flatgraph import FILTER, FlatGraph, FlatNode

#: Assumed trip count when a loop bound is not statically resolvable.
DEFAULT_TRIP = 8

#: Cost of transcendental / library math calls (sin, cos, exp, sqrt, ...).
TRANSCENDENTAL_COST = 16

#: Cost charged per item moved by a splitter or joiner firing.
ITEM_MOVE_COST = 1

_cache: Dict[Any, float] = {}


class _ConstEval:
    """Best-effort constant evaluation against a filter instance."""

    def __init__(self, filt: Filter) -> None:
        self.filt = filt
        self.globals = type(filt).work.__globals__

    def eval(self, node: ast.expr, env: Dict[str, Any]) -> Optional[Any]:
        try:
            return self._eval(node, env)
        except Exception:
            return None

    def _eval(self, node: ast.expr, env: Dict[str, Any]) -> Any:
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            if node.id in self.globals:
                return self.globals[node.id]
            raise ValueError(node.id)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return getattr(self.filt, node.attr)
            base = self._eval(node.value, env)
            return getattr(base, node.attr)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env)
            right = self._eval(node.right, env)
            ops = {
                ast.Add: lambda a, b: a + b,
                ast.Sub: lambda a, b: a - b,
                ast.Mult: lambda a, b: a * b,
                ast.Div: lambda a, b: a / b,
                ast.FloorDiv: lambda a, b: a // b,
                ast.Mod: lambda a, b: a % b,
                ast.Pow: lambda a, b: a**b,
            }
            return ops[type(node.op)](left, right)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return -self._eval(node.operand, env)
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "len":
                return len(self._eval(node.args[0], env))
            if isinstance(node.func, ast.Name) and node.func.id in ("int", "min", "max", "abs"):
                fn = {"int": int, "min": min, "max": max, "abs": abs}[node.func.id]
                return fn(*[self._eval(a, env) for a in node.args])
            raise ValueError("call")
        raise ValueError(type(node).__name__)


class _CostWalker:
    def __init__(self, filt: Filter) -> None:
        self.filt = filt
        self.const = _ConstEval(filt)

    def body_cost(self, body, env: Dict[str, Any]) -> float:
        return sum(self.stmt_cost(stmt, env) for stmt in body)

    def stmt_cost(self, stmt: ast.stmt, env: Dict[str, Any]) -> float:
        if isinstance(stmt, ast.Expr):
            return self.expr_cost(stmt.value, env)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            value = getattr(stmt, "value", None)
            return 1 + (self.expr_cost(value, env) if value is not None else 0)
        if isinstance(stmt, ast.AugAssign):
            return 2 + self.expr_cost(stmt.value, env)
        if isinstance(stmt, ast.If):
            test = self.expr_cost(stmt.test, env)
            return test + max(
                self.body_cost(stmt.body, env),
                self.body_cost(stmt.orelse, env) if stmt.orelse else 0,
            )
        if isinstance(stmt, ast.For):
            return self.for_cost(stmt, env)
        if isinstance(stmt, ast.While):
            return DEFAULT_TRIP * (
                self.expr_cost(stmt.test, env) + self.body_cost(stmt.body, env)
            )
        if isinstance(stmt, ast.Return):
            return self.expr_cost(stmt.value, env) if stmt.value is not None else 0
        if isinstance(stmt, (ast.Break, ast.Continue, ast.Pass)):
            return 0
        return 1

    def for_cost(self, stmt: ast.For, env: Dict[str, Any]) -> float:
        trips = DEFAULT_TRIP
        if (
            isinstance(stmt.iter, ast.Call)
            and isinstance(stmt.iter.func, ast.Name)
            and stmt.iter.func.id == "range"
        ):
            args = [self.const.eval(a, env) for a in stmt.iter.args]
            if all(a is not None for a in args):
                try:
                    trips = len(range(*[int(a) for a in args]))
                except (TypeError, ValueError):
                    trips = DEFAULT_TRIP
        else:
            iterable = self.const.eval(stmt.iter, env)
            if iterable is not None:
                try:
                    trips = len(iterable)
                except TypeError:
                    trips = DEFAULT_TRIP
        # Loop overhead of 1 per iteration plus the body.
        body = self.body_cost(stmt.body, env)
        return trips * (1 + body)

    def expr_cost(self, node: ast.expr, env: Dict[str, Any]) -> float:
        if node is None:
            return 0
        if isinstance(node, (ast.Constant, ast.Name)):
            return 0
        if isinstance(node, ast.Attribute):
            return self.expr_cost(node.value, env)
        if isinstance(node, ast.BinOp):
            return 1 + self.expr_cost(node.left, env) + self.expr_cost(node.right, env)
        if isinstance(node, ast.UnaryOp):
            return 1 + self.expr_cost(node.operand, env)
        if isinstance(node, ast.BoolOp):
            return len(node.values) - 1 + sum(self.expr_cost(v, env) for v in node.values)
        if isinstance(node, ast.Compare):
            return (
                len(node.ops)
                + self.expr_cost(node.left, env)
                + sum(self.expr_cost(c, env) for c in node.comparators)
            )
        if isinstance(node, ast.Subscript):
            return 1 + self.expr_cost(node.value, env) + self.expr_cost(node.slice, env)
        if isinstance(node, ast.Call):
            return self.call_cost(node, env)
        if isinstance(node, (ast.Tuple, ast.List)):
            return sum(self.expr_cost(e, env) for e in node.elts)
        if isinstance(node, ast.IfExp):
            return (
                self.expr_cost(node.test, env)
                + max(self.expr_cost(node.body, env), self.expr_cost(node.orelse, env))
            )
        return 1

    def call_cost(self, node: ast.Call, env: Dict[str, Any]) -> float:
        args = sum(self.expr_cost(a, env) for a in node.args)
        name = None
        if isinstance(node.func, ast.Attribute):
            name = node.func.attr
        elif isinstance(node.func, ast.Name):
            name = node.func.id
        if name in ("pop", "peek", "push"):
            return 1 + args
        transcendental = {
            "sin", "cos", "tan", "exp", "log", "log2", "log10", "sqrt",
            "atan", "atan2", "asin", "acos", "sinh", "cosh", "tanh", "pow",
            "hypot", "floor", "ceil",
        }
        if name in transcendental:
            return TRANSCENDENTAL_COST + args
        return 2 + args


def work_per_firing(filt: Filter) -> float:
    """Estimated cycles per invocation of the filter's work function."""
    key = (type(filt), filt.rate, _state_signature(filt))
    cached = _cache.get(key)
    if cached is not None:
        return cached
    import inspect
    import textwrap

    try:
        source = textwrap.dedent(inspect.getsource(type(filt).work))
        fn = ast.parse(source).body[0]
        cost = _CostWalker(filt).body_cost(fn.body, {})
    except (OSError, SyntaxError, TypeError):
        # Fall back to a rate-proportional estimate for unanalyzable work.
        cost = 2.0 * (filt.rate.peek + filt.rate.push) + 4.0
    cost = max(cost, 1.0)
    _cache[key] = cost
    return cost


def _state_signature(filt: Filter) -> tuple:
    """Attributes that influence loop trip counts, for cache keying."""
    items = []
    for attr, value in sorted(vars(filt).items()):
        if isinstance(value, (int, float)):
            items.append((attr, value))
        elif isinstance(value, (tuple, list, np.ndarray)):
            items.append((attr, len(value)))
    return tuple(items)


def node_work(node: FlatNode) -> float:
    """Estimated cycles for one firing of any flat node."""
    if node.kind == FILTER:
        return work_per_firing(node.filter)
    moved = node.total_pop + node.total_push
    return ITEM_MOVE_COST * moved


def steady_state_work(graph: FlatGraph, reps: Dict[FlatNode, int]) -> Dict[FlatNode, float]:
    """Per-node work for one steady-state period."""
    return {node: node_work(node) * reps[node] for node in graph.nodes}
