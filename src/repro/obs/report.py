"""``python -m repro.obs report`` — render a per-filter table from a trace.

Aggregates the span events of a ``streamscope`` Chrome trace into the
attribution table the paper's evaluation reasons about: per filter (or
fused chain / cyclic core), how many spans and firings ran, how many items
moved, how much wall-clock self-time was spent, and — for parallel traces
— what fraction of that time was ring-buffer stall, attributed to the
producer/consumer filters of each cross-worker edge.  Engine downgrades
(SL302/SL303/SL304) recorded in the trace metadata are printed below the
table, so a "why is this slow" question and a "why did my engine change"
question have the same entry point.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.chrome import track_names, trace_summary
from repro.obs.tracer import SELF_TIME_CATS


def _meta(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The ``repro.meta`` section, or ``{}`` — partial traces (other
    producers, truncated files, pre-metadata crashes) may miss any level."""
    repro = payload.get("repro")
    if not isinstance(repro, dict):
        return {}
    meta = repro.get("meta")
    return meta if isinstance(meta, dict) else {}


def _num(value: Any, default: float = 0.0) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        return default


def aggregate_filters(payload: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """name -> {self_time_us, spans, firings, items, tids} over span events."""
    rows: Dict[str, Dict[str, Any]] = {}
    for event in payload.get("traceEvents", []):
        if event.get("ph") != "X" or event.get("cat") not in SELF_TIME_CATS:
            continue
        row = rows.setdefault(
            event.get("name", "?"),
            {"self_time_us": 0.0, "spans": 0, "firings": 0, "items": 0, "tids": set()},
        )
        row["self_time_us"] += _num(event.get("dur", 0.0))
        row["spans"] += 1
        args = event.get("args") or {}
        row["firings"] += int(_num(args.get("firings", 0)))
        row["items"] += int(_num(args.get("items", 0)))
        row["tids"].add(event.get("tid", 0))
    return rows


def ring_stalls(payload: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """Ring name -> last stall-counter sample (counters are cumulative).

    Degrades gracefully on partial traces: counter events without names or
    dict args are skipped, and a missing/odd-shaped ``meta.channels``
    section simply contributes nothing.
    """
    rings: Dict[str, Dict[str, float]] = {}
    for event in payload.get("traceEvents", []):
        name = event.get("name", "")
        if (
            event.get("ph") == "C"
            and isinstance(name, str)
            and name.startswith("ring:")
        ):
            args = event.get("args")
            rings[name[len("ring:"):]] = dict(args) if isinstance(args, dict) else {}
    # Channel snapshots in the metadata cover rings the counters missed.
    channels = _meta(payload).get("channels")
    if isinstance(channels, dict):
        for name, row in channels.items():
            if (
                isinstance(row, dict)
                and row.get("kind") == "ring"
                and name not in rings
            ):
                rings[name] = row
    return rings


def _attribute_stalls(
    rows: Dict[str, Dict[str, Any]], rings: Dict[str, Dict[str, float]]
) -> None:
    """Fold ring stall time into the producer/consumer filters' rows.

    A ring is named ``src->dst``; producer-side stall (waiting for space —
    backpressure) belongs to ``src``, consumer-side stall (waiting for
    items — starvation) to ``dst``.
    """
    for row in rows.values():
        row.setdefault("stall_us", 0.0)
    for name, stats in rings.items():
        src, _, dst = name.partition("->")
        if src in rows:
            rows[src]["stall_us"] += 1e6 * _num(stats.get("producer_stall_s", 0.0))
        if dst in rows:
            rows[dst]["stall_us"] += 1e6 * _num(stats.get("consumer_stall_s", 0.0))


def report_payload(payload: Dict[str, Any], top: Optional[int] = None) -> Dict[str, Any]:
    """The report as a JSON-serializable document (``report --json``).

    Same aggregation as :func:`render_report`, but machine-readable so the
    auto-tuner (:mod:`repro.tune`) and external dashboards can consume a
    trace without re-parsing the rendered table.
    """
    summary = trace_summary(payload)
    meta = _meta(payload)
    rows = aggregate_filters(payload)
    rings = ring_stalls(payload)
    _attribute_stalls(rows, rings)

    total_self = sum(r["self_time_us"] for r in rows.values()) or 1.0
    ordered = sorted(rows.items(), key=lambda kv: -kv[1]["self_time_us"])
    if top:
        ordered = ordered[:top]
    filters = [
        {
            "name": name,
            "spans": row["spans"],
            "firings": row["firings"],
            "items": row["items"],
            "self_time_us": row["self_time_us"],
            "self_pct": 100.0 * row["self_time_us"] / total_self,
            "stall_us": row["stall_us"],
            "tids": sorted(row["tids"]),
        }
        for name, row in ordered
    ]
    doc: Dict[str, Any] = {
        "summary": {
            "spans": summary["spans"],
            "tracks": sorted(summary["tracks"]),
            "wall_us": summary["wall_us"],
            "dropped_events": summary["dropped_events"],
        },
        "filters": filters,
        "rings": {name: dict(stats) for name, stats in sorted(rings.items())},
    }
    for key in ("engine_report", "teleports", "plan_cache", "codegen_cache"):
        if key in meta:
            doc[key] = meta[key]
    return doc


def render_report(payload: Dict[str, Any], top: Optional[int] = None) -> str:
    """The full textual report for one loaded trace."""
    summary = trace_summary(payload)
    names = track_names(payload)
    meta = _meta(payload)
    rows = aggregate_filters(payload)
    rings = ring_stalls(payload)
    _attribute_stalls(rows, rings)

    lines: List[str] = []
    track_list = ", ".join(
        f"{tid}:{names.get(tid) or 'track'}" for tid in summary["tracks"]
    )
    lines.append(
        f"== streamscope report: {summary['spans']} spans on "
        f"{len(summary['tracks'])} track(s) [{track_list}], "
        f"{summary['wall_us'] / 1e3:.1f} ms wall =="
    )
    if summary["dropped_events"]:
        lines.append(
            f"   (ring recorder dropped {summary['dropped_events']} oldest events)"
        )

    total_self = sum(r["self_time_us"] for r in rows.values()) or 1.0
    width = max([len(n) for n in rows] + [6]) + 2
    lines.append("")
    lines.append(
        f"{'filter':{width}s}{'spans':>7s}{'firings':>10s}{'items':>12s}"
        f"{'self ms':>10s}{'self%':>7s}{'stall%':>7s}"
    )
    ordered = sorted(rows.items(), key=lambda kv: -kv[1]["self_time_us"])
    if top:
        ordered = ordered[:top]
    for name, row in ordered:
        self_us = row["self_time_us"]
        stall_pct = 100.0 * row["stall_us"] / self_us if self_us else 0.0
        lines.append(
            f"{name:{width}s}{row['spans']:>7d}{row['firings']:>10d}"
            f"{row['items']:>12d}{self_us / 1e3:>10.2f}"
            f"{100.0 * self_us / total_self:>6.1f}%"
            f"{min(stall_pct, 100.0):>6.1f}%"
        )

    if rings:
        lines.append("")
        lines.append("cross-worker rings (cumulative stalls):")
        for name, stats in sorted(rings.items()):
            lines.append(
                f"  {name}: backpressure {int(_num(stats.get('producer_stalls', 0)))}x/"
                f"{_num(stats.get('producer_stall_s', 0.0)) * 1e3:.1f} ms, "
                f"starvation {int(_num(stats.get('consumer_stalls', 0)))}x/"
                f"{_num(stats.get('consumer_stall_s', 0.0)) * 1e3:.1f} ms"
            )

    teleports = meta.get("teleports", [])
    if isinstance(teleports, list) and teleports:
        records = [t for t in teleports if isinstance(t, dict)]
        delivered = [t for t in records if t.get("delivered_n") is not None]
        ok = sum(1 for t in delivered if t.get("sdep_ok"))
        lines.append("")
        lines.append(
            f"teleport messages: {len(records)} sent, {len(delivered)} "
            f"delivered, {ok}/{len(delivered)} at the exact SDEP boundary"
        )
        for t in delivered[:8]:
            lines.append(
                f"  {t.get('sender', '?')} -> {t.get('receiver', '?')}"
                f".{t.get('method', '?')} "
                f"latency={t.get('latency', '?')} "
                f"threshold={t.get('threshold', '?')} "
                f"delivered_at={t.get('delivered_n')} "
                f"(+{t.get('latency_iterations', '?')} firings)"
            )

    report = meta.get("engine_report", {})
    if not isinstance(report, dict):
        report = {}
    downgrades = report.get("downgrades", [])
    if report:
        lines.append("")
        lines.append(
            f"engine: requested {report.get('requested')!r}, "
            f"ran {report.get('used')!r}"
        )
    if isinstance(downgrades, list):
        for d in downgrades:
            if isinstance(d, dict):
                lines.append(f"  downgrade [{d.get('code')}]: {d.get('message')}")

    cache = meta.get("plan_cache")
    if isinstance(cache, dict) and cache:
        lines.append(
            f"plan cache: {cache.get('hits', 0)} hit(s), "
            f"{cache.get('misses', 0)} miss(es)"
        )
    cg = meta.get("codegen_cache")
    if isinstance(cg, dict) and cg:
        lines.append(
            f"codegen cache: memory {cg.get('mem_hits', 0)} hit(s) / "
            f"{cg.get('mem_misses', 0)} miss(es) "
            f"({cg.get('mem_size', 0)}/{cg.get('mem_max', 0)} modules), "
            f"disk {cg.get('disk_hits', 0)} hit(s) / "
            f"{cg.get('disk_misses', 0)} miss(es) "
            f"({cg.get('disk_size', 0)} files in {cg.get('disk_dir', '?')})"
        )
        evictions = cg.get("mem_evictions", 0) + cg.get("disk_evictions", 0)
        if evictions:
            lines.append(f"  codegen cache evictions: {evictions}")
    return "\n".join(lines)
