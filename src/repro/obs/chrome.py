"""Chrome trace-event JSON: loading and schema validation.

The exporter lives on :class:`~repro.obs.tracer.MemoryTracer`; this module
is the consumer side — ``python -m repro.obs validate`` (the CI
trace-smoke gate) and the report CLI both load traces through here.

The schema checked is the subset of the Trace Event Format the tracer
emits (and Perfetto requires): a top-level object with a ``traceEvents``
list whose entries carry ``name``/``ph``/``ts`` (plus ``dur`` for ``X``
events and ``args`` for ``C`` counters), with numeric timestamps and
integer track ids.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

#: Event phases the tracer emits (validation rejects others).
_KNOWN_PHASES = frozenset({"X", "i", "I", "C", "M", "B", "E"})


class TraceFormatError(ValueError):
    """The file is not a valid Chrome trace-event JSON trace."""


def load_trace(path) -> Dict[str, Any]:
    """Load and validate a Chrome trace file; raises TraceFormatError."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{path}: not valid JSON: {exc}")
    problems = validate_trace(payload)
    if problems:
        raise TraceFormatError(f"{path}: " + "; ".join(problems[:5]))
    return payload


def validate_trace(payload: Any) -> List[str]:
    """Schema problems in a parsed trace (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["top level must be a JSON object with a traceEvents key"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing event name")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs a non-negative dur")
        if ph == "C" and not isinstance(event.get("args"), dict):
            problems.append(f"{where}: C event needs an args dict of series")
        tid = event.get("tid", 0)
        if not isinstance(tid, int):
            problems.append(f"{where}: tid must be an integer")
        if len(problems) >= 50:
            problems.append("... (further problems elided)")
            break
    return problems


def trace_summary(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Quick shape facts: event/track counts, span duration, categories."""
    events = payload.get("traceEvents", [])
    tracks = sorted({e.get("tid", 0) for e in events if e.get("ph") != "M"})
    spans = [e for e in events if e.get("ph") == "X"]
    counters = sorted({e["name"] for e in events if e.get("ph") == "C"})
    ts_values = [e["ts"] for e in events if e.get("ph") != "M"]
    return {
        "events": len(events),
        "spans": len(spans),
        "tracks": tracks,
        "counters": counters,
        "wall_us": (max(ts_values) - min(ts_values)) if ts_values else 0.0,
        "dropped_events": payload.get("repro", {}).get("dropped_events", 0),
    }


def track_names(payload: Dict[str, Any]) -> Dict[int, str]:
    """tid -> display name from the trace's metadata events."""
    names: Dict[int, str] = {}
    for event in payload.get("traceEvents", []):
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            names[event.get("tid", 0)] = event.get("args", {}).get("name", "")
    return names
