"""Rendering for ``python -m repro.obs monitor`` / ``flight``.

Running sessions :func:`~repro.obs.metrics.MetricsRegistry.publish` atomic
``obs-<pid>.json`` snapshots (metrics + flight-recorder ring) into
:func:`~repro.obs.metrics.obs_dir`.  This module finds the newest snapshot
(or a specific ``--pid``) and renders it as a top-style text page — live
processes refresh theirs every ``REPRO_OBS_PUBLISH_S`` seconds, crashed
ones leave their final atexit snapshot behind for post-mortems.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

from repro.obs.metrics import obs_dir
from repro.obs.recorder import format_flight_event


def list_snapshots(directory: Optional[str] = None) -> List[str]:
    """Snapshot paths in the obs dir, newest first."""
    directory = directory or obs_dir()
    try:
        names = [
            n
            for n in os.listdir(directory)
            if n.startswith("obs-") and n.endswith(".json")
        ]
    except OSError:
        return []
    paths = [os.path.join(directory, n) for n in names]
    paths.sort(key=lambda p: _mtime(p), reverse=True)
    return paths


def _mtime(path: str) -> float:
    try:
        return os.path.getmtime(path)
    except OSError:
        return 0.0


def latest_snapshot(
    directory: Optional[str] = None, pid: Optional[int] = None
) -> Optional[Dict[str, Any]]:
    """Load the newest (or the given pid's) snapshot, or None."""
    for path in list_snapshots(directory):
        if pid is not None and not path.endswith(f"obs-{pid}.json"):
            continue
        try:
            with open(path) as fh:
                return json.load(fh)
        except (OSError, ValueError):
            continue
    return None


def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _fmt_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def render_monitor(snap: Dict[str, Any], flight_tail: int = 6) -> str:
    """One top-style page: header, counters/gauges, histograms, flight tail."""
    lines: List[str] = []
    age = time.time() - snap.get("ts", 0.0)
    argv = " ".join(snap.get("argv", []))
    if len(argv) > 70:
        argv = argv[:67] + "..."
    lines.append(
        f"repro.obs monitor — pid {snap.get('pid', '?')} — "
        f"snapshot {age:.1f}s old"
    )
    if argv:
        lines.append(f"  cmd: {argv}")
    lines.append("")

    metrics = snap.get("metrics", {})
    plain: List[str] = []
    histograms: List[str] = []
    for name in sorted(metrics):
        family = metrics[name]
        for sample in family.get("samples", []):
            label_text = _fmt_labels(sample.get("labels", {}))
            if family.get("type") == "histogram":
                count = sample.get("count", 0)
                total = sample.get("sum", 0.0)
                mean = total / count if count else 0.0
                histograms.append(
                    f"  {name}{label_text}  count={count} "
                    f"sum={_fmt_value(total)} mean={mean:.6g}"
                )
            else:
                plain.append(
                    f"  {name}{label_text}  {_fmt_value(sample.get('value', 0))}"
                )
    if plain:
        lines.append("counters / gauges:")
        lines.extend(plain)
    if histograms:
        lines.append("histograms:")
        lines.extend(histograms)
    if not plain and not histograms:
        lines.append("(no metric samples recorded yet)")

    events = snap.get("flight", {}).get("events", [])
    if events:
        lines.append("")
        lines.append(f"flight recorder (last {min(flight_tail, len(events))}):")
        lines.extend(f"  {format_flight_event(e)}" for e in events[-flight_tail:])
    return "\n".join(lines)


def render_flight(snap: Dict[str, Any], n: Optional[int] = None) -> str:
    """The flight-recorder ring of one snapshot, one line per event."""
    flight = snap.get("flight", {})
    events = flight.get("events", [])
    if n is not None:
        events = events[-n:]
    header = (
        f"flight recorder — pid {snap.get('pid', '?')} — "
        f"{len(events)} event(s), {flight.get('dropped', 0)} dropped, "
        f"capacity {flight.get('capacity', '?')}"
    )
    return "\n".join([header] + [f"  {format_flight_event(e)}" for e in events])
