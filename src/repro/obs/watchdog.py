"""Parent-side **stall watchdog** for the parallel engine.

A ``RingStall`` fires only after the ring's timeout (``REPRO_RING_STALL_S``,
default 120 s) — two minutes of silence before the error names the blocked
edge.  The watchdog closes that gap: a daemon sampler thread in the parent
reads each cross-worker ring's counters, occupancy, and blocked-``need``
slots (:meth:`~repro.runtime.ring.RingChannel.blocked_needs`) straight out
of the shared arena, plus worker process liveness, every
``REPRO_WATCHDOG_S`` seconds (default 0.25).  When a ring's counters stop
moving while a side is provably blocked on it, the watchdog records a
structured ``stall_suspected`` flight event — *consumer* blocked means the
edge is **starved** (its producer isn't delivering), *producer* blocked
means **convoy/backpressure** (its consumer isn't draining) — long before
the deadline, and bumps ``repro_watchdog_stall_suspected_total``.  Dead
workers get a ``worker_dead`` event the tick they are noticed.

Everything the watchdog does is read-only and advisory: ticks are fully
exception-guarded (a detached channel mid-``close()`` is expected, not an
error), and the thread is a daemon so it can never hold the process alive.
``REPRO_WATCHDOG=0`` disables it entirely.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Optional, Tuple

from repro.obs.metrics import METRICS
from repro.obs.recorder import FLIGHT

_DEFAULT_INTERVAL_S = 0.25
#: Consecutive no-progress ticks (with a blocked side) before suspicion.
_STUCK_TICKS = 2


def _interval() -> float:
    try:
        return max(0.01, float(os.environ.get("REPRO_WATCHDOG_S", _DEFAULT_INTERVAL_S)))
    except ValueError:
        return _DEFAULT_INTERVAL_S


def watchdog_enabled() -> bool:
    return os.environ.get("REPRO_WATCHDOG", "1") != "0"


class StallWatchdog(threading.Thread):
    """Daemon thread sampling one :class:`ParallelSession`'s shared arena."""

    def __init__(self, session, interval: Optional[float] = None) -> None:
        super().__init__(name="repro-stall-watchdog", daemon=True)
        self._session = session
        self.interval = _interval() if interval is None else interval
        self._stop_event = threading.Event()
        # Per-edge progress memory: (pushed, popped) at the last tick and
        # how many consecutive ticks it has been both frozen and blocked.
        self._last_counters: Dict[str, Tuple[int, int]] = {}
        self._stuck_ticks: Dict[str, int] = {}
        # Edges already reported this episode (re-armed when counters move)
        # and workers already reported dead — one event per incident.
        self._reported: set = set()
        self._dead_reported: set = set()
        self.ticks = 0
        self.suspicions = 0

        self._g_occupancy = METRICS.gauge(
            "repro_ring_occupancy", "Items queued per cross-worker ring"
        )
        self._g_alive = METRICS.gauge(
            "repro_parallel_workers_alive", "Live forked workers of the newest session"
        )
        self._c_ticks = METRICS.counter(
            "repro_watchdog_ticks_total", "Watchdog sampler iterations"
        )
        self._c_suspected = METRICS.counter(
            "repro_watchdog_stall_suspected_total",
            "Rings seen frozen while a side was blocked, by blocked side",
        )

    # -- sampling ------------------------------------------------------------

    def _tick(self) -> None:
        session = self._session
        self._c_ticks.labels().inc()
        self.ticks += 1

        alive = 0
        for proc in session._procs:
            try:
                if proc.is_alive():
                    alive += 1
                elif proc.exitcode not in (0, None) and proc.name not in self._dead_reported:
                    self._dead_reported.add(proc.name)
                    FLIGHT.record(
                        "worker_dead", worker=proc.name, exitcode=proc.exitcode
                    )
            except Exception:
                pass
        self._g_alive.labels().set(alive)

        for edge in session.ring_edges:
            chan = session.channels.get(edge)
            if chan is None:
                continue
            try:
                pushed = chan.pushed_count
                popped = chan.popped_count
                prod_need, cons_need = chan.blocked_needs()
                capacity = chan.capacity
            except Exception:
                continue  # detached mid-close: expected, skip this ring
            name = chan.name
            self._g_occupancy.labels(edge=name).set(pushed - popped)

            counters = (pushed, popped)
            moved = self._last_counters.get(name) != counters
            self._last_counters[name] = counters
            if moved or (prod_need == 0 and cons_need == 0):
                self._stuck_ticks[name] = 0
                self._reported.discard(name)
                continue
            self._stuck_ticks[name] = self._stuck_ticks.get(name, 0) + 1
            if self._stuck_ticks[name] < _STUCK_TICKS or name in self._reported:
                continue
            self._reported.add(name)
            self.suspicions += 1
            # Consumer blocked and nothing arriving: the producer side is
            # the suspect (starvation).  Producer blocked on a full ring:
            # the consumer is the suspect (convoy/backpressure).
            if cons_need:
                side, suspect, need = "consumer", "starvation", cons_need
            else:
                side, suspect, need = "producer", "convoy/backpressure", prod_need
            self._c_suspected.labels(side=side).inc()
            FLIGHT.record(
                "stall_suspected",
                edge=name,
                side=side,
                suspect=suspect,
                need=need,
                occupancy=pushed - popped,
                capacity=capacity,
                blocked_for_s=round(self._stuck_ticks[name] * self.interval, 3),
            )

    def run(self) -> None:
        while not self._stop_event.wait(self.interval):
            try:
                self._tick()
                METRICS.maybe_publish()
            except Exception:
                # Advisory-only: a failed sample must never disturb the run.
                pass

    def stop(self, timeout: float = 2.0) -> None:
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout=timeout)
