"""Process-wide **metrics registry**: counters, gauges, log2 histograms.

Streamscope's :class:`~repro.obs.tracer.MemoryTracer` records per-firing
spans — deep, but too heavy to leave on under a long-running server.  This
registry is the complementary always-on layer: a handful of counters,
gauges, and bounded log2-bucket histograms fed by increments the existing
paths already compute (cache hit/miss branches, downgrade sites, protocol
reports, per-run totals).  The cost model:

* **idle** — a disabled registry's ``inc``/``observe`` is one attribute
  check and a return; an *enabled* one is a dict add on a pre-resolved
  child.  Nothing here runs per item or per firing — only per run, per
  command, per cache lookup.
* **bounded** — histograms bucket by ``log2(value)`` into a sparse dict
  (at most ~64 buckets), so memory is fixed regardless of run count.

Exported two ways: :meth:`MetricsRegistry.snapshot` (JSON) and
:func:`prometheus_text` (Prometheus text exposition, with
:func:`parse_prometheus` as its test-time inverse).  For live inspection
(`python -m repro.obs monitor`), :func:`publish` drops an atomic JSON
snapshot (metrics + flight-recorder ring) into :func:`obs_dir`;
:func:`maybe_publish` rate-limits that to every ``REPRO_OBS_PUBLISH_S``
seconds (default 2) and is called from run boundaries, watchdog ticks,
and an atexit hook.  Forked parallel workers exit via ``os._exit`` and
therefore never publish — snapshots always describe the parent.

Env knobs: ``REPRO_METRICS=0`` disables the registry,
``REPRO_OBS_DIR`` overrides the snapshot directory,
``REPRO_OBS_PUBLISH_S`` the publish interval.
"""

from __future__ import annotations

import atexit
import json
import math
import os
import re
import sys
import tempfile
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.recorder import FLIGHT

# Histogram bucket exponents: value v lands in the smallest bucket with
# upper bound 2**k >= v.  [-24, 40] spans ~60ns latencies to ~1T items.
_MIN_EXP = -24
_MAX_EXP = 40

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def bucket_exponent(value: float) -> int:
    """Smallest ``k`` with ``2**k >= value``, clamped to the bucket range."""
    if value <= 0.0:
        return _MIN_EXP
    mantissa, exponent = math.frexp(value)  # value = m * 2**e, m in (0.5, 1]
    k = exponent if mantissa > 0.5 else exponent - 1
    return max(_MIN_EXP, min(_MAX_EXP, k))


class _Child:
    __slots__ = ("_registry",)

    def __init__(self, registry: "MetricsRegistry") -> None:
        self._registry = registry


class Counter(_Child):
    __slots__ = ("value",)

    def __init__(self, registry: "MetricsRegistry") -> None:
        super().__init__(registry)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if self._registry.enabled:
            self.value += amount
            self._registry._dirty = True


class Gauge(_Child):
    __slots__ = ("value",)

    def __init__(self, registry: "MetricsRegistry") -> None:
        super().__init__(registry)
        self.value = 0.0

    def set(self, value: float) -> None:
        if self._registry.enabled:
            self.value = float(value)
            self._registry._dirty = True

    def inc(self, amount: float = 1.0) -> None:
        if self._registry.enabled:
            self.value += amount
            self._registry._dirty = True


class Histogram(_Child):
    """Sparse log2-bucket histogram: ``buckets[k]`` counts values <= 2**k."""

    __slots__ = ("buckets", "count", "sum")

    def __init__(self, registry: "MetricsRegistry") -> None:
        super().__init__(registry)
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        k = bucket_exponent(value)
        self.buckets[k] = self.buckets.get(k, 0) + 1
        self.count += 1
        self.sum += value
        self._registry._dirty = True


_KIND_CLASSES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Family:
    """One named metric with labelled children (``repro_runs_total{engine=...}``)."""

    def __init__(self, registry: "MetricsRegistry", name: str, kind: str, help: str):
        self.name = name
        self.kind = kind
        self.help = help
        self._registry = registry
        self._children: Dict[_LabelKey, _Child] = {}

    def labels(self, **labels: str) -> Any:
        """Get-or-create the child for this label set (cache the result on hot paths)."""
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            child = _KIND_CLASSES[self.kind](self._registry)
            self._children[key] = child
        return child

    # Convenience one-shot forms for cold paths (one dict lookup extra).
    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if self._registry.enabled:
            self.labels(**labels).inc(amount)

    def set(self, value: float, **labels: str) -> None:
        if self._registry.enabled:
            self.labels(**labels).set(value)

    def observe(self, value: float, **labels: str) -> None:
        if self._registry.enabled:
            self.labels(**labels).observe(value)

    def samples(self) -> Iterator[Tuple[Dict[str, str], _Child]]:
        for key, child in sorted(self._children.items()):
            yield dict(key), child


class MetricsRegistry:
    """All metric families for one process, with JSON/Prometheus export."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: Dict[str, Family] = {}
        self._dirty = False
        self._last_publish = 0.0
        self._lock = threading.Lock()

    # -- family construction ------------------------------------------------

    def _family(self, name: str, kind: str, help: str) -> Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = Family(self, name, kind, help)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, not {kind}"
                )
            return family

    def counter(self, name: str, help: str = "") -> Family:
        return self._family(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> Family:
        return self._family(name, "gauge", help)

    def histogram(self, name: str, help: str = "") -> Family:
        return self._family(name, "histogram", help)

    # -- lifecycle ----------------------------------------------------------

    def set_enabled(self, enabled: bool) -> None:
        self.enabled = enabled

    def disabled(self) -> "_DisabledContext":
        """Context manager that switches the registry off (for overhead arms)."""
        return _DisabledContext(self)

    def clear(self) -> None:
        """Drop all recorded values (families stay registered)."""
        with self._lock:
            for family in self._families.values():
                family._children.clear()
        self._dirty = False

    # -- export -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable view: ``{name: {type, help, samples: [...]}}``."""
        out: Dict[str, Any] = {}
        with self._lock:
            families = list(self._families.values())
        for family in families:
            samples: List[Dict[str, Any]] = []
            for labels, child in family.samples():
                if isinstance(child, Histogram):
                    samples.append(
                        {
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                            "buckets": {
                                _le_text(k): n
                                for k, n in sorted(child.buckets.items())
                            },
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return out

    def prometheus(self) -> str:
        return prometheus_text(self.snapshot())

    # -- publishing for `repro.obs monitor` ---------------------------------

    def publish(self, directory: Optional[str] = None) -> Optional[str]:
        """Atomically write ``obs-<pid>.json`` (metrics + flight ring).

        Best-effort: any OSError is swallowed — telemetry must never take
        down the run it is observing.  Returns the path written, or None.
        """
        directory = directory or obs_dir()
        path = os.path.join(directory, f"obs-{os.getpid()}.json")
        payload = {
            "pid": os.getpid(),
            "argv": sys.argv,
            "ts": time.time(),
            "metrics": self.snapshot(),
            "flight": FLIGHT.payload(),
        }
        try:
            os.makedirs(directory, exist_ok=True)
            tmp = path + f".tmp{os.getpid()}"
            with open(tmp, "w") as fh:
                json.dump(payload, fh, default=str)
            os.replace(tmp, path)
            _prune_snapshots(directory)
        except OSError:
            return None
        self._dirty = False
        self._last_publish = time.monotonic()
        return path

    def maybe_publish(self, directory: Optional[str] = None) -> Optional[str]:
        """Publish if dirty and the ``REPRO_OBS_PUBLISH_S`` interval elapsed."""
        if not self.enabled or not self._dirty:
            return None
        interval = _publish_interval()
        if interval > 0 and time.monotonic() - self._last_publish < interval:
            return None
        return self.publish(directory)


class MeteredStats(dict):
    """A counters dict whose positive increments mirror into a metric family.

    The cache layers (plan, codegen, tuned) already account events with
    plain ``stats["hits"] += 1`` dicts; wrapping those dicts keeps every
    call site — and every existing test asserting on them — unchanged while
    feeding the always-on registry.  Decreases (the ``clear_*_cache``
    resets) are not mirrored: metric counters are monotonic.
    """

    def __init__(self, family: Family, labeler, mapping: Dict[str, int]) -> None:
        super().__init__(mapping)
        self._family = family
        self._labeler = labeler

    def __setitem__(self, key: str, value: int) -> None:
        if self._family._registry.enabled:
            delta = value - self.get(key, 0)
            if delta > 0:
                self._family.inc(delta, **self._labeler(key))
        super().__setitem__(key, value)


class _DisabledContext:
    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._was_enabled = registry.enabled

    def __enter__(self) -> MetricsRegistry:
        self._was_enabled = self._registry.enabled
        self._registry.enabled = False
        return self._registry

    def __exit__(self, *exc: Any) -> None:
        self._registry.enabled = self._was_enabled


# ---------------------------------------------------------------------------
# Prometheus text exposition (and its inverse, for round-trip tests)
# ---------------------------------------------------------------------------


def _le_text(exponent: int) -> str:
    """Bucket upper bound ``2**exponent`` as a Prometheus ``le`` value."""
    bound = 2.0 ** exponent
    if bound >= 1 and bound == int(bound):
        return str(int(bound))
    return repr(bound)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(snapshot: Dict[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus exposition text."""
    lines: List[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        kind = family["type"]
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in family["samples"]:
            labels = sample.get("labels", {})
            if kind == "histogram":
                cumulative = 0
                for le, count in sorted(
                    sample["buckets"].items(), key=lambda kv: float(kv[0])
                ):
                    cumulative += count
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = le
                    lines.append(
                        f"{name}_bucket{_format_labels(bucket_labels)} {cumulative}"
                    )
                inf_labels = dict(labels)
                inf_labels["le"] = "+Inf"
                lines.append(
                    f"{name}_bucket{_format_labels(inf_labels)} {sample['count']}"
                )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} {_format_value(sample['sum'])}"
                )
                lines.append(f"{name}_count{_format_labels(labels)} {sample['count']}")
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} {_format_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse exposition text back into ``{name: {type, help, samples}}``.

    Covers the subset :func:`prometheus_text` emits (enough for round-trip
    tests and the obs-smoke CI assertions, not a general scrape parser).
    Histogram series (``_bucket``/``_sum``/``_count``) fold back into their
    base family name.
    """
    families: Dict[str, Dict[str, Any]] = {}

    def family(name: str) -> Dict[str, Any]:
        return families.setdefault(
            name, {"type": "untyped", "help": "", "samples": []}
        )

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            family(name)["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            family(name)["type"] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"unparseable exposition line: {line!r}")
        name = match.group("name")
        labels = {
            k: re.sub(r"\\(.)", lambda m: {"n": "\n"}.get(m.group(1), m.group(1)), v)
            for k, v in _LABEL_RE.findall(match.group("labels") or "")
        }
        value = float(match.group("value"))
        base = name
        series = "value"
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                base = name[: -len(suffix)]
                series = suffix[1:]
                break
        fam = family(base)
        if series == "value":
            fam["samples"].append({"labels": labels, "value": value})
            continue
        # Histogram series: accumulate onto the sample matching the labels
        # sans "le".
        sample_labels = {k: v for k, v in labels.items() if k != "le"}
        target = None
        for sample in fam["samples"]:
            if sample["labels"] == sample_labels:
                target = sample
                break
        if target is None:
            target = {"labels": sample_labels, "count": 0, "sum": 0.0, "buckets": {}}
            fam["samples"].append(target)
        if series == "bucket":
            if labels.get("le") != "+Inf":
                target["buckets"][labels["le"]] = value
        elif series == "sum":
            target["sum"] = value
        elif series == "count":
            target["count"] = int(value)
    # De-cumulate histogram buckets back to per-bucket counts.
    for fam in families.values():
        if fam["type"] != "histogram":
            continue
        for sample in fam["samples"]:
            buckets = sample.get("buckets")
            if not buckets:
                continue
            previous = 0.0
            plain: Dict[str, int] = {}
            for le in sorted(buckets, key=float):
                plain[le] = int(buckets[le] - previous)
                previous = buckets[le]
            sample["buckets"] = plain
    return families


# ---------------------------------------------------------------------------
# Snapshot directory and publishing policy
# ---------------------------------------------------------------------------

_MAX_SNAPSHOTS = 32
_DEFAULT_PUBLISH_S = 2.0


def obs_dir() -> str:
    """Where obs snapshots live: ``REPRO_OBS_DIR`` or a per-user tempdir."""
    configured = os.environ.get("REPRO_OBS_DIR")
    if configured:
        return configured
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), f"repro-obs-{uid}")


def _publish_interval() -> float:
    try:
        return float(os.environ.get("REPRO_OBS_PUBLISH_S", _DEFAULT_PUBLISH_S))
    except ValueError:
        return _DEFAULT_PUBLISH_S


def _prune_snapshots(directory: str) -> None:
    try:
        entries = [
            os.path.join(directory, name)
            for name in os.listdir(directory)
            if name.startswith("obs-") and name.endswith(".json")
        ]
        if len(entries) <= _MAX_SNAPSHOTS:
            return
        entries.sort(key=lambda p: os.path.getmtime(p), reverse=True)
        for stale in entries[_MAX_SNAPSHOTS:]:
            os.unlink(stale)
    except OSError:
        pass


#: The process-wide registry every engine records into.
METRICS = MetricsRegistry(enabled=os.environ.get("REPRO_METRICS", "1") != "0")


@atexit.register
def _publish_at_exit() -> None:
    # Forked parallel workers exit via os._exit and never reach here, so
    # the final snapshot always describes the parent process.
    try:
        if METRICS.enabled and METRICS._dirty:
            METRICS.publish()
    except Exception:
        pass
