"""CLI entry: ``python -m repro.obs {report,validate} <trace.json>``.

* ``report`` — render the per-filter attribution table (self-time, stall%,
  teleport boundaries, engine downgrades) from a streamscope trace;
  ``--json`` emits the same aggregation machine-readably (the document
  ``repro.tune.Profile.from_report_json`` consumes);
* ``validate`` — check the file against the Chrome trace-event schema and
  print a shape summary (the CI ``trace-smoke`` gate).

Exit status: 0 on success, 1 on a schema violation or unreadable file,
2 for usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.obs.chrome import TraceFormatError, load_trace, trace_summary
from repro.obs.report import render_report, report_payload


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="streamscope trace tooling",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_report = sub.add_parser("report", help="per-filter attribution table")
    p_report.add_argument("trace", help="Chrome trace-event JSON file")
    p_report.add_argument(
        "--top", type=int, default=None, help="only the N most expensive rows"
    )
    p_report.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of the rendered table",
    )
    p_validate = sub.add_parser("validate", help="schema-check a trace file")
    p_validate.add_argument("trace", help="Chrome trace-event JSON file")
    p_validate.add_argument(
        "--min-tracks",
        type=int,
        default=1,
        help="require at least this many distinct tracks (CI gate)",
    )
    ns = parser.parse_args(argv)

    try:
        payload = load_trace(ns.trace)
    except (OSError, TraceFormatError) as exc:
        print(f"streamscope: {exc}", file=sys.stderr)
        return 1

    if ns.command == "validate":
        summary = trace_summary(payload)
        print(
            f"{ns.trace}: valid Chrome trace — {summary['events']} events, "
            f"{summary['spans']} spans, tracks {summary['tracks']}, "
            f"{len(summary['counters'])} counter series"
        )
        if len(summary["tracks"]) < ns.min_tracks:
            print(
                f"streamscope: expected >= {ns.min_tracks} tracks, "
                f"got {summary['tracks']}",
                file=sys.stderr,
            )
            return 1
        return 0

    if ns.json:
        import json

        print(json.dumps(report_payload(payload, top=ns.top), indent=2))
    else:
        print(render_report(payload, top=ns.top))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
