"""CLI entry: ``python -m repro.obs {report,validate,monitor,flight} ...``.

* ``report`` — render the per-filter attribution table (self-time, stall%,
  teleport boundaries, engine downgrades) from a streamscope trace;
  ``--json`` emits the same aggregation machine-readably (the document
  ``repro.tune.Profile.from_report_json`` consumes);
* ``validate`` — check the file against the Chrome trace-event schema and
  print a shape summary (the CI ``obs-smoke`` gate);
* ``monitor`` — live top-style view over the metrics snapshots a running
  (or recently exited) session publishes into the obs directory
  (``--once`` for one page, ``--json`` for the raw snapshot);
* ``flight`` — dump the flight-recorder ring from the newest snapshot:
  the post-mortem view that needs no pre-arranged tracer.

Exit status: 0 on success, 1 on a schema violation, unreadable file, or
missing snapshot, 2 for usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.obs.chrome import TraceFormatError, load_trace, trace_summary
from repro.obs.monitor import latest_snapshot, render_flight, render_monitor
from repro.obs.report import render_report, report_payload


def _cmd_trace(ns: argparse.Namespace) -> int:
    try:
        payload = load_trace(ns.trace)
    except (OSError, TraceFormatError) as exc:
        print(f"streamscope: {exc}", file=sys.stderr)
        return 1

    if ns.command == "validate":
        try:
            summary = trace_summary(payload)
        except Exception as exc:
            print(
                f"streamscope: {ns.trace}: malformed trace content: {exc}",
                file=sys.stderr,
            )
            return 1
        print(
            f"{ns.trace}: valid Chrome trace — {summary['events']} events, "
            f"{summary['spans']} spans, tracks {summary['tracks']}, "
            f"{len(summary['counters'])} counter series"
        )
        if len(summary["tracks"]) < ns.min_tracks:
            print(
                f"streamscope: expected >= {ns.min_tracks} tracks, "
                f"got {summary['tracks']}",
                file=sys.stderr,
            )
            return 1
        return 0

    # report: traces from older versions, other tools, or partial runs may
    # lack whole metadata sections (channels, teleports, caches).  The
    # renderer treats those as absent; anything still malformed degrades to
    # a clear one-line error instead of a traceback.
    try:
        if ns.json:
            print(json.dumps(report_payload(payload, top=ns.top), indent=2))
        else:
            print(render_report(payload, top=ns.top))
    except Exception as exc:
        print(
            f"streamscope: {ns.trace}: cannot build report from this trace "
            f"({exc.__class__.__name__}: {exc}); the file may be truncated "
            "or from an incompatible producer",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_monitor(ns: argparse.Namespace) -> int:
    def page() -> Optional[int]:
        snap = latest_snapshot(ns.dir, pid=ns.pid)
        if snap is None:
            where = ns.dir or "the obs directory"
            print(
                f"repro.obs: no metrics snapshot found in {where} "
                "(is a session running with metrics enabled? "
                "set REPRO_OBS_DIR to look elsewhere)",
                file=sys.stderr,
            )
            return 1
        if ns.json:
            print(json.dumps(snap, indent=2))
        else:
            print(render_monitor(snap))
        return 0

    if ns.once:
        return page() or 0
    try:
        while True:
            sys.stdout.write("\x1b[2J\x1b[H")  # clear screen, home cursor
            if page() == 1:
                return 1
            sys.stdout.flush()
            time.sleep(ns.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_flight(ns: argparse.Namespace) -> int:
    snap = latest_snapshot(ns.dir, pid=ns.pid)
    if snap is None:
        where = ns.dir or "the obs directory"
        print(
            f"repro.obs: no snapshot with a flight recording found in {where}",
            file=sys.stderr,
        )
        return 1
    if ns.json:
        print(json.dumps(snap.get("flight", {}), indent=2))
    else:
        print(render_flight(snap, n=ns.n))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="streamscope trace tooling and live metrics monitor",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="per-filter attribution table")
    p_report.add_argument("trace", help="Chrome trace-event JSON file")
    p_report.add_argument(
        "--top", type=int, default=None, help="only the N most expensive rows"
    )
    p_report.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of the rendered table",
    )

    p_validate = sub.add_parser("validate", help="schema-check a trace file")
    p_validate.add_argument("trace", help="Chrome trace-event JSON file")
    p_validate.add_argument(
        "--min-tracks",
        type=int,
        default=1,
        help="require at least this many distinct tracks (CI gate)",
    )

    p_monitor = sub.add_parser(
        "monitor", help="live view of a running session's metrics"
    )
    p_monitor.add_argument(
        "--dir", default=None, help="obs snapshot directory (default: REPRO_OBS_DIR)"
    )
    p_monitor.add_argument(
        "--pid", type=int, default=None, help="watch a specific process"
    )
    p_monitor.add_argument(
        "--once", action="store_true", help="print one page and exit"
    )
    p_monitor.add_argument(
        "--json", action="store_true", help="raw snapshot JSON instead of the page"
    )
    p_monitor.add_argument(
        "--interval", type=float, default=1.0, help="refresh period in seconds"
    )

    p_flight = sub.add_parser(
        "flight", help="dump the flight-recorder ring (post-mortem)"
    )
    p_flight.add_argument("--dir", default=None, help="obs snapshot directory")
    p_flight.add_argument(
        "--pid", type=int, default=None, help="a specific process's recording"
    )
    p_flight.add_argument(
        "-n", type=int, default=None, help="only the last N events"
    )
    p_flight.add_argument(
        "--json", action="store_true", help="raw flight payload as JSON"
    )

    ns = parser.parse_args(argv)
    try:
        if ns.command in ("report", "validate"):
            return _cmd_trace(ns)
        if ns.command == "monitor":
            return _cmd_monitor(ns)
        return _cmd_flight(ns)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-page: a normal exit.
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
