"""Hardware-ish channel counters for traced runs.

The history counters (``pushed_count``/``popped_count``) exist on every
channel kind already; tracing adds what those can't recover after the
fact:

* :class:`HwmArrayChannel` — an :class:`~repro.runtime.array_channel.
  ArrayChannel` that also tracks its occupancy **high-water mark**.  Only
  traced interpreters allocate it, so the untraced engine keeps the plain
  class (and its exact hot-path cost);
* :func:`channel_snapshot` — a serializable per-channel counter dict
  (pushed/popped/occupancy/high-water, ring stall statistics where the
  channel is a shared-memory ring).
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.runtime.array_channel import ArrayChannel


class HwmArrayChannel(ArrayChannel):
    """ArrayChannel that records its occupancy high-water mark."""

    __slots__ = ("high_water",)

    def __init__(self, name: str = "", initial=()) -> None:
        super().__init__(name=name, initial=initial)
        self.high_water = self.occupancy

    def push(self, item: float) -> None:
        super().push(item)
        if self.occupancy > self.high_water:
            self.high_water = self.occupancy

    def push_block(self, block: np.ndarray) -> None:
        super().push_block(block)
        if self.occupancy > self.high_water:
            self.high_water = self.occupancy

    def adopt_block(self, block: np.ndarray) -> None:
        super().adopt_block(block)
        if self.occupancy > self.high_water:
            self.high_water = self.occupancy


def channel_snapshot(channels: Dict[object, object]) -> Dict[str, Dict[str, Any]]:
    """Per-channel counter snapshot for the trace's metrics section."""
    from repro.runtime.ring import RingChannel

    out: Dict[str, Dict[str, Any]] = {}
    for chan in channels.values():
        try:
            row: Dict[str, Any] = {
                "pushed": int(chan.pushed_count),
                "popped": int(chan.popped_count),
                "occupancy": len(chan),
            }
            high_water = getattr(chan, "high_water", None)
            if high_water is not None:
                row["high_water"] = int(high_water)
            if isinstance(chan, RingChannel):
                row["kind"] = "ring"
                row.update(chan.stall_stats())
        except (TypeError, ValueError):
            # A ring detached by a failed/closed parallel session: its
            # shared-memory views are gone, so only note that it existed.
            row = {"kind": "ring", "detached": True}
        out[chan.name] = row
    return out
