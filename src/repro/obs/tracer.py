"""The ``streamscope`` tracer core: protocol, null tracer, ring recorder.

Every execution engine threads a :class:`Tracer` through its hot loops.
The contract keeping the disabled path free (the CI guard holds it to ~2%
of the untraced engine):

* engines check ``tracer.enabled`` **once per phase or chunk**, never per
  item, and take a physically separate untraced code path when it is
  false;
* the default tracer is the process-wide :data:`NULL_TRACER` singleton —
  ``enabled`` is ``False`` and every method is a no-op, so even code that
  forgets the check only pays an attribute load and a no-op call.

:class:`MemoryTracer` is the in-memory ring recorder: a bounded deque of
Chrome-trace-shaped event dicts plus a side ``meta`` dict for run-level
facts (engine report, channel counters, ring stall statistics, teleport
delivery records).  Export through :meth:`MemoryTracer.chrome` /
:meth:`MemoryTracer.write` (Perfetto-loadable JSON, one track per
core/worker) or :meth:`MemoryTracer.metrics` (the flat dict the bench
harness consumes).

Timestamps are ``time.perf_counter()`` seconds.  On Linux that clock is
``CLOCK_MONOTONIC``, which is system-wide — events recorded in forked
parallel workers land on the same timeline as the parent's.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional

#: Chrome trace-event categories used by the engines.
CAT_ENGINE = "engine"        # run_init / run_steady envelopes
CAT_FILTER = "filter"        # scalar-engine per-phase firings
CAT_KERNEL = "batch_kernel"  # batched-engine block-kernel executions
CAT_FUSED = "fused_chain"    # batched-engine fused-chain composites
CAT_CORE = "core_loop"       # CoreLoopRunner chunks (cyclic cores)
CAT_WORKER = "worker"        # parallel-engine per-worker firings
CAT_CODEGEN = "codegen"      # codegen-engine generated-module chunks
CAT_TELEPORT = "teleport"    # message send/delivery instants
CAT_PLAN = "plan"            # plan compilation, cache hits/misses
CAT_META = "meta"            # run-level annotations (errors, reports)

#: Span categories whose durations count as filter self-time in reports.
SELF_TIME_CATS = frozenset(
    {CAT_FILTER, CAT_KERNEL, CAT_FUSED, CAT_CORE, CAT_WORKER, CAT_CODEGEN}
)


class Tracer:
    """The tracing protocol every engine accepts.

    Timestamps (``ts``) and durations (``dur``) are in seconds from
    :func:`time.perf_counter`; ``tid`` selects the track (worker id in the
    parallel engine, 0 elsewhere).
    """

    #: Engines branch on this once per phase/chunk; False means every
    #: recording method is a no-op.
    enabled: bool = False

    def complete(
        self,
        name: str,
        cat: str,
        ts: float,
        dur: float,
        tid: int = 0,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a span (Chrome ``ph="X"``)."""

    def instant(
        self,
        name: str,
        cat: str,
        tid: int = 0,
        args: Optional[Dict[str, Any]] = None,
        ts: Optional[float] = None,
    ) -> None:
        """Record a point event (Chrome ``ph="i"``)."""

    def counter(
        self,
        name: str,
        values: Dict[str, float],
        tid: int = 0,
        ts: Optional[float] = None,
    ) -> None:
        """Record a counter sample (Chrome ``ph="C"``)."""

    def name_track(self, tid: int, name: str) -> None:
        """Label a track (Chrome thread_name metadata)."""


class NullTracer(Tracer):
    """The zero-cost disabled tracer (a falsy singleton)."""

    __slots__ = ()
    enabled = False

    def __bool__(self) -> bool:
        return False


#: The process-wide disabled tracer; engines default to this.
NULL_TRACER = NullTracer()


class MemoryTracer(Tracer):
    """In-memory ring recorder of trace events.

    Events are stored as Chrome-trace-shaped dicts in a bounded deque —
    when ``capacity`` is exceeded the oldest events fall off (and
    ``dropped`` counts them), so a long traced run degrades to a sliding
    window instead of unbounded memory.

    ``capacity`` defaults to the ``REPRO_TRACE_CAP`` environment variable
    (or 1,000,000 spans when unset) so long soak runs can shrink the
    window — ~200 bytes/span means the default ring tops out near 200 MB —
    without touching the code that constructs the tracer.
    """

    enabled = True

    DEFAULT_CAPACITY = 1_000_000

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is None:
            import os

            try:
                capacity = max(
                    1, int(os.environ.get("REPRO_TRACE_CAP", self.DEFAULT_CAPACITY))
                )
            except ValueError:
                capacity = self.DEFAULT_CAPACITY
        self.capacity = int(capacity)
        self.events: deque = deque(maxlen=self.capacity)
        self.dropped = 0
        #: Run-level facts keyed by section name; see the engines and
        #: :meth:`metrics` for the populated keys ("engine_report",
        #: "channels", "rings", "teleports", "plan_cache", ...).
        self.meta: Dict[str, Any] = {}
        self.track_names: Dict[int, str] = {}

    # -- recording ----------------------------------------------------------

    def _append(self, event: Dict[str, Any]) -> None:
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(event)

    def complete(self, name, cat, ts, dur, tid=0, args=None) -> None:
        event = {"name": name, "cat": cat, "ph": "X", "ts": ts, "dur": dur, "tid": tid}
        if args:
            event["args"] = args
        self._append(event)

    def instant(self, name, cat, tid=0, args=None, ts=None) -> None:
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "ts": time.perf_counter() if ts is None else ts,
            "tid": tid,
            "s": "t",
        }
        if args:
            event["args"] = args
        self._append(event)

    def counter(self, name, values, tid=0, ts=None) -> None:
        self._append(
            {
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": time.perf_counter() if ts is None else ts,
                "tid": tid,
                "args": dict(values),
            }
        )

    def name_track(self, tid: int, name: str) -> None:
        self.track_names[tid] = name

    def ingest(self, events: Iterable[Dict[str, Any]]) -> None:
        """Merge events recorded elsewhere (parallel workers ship their
        locally-buffered spans here after each command)."""
        for event in events:
            self._append(event)

    # -- export --------------------------------------------------------------

    def chrome(self) -> Dict[str, Any]:
        """The trace as a Chrome trace-event JSON object (Perfetto-ready).

        Timestamps are rebased to the earliest event and converted to the
        format's microseconds.  Run-level metadata rides along under the
        ``"repro"`` top-level key (ignored by viewers, used by
        ``python -m repro.obs report``).
        """
        events = list(self.events)
        base = min((e["ts"] for e in events), default=0.0)
        out: List[Dict[str, Any]] = []
        for tid in sorted(self.track_names):
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": self.track_names[tid]},
                }
            )
        for event in events:
            converted = dict(event)
            converted["pid"] = 1
            converted["ts"] = (event["ts"] - base) * 1e6
            if "dur" in converted:
                converted["dur"] = event["dur"] * 1e6
            out.append(converted)
        return {
            "traceEvents": out,
            "displayTimeUnit": "ms",
            "repro": {
                "dropped_events": self.dropped,
                "meta": self.meta,
            },
        }

    def write(self, path) -> None:
        """Write the Chrome trace JSON to ``path``."""
        import json

        with open(path, "w") as fh:
            json.dump(self.chrome(), fh, indent=1)
            fh.write("\n")

    def metrics(self) -> Dict[str, Any]:
        """Flat aggregated metrics (the bench-harness view of the trace).

        Returns::

            {
              "filters": {name: {"self_time": s, "spans": n,
                                 "firings": n, "items": n}},
              "workers": {tid: busy_seconds},
              "rings": {...}, "channels": {...}, "teleports": [...],
              "plan_cache": {...}, "engine_report": {...},
              "dropped_events": n,
            }
        """
        filters: Dict[str, Dict[str, float]] = {}
        workers: Dict[int, float] = {}
        for event in self.events:
            if event.get("ph") != "X" or event.get("cat") not in SELF_TIME_CATS:
                continue
            row = filters.setdefault(
                event["name"], {"self_time": 0.0, "spans": 0, "firings": 0, "items": 0}
            )
            row["self_time"] += event["dur"]
            row["spans"] += 1
            args = event.get("args") or {}
            row["firings"] += args.get("firings", 0)
            row["items"] += args.get("items", 0)
            tid = event.get("tid", 0)
            workers[tid] = workers.get(tid, 0.0) + event["dur"]
        out: Dict[str, Any] = {
            "filters": filters,
            "workers": workers,
            "dropped_events": self.dropped,
        }
        out.update(self.meta)
        return out
