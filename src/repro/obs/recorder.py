"""The always-on **flight recorder**: a tiny ring of recent coarse events.

Streamscope tracing (PR 5) answers "what happened" only if you asked
*before* the run.  Long-running stream graphs fail later, not at startup,
so the flight recorder keeps the last :data:`~FlightRecorder.capacity`
coarse events — run start/end, engine selection, structured downgrades,
parallel commands, ring stalls, watchdog suspicions, worker errors — in a
bounded process-wide ring that is always recording.  The cost of one event
is a dict build plus a deque append (well under a microsecond), and events
are recorded at *run/command* granularity, never per item or per firing.

The ring pays for itself at post-mortem time:

* parallel-engine failures splice :func:`format_flight_tail` into the
  :class:`~repro.errors.StreamItError` text, so the failing filter, the
  last command, and the last stall suspicion arrive in one message;
* the metrics publisher (:mod:`repro.obs.metrics`) embeds the ring in
  every published snapshot, so ``python -m repro.obs flight`` can show the
  final moments of a crashed process with no pre-arranged tracer.

``REPRO_FLIGHT_CAP`` overrides the default 256-event capacity.
"""

from __future__ import annotations

import os
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional

_DEFAULT_CAPACITY = 256


def _default_capacity() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_FLIGHT_CAP", _DEFAULT_CAPACITY)))
    except ValueError:
        return _DEFAULT_CAPACITY


class FlightRecorder:
    """Bounded ring of coarse run-level events (always on, process-wide).

    Each event is a plain dict: ``{"ts": <time.time()>, "kind": <str>,
    ...fields}``.  Old events fall off the front; ``dropped`` counts them.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.capacity = (
            _default_capacity() if capacity is None else max(1, int(capacity))
        )
        self.events: deque = deque(maxlen=self.capacity)
        self.dropped = 0

    def record(self, kind: str, **fields: Any) -> None:
        """Append one event (cheap: call at run/command granularity only)."""
        if len(self.events) == self.capacity:
            self.dropped += 1
        event = {"ts": time.time(), "kind": kind}
        event.update(fields)
        self.events.append(event)

    def tail(self, n: int = 8, kinds: Optional[Iterable[str]] = None) -> List[Dict]:
        """The last ``n`` events (optionally only of the given kinds)."""
        events = list(self.events)
        if kinds is not None:
            wanted = frozenset(kinds)
            events = [e for e in events if e["kind"] in wanted]
        return events[-n:]

    def payload(self) -> Dict[str, Any]:
        """JSON-serializable view (embedded in published obs snapshots)."""
        return {
            "capacity": self.capacity,
            "dropped": self.dropped,
            "events": list(self.events),
        }

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0


def format_flight_event(event: Dict[str, Any]) -> str:
    """``[HH:MM:SS.mmm] kind key=value ...`` — one line per event."""
    ts = event.get("ts", 0.0)
    clock = time.strftime("%H:%M:%S", time.localtime(ts))
    millis = int((ts % 1.0) * 1000)
    fields = " ".join(
        f"{key}={value}"
        for key, value in event.items()
        if key not in ("ts", "kind")
    )
    return f"[{clock}.{millis:03d}] {event.get('kind', '?')}" + (
        f" {fields}" if fields else ""
    )


def format_flight_tail(
    events: Iterable[Dict[str, Any]], n: int = 8, header: bool = True
) -> str:
    """Render the last ``n`` events as an indented block for error text."""
    rows = list(events)[-n:]
    if not rows:
        return ""
    lines = []
    if header:
        lines.append(f"flight recorder (last {len(rows)} event(s)):")
    lines.extend(f"  {format_flight_event(e)}" for e in rows)
    return "\n".join(lines)


#: The process-wide recorder every engine records into.
FLIGHT = FlightRecorder()
