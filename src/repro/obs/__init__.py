"""``repro.obs`` — *streamscope*: tracing, metrics, profile attribution.

A low-overhead observability layer threaded through all three execution
engines (see DESIGN.md, "Observability"):

* :class:`Tracer` protocol with the zero-cost :data:`NULL_TRACER` and the
  in-memory :class:`MemoryTracer` ring recorder;
* span events for scalar filter firings, batched block kernels and fused
  chains (with plan-cache hit/miss counters), and per-worker timelines in
  the parallel engine;
* hardware-ish counters: per-channel push/pop history, ArrayChannel
  occupancy high-water marks, SPSC ring stall/backpressure statistics,
  and teleport send→delivery records checked against the SDEP wavefront;
* exporters: Chrome trace-event JSON (Perfetto-loadable, one track per
  worker) via :meth:`MemoryTracer.write`, and the flat
  :meth:`MemoryTracer.metrics` dict the bench harness consumes;
* the always-on layer: the process-wide :data:`METRICS` registry
  (counters/gauges/log2 histograms with JSON + Prometheus export), the
  :data:`FLIGHT` recorder (a bounded ring of coarse run events dumped
  into error text and post-mortems), and the parallel engine's stall
  watchdog (:mod:`repro.obs.watchdog`);
* a CLI: ``python -m repro.obs report <trace.json>`` renders the
  per-filter attribution table, ``... validate`` schema-checks a trace,
  ``... monitor`` is a live top-style view over a running session's
  published metrics, ``... flight`` dumps the flight recorder.

Enable tracing with ``Interpreter(app, trace=True)`` (inspect
``interp.tracer``), ``trace=<path>`` (a trace file is written on
``close()``), or ``trace=<your MemoryTracer>``.  Metrics and the flight
recorder are on by default (``REPRO_METRICS=0`` disables).
"""

from repro.obs.chrome import (
    TraceFormatError,
    load_trace,
    trace_summary,
    validate_trace,
)
from repro.obs.counters import HwmArrayChannel, channel_snapshot
from repro.obs.metrics import (
    METRICS,
    MetricsRegistry,
    obs_dir,
    parse_prometheus,
    prometheus_text,
)
from repro.obs.recorder import FLIGHT, FlightRecorder, format_flight_tail
from repro.obs.report import aggregate_filters, render_report
from repro.obs.tracer import (
    CAT_CORE,
    CAT_ENGINE,
    CAT_FILTER,
    CAT_FUSED,
    CAT_KERNEL,
    CAT_META,
    CAT_PLAN,
    CAT_TELEPORT,
    CAT_WORKER,
    NULL_TRACER,
    MemoryTracer,
    NullTracer,
    Tracer,
)

__all__ = [
    "CAT_CORE",
    "CAT_ENGINE",
    "CAT_FILTER",
    "CAT_FUSED",
    "CAT_KERNEL",
    "CAT_META",
    "CAT_PLAN",
    "CAT_TELEPORT",
    "CAT_WORKER",
    "FLIGHT",
    "FlightRecorder",
    "HwmArrayChannel",
    "METRICS",
    "MemoryTracer",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "TraceFormatError",
    "Tracer",
    "aggregate_filters",
    "channel_snapshot",
    "format_flight_tail",
    "load_trace",
    "obs_dir",
    "parse_prometheus",
    "prometheus_text",
    "render_report",
    "trace_summary",
    "validate_trace",
]
