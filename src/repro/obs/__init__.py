"""``repro.obs`` — *streamscope*: tracing, metrics, profile attribution.

A low-overhead observability layer threaded through all three execution
engines (see DESIGN.md, "Observability"):

* :class:`Tracer` protocol with the zero-cost :data:`NULL_TRACER` and the
  in-memory :class:`MemoryTracer` ring recorder;
* span events for scalar filter firings, batched block kernels and fused
  chains (with plan-cache hit/miss counters), and per-worker timelines in
  the parallel engine;
* hardware-ish counters: per-channel push/pop history, ArrayChannel
  occupancy high-water marks, SPSC ring stall/backpressure statistics,
  and teleport send→delivery records checked against the SDEP wavefront;
* exporters: Chrome trace-event JSON (Perfetto-loadable, one track per
  worker) via :meth:`MemoryTracer.write`, and the flat
  :meth:`MemoryTracer.metrics` dict the bench harness consumes;
* a CLI: ``python -m repro.obs report <trace.json>`` renders the
  per-filter attribution table, ``... validate`` schema-checks a trace.

Enable with ``Interpreter(app, trace=True)`` (inspect
``interp.tracer``), ``trace=<path>`` (a trace file is written on
``close()``), or ``trace=<your MemoryTracer>``.
"""

from repro.obs.chrome import (
    TraceFormatError,
    load_trace,
    trace_summary,
    validate_trace,
)
from repro.obs.counters import HwmArrayChannel, channel_snapshot
from repro.obs.report import aggregate_filters, render_report
from repro.obs.tracer import (
    CAT_CORE,
    CAT_ENGINE,
    CAT_FILTER,
    CAT_FUSED,
    CAT_KERNEL,
    CAT_META,
    CAT_PLAN,
    CAT_TELEPORT,
    CAT_WORKER,
    NULL_TRACER,
    MemoryTracer,
    NullTracer,
    Tracer,
)

__all__ = [
    "CAT_CORE",
    "CAT_ENGINE",
    "CAT_FILTER",
    "CAT_FUSED",
    "CAT_KERNEL",
    "CAT_META",
    "CAT_PLAN",
    "CAT_TELEPORT",
    "CAT_WORKER",
    "HwmArrayChannel",
    "MemoryTracer",
    "NULL_TRACER",
    "NullTracer",
    "TraceFormatError",
    "Tracer",
    "aggregate_filters",
    "channel_snapshot",
    "load_trace",
    "render_report",
    "trace_summary",
    "validate_trace",
]
