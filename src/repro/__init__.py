"""repro — a Python reproduction of the StreamIt language and compiler.

Reproduces "Language and Compiler Design for Streaming Applications"
(Thies et al., IPDPS 2004) and the StreamIt results the supplied paper text
reports: linear analysis and optimization of stream programs, information-
wavefront (`sdep`) scheduling semantics with teleport messaging, and the
coarse-grained task/data/software-pipeline parallelism study on a simulated
16-core Raw-like machine.

Quick start::

    from repro.graph import Pipeline, ArraySource, CollectSink
    from repro.apps.fir import FIRFilter
    from repro.runtime import Interpreter

    sink = CollectSink()
    app = Pipeline(ArraySource([1.0, 2.0, 3.0, 4.0]), FIRFilter([0.5, 0.5]), sink)
    Interpreter(app).run(periods=8)
    print(sink.collected)
"""

__version__ = "1.0.0"

from repro import errors

__all__ = ["errors", "__version__"]
