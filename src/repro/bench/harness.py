"""Shared infrastructure for the experiment benchmarks (E1-E9).

Each ``benchmarks/bench_e*.py`` regenerates one of the paper's tables or
figures.  The expensive inputs — the strategy evaluations over the
12-application suite — are computed once per process and cached here.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps import EVALUATION_SUITE
from repro.graph.builtins import CollectSink
from repro.mapping.strategies import STRATEGIES, StrategyResult
from repro.machine.raw import RawMachine
from repro.runtime.interpreter import Interpreter


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the evaluation's summary statistic)."""
    if not values:
        return 0.0
    return math.exp(sum(math.log(max(v, 1e-12)) for v in values) / len(values))


@lru_cache(maxsize=None)
def strategy_result(app_name: str, strategy: str) -> StrategyResult:
    """One (application, strategy) evaluation, cached per process."""
    builder = EVALUATION_SUITE[app_name]
    return STRATEGIES[strategy](builder(), RawMachine())


def speedup_table(strategies: Sequence[str]) -> Dict[str, Dict[str, float]]:
    """Per-application speedups over single-core, for the given strategies."""
    return {
        app: {s: strategy_result(app, s).speedup for s in strategies}
        for app in EVALUATION_SUITE
    }


def render_bars(
    table: Dict[str, Dict[str, float]],
    strategies: Sequence[str],
    title: str,
) -> str:
    """Text rendering in the style of the paper's bar charts."""
    width = max(len(a) for a in table) + 2
    lines = [title, ""]
    header = " " * width + "".join(f"{s:>14s}" for s in strategies)
    lines.append(header)
    for app, row in table.items():
        lines.append(
            f"{app:{width}s}" + "".join(f"{row[s]:14.2f}" for s in strategies)
        )
    lines.append("-" * len(header))
    geo = {s: geometric_mean([table[a][s] for a in table]) for s in strategies}
    lines.append(f"{'geomean':{width}s}" + "".join(f"{geo[s]:14.2f}" for s in strategies))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Wall-clock throughput of interpreted applications (linear study, teleport)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ThroughputSample:
    """Measured interpreter throughput for one program variant."""

    label: str
    items_per_second: float
    outputs: int
    seconds: float


def measure_throughput(
    builder: Callable[[], object],
    periods: int,
    label: str = "",
    warmup_periods: int = 2,
    engine: str = "scalar",
    **engine_opts,
) -> ThroughputSample:
    """Wall-clock items/second of a closed stream over ``periods`` periods.

    Extra ``engine_opts`` (``strategy=...``, ``cores=...``) pass through to
    the :class:`Interpreter`; the warmup also absorbs one-time engine setup
    (plan compilation, parallel worker forking).
    """
    app = builder()
    sink = next(f for f in app.filters() if isinstance(f, CollectSink))
    interp = Interpreter(app, check=False, engine=engine, **engine_opts)
    try:
        interp.run(periods=warmup_periods)
        produced_before = len(sink.collected)
        # Let the engine finish post-warmup housekeeping (forked workers
        # collect between commands) before the window opens — otherwise
        # the first milliseconds of the timed run measure the scheduler
        # untangling the warmup, not the engine.  A sleep cannot flatter a
        # single-process engine, so batched/scalar numbers are unaffected.
        time.sleep(0.1)
        start = time.perf_counter()
        interp.run_steady(periods)
        elapsed = time.perf_counter() - start
    finally:
        interp.close()
    outputs = len(sink.collected) - produced_before
    return ThroughputSample(
        label=label,
        items_per_second=outputs / elapsed if elapsed > 0 else float("inf"),
        outputs=outputs,
        seconds=elapsed,
    )


def measure_best(
    builder: Callable[[], object],
    periods: int,
    label: str = "",
    repeats: int = 3,
    engine: str = "batched",
    **engine_opts,
) -> ThroughputSample:
    """Best-of-``repeats`` throughput — the benchmarks' standard measurement.

    Interference on a shared host only ever slows a run down, so the max
    over a few repeats estimates the undisturbed rate (the same pattern the
    E10 guard and the overhead studies use inline).
    """
    best: Optional[ThroughputSample] = None
    for _ in range(repeats):
        sample = measure_throughput(
            builder, periods, label=label, engine=engine, **engine_opts
        )
        if best is None or sample.items_per_second > best.items_per_second:
            best = sample
    assert best is not None
    return best


def time_breakdown(
    builder: Callable[[], object],
    periods: int,
    engine: str = "batched",
    top: int = 3,
    **engine_opts,
) -> Tuple[str, Dict[str, object]]:
    """Where the time goes: a short traced run's per-filter attribution.

    Runs ``periods`` periods with streamscope tracing on (:mod:`repro.obs`)
    and returns ``(text, metrics)`` — ``text`` is a compact
    ``"name:45% name:30% ..."`` column for benchmark tables (the ``top``
    most expensive filters by self-time), ``metrics`` the full
    :meth:`~repro.obs.MemoryTracer.metrics` dict.  The traced run is
    separate from the timed one, so the measurement itself stays untraced.
    """
    app = builder()
    interp = Interpreter(app, check=False, engine=engine, trace=True, **engine_opts)
    try:
        interp.run(periods=periods)
    finally:
        interp.close()
    metrics = interp.tracer.metrics()
    filters = metrics.get("filters", {})
    total = sum(row["self_time"] for row in filters.values())
    if total <= 0:
        return "n/a", metrics
    def short(name: str) -> str:
        # Fully-fused chains concatenate every stage name; keep the ends.
        if len(name) > 28 and "+" in name:
            stages = name.split("+")
            return f"{stages[0]}+..+{stages[-1]}[{len(stages)}]"
        return name

    ordered = sorted(filters.items(), key=lambda kv: -kv[1]["self_time"])[:top]
    text = " ".join(
        f"{short(name)}:{100.0 * row['self_time'] / total:.0f}%"
        for name, row in ordered
    )
    return text, metrics


def normalize_periods(base_builder: Callable, opt_builder: Callable, base_periods: int) -> int:
    """Periods for the optimized variant producing comparable output volume.

    Optimization changes the steady-state granularity (a frequency filter's
    period covers many base periods), so wall-clock comparisons match the
    *output item count*, not the period count.
    """
    def outputs_per_period(builder: Callable) -> int:
        app = builder()
        sink = next(f for f in app.filters() if isinstance(f, CollectSink))
        interp = Interpreter(app, check=False)
        interp.run(periods=1)
        produced = len(sink.collected)
        interp.run_steady(1)
        return max(len(sink.collected) - produced, 1)

    base_rate = outputs_per_period(base_builder)
    opt_rate = outputs_per_period(opt_builder)
    return max(1, round(base_periods * base_rate / opt_rate))
