"""Benchmark harness: regenerates every table and figure in the paper."""

from repro.bench.harness import (
    ThroughputSample,
    geometric_mean,
    measure_throughput,
    normalize_periods,
    render_bars,
    speedup_table,
    strategy_result,
    time_breakdown,
)

__all__ = [
    "time_breakdown",
    "geometric_mean",
    "strategy_result",
    "speedup_table",
    "render_bars",
    "measure_throughput",
    "normalize_periods",
    "ThroughputSample",
]
