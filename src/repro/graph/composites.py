"""Composite stream constructs: Pipeline, SplitJoin, FeedbackLoop.

Each composite has (at most) a single input and single output, so composites
nest recursively — the central structural idea of the StreamIt language.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ValidationError
from repro.graph.base import Filter, Stream
from repro.graph.splitjoin import JoinerSpec, SplitterSpec


class Pipeline(Stream):
    """A sequence of streams, the output of each feeding the next.

    Children may be passed to the constructor or appended with :meth:`add`
    (the analogue of StreamIt's ``add`` inside ``init``).
    """

    def __init__(self, *children: Stream, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        self._children: List[Stream] = []
        for child in children:
            self.add(child)

    def add(self, child: Stream) -> Stream:
        """Append ``child`` to the pipeline and return it."""
        if not isinstance(child, Stream):
            raise ValidationError(f"Pipeline child must be a Stream, got {type(child)!r}")
        if child.parent is not None:
            raise ValidationError(
                f"stream instance {child.name} already appears in the graph "
                f"(under {child.parent.name}); each instance may be used once"
            )
        child.parent = self
        self._children.append(child)
        return child

    def children(self) -> Tuple[Stream, ...]:
        return tuple(self._children)

    def __len__(self) -> int:
        return len(self._children)

    def __getitem__(self, index: int) -> Stream:
        return self._children[index]


class SplitJoin(Stream):
    """Parallel child streams between a splitter and a joiner."""

    def __init__(
        self,
        splitter: SplitterSpec,
        children: Iterable[Stream],
        joiner: JoinerSpec,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        if not isinstance(splitter, SplitterSpec):
            raise ValidationError(f"expected SplitterSpec, got {type(splitter)!r}")
        if not isinstance(joiner, JoinerSpec):
            raise ValidationError(f"expected JoinerSpec, got {type(joiner)!r}")
        self.splitter = splitter
        self.joiner = joiner
        self._children: List[Stream] = []
        for child in children:
            if child.parent is not None:
                raise ValidationError(
                    f"stream instance {child.name} already appears in the graph"
                )
            child.parent = self
            self._children.append(child)
        if not self._children:
            raise ValidationError("SplitJoin requires at least one branch")
        n = len(self._children)
        if splitter.weights is not None and len(splitter.weights) != n:
            raise ValidationError(
                f"splitter has {len(splitter.weights)} weights for {n} branches"
            )
        if joiner.weights is not None and len(joiner.weights) != n:
            raise ValidationError(
                f"joiner has {len(joiner.weights)} weights for {n} branches"
            )

    def children(self) -> Tuple[Stream, ...]:
        return tuple(self._children)

    @property
    def n_branches(self) -> int:
        return len(self._children)

    def split_weights(self) -> Tuple[int, ...]:
        """Items delivered to each branch per splitter cycle."""
        return self.splitter.resolved_weights(self.n_branches)

    def join_weights(self) -> Tuple[int, ...]:
        """Items collected from each branch per joiner cycle."""
        return self.joiner.resolved_weights(self.n_branches)


class FeedbackLoop(Stream):
    """A cycle in the stream graph.

    Topology (matching the paper's Figure "FeedbackLoop construct")::

            input ──► joiner ──► body ──► splitter ──► output
                        ▲                     │
                        └──── loopback ◄──────┘

    The joiner's branch 0 is the external input and branch 1 the loopback;
    the splitter's branch 0 is the external output and branch 1 feeds the
    loopback stream.  ``delay`` items are prefilled on the loopback channel
    by calling ``init_path(0), …, init_path(delay-1)`` before execution, so
    the joiner can fire before the body has produced anything.
    """

    def __init__(
        self,
        joiner: JoinerSpec,
        body: Stream,
        splitter: SplitterSpec,
        loopback: Stream,
        delay: int,
        init_path: Optional[Callable[[int], float]] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        if joiner.kind == "null" or splitter.kind == "null":
            raise ValidationError("feedback loop splitter/joiner must not be NULL")
        if joiner.weights is not None and len(joiner.weights) != 2:
            raise ValidationError("feedback joiner must have exactly two input weights")
        if splitter.weights is not None and len(splitter.weights) != 2:
            raise ValidationError("feedback splitter must have exactly two output weights")
        if delay < 0:
            raise ValidationError(f"delay must be non-negative, got {delay}")
        for child, role in ((body, "body"), (loopback, "loopback")):
            if not isinstance(child, Stream):
                raise ValidationError(f"feedback {role} must be a Stream")
            if child.parent is not None:
                raise ValidationError(
                    f"stream instance {child.name} already appears in the graph"
                )
            child.parent = self
        self.joiner = joiner
        self.body = body
        self.splitter = splitter
        self.loopback = loopback
        self.delay = delay
        self.init_path = init_path if init_path is not None else (lambda i: 0.0)

    def children(self) -> Tuple[Stream, ...]:
        return (self.body, self.loopback)

    def join_weights(self) -> Tuple[int, ...]:
        """(external, loopback) items consumed per joiner cycle."""
        return self.joiner.resolved_weights(2)

    def split_weights(self) -> Tuple[int, ...]:
        """(external, loopback) items produced per splitter cycle."""
        return self.splitter.resolved_weights(2)

    def initial_values(self) -> List[float]:
        """The ``delay`` items prefilled on the loopback channel."""
        return [self.init_path(i) for i in range(self.delay)]


def pipeline(*children: Stream, name: Optional[str] = None) -> Pipeline:
    """Convenience constructor for :class:`Pipeline`."""
    return Pipeline(*children, name=name)


def splitjoin(
    splitter: SplitterSpec,
    children: Sequence[Stream],
    joiner: JoinerSpec,
    name: Optional[str] = None,
) -> SplitJoin:
    """Convenience constructor for :class:`SplitJoin`."""
    return SplitJoin(splitter, children, joiner, name=name)
