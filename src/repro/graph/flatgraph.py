"""Flattening of hierarchical stream graphs.

The hierarchical ``Stream`` structure is convenient for programmers and for
the structural optimizers, but scheduling, execution, ``sdep`` computation
and machine mapping all operate on a *flat graph*: filters plus explicit
splitter/joiner nodes, connected by edges that carry static per-firing rates.

Flat nodes:

* ``filter`` — one input port (unless a source), one output port (unless a
  sink); consumes ``pop`` / peeks ``peek`` / produces ``push`` per firing.
* ``splitter`` — one input port, one output port per branch; a *firing* is
  one splitter cycle (consuming ``sum(weights)`` items for round-robin, or
  one item for duplicate).
* ``joiner`` — one input port per branch, one output port; one firing is one
  joiner cycle.

Feedback loops flatten to a joiner and splitter with the loopback edge
carrying ``delay`` initial items.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ValidationError
from repro.graph.base import Filter, Stream
from repro.graph.composites import FeedbackLoop, Pipeline, SplitJoin
from repro.graph.splitjoin import COMBINE, DUPLICATE, JoinerSpec, NULL, SplitterSpec

FILTER = "filter"
SPLITTER = "splitter"
JOINER = "joiner"

_flat_ids = itertools.count()


@dataclass(eq=False)
class FlatNode:
    """One node of the flattened stream graph."""

    kind: str
    name: str
    # Per-firing consumption for each input port / production per output port.
    in_rates: Tuple[int, ...]
    out_rates: Tuple[int, ...]
    # Extra lookahead beyond pop (filters only; 0 for splitters/joiners).
    peek_extra: int = 0
    # The originating object: a Filter, or the SplitJoin/FeedbackLoop that
    # owns this splitter/joiner.
    obj: Optional[Union[Filter, SplitJoin, FeedbackLoop]] = None
    # Splitter/joiner flavour: "duplicate"/"roundrobin"/"combine"/"null".
    flavor: Optional[str] = None
    uid: int = field(default_factory=lambda: next(_flat_ids))

    # Filled in by FlatGraph construction:
    in_edges: List["FlatEdge"] = field(default_factory=list)
    out_edges: List["FlatEdge"] = field(default_factory=list)

    @property
    def filter(self) -> Filter:
        assert self.kind == FILTER and isinstance(self.obj, Filter)
        return self.obj

    @property
    def total_pop(self) -> int:
        """Items consumed across all input ports per firing."""
        return sum(self.in_rates)

    @property
    def total_push(self) -> int:
        """Items produced across all output ports per firing."""
        return sum(self.out_rates)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FlatNode {self.kind}:{self.name}>"


@dataclass(eq=False)
class FlatEdge:
    """A directed channel between two flat-node ports."""

    src: FlatNode
    src_port: int
    dst: FlatNode
    dst_port: int
    # Items pre-filled on this channel before execution (feedback delay).
    initial: Tuple[float, ...] = ()

    @property
    def push_rate(self) -> int:
        """Items the producer pushes onto this edge per firing."""
        return self.src.out_rates[self.src_port]

    @property
    def pop_rate(self) -> int:
        """Items the consumer pops from this edge per firing."""
        return self.dst.in_rates[self.dst_port]

    @property
    def peek_rate(self) -> int:
        """Items the consumer must see on this edge to fire."""
        return self.dst.in_rates[self.dst_port] + (
            self.dst.peek_extra if self.dst.kind == FILTER else 0
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Edge {self.src.name}[{self.src_port}] -> {self.dst.name}[{self.dst_port}]>"


class FlatGraph:
    """The flattened form of a stream graph."""

    def __init__(self, nodes: List[FlatNode], edges: List[FlatEdge], root: Stream) -> None:
        self.nodes = nodes
        self.edges = edges
        self.root = root
        self._by_filter: Dict[int, FlatNode] = {
            node.obj.uid: node for node in nodes if node.kind == FILTER and node.obj
        }
        for node in nodes:
            node.in_edges = []
            node.out_edges = []
        for edge in edges:
            edge.src.out_edges.append(edge)
            edge.dst.in_edges.append(edge)
        for node in nodes:
            node.in_edges.sort(key=lambda e: e.dst_port)
            node.out_edges.sort(key=lambda e: e.src_port)

    # -- lookup -------------------------------------------------------------

    def node_for(self, filt: Filter) -> FlatNode:
        """The flat node wrapping a given filter instance."""
        return self._by_filter[filt.uid]

    @property
    def sources(self) -> List[FlatNode]:
        """Nodes with no input edges (external data producers)."""
        return [n for n in self.nodes if not n.in_edges]

    @property
    def sinks(self) -> List[FlatNode]:
        """Nodes with no output edges (external data consumers)."""
        return [n for n in self.nodes if not n.out_edges]

    def filter_nodes(self) -> List[FlatNode]:
        return [n for n in self.nodes if n.kind == FILTER]

    # -- analysis helpers ----------------------------------------------------

    def topological_order(self) -> List[FlatNode]:
        """Topological order ignoring feedback (loopback) edges.

        Edges carrying initial items are treated as broken for ordering,
        which matches how SDF graphs with delays are scheduled.
        """
        indeg: Dict[FlatNode, int] = {n: 0 for n in self.nodes}
        forward_edges = [e for e in self.edges if not e.initial]
        for edge in forward_edges:
            indeg[edge.dst] += 1
        ready = [n for n in self.nodes if indeg[n] == 0]
        order: List[FlatNode] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for edge in node.out_edges:
                if edge.initial:
                    continue
                indeg[edge.dst] -= 1
                if indeg[edge.dst] == 0:
                    ready.append(edge.dst)
        if len(order) != len(self.nodes):
            raise ValidationError(
                "stream graph contains a cycle with no initial delay items; "
                "such a feedback loop can never fire (deadlock)"
            )
        return order

    def to_networkx(self):
        """Export as a ``networkx.MultiDiGraph`` for external analyses."""
        import networkx as nx

        g = nx.MultiDiGraph()
        for node in self.nodes:
            g.add_node(node.uid, kind=node.kind, name=node.name)
        for edge in self.edges:
            g.add_edge(
                edge.src.uid,
                edge.dst.uid,
                push=edge.push_rate,
                pop=edge.pop_rate,
                initial=len(edge.initial),
            )
        return g


# ---------------------------------------------------------------------------
# Flattening
# ---------------------------------------------------------------------------

#: An unconnected port during flattening: (node, port index) or None when the
#: sub-stream has no external input/output (source/sink subgraphs).
_Port = Optional[Tuple[FlatNode, int]]


class _Flattener:
    def __init__(self) -> None:
        self.nodes: List[FlatNode] = []
        self.edges: List[FlatEdge] = []

    def flatten(self, stream: Stream) -> Tuple[_Port, _Port]:
        if isinstance(stream, Filter):
            return self._flatten_filter(stream)
        if isinstance(stream, Pipeline):
            return self._flatten_pipeline(stream)
        if isinstance(stream, SplitJoin):
            return self._flatten_splitjoin(stream)
        if isinstance(stream, FeedbackLoop):
            return self._flatten_feedback(stream)
        raise ValidationError(f"cannot flatten stream of type {type(stream)!r}")

    def _connect(self, out_port: _Port, in_port: _Port, initial: Tuple[float, ...] = ()) -> None:
        if out_port is None and in_port is None:
            return
        if out_port is None or in_port is None:
            src = "nothing" if out_port is None else out_port[0].name
            dst = "nothing" if in_port is None else in_port[0].name
            raise ValidationError(
                f"rate mismatch while connecting streams: {src} -> {dst}; a "
                "stream producing no output feeds one expecting input (or vice versa)"
            )
        (src, sp), (dst, dp) = out_port, in_port
        self.edges.append(FlatEdge(src, sp, dst, dp, initial=initial))

    def _flatten_filter(self, filt: Filter) -> Tuple[_Port, _Port]:
        in_rates = (filt.rate.pop,) if filt.rate.peek > 0 else ()
        out_rates = (filt.rate.push,) if filt.rate.push > 0 else ()
        node = FlatNode(
            kind=FILTER,
            name=filt.name,
            in_rates=in_rates,
            out_rates=out_rates,
            peek_extra=filt.rate.extra_peek,
            obj=filt,
        )
        self.nodes.append(node)
        in_port = (node, 0) if in_rates else None
        out_port = (node, 0) if out_rates else None
        return in_port, out_port

    def _flatten_pipeline(self, pipe: Pipeline) -> Tuple[_Port, _Port]:
        if len(pipe) == 0:
            raise ValidationError(f"pipeline {pipe.name} has no children")
        first_in: _Port = None
        prev_out: _Port = None
        for i, child in enumerate(pipe.children()):
            child_in, child_out = self.flatten(child)
            if i == 0:
                first_in = child_in
            else:
                self._connect(prev_out, child_in)
            prev_out = child_out
        return first_in, prev_out

    def _flatten_splitjoin(self, sj: SplitJoin) -> Tuple[_Port, _Port]:
        n = sj.n_branches
        split_weights = sj.split_weights()
        join_weights = sj.join_weights()

        splitter = FlatNode(
            kind=SPLITTER,
            name=f"{sj.name}.split",
            in_rates=(sj.splitter.pop_per_cycle(n),) if sj.splitter.kind != NULL else (),
            out_rates=split_weights if sj.splitter.kind != NULL else (0,) * n,
            obj=sj,
            flavor=sj.splitter.kind,
        )
        joiner = FlatNode(
            kind=JOINER,
            name=f"{sj.name}.join",
            in_rates=join_weights if sj.joiner.kind != NULL else (0,) * n,
            out_rates=(sj.joiner.push_per_cycle(n),) if sj.joiner.kind != NULL else (),
            obj=sj,
            flavor=sj.joiner.kind,
        )
        self.nodes.append(splitter)
        for b, child in enumerate(sj.children()):
            child_in, child_out = self.flatten(child)
            if child_in is not None:
                self._connect((splitter, b), child_in)
            elif split_weights[b] != 0:
                raise ValidationError(
                    f"{sj.name}: branch {b} takes no input but splitter weight is "
                    f"{split_weights[b]} (must be 0)"
                )
            if child_out is not None:
                self._connect(child_out, (joiner, b))
            elif join_weights[b] != 0:
                raise ValidationError(
                    f"{sj.name}: branch {b} produces no output but joiner weight is "
                    f"{join_weights[b]} (must be 0)"
                )
        self.nodes.append(joiner)
        in_port = (splitter, 0) if splitter.in_rates else None
        out_port = (joiner, 0) if joiner.out_rates else None
        return in_port, out_port

    def _flatten_feedback(self, loop: FeedbackLoop) -> Tuple[_Port, _Port]:
        join_weights = loop.join_weights()
        split_weights = loop.split_weights()
        joiner = FlatNode(
            kind=JOINER,
            name=f"{loop.name}.join",
            in_rates=join_weights,
            out_rates=(loop.joiner.push_per_cycle(2),),
            obj=loop,
            flavor=loop.joiner.kind,
        )
        splitter = FlatNode(
            kind=SPLITTER,
            name=f"{loop.name}.split",
            in_rates=(loop.splitter.pop_per_cycle(2),),
            out_rates=split_weights,
            obj=loop,
            flavor=loop.splitter.kind,
        )
        self.nodes.append(joiner)
        body_in, body_out = self.flatten(loop.body)
        self._connect((joiner, 0), body_in)
        self._connect(body_out, (splitter, 0))
        self.nodes.append(splitter)
        loop_in, loop_out = self.flatten(loop.loopback)
        self._connect((splitter, 1), loop_in)
        self._connect(loop_out, (joiner, 1), initial=tuple(loop.initial_values()))
        # External ports: joiner branch 0 input (may be weight 0 -> None only
        # if NULL, which is forbidden for feedback loops), splitter branch 0.
        in_port = (joiner, 0)
        out_port = (splitter, 0)
        return in_port, out_port


def flatten(stream: Stream) -> FlatGraph:
    """Flatten a hierarchical stream into a :class:`FlatGraph`.

    The stream must be *closed*: its sources consume nothing from outside
    and its sinks produce nothing (i.e. the top-level stream has no external
    input or output channel).  Applications therefore include their own
    source and sink filters, as the paper's examples do (``ReadFromAtoD``,
    ``AudioBackEnd``).
    """
    flattener = _Flattener()
    in_port, out_port = flattener.flatten(stream)
    if in_port is not None:
        raise ValidationError(
            f"top-level stream {stream.name} expects external input; add a source filter"
        )
    if out_port is not None:
        raise ValidationError(
            f"top-level stream {stream.name} produces external output; add a sink filter"
        )
    return FlatGraph(flattener.nodes, flattener.edges, stream)
