"""Core stream-graph abstractions: :class:`Stream` and :class:`Filter`.

A StreamIt program is a hierarchical composition of single-input,
single-output *streams*.  The leaf stream is the :class:`Filter`, whose
``work`` function reads from its input channel (``pop``/``peek``) and writes
to its output channel (``push``) at *static rates* declared at construction
time.  Composite streams (:mod:`repro.graph.composites`) arrange child
streams into pipelines, split-joins and feedback loops.

Rate conventions (matching the paper):

* ``peek`` is the number of items the filter may read per firing; it is
  always at least ``pop``.  ``peek(0)`` refers to the *oldest* unconsumed
  item on the input channel — the next item ``pop()`` would return.
* A filter is *fireable* when its input channel holds at least ``peek``
  items (``peek - pop`` items remain on the channel after the firing).
* ``pop`` items are consumed and ``push`` items produced per firing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

from repro.errors import RateError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.runtime.channel import Channel

_id_counter = itertools.count()


@dataclass(frozen=True)
class Rate:
    """Static I/O rates of a filter firing.

    Attributes:
        peek: number of input items visible to one firing (``>= pop``).
        pop: number of input items consumed by one firing.
        push: number of output items produced by one firing.
    """

    peek: int
    pop: int
    push: int

    def __post_init__(self) -> None:
        for field in ("peek", "pop", "push"):
            value = getattr(self, field)
            if not isinstance(value, int) or value < 0:
                raise RateError(f"{field} rate must be a non-negative int, got {value!r}")
        if self.peek < self.pop:
            raise RateError(f"peek ({self.peek}) must be >= pop ({self.pop})")

    @property
    def extra_peek(self) -> int:
        """Items inspected but not consumed (``peek - pop``)."""
        return self.peek - self.pop


class Stream:
    """Base class for every node in the stream hierarchy.

    Each stream has at most one input and one output.  Concrete subclasses
    are :class:`Filter` and the composites in :mod:`repro.graph.composites`.
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self._uid = next(_id_counter)
        self.name = name or f"{type(self).__name__}_{self._uid}"
        self.parent: Optional[Stream] = None

    # -- structure ---------------------------------------------------------

    def children(self) -> tuple["Stream", ...]:
        """Immediate child streams, in data-flow order where applicable."""
        return ()

    def streams(self) -> Iterator["Stream"]:
        """Pre-order traversal of this stream and all descendants."""
        yield self
        for child in self.children():
            yield from child.streams()

    def filters(self) -> Iterator["Filter"]:
        """All leaf filters beneath (and including) this stream."""
        for stream in self.streams():
            if isinstance(stream, Filter):
                yield stream

    def depth(self) -> int:
        """Height of the hierarchy rooted at this stream (filter == 1)."""
        kids = self.children()
        if not kids:
            return 1
        return 1 + max(child.depth() for child in kids)

    # -- identity ----------------------------------------------------------

    @property
    def uid(self) -> int:
        """A process-unique integer identifying this stream instance."""
        return self._uid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Filter(Stream):
    """A leaf stream: one ``work`` function with static I/O rates.

    Subclasses declare their rates by calling ``super().__init__`` and
    implement :meth:`work` using :meth:`pop`, :meth:`peek` and :meth:`push`.
    State may be initialised in ``__init__`` (the analogue of StreamIt's
    ``init``); a filter that *mutates* instance attributes inside ``work``
    is *stateful* and is treated accordingly by the optimizers.

    Example::

        class Scale(Filter):
            def __init__(self, k):
                super().__init__(pop=1, push=1)
                self.k = k

            def work(self):
                self.push(self.pop() * self.k)
    """

    def __init__(
        self,
        *,
        pop: int,
        push: int,
        peek: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        self.rate = Rate(peek=max(peek if peek is not None else pop, pop), pop=pop, push=push)
        # Channels are bound by the runtime before execution.
        self.input: Optional["Channel"] = None
        self.output: Optional["Channel"] = None

    # -- rates -------------------------------------------------------------

    @property
    def peek_rate(self) -> int:
        return self.rate.peek

    @property
    def pop_rate(self) -> int:
        return self.rate.pop

    @property
    def push_rate(self) -> int:
        return self.rate.push

    @property
    def is_source(self) -> bool:
        """True if the filter consumes no input (``pop == peek == 0``)."""
        return self.rate.peek == 0

    @property
    def is_sink(self) -> bool:
        """True if the filter produces no output (``push == 0``)."""
        return self.rate.push == 0

    # -- work function -----------------------------------------------------

    #: True on subclasses whose :meth:`work_batch` executes many firings at
    #: once.  The batched engine falls back to per-firing ``work()`` (still
    #: over array channels) when this is False — the safe default for
    #: stateful or unanalyzable filters.
    supports_work_batch = False

    #: Vectorization hint for the batched engine's *generic* lifter
    #: (``runtime/vectorize.py``).  ``None`` (default) lets the engine decide
    #: via bytecode analysis plus a bit-exactness trial; ``False`` opts the
    #: filter out of lifting entirely (it still runs via the hoisted-I/O
    #: per-firing loop); ``True`` asserts the work function is pure so the
    #: engine may skip the bytecode screen (the trial still runs).
    stateless: Optional[bool] = None

    def work(self) -> None:
        """One execution step.  Subclasses must override."""
        raise NotImplementedError(f"{type(self).__name__} must implement work()")

    def work_batch(self, n: int) -> None:
        """Execute ``n`` consecutive firings as one block operation.

        Implementations must be observationally identical to ``n`` calls of
        :meth:`work` — same items consumed and produced, and the same
        floating-point operation order *within each firing* — and should use
        the channels' block API (``peek_block``/``pop_block``/``push_block``/
        ``drop``) so no per-item Python work remains.  Only called by the
        batched engine when :attr:`supports_work_batch` is True.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement work_batch()"
        )

    def init(self) -> None:
        """Optional per-run initialisation hook called before execution."""

    # -- channel operations (used inside work) ------------------------------

    def pop(self) -> float:
        """Consume and return the oldest item on the input channel."""
        assert self.input is not None, f"{self.name}: input channel not bound"
        return self.input.pop()

    def peek(self, index: int) -> float:
        """Return the item ``index`` slots from the front without consuming.

        ``peek(0)`` is the item ``pop()`` would return next.
        """
        assert self.input is not None, f"{self.name}: input channel not bound"
        return self.input.peek(index)

    def push(self, item: float) -> None:
        """Append ``item`` to the output channel."""
        assert self.output is not None, f"{self.name}: output channel not bound"
        self.output.push(item)
