"""Structural semantic checks — the paper's "StreaMIT restrictions".

Most restrictions are enforced at construction time (static rates, weight
arity, single use of each stream instance, non-NULL feedback split/join).
:func:`validate` performs the whole-graph checks that need the flattened
form, and returns the flat graph so callers can reuse it.
"""

from __future__ import annotations

from collections import Counter
from typing import List

from repro.errors import ValidationError
from repro.graph.base import Filter, Stream
from repro.graph.flatgraph import FILTER, FlatGraph, flatten


def validate(stream: Stream) -> FlatGraph:
    """Check all whole-graph semantic restrictions; return the flat graph.

    Raises :class:`ValidationError` on the first violation found.
    """
    _check_unique_instances(stream)
    graph = flatten(stream)
    _check_edge_rates(graph)
    _check_work_declared(graph)
    # Cycle sanity: topological_order raises if a zero-delay cycle exists.
    graph.topological_order()
    return graph


def _check_unique_instances(stream: Stream) -> None:
    counts = Counter(s.uid for s in stream.streams())
    dupes = [uid for uid, c in counts.items() if c > 1]
    if dupes:
        names = [s.name for s in stream.streams() if s.uid in dupes]
        raise ValidationError(
            f"stream instances appear more than once in the graph: {sorted(set(names))}"
        )


def _check_edge_rates(graph: FlatGraph) -> None:
    for edge in graph.edges:
        if edge.push_rate == 0 and edge.pop_rate > 0 and not edge.initial:
            raise ValidationError(
                f"channel {edge.src.name} -> {edge.dst.name} is starved: the "
                f"producer pushes 0 items per firing but the consumer pops "
                f"{edge.pop_rate}"
            )
        if edge.push_rate > 0 and edge.pop_rate == 0:
            raise ValidationError(
                f"channel {edge.src.name} -> {edge.dst.name} overflows: the "
                f"producer pushes {edge.push_rate} items per firing but the "
                f"consumer never pops"
            )


def _check_work_declared(graph: FlatGraph) -> None:
    for node in graph.nodes:
        if node.kind != FILTER:
            continue
        filt = node.filter
        if type(filt).work is Filter.work:
            raise ValidationError(f"filter {filt.name} does not implement work()")
