"""Structural semantic checks — the paper's "StreaMIT restrictions".

Most restrictions are enforced at construction time (static rates, weight
arity, single use of each stream instance, non-NULL feedback split/join).
:func:`validate` performs the whole-graph checks that need the flattened
form — including the static ``work()`` analysis from
:mod:`repro.analysis`, which promotes rate mismatches and out-of-bounds
peeks from runtime channel underflows to build-time errors — and returns
the flat graph so callers can reuse it.
"""

from __future__ import annotations

import warnings
from collections import Counter
from typing import List

from repro.errors import ValidationError
from repro.graph.base import Filter, Stream
from repro.graph.flatgraph import FILTER, FlatGraph, flatten


def validate(stream: Stream) -> FlatGraph:
    """Check all whole-graph semantic restrictions; return the flat graph.

    Raises :class:`ValidationError` on the first violation found.  Definite
    static-analysis errors (declared-rate mismatches proven from the
    ``work()`` AST, out-of-bounds peeks, unsound ``stateless=True`` claims)
    are violations; analysis *warnings* — genuinely unanalyzable filters —
    never block a build.
    """
    _check_unique_instances(stream)
    graph = flatten(stream)
    _check_rate_invariants(graph)
    _check_edge_rates(graph)
    _check_work_declared(graph)
    _check_static_semantics(graph)
    # Cycle sanity: topological_order raises if a zero-delay cycle exists.
    graph.topological_order()
    return graph


def _check_unique_instances(stream: Stream) -> None:
    counts = Counter(s.uid for s in stream.streams())
    dupes = [uid for uid, c in counts.items() if c > 1]
    if dupes:
        names = [s.name for s in stream.streams() if s.uid in dupes]
        raise ValidationError(
            f"stream instances appear more than once in the graph: {sorted(set(names))}"
        )


def _check_rate_invariants(graph: FlatGraph) -> None:
    """Declared rates must be sane: non-negative ints with peek >= pop."""
    for node in graph.filter_nodes():
        filt = node.filter
        rate = filt.rate
        for field_name in ("peek", "pop", "push"):
            value = getattr(rate, field_name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise ValidationError(
                    f"filter {filt.name!r} ({type(filt).__name__}) declares an "
                    f"illegal {field_name} rate {value!r}: rates must be "
                    f"non-negative integers"
                )
        if rate.peek < rate.pop:
            raise ValidationError(
                f"filter {filt.name!r} ({type(filt).__name__}) declares "
                f"peek={rate.peek} < pop={rate.pop}: a filter must be able to "
                f"inspect every item it consumes"
            )


def _check_edge_rates(graph: FlatGraph) -> None:
    for edge in graph.edges:
        if edge.push_rate == 0 and edge.pop_rate > 0 and not edge.initial:
            raise ValidationError(
                f"channel {edge.src.name!r} -> {edge.dst.name!r} is starved: "
                f"producer {edge.src.name!r} declares push=0 per firing but "
                f"consumer {edge.dst.name!r} declares pop={edge.pop_rate}"
            )
        if edge.push_rate > 0 and edge.pop_rate == 0:
            raise ValidationError(
                f"channel {edge.src.name!r} -> {edge.dst.name!r} overflows: "
                f"producer {edge.src.name!r} declares push={edge.push_rate} "
                f"per firing but consumer {edge.dst.name!r} never pops"
            )


def _check_work_declared(graph: FlatGraph) -> None:
    for node in graph.nodes:
        if node.kind != FILTER:
            continue
        filt = node.filter
        if type(filt).work is Filter.work:
            raise ValidationError(
                f"filter {filt.name!r} ({type(filt).__name__}) does not "
                f"implement work()"
            )


def _check_static_semantics(graph: FlatGraph) -> None:
    """Run the static work() analysis; raise on definite errors.

    Suppressed diagnostics (``lint_suppress``) never raise.  An internal
    analyzer failure degrades to a warning — validation must not be less
    reliable than the analyses it hosts.
    """
    try:
        from repro.analysis import analyze_graph
    except Exception:  # pragma: no cover - analysis layer unavailable
        return
    try:
        bag = analyze_graph(graph)
    except Exception as exc:  # pragma: no cover - defensive
        warnings.warn(
            f"static analysis failed during validate(): {type(exc).__name__}: {exc}",
            RuntimeWarning,
            stacklevel=3,
        )
        return
    errors = bag.errors()
    if errors:
        details = "\n  ".join(d.format() for d in errors)
        raise ValidationError(
            f"static analysis found {len(errors)} error(s):\n  {details}"
        )
