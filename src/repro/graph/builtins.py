"""Library filters: identity, sources, sinks, and function lifting.

These play the role of StreamIt's ``IDENTITY()``, file readers/writers and
the small utility filters every application needs.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.graph.base import Filter


class Identity(Filter):
    """Outputs exactly the items it inputs (StreamIt's ``IDENTITY()``)."""

    supports_work_batch = True

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(pop=1, push=1, name=name)

    def work(self) -> None:
        self.push(self.pop())

    def work_batch(self, n: int) -> None:
        self.output.push_block(self.input.pop_block(n))


class ArraySource(Filter):
    """Pushes items from a fixed sequence, cycling when exhausted.

    Cycling keeps the source a legal static-rate SDF actor for arbitrarily
    long executions; tests that care about exact data size the sequence to
    the number of items they consume.
    """

    supports_work_batch = True

    def __init__(self, data: Sequence[float], name: Optional[str] = None) -> None:
        super().__init__(pop=0, push=1, name=name)
        data = list(data)
        if not data:
            raise ValidationError("ArraySource requires at least one item")
        self.data = data
        self._pos = 0

    def init(self) -> None:
        self._pos = 0

    def work(self) -> None:
        self.push(self.data[self._pos])
        self._pos = (self._pos + 1) % len(self.data)

    def work_batch(self, n: int) -> None:
        data = np.asarray(self.data, dtype=np.float64)
        idx = (self._pos + np.arange(n)) % len(data)
        self.output.push_block(data[idx])
        self._pos = (self._pos + n) % len(data)


class FunctionSource(Filter):
    """Pushes ``fn(i)`` for ``i = 0, 1, 2, …`` — a deterministic generator."""

    supports_work_batch = True

    def __init__(self, fn: Callable[[int], float], name: Optional[str] = None) -> None:
        super().__init__(pop=0, push=1, name=name)
        self.fn = fn
        self._i = 0

    def init(self) -> None:
        self._i = 0

    def work(self) -> None:
        self.push(self.fn(self._i))
        self._i += 1

    def work_batch(self, n: int) -> None:
        fn, i = self.fn, self._i
        values = np.array([fn(i + k) for k in range(n)], dtype=np.float64)
        self._i = i + n
        self.output.push_block(values)


class CollectSink(Filter):
    """Consumes one item per firing, recording everything it sees."""

    supports_work_batch = True

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(pop=1, push=0, name=name)
        self.collected: List[float] = []

    def init(self) -> None:
        self.collected = []

    def work(self) -> None:
        self.collected.append(self.pop())

    def work_batch(self, n: int) -> None:
        self.collected.extend(self.input.pop_block(n).tolist())


class NullSink(Filter):
    """Consumes and discards one item per firing."""

    supports_work_batch = True

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(pop=1, push=0, name=name)

    def work(self) -> None:
        self.pop()

    def work_batch(self, n: int) -> None:
        self.input.drop(n)


class FunctionFilter(Filter):
    """Lifts a Python function over windows of the stream.

    Per firing, ``fn`` receives the ``peek``-item window (oldest first) and
    must return ``push`` output items; ``pop`` items are then consumed.
    Useful for tests and quick prototyping; *not* analyzable by linear
    extraction (use a real ``Filter`` subclass for that).
    """

    def __init__(
        self,
        fn: Callable[[Sequence[float]], Sequence[float]],
        *,
        pop: int,
        push: int,
        peek: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(pop=pop, push=push, peek=peek, name=name)
        self.fn = fn

    def work(self) -> None:
        window = [self.peek(i) for i in range(self.rate.peek)]
        out = self.fn(window)
        if len(out) != self.rate.push:
            raise ValidationError(
                f"{self.name}: fn returned {len(out)} items, declared push={self.rate.push}"
            )
        for _ in range(self.rate.pop):
            self.pop()
        for item in out:
            self.push(item)


class Decimator(Filter):
    """Keeps one item out of every ``factor`` (a compressor)."""

    def __init__(self, factor: int, offset: int = 0, name: Optional[str] = None) -> None:
        if factor < 1:
            raise ValidationError(f"decimation factor must be >= 1, got {factor}")
        if not 0 <= offset < factor:
            raise ValidationError(f"offset must be in [0, {factor}), got {offset}")
        super().__init__(pop=factor, push=1, name=name)
        self.factor = factor
        self.offset = offset

    supports_work_batch = True

    def work(self) -> None:
        kept = self.peek(self.offset)
        for _ in range(self.factor):
            self.pop()
        self.push(kept)

    def work_batch(self, n: int) -> None:
        block = self.input.pop_block(n * self.factor)
        self.output.push_block(block[self.offset :: self.factor])


class Expander(Filter):
    """Inserts ``factor - 1`` zeros after every input item (an expander)."""

    def __init__(self, factor: int, name: Optional[str] = None) -> None:
        if factor < 1:
            raise ValidationError(f"expansion factor must be >= 1, got {factor}")
        super().__init__(pop=1, push=factor, name=name)
        self.factor = factor

    supports_work_batch = True

    def work(self) -> None:
        self.push(self.pop())
        for _ in range(self.factor - 1):
            self.push(0.0)

    def work_batch(self, n: int) -> None:
        out = np.zeros((n, self.factor))
        out[:, 0] = self.input.pop_block(n)
        self.output.push_block(out)


class Duplicator(Filter):
    """Pushes each input item ``copies`` times."""

    def __init__(self, copies: int, name: Optional[str] = None) -> None:
        if copies < 1:
            raise ValidationError(f"copies must be >= 1, got {copies}")
        super().__init__(pop=1, push=copies, name=name)
        self.copies = copies

    supports_work_batch = True

    def work(self) -> None:
        item = self.pop()
        for _ in range(self.copies):
            self.push(item)

    def work_batch(self, n: int) -> None:
        self.output.push_block(np.repeat(self.input.pop_block(n), self.copies))
