"""Splitter and joiner specifications for :class:`SplitJoin` and
:class:`FeedbackLoop` constructs.

The paper defines four kinds of splitters/joiners:

* ``DUPLICATE`` splitter — every input item is copied to every branch.
* ``ROUND_ROBIN`` / ``WEIGHTED_ROUND_ROBIN`` — items are distributed to (or
  collected from) branches in order, ``w_i`` items to branch ``i`` per cycle.
* ``COMBINE`` joiner — the dual of duplicate: one item is read from *every*
  branch per output item (the paper leaves the merge operation abstract; we
  default to taking the first branch's item, with an optional reducer).
* ``NULL`` — processes no items (used for branches that consume/produce
  nothing).

Specs are immutable descriptions; their runtime behaviour lives in
:mod:`repro.runtime.interpreter` and their scheduling behaviour in
:mod:`repro.scheduling`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple

from repro.errors import RateError

DUPLICATE = "duplicate"
ROUND_ROBIN = "roundrobin"
COMBINE = "combine"
NULL = "null"


@dataclass(frozen=True)
class SplitterSpec:
    """Description of how a splitter distributes items to ``n`` branches.

    For ``roundrobin``, ``weights[i]`` items go to branch ``i`` per splitter
    cycle (one cycle consumes ``sum(weights)`` items).  For ``duplicate``,
    one cycle consumes one item and pushes one copy to every branch.  For
    ``null``, the splitter never consumes or produces.
    """

    kind: str
    weights: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in (DUPLICATE, ROUND_ROBIN, NULL):
            raise RateError(f"unknown splitter kind {self.kind!r}")
        if self.kind == ROUND_ROBIN:
            # weights=None means "1 per branch", resolved against the branch
            # count when the spec is attached to a SplitJoin.
            if self.weights is not None:
                if any(not isinstance(w, int) or w < 0 for w in self.weights):
                    raise RateError(
                        f"round-robin weights must be non-negative ints: {self.weights}"
                    )
                if sum(self.weights) == 0:
                    raise RateError("round-robin splitter weights must not all be zero")
        elif self.weights is not None:
            raise RateError(f"{self.kind} splitter takes no weights")

    def resolved_weights(self, n_branches: int) -> Tuple[int, ...]:
        """Per-branch items pushed per splitter cycle."""
        if self.kind == DUPLICATE:
            return (1,) * n_branches
        if self.kind == NULL:
            return (0,) * n_branches
        if self.weights is None:
            return (1,) * n_branches
        return self.weights

    def pop_per_cycle(self, n_branches: int) -> int:
        """Items consumed from the splitter input per cycle."""
        if self.kind == DUPLICATE:
            return 1
        if self.kind == NULL:
            return 0
        return sum(self.resolved_weights(n_branches))


@dataclass(frozen=True)
class JoinerSpec:
    """Description of how a joiner collects items from ``n`` branches.

    For ``roundrobin``, ``weights[i]`` items are taken from branch ``i`` per
    joiner cycle (one cycle produces ``sum(weights)`` items).  For
    ``combine``, one item is taken from every branch and a single item is
    produced by applying ``reducer`` (first-item selection by default, as the
    duplicate-dual of the paper's ``COMBINE``).
    """

    kind: str
    weights: Optional[Tuple[int, ...]] = None
    reducer: Optional[Callable[[Sequence[float]], float]] = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        if self.kind not in (COMBINE, ROUND_ROBIN, NULL):
            raise RateError(f"unknown joiner kind {self.kind!r}")
        if self.kind == ROUND_ROBIN:
            if self.weights is not None:
                if any(not isinstance(w, int) or w < 0 for w in self.weights):
                    raise RateError(
                        f"round-robin weights must be non-negative ints: {self.weights}"
                    )
                if sum(self.weights) == 0:
                    raise RateError("round-robin joiner weights must not all be zero")
        elif self.weights is not None:
            raise RateError(f"{self.kind} joiner takes no weights")

    def resolved_weights(self, n_branches: int) -> Tuple[int, ...]:
        """Per-branch items consumed per joiner cycle."""
        if self.kind == COMBINE:
            return (1,) * n_branches
        if self.kind == NULL:
            return (0,) * n_branches
        if self.weights is None:
            return (1,) * n_branches
        return self.weights

    def push_per_cycle(self, n_branches: int) -> int:
        """Items produced onto the joiner output per cycle."""
        if self.kind == COMBINE:
            return 1
        if self.kind == NULL:
            return 0
        return sum(self.resolved_weights(n_branches))


def duplicate() -> SplitterSpec:
    """A splitter that copies each input item to every branch."""
    return SplitterSpec(DUPLICATE)


def roundrobin(*weights: int) -> SplitterSpec:
    """A (weighted) round-robin splitter.

    ``roundrobin()`` with no arguments denotes weight 1 for every branch and
    is resolved against the branch count when attached to a SplitJoin.
    """
    if not weights:
        return SplitterSpec(ROUND_ROBIN, weights=None)  # resolved later
    return SplitterSpec(ROUND_ROBIN, weights=tuple(weights))


def joiner_roundrobin(*weights: int) -> JoinerSpec:
    """A (weighted) round-robin joiner (weight 1 per branch if omitted)."""
    if not weights:
        return JoinerSpec(ROUND_ROBIN, weights=None)
    return JoinerSpec(ROUND_ROBIN, weights=tuple(weights))


def combine(reducer: Optional[Callable[[Sequence[float]], float]] = None) -> JoinerSpec:
    """A combine joiner: one item from every branch merges to one output."""
    return JoinerSpec(COMBINE, reducer=reducer)


def null_splitter() -> SplitterSpec:
    """A splitter that processes no items."""
    return SplitterSpec(NULL)


def null_joiner() -> JoinerSpec:
    """A joiner that processes no items."""
    return JoinerSpec(NULL)
