"""Stream-graph intermediate representation.

The public surface mirrors the StreamIt language constructs:

* :class:`Filter` with static ``peek``/``pop``/``push`` rates,
* :class:`Pipeline`, :class:`SplitJoin`, :class:`FeedbackLoop` composites,
* splitter/joiner constructors (:func:`duplicate`, :func:`roundrobin`,
  :func:`joiner_roundrobin`, :func:`combine`, :func:`null_splitter`,
  :func:`null_joiner`),
* library filters (:class:`Identity`, sources, sinks, rate changers),
* :func:`flatten` / :func:`validate` to lower a hierarchy to a
  :class:`FlatGraph` for scheduling and execution.
"""

from repro.graph.base import Filter, Rate, Stream
from repro.graph.builtins import (
    ArraySource,
    CollectSink,
    Decimator,
    Duplicator,
    Expander,
    FunctionFilter,
    FunctionSource,
    Identity,
    NullSink,
)
from repro.graph.composites import FeedbackLoop, Pipeline, SplitJoin, pipeline, splitjoin
from repro.graph.flatgraph import FILTER, JOINER, SPLITTER, FlatEdge, FlatGraph, FlatNode, flatten
from repro.graph.splitjoin import (
    JoinerSpec,
    SplitterSpec,
    combine,
    duplicate,
    joiner_roundrobin,
    null_joiner,
    null_splitter,
    roundrobin,
)
from repro.graph.validation import validate

__all__ = [
    "Filter",
    "Rate",
    "Stream",
    "Pipeline",
    "SplitJoin",
    "FeedbackLoop",
    "pipeline",
    "splitjoin",
    "SplitterSpec",
    "JoinerSpec",
    "duplicate",
    "roundrobin",
    "joiner_roundrobin",
    "combine",
    "null_splitter",
    "null_joiner",
    "Identity",
    "ArraySource",
    "FunctionSource",
    "CollectSink",
    "NullSink",
    "FunctionFilter",
    "Decimator",
    "Expander",
    "Duplicator",
    "FlatGraph",
    "FlatNode",
    "FlatEdge",
    "FILTER",
    "SPLITTER",
    "JOINER",
    "flatten",
    "validate",
]
