"""Exception hierarchy for the repro StreamIt implementation.

Every error raised by the library derives from :class:`StreamItError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class StreamItError(Exception):
    """Base class for all errors raised by this library."""


class ValidationError(StreamItError):
    """A stream graph violates one of the StreamIt semantic restrictions.

    These correspond to the "StreaMIT restrictions" appendix of the paper:
    type mismatches, reused stream instances, malformed split/join weights,
    and so on.
    """


class RateError(ValidationError):
    """A filter or split/join declares inconsistent or illegal I/O rates."""


class SchedulingError(StreamItError):
    """No valid steady-state or initialization schedule exists."""


class DeadlockError(SchedulingError):
    """The program will deadlock (e.g. a starved feedback loop)."""


class BufferOverflowError(SchedulingError):
    """A channel's buffer grows without bound in the steady state."""


class ExtractionError(StreamItError):
    """Linear extraction failed in a way that indicates a malformed filter.

    Note that a filter simply *not being linear* is not an error; extraction
    reports that via a ``None`` result.  ``ExtractionError`` is reserved for
    work functions that violate the static-rate contract (e.g. popping a
    data-dependent number of items).
    """


class MessagingError(StreamItError):
    """Illegal use of portals/teleport messaging (e.g. unsatisfiable latency)."""


class EngineDowngradeWarning(RuntimeWarning):
    """The requested execution engine was downgraded or degraded.

    Emitted when ``engine="batched"`` cannot be honoured as asked — the
    program falls back to the scalar path, or superbatching degrades to
    period-at-a-time execution (feedback loops).  Construct the interpreter
    with ``strict=True`` to raise :class:`StreamItError` instead."""


class MachineError(StreamItError):
    """The machine simulator was given an inconsistent mapping or schedule."""
