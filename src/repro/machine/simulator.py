"""Deterministic throughput simulation of mapped stream programs.

Two execution disciplines, matching the evaluation's two families:

* :func:`dag_makespan` — the steady state runs as a dependence-respecting
  DAG per period (task- and data-parallel modes): list scheduling with
  per-core serialization, per-link word-serialized contention on XY
  routes, and per-channel synchronization costs.  Throughput is one period
  per makespan.

* :func:`pipelined_ii` — coarse-grained software pipelining: intra-period
  dependences are absorbed by the prologue, so the initiation interval is
  bound only by the busiest *resource* — a core's compute plus channel
  I/O, or the most contended network link.

Both return cycles per steady-state period; speedups are ratios of these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import MachineError
from repro.machine.model import ModelActor, ModelEdge, ModelGraph
from repro.machine.raw import RawMachine


@dataclass(frozen=True)
class SimResult:
    """Cycles per steady-state period plus derived metrics."""

    cycles_per_period: float
    compute_cycles: float
    comm_words: float
    machine: RawMachine

    @property
    def utilization(self) -> float:
        """Issued compute cycles over total core-cycles in a period."""
        return self.compute_cycles / (self.machine.n_cores * self.cycles_per_period)

    def mflops(self, flops_per_period: Optional[float] = None, flop_fraction: float = 0.5) -> float:
        """Achieved MFLOPS; by default half the issued ops are flops."""
        flops = (
            flops_per_period
            if flops_per_period is not None
            else self.compute_cycles * flop_fraction
        )
        seconds = self.cycles_per_period / self.machine.clock_hz
        return flops / seconds / 1e6

    def speedup_over(self, baseline: "SimResult") -> float:
        """Throughput gain relative to another mapping of the same program."""
        return baseline.cycles_per_period / self.cycles_per_period


def _check_assignment(model: ModelGraph, assignment: Dict[ModelActor, int], machine: RawMachine) -> None:
    for actor in model.compute_actors():
        core = assignment.get(actor)
        if core is None:
            raise MachineError(f"actor {actor.name} has no core assignment")
        if not 0 <= core < machine.n_cores:
            raise MachineError(f"actor {actor.name} assigned to invalid core {core}")


def _edge_core(assignment: Dict[ModelActor, int], actor: ModelActor, fallback: int = 0) -> int:
    return assignment.get(actor, fallback)


def dag_makespan(
    model: ModelGraph,
    assignment: Dict[ModelActor, int],
    machine: RawMachine = RawMachine(),
) -> SimResult:
    """List-scheduled makespan of one steady-state period."""
    _check_assignment(model, assignment, machine)
    order = model.topological()
    core_free = [0.0] * machine.n_cores
    link_free: Dict[Tuple[int, int], float] = {}
    finish: Dict[ModelActor, float] = {}
    arrival: Dict[ModelActor, float] = {a: 0.0 for a in model.actors}
    in_edges: Dict[ModelActor, List[ModelEdge]] = {a: [] for a in model.actors}
    out_edges: Dict[ModelActor, List[ModelEdge]] = {a: [] for a in model.actors}
    for e in model.edges:
        in_edges[e.dst].append(e)
        out_edges[e.src].append(e)

    compute_cycles = sum(a.work for a in model.compute_actors() if not a.io)
    comm_words = 0.0

    for actor in order:
        if actor.io:
            # Off-chip I/O endpoints stream continuously; model them as
            # always-ready with zero occupancy.
            finish[actor] = arrival[actor]
            continue
        core = assignment[actor]
        start = max(core_free[core], arrival[actor])
        end = start + actor.work
        core_free[core] = end
        finish[actor] = end
        # Deliver outputs: serialize on each route link, charge I/O cycles.
        for e in out_edges[actor]:
            if e.dst.io or e.src.io:
                continue
            dst_core = assignment.get(e.dst)
            if dst_core is None or dst_core == core:
                arrival[e.dst] = max(arrival[e.dst], end)
                continue
            comm_words += e.words
            send_cycles = e.words * machine.io_cycles_per_word
            core_free[core] += send_cycles
            depart = core_free[core]
            t = depart + machine.sync_cycles_per_channel
            for link in machine.route(core, dst_core):
                ready = max(link_free.get(link, 0.0), t)
                t = ready + e.words * machine.link_cycles_per_word + machine.hop_latency
                link_free[link] = t
            recv = t + e.words * machine.io_cycles_per_word
            if not e.delayed:
                arrival[e.dst] = max(arrival[e.dst], recv)

    makespan = max(core_free) if any(not a.io for a in model.actors) else 0.0
    return SimResult(
        cycles_per_period=max(makespan, 1.0),
        compute_cycles=compute_cycles,
        comm_words=comm_words,
        machine=machine,
    )


def pipelined_ii(
    model: ModelGraph,
    assignment: Dict[ModelActor, int],
    machine: RawMachine = RawMachine(),
) -> SimResult:
    """Resource-bound initiation interval under software pipelining."""
    _check_assignment(model, assignment, machine)
    core_load = [0.0] * machine.n_cores
    link_load: Dict[Tuple[int, int], float] = {}
    compute_cycles = 0.0
    comm_words = 0.0

    for actor in model.compute_actors():
        core_load[assignment[actor]] += actor.work
        compute_cycles += actor.work

    for e in model.edges:
        if e.src.io or e.dst.io:
            continue
        src_core = assignment[e.src]
        dst_core = assignment[e.dst]
        if src_core == dst_core:
            continue
        comm_words += e.words
        core_load[src_core] += e.words * machine.io_cycles_per_word
        core_load[dst_core] += e.words * machine.io_cycles_per_word
        core_load[src_core] += machine.sync_cycles_per_channel
        core_load[dst_core] += machine.sync_cycles_per_channel
        for link in machine.route(src_core, dst_core):
            link_load[link] = link_load.get(link, 0.0) + e.words * machine.link_cycles_per_word

    ii = max(
        max(core_load) if core_load else 0.0,
        max(link_load.values()) if link_load else 0.0,
        _recurrence_bound(model, assignment, machine),
        1.0,
    )
    return SimResult(
        cycles_per_period=ii,
        compute_cycles=compute_cycles,
        comm_words=comm_words,
        machine=machine,
    )


def _recurrence_bound(
    model: ModelGraph,
    assignment: Dict[ModelActor, int],
    machine: RawMachine,
) -> float:
    """The loop-carried (recurrence) lower bound on the initiation interval.

    Software pipelining cannot overlap iterations across a feedback cycle:
    with one period of delay on the loop, each iteration of the cycle must
    complete before the next can use its result, so II >= the work (plus
    cross-core communication latency) along the longest path closing any
    delayed edge.  This is what makes a control feedback loop expensive on
    a parallel machine even when its data volume is tiny.
    """
    delayed = [e for e in model.edges if e.delayed and not e.src.io and not e.dst.io]
    if not delayed:
        return 0.0

    def edge_latency(e: ModelEdge) -> float:
        src_core = assignment.get(e.src)
        dst_core = assignment.get(e.dst)
        if src_core is None or dst_core is None or src_core == dst_core:
            return 0.0
        return (
            2 * e.words * machine.io_cycles_per_word
            + machine.hops(src_core, dst_core) * machine.hop_latency
            + machine.sync_cycles_per_channel
        )

    # Longest (work + latency) path over the acyclic (non-delayed) edges.
    order = model.topological()
    bound = 0.0
    for loop_edge in delayed:
        start, goal = loop_edge.dst, loop_edge.src
        dist: Dict[ModelActor, float] = {start: start.work if not start.io else 0.0}
        for actor in order:
            if actor not in dist:
                continue
            for e in model.edges:
                if e.delayed or e.src is not actor:
                    continue
                cand = dist[actor] + edge_latency(e) + (e.dst.work if not e.dst.io else 0.0)
                if cand > dist.get(e.dst, -1.0):
                    dist[e.dst] = cand
        if goal in dist:
            bound = max(bound, dist[goal] + edge_latency(loop_edge))
    return bound


def single_core_baseline(model: ModelGraph, machine: RawMachine = RawMachine()) -> SimResult:
    """Everything on core 0: the sequential StreamIt reference point."""
    assignment = {a: 0 for a in model.compute_actors()}
    compute = sum(a.work for a in model.compute_actors())
    return SimResult(
        cycles_per_period=max(compute, 1.0),
        compute_cycles=compute,
        comm_words=0.0,
        machine=machine,
    )
