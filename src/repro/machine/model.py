"""The mapping-level program model: actors, weighted edges, transforms.

The partitioners and the machine simulator operate on a :class:`ModelGraph`
— the flattened stream graph annotated with *per-steady-state* work and
communication volumes (the same abstraction the StreamIt backend partitions
on).  The model supports the two structural transformations the evaluation
studies: **contraction** (fusion — merging adjacent actors so their
communication becomes core-local) and **fission** (data-parallel
replication, with duplicated input traffic for peeking actors).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import MachineError
from repro.estimate.work import node_work
from repro.graph.flatgraph import FILTER, FlatGraph, FlatNode
from repro.linear.extraction import is_stateful
from repro.scheduling.rates import repetitions

_actor_ids = itertools.count()


@dataclass(eq=False)
class ModelActor:
    """One schedulable unit: an actor's whole steady-state work."""

    name: str
    work: float                     # cycles per steady-state period
    stateful: bool = False
    peeking: bool = False
    #: True for pure data-routing nodes (splitters/joiners).
    router: bool = False
    #: True for endpoints that model off-chip I/O (not mapped to cores).
    io: bool = False
    #: The FlatNode this actor came from (None for transform-made actors).
    origin: object = None
    #: Every FlatNode this actor stands for, carried through contraction and
    #: fission so a mapped model can be projected back onto the flat graph
    #: (the parallel runtime's partition).  Transform-made helper actors
    #: (scatter/gather routers, replicas past #0) have no members.
    members: Tuple[object, ...] = ()
    uid: int = field(default_factory=lambda: next(_actor_ids))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Actor {self.name} w={self.work:.0f}>"


@dataclass(eq=False)
class ModelEdge:
    """Data flowing between actors during one steady-state period."""

    src: ModelActor
    dst: ModelActor
    words: float                    # items per steady-state period
    #: True when initial delay items break the dependence for scheduling.
    delayed: bool = False


class ModelGraph:
    """Actors + weighted edges; the unit the partitioners transform."""

    def __init__(self, actors: List[ModelActor], edges: List[ModelEdge]) -> None:
        self.actors = actors
        self.edges = edges

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_stream(cls, stream) -> "ModelGraph":
        from repro.graph.flatgraph import flatten

        graph = flatten(stream)
        return cls.from_flatgraph(graph, repetitions(graph))

    @classmethod
    def from_flatgraph(cls, graph: FlatGraph, reps: Dict[FlatNode, int]) -> "ModelGraph":
        actors: Dict[FlatNode, ModelActor] = {}
        for node in graph.nodes:
            if node.kind == FILTER:
                filt = node.filter
                io = filt.rate.pop == 0 or filt.rate.push == 0
                actors[node] = ModelActor(
                    name=node.name,
                    work=node_work(node) * reps[node],
                    stateful=(not io) and is_stateful(filt),
                    peeking=filt.rate.extra_peek > 0,
                    io=io,
                    origin=node,
                    members=(node,),
                )
            else:
                actors[node] = ModelActor(
                    name=node.name,
                    work=node_work(node) * reps[node],
                    router=True,
                    origin=node,
                    members=(node,),
                )
        edges = [
            ModelEdge(
                src=actors[e.src],
                dst=actors[e.dst],
                words=float(reps[e.src] * e.push_rate),
                delayed=bool(e.initial),
            )
            for e in graph.edges
        ]
        return cls(list(actors.values()), edges)

    # -- queries ---------------------------------------------------------------

    def out_edges(self, actor: ModelActor) -> List[ModelEdge]:
        return [e for e in self.edges if e.src is actor]

    def in_edges(self, actor: ModelActor) -> List[ModelEdge]:
        return [e for e in self.edges if e.dst is actor]

    def total_work(self) -> float:
        return sum(a.work for a in self.actors)

    def compute_actors(self) -> List[ModelActor]:
        """Actors that occupy cores (everything but off-chip I/O)."""
        return [a for a in self.actors if not a.io]

    def topological(self) -> List[ModelActor]:
        indeg: Dict[ModelActor, int] = {a: 0 for a in self.actors}
        for e in self.edges:
            if not e.delayed:
                indeg[e.dst] += 1
        ready = [a for a in self.actors if indeg[a] == 0]
        order: List[ModelActor] = []
        while ready:
            actor = ready.pop()
            order.append(actor)
            for e in self.edges:
                if e.src is actor and not e.delayed:
                    indeg[e.dst] -= 1
                    if indeg[e.dst] == 0:
                        ready.append(e.dst)
        if len(order) != len(self.actors):
            raise MachineError("model graph has a zero-delay cycle")
        return order

    # -- transformations ---------------------------------------------------------

    def contract(self, a: ModelActor, b: ModelActor) -> ModelActor:
        """Fuse two actors; their mutual traffic becomes core-local (free).

        The fused actor is stateful if either part was, or if the boundary
        between them carried lookahead (fusing a peeking consumer
        internalizes its delay line — the paper's "fused peeking filters
        cannot be fissed").
        """
        boundary_peeking = any(
            (e.src is a and e.dst is b) or (e.src is b and e.dst is a)
            for e in self.edges
        ) and (b.peeking or a.peeking)
        fused = ModelActor(
            name=f"{a.name}+{b.name}",
            work=a.work + b.work,
            stateful=a.stateful or b.stateful or boundary_peeking,
            peeking=a.peeking or b.peeking,
            router=a.router and b.router,
            io=False,
            members=a.members + b.members,
        )
        new_edges: List[ModelEdge] = []
        for e in self.edges:
            src = fused if e.src in (a, b) else e.src
            dst = fused if e.dst in (a, b) else e.dst
            if src is fused and dst is fused:
                continue  # internalized
            new_edges.append(ModelEdge(src, dst, e.words, e.delayed))
        self.actors = [x for x in self.actors if x not in (a, b)] + [fused]
        self.edges = new_edges
        return fused

    def fiss(self, actor: ModelActor, k: int, sync_cost_per_word: float = 1.0) -> List[ModelActor]:
        """Replicate a stateless actor ``k`` ways.

        Inserts scatter/gather router actors whose work is proportional to
        the items they move.  A *peeking* actor's input must be duplicated
        to every replica (k-fold input traffic) — the coarse-grained
        algorithm weighs exactly this cost.
        """
        if actor.stateful:
            raise MachineError(f"cannot fiss stateful actor {actor.name}")
        if k < 2:
            return [actor]
        in_edges = self.in_edges(actor)
        out_edges = self.out_edges(actor)
        in_words = sum(e.words for e in in_edges)
        out_words = sum(e.words for e in out_edges)
        # Replica #0 inherits the membership: a runtime that cannot split
        # firings of one filter across processes collapses the fission onto
        # replica #0's core (the simulator still models all k).
        replicas = [
            ModelActor(
                name=f"{actor.name}#{i}",
                work=actor.work / k,
                stateful=False,
                peeking=actor.peeking,
                members=actor.members if i == 0 else (),
            )
            for i in range(k)
        ]
        per_replica_in = in_words if actor.peeking else in_words / k
        # The scatter router streams each input word once; duplication to
        # peeking replicas happens on the network (Raw's static switch
        # multicasts), so duplication shows up as link traffic, not as
        # router compute.
        scatter = ModelActor(
            name=f"{actor.name}.scatter",
            work=sync_cost_per_word * in_words,
            router=True,
        )
        gather = ModelActor(
            name=f"{actor.name}.gather",
            work=sync_cost_per_word * out_words,
            router=True,
        )
        new_edges: List[ModelEdge] = []
        for e in self.edges:
            if e.dst is actor:
                new_edges.append(ModelEdge(e.src, scatter, e.words, e.delayed))
            elif e.src is actor:
                new_edges.append(ModelEdge(gather, e.dst, e.words, e.delayed))
            else:
                new_edges.append(e)
        for rep in replicas:
            new_edges.append(ModelEdge(scatter, rep, per_replica_in))
            new_edges.append(ModelEdge(rep, gather, out_words / k))
        self.actors = [x for x in self.actors if x is not actor] + [scatter, gather] + replicas
        self.edges = new_edges
        return replicas

    def copy(self) -> "ModelGraph":
        """A structural copy sharing no mutable containers with the original."""
        mapping = {
            a: ModelActor(
                a.name, a.work, a.stateful, a.peeking, a.router, a.io, a.origin,
                a.members,
            )
            for a in self.actors
        }
        return ModelGraph(
            list(mapping.values()),
            [ModelEdge(mapping[e.src], mapping[e.dst], e.words, e.delayed) for e in self.edges],
        )
