"""The modeled target: a Raw-like 16-core grid processor.

Single-issue in-order cores on a square mesh with a register-mapped
on-chip network: one word per cycle per link, XY dimension-ordered
routing.  Clocked at 450 MHz with one FLOP per cycle per core — peak
16 x 450 = 7200 MFLOPS, matching the figure the paper quotes for its
target.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class RawMachine:
    """Machine parameters (defaults model the paper's 16-core Raw)."""

    n_cores: int = 16
    clock_hz: float = 450e6
    flops_per_cycle: float = 1.0
    #: cycles per word on a network link
    link_cycles_per_word: float = 1.0
    #: fixed per-hop latency in cycles
    hop_latency: float = 1.0
    #: cycles a core spends injecting/receiving one word
    io_cycles_per_word: float = 1.0
    #: fixed synchronization cost per cross-core channel per period
    sync_cycles_per_channel: float = 4.0

    @property
    def side(self) -> int:
        side = int(round(math.sqrt(self.n_cores)))
        return side if side * side == self.n_cores else self.n_cores

    @property
    def peak_mflops(self) -> float:
        return self.n_cores * self.flops_per_cycle * self.clock_hz / 1e6

    # -- topology ---------------------------------------------------------------

    def coords(self, core: int) -> Tuple[int, int]:
        side = self.side
        return core % side, core // side

    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """XY dimension-ordered route: the list of directed links used.

        Links are identified as ``(core, direction)`` with direction 0=+x,
        1=-x, 2=+y, 3=-y.
        """
        if src == dst:
            return []
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        side = self.side
        links: List[Tuple[int, int]] = []
        x, y = sx, sy
        while x != dx:
            step = 1 if dx > x else -1
            links.append((y * side + x, 0 if step > 0 else 1))
            x += step
        while y != dy:
            step = 1 if dy > y else -1
            links.append((y * side + x, 2 if step > 0 else 3))
            y += step
        return links

    def hops(self, src: int, dst: int) -> int:
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)
