"""The simulated 16-core Raw-like target machine."""

from repro.machine.model import ModelActor, ModelEdge, ModelGraph
from repro.machine.raw import RawMachine
from repro.machine.simulator import (
    SimResult,
    dag_makespan,
    pipelined_ii,
    single_core_baseline,
)

__all__ = [
    "ModelActor",
    "ModelEdge",
    "ModelGraph",
    "RawMachine",
    "SimResult",
    "dag_makespan",
    "pipelined_ii",
    "single_core_baseline",
]
