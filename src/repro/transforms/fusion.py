"""Executable filter fusion: a pipeline of filters as one filter.

Fusion coarsens granularity: the fused filter runs its children's local
steady-state schedule internally, turning inter-filter channels into local
buffers (the paper's motivation for fusing before data-parallelizing —
communication becomes core-local memory).

Restriction: children *after the first* must not peek beyond their pop
window.  As the paper notes, fusing a peeking filter introduces shared
state (the lookahead must persist across invocations), which breaks the
static-rate contract of a single fused ``work``; the partitioners therefore
treat such fusions as stateful and refuse to fiss them.  The first child's
lookahead is preserved: it becomes the fused filter's own ``peek``.
"""

from __future__ import annotations

from fractions import Fraction
from math import lcm
from typing import List, Optional, Sequence

from repro.errors import ValidationError
from repro.graph.base import Filter
from repro.runtime.channel import Channel


class FusedFilter(Filter):
    """A single filter executing a chain of filters' steady schedule."""

    #: SL005: work() delegates to child filters resolved at runtime, so the
    #: static rate checker cannot count its channel operations.  The
    #: children's own rates are checked individually, and __init__ derives
    #: the fused rates from them arithmetically.
    lint_suppress = ("SL005",)

    def __init__(self, children: Sequence[Filter], name: Optional[str] = None) -> None:
        children = list(children)
        if not children:
            raise ValidationError("cannot fuse an empty chain")
        for child in children[1:]:
            if child.rate.extra_peek:
                raise ValidationError(
                    f"cannot fuse: interior filter {child.name} peeks beyond "
                    "its pop window (would introduce shared state)"
                )
        for child in children:
            if child.parent is not None:
                raise ValidationError(
                    f"filter {child.name} already appears in a graph; fuse clones"
                )
        # Local steady-state multiplicities along the chain.
        rates: List[Fraction] = [Fraction(1)]
        for up, down in zip(children, children[1:]):
            if up.rate.push == 0 or down.rate.pop == 0:
                raise ValidationError(
                    f"cannot fuse across source/sink boundary {up.name} -> {down.name}"
                )
            rates.append(rates[-1] * up.rate.push / down.rate.pop)
        scale = lcm(*(r.denominator for r in rates))
        self.multiplicities = [int(r * scale) for r in rates]
        first, last = children[0], children[-1]
        pop = self.multiplicities[0] * first.rate.pop
        push = self.multiplicities[-1] * last.rate.push
        peek = pop + first.rate.extra_peek
        super().__init__(peek=peek, pop=pop, push=push, name=name)
        self.children_filters = children
        # Internal channels: child i writes channel i, child i+1 reads it.
        self._internal = [Channel(name=f"fused[{i}]") for i in range(len(children) - 1)]
        for i, child in enumerate(children):
            child.input = self._internal[i - 1] if i > 0 else None
            child.output = self._internal[i] if i < len(self._internal) else None

    def init(self) -> None:
        for child in self.children_filters:
            child.init()

    def work(self) -> None:
        children = self.children_filters
        first, last = children[0], children[-1]
        # Stage the external window for the first child: it reads from the
        # real input channel directly (pops/peeks pass through).
        first.input = self.input
        last.output = self.output
        try:
            for child, mult in zip(children, self.multiplicities):
                for _ in range(mult):
                    child.work()
        finally:
            first.input = None
            last.output = None
