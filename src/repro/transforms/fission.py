"""Executable filter fission: data-parallelizing a stateless filter.

Fission replicates a stateless filter ``k`` ways so the replicas can run on
different cores:

* **Non-peeking** filters (``peek == pop``) fiss into a round-robin
  split-join — replica ``i`` executes firings ``i, i+k, i+2k, …`` on
  disjoint input blocks.
* **Peeking** filters need overlapping windows, so the splitter becomes a
  *duplicate* and each replica decimates: replica ``i`` consumes ``k·pop``
  items per firing, applying the original work to the window starting at
  offset ``i·pop`` (the paper's duplication cost of fissing peeking
  filters — the input is sent to every replica).

Fission requires statelessness (checked via
:func:`repro.linear.extraction.is_stateful`).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ValidationError
from repro.graph.base import Filter
from repro.graph.composites import SplitJoin
from repro.graph.splitjoin import duplicate, joiner_roundrobin, roundrobin
from repro.linear.extraction import is_stateful
from repro.transforms.clone import clone_stream


class _WindowView:
    """A read window presented to a replica's inner filter as its channel."""

    __slots__ = ("items", "pos")

    def __init__(self) -> None:
        self.items: List[float] = []
        self.pos = 0

    def pop(self) -> float:
        value = self.items[self.pos]
        self.pos += 1
        return value

    def peek(self, index: int) -> float:
        return self.items[self.pos + index]


class PhasedReplica(Filter):
    """Replica ``phase`` of a ``k``-way fission of a peeking filter.

    Receives the full (duplicated) input stream; per firing it consumes
    ``k·pop`` items and executes the inner work function once on the window
    at offset ``phase·pop``.
    """

    def __init__(self, inner: Filter, k: int, phase: int, name: Optional[str] = None) -> None:
        if inner.parent is not None:
            raise ValidationError("fission replicas must wrap fresh clones")
        pop = inner.rate.pop
        super().__init__(
            peek=k * pop + inner.rate.extra_peek,
            pop=k * pop,
            push=inner.rate.push,
            name=name or f"{inner.name}.fiss{phase}",
        )
        self.inner = inner
        self.k = k
        self.phase = phase
        self._view = _WindowView()
        inner.input = self._view  # type: ignore[assignment]

    def init(self) -> None:
        self.inner.init()

    def work(self) -> None:
        inner = self.inner
        offset = self.phase * inner.rate.pop
        view = self._view
        view.items = [self.peek(offset + i) for i in range(inner.rate.peek)]
        view.pos = 0
        inner.output = self.output
        try:
            inner.work()
        finally:
            inner.output = None
        for _ in range(self.rate.pop):
            self.pop()


def fiss(filt: Filter, k: int) -> SplitJoin:
    """Fiss a stateless filter ``k`` ways into an equivalent split-join."""
    if k < 2:
        raise ValidationError(f"fission requires k >= 2, got {k}")
    if filt.rate.pop == 0 or filt.rate.push == 0:
        raise ValidationError(f"cannot fiss source/sink filter {filt.name}")
    if is_stateful(filt):
        raise ValidationError(
            f"cannot fiss stateful filter {filt.name}: replicas would "
            "disagree on the mutated state"
        )
    pop, push = filt.rate.pop, filt.rate.push
    if filt.rate.extra_peek == 0:
        replicas = [clone_stream(filt) for _ in range(k)]
        for i, rep in enumerate(replicas):
            rep.name = f"{filt.name}.fiss{i}"
        return SplitJoin(
            roundrobin(*([pop] * k)),
            replicas,
            joiner_roundrobin(*([push] * k)),
            name=f"{filt.name}.fissed{k}",
        )
    replicas = [PhasedReplica(clone_stream(filt), k, i) for i in range(k)]
    return SplitJoin(
        duplicate(),
        replicas,
        joiner_roundrobin(*([push] * k)),
        name=f"{filt.name}.fissed{k}",
    )
