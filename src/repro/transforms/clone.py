"""Deep-cloning of stream subtrees.

Graph transformations produce *new* streams (each stream instance may
appear in at most one graph), so untouched subtrees must be cloned when a
transformation rebuilds their parent.  Cloning deep-copies the subtree with
its parent link detached and all runtime channel bindings stripped.
"""

from __future__ import annotations

import copy
from typing import TypeVar

from repro.graph.base import Filter, Stream

S = TypeVar("S", bound=Stream)


def clone_stream(stream: S) -> S:
    """Return an independent deep copy of a stream subtree.

    Portals referenced by filters inside the subtree are copied along with
    it; portal receiver registrations that point *inside* the subtree stay
    consistent (deepcopy memoization preserves sharing), while
    registrations pointing outside the subtree would be duplicated — the
    optimizers therefore never clone across a portal boundary.
    """
    parent = stream.parent
    stream.parent = None
    try:
        cloned = copy.deepcopy(stream)
    finally:
        stream.parent = parent
    # Each clone is a distinct stream instance: give every node a fresh uid
    # so the clone and the original may coexist in (different) graphs.
    from repro.graph import base as _base

    for sub in cloned.streams():
        sub._uid = next(_base._id_counter)
    for filt in cloned.filters():
        filt.input = None
        filt.output = None
    return cloned
