"""Graph transformations: cloning, fusion, fission."""

from repro.transforms.clone import clone_stream
from repro.transforms.fission import PhasedReplica, fiss
from repro.transforms.fusion import FusedFilter

__all__ = ["clone_stream", "FusedFilter", "fiss", "PhasedReplica"]
