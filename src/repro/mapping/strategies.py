"""The six mapping strategies the evaluation compares.

Each strategy takes a built application, transforms its model graph,
assigns actors to cores, and evaluates throughput on the simulated
16-core machine:

========================  ==========================================  ==========
strategy                  transformation                              discipline
========================  ==========================================  ==========
``task``                  none (fork/join over split-join branches)   DAG
``fine_grained``          fiss *every* stateless filter 16 ways       DAG
``data`` (task+data)      coarsen stateless regions, judicious fiss   DAG
``softpipe`` (task+SWP)   selective fusion                            pipelined
``combined`` (T+D+SWP)    coarsen + fiss + selective fusion           pipelined
``space`` (prior work)    selective fusion to one actor per core      pipelined
========================  ==========================================  ==========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import MachineError
from repro.graph.base import Filter, Stream
from repro.graph.composites import FeedbackLoop, Pipeline, SplitJoin
from repro.graph.flatgraph import FILTER, FlatNode
from repro.machine.model import ModelActor, ModelGraph
from repro.machine.raw import RawMachine
from repro.machine.simulator import (
    SimResult,
    dag_makespan,
    pipelined_ii,
    single_core_baseline,
)
from repro.mapping.partition import (
    coarsen_stateless,
    judicious_fission,
    lpt_assign,
    selective_fusion,
)


@dataclass(frozen=True)
class StrategyResult:
    """One strategy's mapping and its simulated throughput."""

    name: str
    model: ModelGraph
    assignment: Dict[ModelActor, int]
    sim: SimResult
    baseline: SimResult

    @property
    def speedup(self) -> float:
        """Throughput gain over sequential execution on one core."""
        return self.baseline.cycles_per_period / self.sim.cycles_per_period


# ---------------------------------------------------------------------------
# Task parallelism: fork/join over split-join branches
# ---------------------------------------------------------------------------


def _task_parallel_cores(stream: Stream, n_cores: int) -> Dict[int, int]:
    """Core for every stream uid under the pure fork/join discipline.

    Pipeline children share their parent's core pool (stages execute
    sequentially within a period); split-join branches divide the pool.
    """
    cores: Dict[int, int] = {}

    def assign(s: Stream, pool: List[int]) -> None:
        cores[s.uid] = pool[0]
        if isinstance(s, Pipeline):
            for child in s.children():
                assign(child, pool)
        elif isinstance(s, SplitJoin):
            kids = s.children()
            n = len(kids)
            for i, child in enumerate(kids):
                if n <= len(pool):
                    lo = i * len(pool) // n
                    hi = max(lo + 1, (i + 1) * len(pool) // n)
                    assign(child, pool[lo:hi])
                else:
                    assign(child, [pool[i % len(pool)]])
        elif isinstance(s, FeedbackLoop):
            assign(s.body, pool)
            assign(s.loopback, pool)

    assign(stream, list(range(n_cores)))
    return cores


def task_parallel(stream: Stream, machine: RawMachine = RawMachine()) -> StrategyResult:
    """The task-parallel baseline (the evaluation's first bar)."""
    model = ModelGraph.from_stream(stream)
    cores = _task_parallel_cores(stream, machine.n_cores)
    assignment: Dict[ModelActor, int] = {}
    for actor in model.compute_actors():
        node = actor.origin
        assert isinstance(node, FlatNode)
        owner = node.obj
        uid = owner.uid if owner is not None else None
        if uid is None or uid not in cores:
            raise MachineError(f"no task-parallel core for actor {actor.name}")
        assignment[actor] = cores[uid]
    sim = dag_makespan(model, assignment, machine)
    return StrategyResult("task", model, assignment, sim, single_core_baseline(model, machine))


# ---------------------------------------------------------------------------
# Fine-grained data parallelism (the cautionary tale)
# ---------------------------------------------------------------------------


def fine_grained(stream: Stream, machine: RawMachine = RawMachine()) -> StrategyResult:
    """Naively replicate every stateless filter across all cores."""
    base = ModelGraph.from_stream(stream)
    model = base.copy()
    for actor in list(model.actors):
        if actor.io or actor.router or actor.stateful:
            continue
        replicas = model.fiss(actor, machine.n_cores)
        del replicas
    assignment: Dict[ModelActor, int] = {}
    cursor = 0
    for actor in model.compute_actors():
        if "#" in actor.name:
            assignment[actor] = int(actor.name.rsplit("#", 1)[1]) % machine.n_cores
        else:
            assignment[actor] = cursor % machine.n_cores
            cursor += 1
    sim = dag_makespan(model, assignment, machine)
    return StrategyResult("fine_grained", model, assignment, sim, single_core_baseline(base, machine))


# ---------------------------------------------------------------------------
# Coarse-grained data parallelism
# ---------------------------------------------------------------------------


def data_parallel(stream: Stream, machine: RawMachine = RawMachine()) -> StrategyResult:
    """Task + coarse-grained data parallelism (fuse, then fiss judiciously)."""
    base = ModelGraph.from_stream(stream)
    model = judicious_fission(coarsen_stateless(base), machine.n_cores)
    assignment = lpt_assign(model, machine.n_cores)
    sim = dag_makespan(model, assignment, machine)
    return StrategyResult("data", model, assignment, sim, single_core_baseline(base, machine))


# ---------------------------------------------------------------------------
# Coarse-grained software pipelining
# ---------------------------------------------------------------------------


def software_pipeline(stream: Stream, machine: RawMachine = RawMachine()) -> StrategyResult:
    """Task + software pipelining: selective fusion, then pack the
    dependence-free steady state."""
    base = ModelGraph.from_stream(stream)
    model = selective_fusion(base, 2 * machine.n_cores)
    assignment = lpt_assign(model, machine.n_cores)
    sim = pipelined_ii(model, assignment, machine)
    return StrategyResult("softpipe", model, assignment, sim, single_core_baseline(base, machine))


def combined(stream: Stream, machine: RawMachine = RawMachine()) -> StrategyResult:
    """Task + data + software pipelining (the paper's full technique).

    Software-pipelines the data-parallelized graph: the same coarsen+fiss
    model as :func:`data_parallel`, but executed with intra-period
    dependences absorbed by the pipeline prologue.
    """
    base = ModelGraph.from_stream(stream)
    model = judicious_fission(coarsen_stateless(base), machine.n_cores)
    model = selective_fusion(model, 2 * machine.n_cores, protect_replicas=True)
    assignment = lpt_assign(model, machine.n_cores)
    sim = pipelined_ii(model, assignment, machine)
    return StrategyResult("combined", model, assignment, sim, single_core_baseline(base, machine))


# ---------------------------------------------------------------------------
# Prior work: space multiplexing (task + pipeline parallelism)
# ---------------------------------------------------------------------------


def space_multiplex(stream: Stream, machine: RawMachine = RawMachine()) -> StrategyResult:
    """The previous StreamIt backend: fuse to one filter per tile, run
    hardware-pipelined — no data parallelism, so a dominant filter bounds
    throughput."""
    base = ModelGraph.from_stream(stream)
    model = selective_fusion(base, machine.n_cores)
    actors = sorted(model.compute_actors(), key=lambda a: -a.work)
    assignment = {actor: i % machine.n_cores for i, actor in enumerate(actors)}
    sim = pipelined_ii(model, assignment, machine)
    return StrategyResult("space", model, assignment, sim, single_core_baseline(base, machine))


STRATEGIES: Dict[str, Callable[..., StrategyResult]] = {
    "task": task_parallel,
    "fine_grained": fine_grained,
    "data": data_parallel,
    "softpipe": software_pipeline,
    "combined": combined,
    "space": space_multiplex,
}


# ---------------------------------------------------------------------------
# Flat-graph partitions for the parallel runtime
# ---------------------------------------------------------------------------


def _strongly_connected(graph) -> List[List[FlatNode]]:
    """Strongly connected components of the flat graph (all edges, delayed
    included) — iterative Tarjan, smallest-index order."""
    index: Dict[FlatNode, int] = {}
    low: Dict[FlatNode, int] = {}
    on_stack: Dict[FlatNode, bool] = {}
    stack: List[FlatNode] = []
    sccs: List[List[FlatNode]] = []
    counter = [0]

    for root in graph.nodes:
        if root in index:
            continue
        work = [(root, iter(root.out_edges))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, edges = work[-1]
            advanced = False
            for edge in edges:
                child = edge.dst
                if child not in index:
                    index[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack[child] = True
                    work.append((child, iter(child.out_edges)))
                    advanced = True
                    break
                if on_stack.get(child):
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    comp.append(member)
                    if member is node:
                        break
                sccs.append(comp)
    return sccs


def _strategy_model_assignment(strategy: str, base: ModelGraph, n_cores: int):
    """Replicate a strategy's model transform + core assignment (no sim)."""
    model = base.copy()
    if strategy == "fine_grained":
        for actor in list(model.actors):
            if actor.io or actor.router or actor.stateful:
                continue
            model.fiss(actor, n_cores)
        assignment: Dict[ModelActor, int] = {}
        cursor = 0
        for actor in model.compute_actors():
            if "#" in actor.name:
                assignment[actor] = int(actor.name.rsplit("#", 1)[1]) % n_cores
            else:
                assignment[actor] = cursor % n_cores
                cursor += 1
    elif strategy == "data":
        model = judicious_fission(coarsen_stateless(model), n_cores)
        assignment = lpt_assign(model, n_cores)
    elif strategy == "softpipe":
        model = selective_fusion(model, 2 * n_cores)
        assignment = lpt_assign(model, n_cores)
    elif strategy == "combined":
        model = judicious_fission(coarsen_stateless(model), n_cores)
        model = selective_fusion(model, 2 * n_cores, protect_replicas=True)
        assignment = lpt_assign(model, n_cores)
    elif strategy == "space":
        model = selective_fusion(model, n_cores)
        actors = sorted(model.compute_actors(), key=lambda a: -a.work)
        assignment = {actor: i % n_cores for i, actor in enumerate(actors)}
    else:
        raise MachineError(f"unknown mapping strategy {strategy!r}")
    return model, assignment


def apply_work_profile(model: ModelGraph, profile: Dict[str, float]) -> int:
    """Override actor work with measured per-period times (``repro.tune``).

    ``profile`` maps flat-node names to measured seconds of self-time per
    steady period.  Measured values are rescaled so the profiled actors'
    total equals their static total: the partitioners then balance on
    *measured ratios* while the absolute magnitude stays commensurate with
    the costs the transforms add in cycle units (fission sync routers).
    Actors the profile does not cover keep their static estimate.  Returns
    how many actors were reweighted.
    """
    measured = {
        actor: profile[actor.name]
        for actor in model.actors
        if profile.get(actor.name, 0.0) > 0.0
    }
    if not measured:
        return 0
    static_total = sum(actor.work for actor in measured)
    measured_total = sum(measured.values())
    if static_total <= 0.0 or measured_total <= 0.0:
        return 0
    scale = static_total / measured_total
    for actor, seconds in measured.items():
        actor.work = seconds * scale
    return len(measured)


def partition_nodes(
    stream,
    graph,
    reps,
    strategy: str,
    n_cores: int,
    work_profile: Optional[Dict[str, float]] = None,
):
    """Project a mapping strategy onto the live flat graph.

    Returns ``{FlatNode: core}`` over the *compute* nodes (filters with both
    rates nonzero, splitters, joiners).  I/O endpoints — sources and sinks —
    are left out: the parallel runtime keeps them on the parent process,
    mirroring the paper's off-chip I/O convention (``compute_actors``).

    ``work_profile`` (measured seconds per period, from
    :mod:`repro.tune`) replaces the static per-actor work estimates via
    :func:`apply_work_profile`, so partitions balance on recorded rather
    than declared work.

    Three runtime legality fixups are applied to the model assignment:

    * fission replicas collapse onto replica #0's core (one process owns a
      filter instance's firings; the simulator still models all replicas);
    * every strongly connected component (feedback loop) is co-located on
      the component's majority core, so no cycle crosses a blocking ring
      boundary (which could deadlock);
    * parallel race hazards found by :mod:`repro.analysis.graph` — filter
      instances aliasing one mutable object, and teleport portal
      sender/receiver sets — are co-located too, so forked copies never
      diverge and messages never cross a process boundary.  Overlapping
      constraint sets are merged (union-find) before voting, so a node in
      two hazard groups cannot be pulled apart by a later fixup.
    """
    if strategy not in STRATEGIES:
        raise MachineError(
            f"unknown mapping strategy {strategy!r}; expected one of "
            f"{tuple(STRATEGIES)}"
        )
    base = ModelGraph.from_flatgraph(graph, reps)
    if work_profile:
        apply_work_profile(base, work_profile)
    io_nodes = {a.origin for a in base.actors if a.io}
    part: Dict[FlatNode, int] = {}
    if strategy == "task":
        cores = _task_parallel_cores(stream, n_cores)
        for node in graph.nodes:
            if node in io_nodes:
                continue
            owner = node.obj
            uid = owner.uid if owner is not None else None
            if uid is None or uid not in cores:
                raise MachineError(f"no task-parallel core for node {node.name}")
            part[node] = cores[uid]
    else:
        _model, assignment = _strategy_model_assignment(strategy, base, n_cores)
        for actor, core in assignment.items():
            for node in actor.members:
                if node not in io_nodes:
                    part[node] = core
        for node in graph.nodes:
            if node in io_nodes or node in part:
                continue
            part[node] = 0
    # Co-location constraints: feedback cycles (a cycle split across
    # workers would have both sides blocked waiting on the other's ring)
    # plus the race hazards the whole-graph analysis finds (shared mutable
    # objects, teleport portal endpoint sets).
    constraints: List[List[FlatNode]] = [list(scc) for scc in _strongly_connected(graph)]
    try:
        from repro.analysis.graph import portal_links, shared_state_groups

        by_name = {n.name: n for n in graph.nodes}
        for group in shared_state_groups(graph):
            constraints.append(
                [by_name[nm] for nm in group.filter_names if nm in by_name]
            )
        for link in portal_links(graph):
            constraints.append(
                [
                    by_name[nm]
                    for nm in (link.sender, *link.receivers)
                    if nm in by_name
                ]
            )
    except Exception:  # pragma: no cover - analysis layer unavailable
        pass
    # Merge overlapping constraint sets (union-find), then move each merged
    # cluster onto its majority core.
    leader: Dict[FlatNode, FlatNode] = {}

    def _find(node: FlatNode) -> FlatNode:
        while leader.get(node, node) is not node:
            leader[node] = leader.get(leader[node], leader[node])
            node = leader[node]
        return node

    for members in constraints:
        members = [n for n in members if n in part]
        if len(members) < 2:
            continue
        head = _find(members[0])
        for node in members[1:]:
            leader[_find(node)] = head
    clusters: Dict[FlatNode, List[FlatNode]] = {}
    for node in part:
        clusters.setdefault(_find(node), []).append(node)
    for members in clusters.values():
        if len(members) < 2:
            continue
        votes: Dict[int, int] = {}
        for node in members:
            votes[part[node]] = votes.get(part[node], 0) + 1
        target = max(sorted(votes), key=lambda c: votes[c])
        for node in members:
            part[node] = target
    return part


def evaluate_all(
    stream_builder: Callable[[], Stream],
    machine: RawMachine = RawMachine(),
    strategies: Optional[List[str]] = None,
) -> Dict[str, StrategyResult]:
    """Run the requested strategies, each on a freshly built app."""
    names = strategies or list(STRATEGIES)
    results: Dict[str, StrategyResult] = {}
    for name in names:
        results[name] = STRATEGIES[name](stream_builder(), machine)
    return results
