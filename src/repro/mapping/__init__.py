"""Multicore mapping: partitioning and the evaluation's six strategies."""

from repro.mapping.partition import (
    coarsen_stateless,
    judicious_fission,
    lpt_assign,
    selective_fusion,
)
from repro.mapping.strategies import (
    STRATEGIES,
    StrategyResult,
    combined,
    data_parallel,
    evaluate_all,
    fine_grained,
    software_pipeline,
    space_multiplex,
    task_parallel,
)

__all__ = [
    "lpt_assign",
    "selective_fusion",
    "coarsen_stateless",
    "judicious_fission",
    "STRATEGIES",
    "StrategyResult",
    "task_parallel",
    "fine_grained",
    "data_parallel",
    "software_pipeline",
    "combined",
    "space_multiplex",
    "evaluate_all",
]
