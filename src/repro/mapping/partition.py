"""Partitioning primitives shared by the mapping strategies.

* :func:`lpt_assign` — longest-processing-time bin packing of actors onto
  cores (the load balancer behind data parallelism and software
  pipelining).
* :func:`selective_fusion` — the evaluation's "Selective Fusion": greedily
  contract the cheapest adjacent actor pair until the graph reaches a
  target granularity, keeping communication that matters and removing
  synchronization that doesn't.
* :func:`coarsen_stateless` — contract every edge interior to a stateless,
  non-peeking region (the coarsening step that precedes judicious
  fission).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.machine.model import ModelActor, ModelEdge, ModelGraph


def lpt_assign(model: ModelGraph, n_cores: int) -> Dict[ModelActor, int]:
    """Longest-processing-time-first load balancing across cores."""
    loads = [0.0] * n_cores
    assignment: Dict[ModelActor, int] = {}
    for actor in sorted(model.compute_actors(), key=lambda a: -a.work):
        core = min(range(n_cores), key=lambda c: loads[c])
        assignment[actor] = core
        loads[core] += actor.work
    return assignment


def _contractible_edges(model: ModelGraph) -> List[ModelEdge]:
    return [
        e
        for e in model.edges
        if e.src is not e.dst
        and not e.src.io
        and not e.dst.io
        and not e.delayed
    ]


def _would_create_cycle(model: ModelGraph, a: ModelActor, b: ModelActor) -> bool:
    """True if fusing ``a`` and ``b`` leaves a zero-delay cycle.

    That happens exactly when an *indirect* zero-delay path connects them
    (e.g. fusing a splitter with its joiner around an unfused branch).
    """
    for start, goal in ((a, b), (b, a)):
        stack = [
            e.dst
            for e in model.edges
            if e.src is start and e.dst is not goal and not e.delayed
        ]
        seen = set(stack)
        while stack:
            cur = stack.pop()
            if cur is goal:
                return True
            for e in model.edges:
                if e.src is cur and not e.delayed and e.dst not in seen:
                    seen.add(e.dst)
                    stack.append(e.dst)
    return False


def selective_fusion(
    model: ModelGraph, target_actors: int, protect_replicas: bool = False
) -> ModelGraph:
    """Greedily fuse the lightest adjacent pair until ``target_actors``.

    Matches the evaluation's Selective Fusion: the algorithm does not model
    per-fusion communication costs (the paper notes this is why MPEG's
    combined result regresses slightly) — it simply merges the cheapest
    neighbours, which usually removes synchronization without lengthening
    the critical path.

    With ``protect_replicas`` fission replicas are never fused together,
    so fusing after data-parallelization cannot undo the parallelism.
    """
    model = model.copy()
    while len(model.compute_actors()) > target_actors:
        candidates = sorted(
            _contractible_edges(model), key=lambda e: e.src.work + e.dst.work
        )
        for edge in candidates:
            if protect_replicas and "#" in edge.src.name and "#" in edge.dst.name:
                continue
            if not _would_create_cycle(model, edge.src, edge.dst):
                model.contract(edge.src, edge.dst)
                break
        else:
            break
    return model


def coarsen_stateless(model: ModelGraph) -> ModelGraph:
    """Fuse every stateless region into a single actor.

    Contraction stops at stateful actors and at *peeking* boundaries:
    fusing across a peeking consumer would internalize its lookahead as
    shared state, making the region unfissable — so those edges are left
    intact and the peeking actor becomes its own (fissable-by-duplication)
    region, exactly the granularity rule the paper describes.
    """
    model = model.copy()
    changed = True
    while changed:
        changed = False
        for edge in _contractible_edges(model):
            if edge.src.stateful or edge.dst.stateful:
                continue
            if edge.dst.peeking or edge.src.peeking:
                continue
            if _would_create_cycle(model, edge.src, edge.dst):
                continue
            model.contract(edge.src, edge.dst)
            changed = True
            break
    return model


#: Router cycles charged per word scattered/gathered during fission (the
#: static network streams duplicated words cheaply).
FISSION_SYNC_PER_WORD = 0.5


def judicious_fission(
    model: ModelGraph,
    n_cores: int,
    slack: float = 1.25,
) -> ModelGraph:
    """Fiss each stateless actor as wide as profitable.

    For each candidate width ``k`` the rule estimates the resulting
    bottleneck — the wider of a replica (compute plus its share of the
    channel traffic) and the scatter/gather routers (which for *peeking*
    actors carry ``k``-fold duplicated input) — and picks the ``k`` that
    minimizes it.  Fission is applied only when the estimate beats the
    unfissed actor by at least ``slack``; this is the "coarsen, then fiss
    judiciously" granularity rule that lets coarse-grained data
    parallelism beat naive per-filter replication.
    """
    model = model.copy()
    # Fission exists to shorten the critical path down to the balanced
    # per-core load; actors already below that load stay whole (the graph
    # supplies enough task parallelism for them), which keeps the total
    # synchronization the fission routers introduce proportional to the
    # number of true bottlenecks.
    target_load = max(model.total_work() / n_cores, 1.0)
    for actor in list(model.actors):
        if actor.io or actor.router or actor.stateful:
            continue
        needed = int(-(-actor.work // target_load))  # ceil
        k = min(n_cores, max(needed, 1))
        if k < 2:
            continue
        in_words = sum(e.words for e in model.in_edges(actor))
        out_words = sum(e.words for e in model.out_edges(actor))
        per_replica_in = in_words if actor.peeking else in_words / k
        replica = actor.work / k + per_replica_in + out_words / k
        scatter = FISSION_SYNC_PER_WORD * in_words
        gather = FISSION_SYNC_PER_WORD * out_words
        if actor.work >= slack * max(replica, scatter, gather):
            model.fiss(actor, k, sync_cost_per_word=FISSION_SYNC_PER_WORD)
    return model
