"""Messaging/latency constraints and the operational semantics.

The paper expresses message-delivery guarantees as constraints on the tape
counts ``n(t)``.  For a sender ``A`` that may message receiver ``B`` with
latency ``λ``:

* ``B`` upstream of ``A``   (Eq. mc1): ``n(O_B) <= min[O_B->O_A](n(O_A) + push_A·λ)``
* ``B`` downstream of ``A`` (Eq. mc2): ``n(O_B) <= max[O_A->O_B](n(O_A) + push_A·(λ-1))``

``MAX_LATENCY(a, b, n)`` is sugar for a message from ``b`` to the upstream
``a`` with latency ``n``.

:class:`Configuration` implements the paper's operational semantics: a
vector of ``⟨p(t), n(t)⟩`` pairs with the firing transition rule, checking
``P(C)`` (all constraints satisfied) and an optional ``MAXITEMS`` bound on
live items.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import MessagingError, SchedulingError
from repro.graph.base import Filter
from repro.graph.flatgraph import FlatEdge, FlatGraph, FlatNode
from repro.scheduling.sdep import WavefrontOracle


@dataclass(frozen=True)
class MessageConstraint:
    """Filter ``sender`` may message ``receiver`` with the given latency."""

    sender: Filter
    receiver: Filter
    latency: int

    def describe(self) -> str:
        return (
            f"message {self.sender.name} -> {self.receiver.name} "
            f"(latency {self.latency})"
        )


def max_latency(upstream: Filter, downstream: Filter, n: int) -> MessageConstraint:
    """The paper's ``MAX_LATENCY(a, b, n)`` directive.

    Constrains the schedule so that ``upstream`` never runs more than ``n``
    of ``downstream``'s work-function invocations ahead of the information
    wavefront ``downstream`` sees — expressed as a message from
    ``downstream`` to the upstream filter with latency ``n``.
    """
    return MessageConstraint(sender=downstream, receiver=upstream, latency=n)


class ConstraintSystem:
    """Evaluates message constraints against tape-count configurations."""

    def __init__(self, graph: FlatGraph, constraints: Sequence[MessageConstraint]) -> None:
        self.graph = graph
        self.constraints = list(constraints)
        self.oracle = WavefrontOracle(graph)
        self._bindings: List[Tuple[MessageConstraint, FlatEdge, FlatEdge, str]] = []
        for constraint in self.constraints:
            node_a = graph.node_for(constraint.sender)
            node_b = graph.node_for(constraint.receiver)
            o_a = self._output_tape(node_a)
            o_b = self._output_tape(node_b)
            if self.oracle.is_upstream(o_b, o_a):
                direction = "upstream"
            elif self.oracle.is_upstream(o_a, o_b):
                direction = "downstream"
            else:
                raise MessagingError(
                    f"{constraint.describe()}: receiver is neither upstream "
                    "nor downstream of sender (parallel messaging is beyond "
                    "the paper's scope)"
                )
            self._bindings.append((constraint, o_a, o_b, direction))

    @staticmethod
    def _output_tape(node: FlatNode) -> FlatEdge:
        if not node.out_edges:
            raise MessagingError(
                f"{node.name} has no output tape; messaging endpoints must "
                "produce output for wavefront timing to be defined"
            )
        return node.out_edges[0]

    def receiver_bound(self, counts: Dict[FlatEdge, int], binding_index: int) -> int:
        """Greatest admissible ``n(O_B)`` under one constraint."""
        constraint, o_a, o_b, direction = self._bindings[binding_index]
        push_a = o_a.push_rate
        n_oa = counts.get(o_a, len(o_a.initial))
        if direction == "upstream":
            return self.oracle.min_items(o_b, o_a, n_oa + push_a * constraint.latency)
        return self.oracle.max_items(o_a, o_b, n_oa + push_a * (constraint.latency - 1))

    def satisfied(self, counts: Dict[FlatEdge, int]) -> bool:
        """The paper's ``P(C)``: all constraints hold for these tape counts."""
        for i, (constraint, o_a, o_b, _) in enumerate(self._bindings):
            n_ob = counts.get(o_b, len(o_b.initial))
            if n_ob > self.receiver_bound(counts, i):
                return False
        return True


class Configuration:
    """The operational-semantics state: ``⟨p(t), n(t)⟩`` per tape.

    Implements the transition rule: filter ``A`` may fire iff (1) its input
    tape holds ``peek_A`` unpopped items, (2) the post-firing configuration
    satisfies ``P(C)``, and (3) the post-firing live-item total does not
    exceed ``max_items`` (the paper's MAXITEMS extension), if given.
    """

    def __init__(
        self,
        graph: FlatGraph,
        system: Optional[ConstraintSystem] = None,
        max_items: Optional[int] = None,
    ) -> None:
        self.graph = graph
        self.system = system
        self.max_items = max_items
        # Start configuration C0: nothing pushed or popped, except that
        # feedback delay items count as already pushed.
        self.pushed: Dict[FlatEdge, int] = {e: len(e.initial) for e in graph.edges}
        self.popped: Dict[FlatEdge, int] = {e: 0 for e in graph.edges}
        if system is not None and not system.satisfied(self.pushed):
            raise MessagingError(
                "the initial configuration violates the message delivery "
                "constraints; the requested latencies are unsatisfiable"
            )

    def live_items(self) -> int:
        """Total items pushed but not yet popped, across all tapes."""
        return sum(self.pushed[e] - self.popped[e] for e in self.graph.edges)

    def occupancy(self, edge: FlatEdge) -> int:
        return self.pushed[edge] - self.popped[edge]

    def can_fire(self, node: FlatNode) -> bool:
        """Check all three firing conditions without mutating state."""
        for edge in node.in_edges:
            if self.occupancy(edge) < edge.peek_rate:
                return False
        if self.max_items is not None:
            delta = sum(e.push_rate for e in node.out_edges) - sum(
                e.pop_rate for e in node.in_edges
            )
            if self.live_items() + delta > self.max_items:
                return False
        if self.system is not None:
            trial = dict(self.pushed)
            for edge in node.out_edges:
                trial[edge] += edge.push_rate
            if not self.system.satisfied(trial):
                return False
        return True

    def fire(self, node: FlatNode) -> None:
        """Apply the transition rule for one firing of ``node``."""
        if not self.can_fire(node):
            raise SchedulingError(f"transition rule violated: {node.name} cannot fire")
        for edge in node.in_edges:
            self.popped[edge] += edge.pop_rate
        for edge in node.out_edges:
            self.pushed[edge] += edge.push_rate

    def fireable(self) -> List[FlatNode]:
        """All nodes that may legally fire from this configuration."""
        return [n for n in self.graph.nodes if self.can_fire(n)]
