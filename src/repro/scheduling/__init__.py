"""Static scheduling: SDF rates, schedules, wavefronts, verification."""

from repro.scheduling.constraints import (
    Configuration,
    ConstraintSystem,
    MessageConstraint,
    max_latency,
)
from repro.scheduling.rates import repetitions, steady_state_items
from repro.scheduling.sdep import (
    TransferFunction,
    WavefrontOracle,
    filter_tf,
    identity_tf,
    joiner_branch_tf,
    pipeline_tf,
    splitter_branch_tf,
)
from repro.scheduling.steady import ProgramSchedule, Schedule, build_schedule, init_counts
from repro.scheduling.verification import (
    DEADLOCK,
    OK,
    OVERFLOW,
    LoopVerdict,
    VerificationReport,
    analyze_feedback_loop,
    splitjoin_drift,
    steady_gain,
    verify_program,
)

__all__ = [
    "repetitions",
    "steady_state_items",
    "Schedule",
    "ProgramSchedule",
    "build_schedule",
    "init_counts",
    "TransferFunction",
    "WavefrontOracle",
    "filter_tf",
    "identity_tf",
    "splitter_branch_tf",
    "joiner_branch_tf",
    "pipeline_tf",
    "MessageConstraint",
    "ConstraintSystem",
    "Configuration",
    "max_latency",
    "steady_gain",
    "verify_program",
    "analyze_feedback_loop",
    "splitjoin_drift",
    "LoopVerdict",
    "VerificationReport",
    "OK",
    "DEADLOCK",
    "OVERFLOW",
]
