"""Steady-state and initialization schedule construction.

A :class:`Schedule` is a list of *phases* ``(node, count)``: fire ``node``
``count`` times.  The steady-state schedule fires each node its repetition
count in topological order; executed repeatedly after the initialization
schedule, it keeps every channel's occupancy periodic.

The initialization schedule handles *peeking* filters: a filter with
``peek > pop`` must see ``peek - pop`` extra buffered items beyond what one
period's producers supply.  Following the StreamIt scheduler, we compute the
minimal per-node init firing counts by a backward fixpoint over the edges:

    u_src >= ceil((u_dst * pop(e) + extra(e) - initial(e)) / push(e))

where ``extra(e)`` is the consumer's lookahead on that edge and
``initial(e)`` the pre-filled delay items (feedback loops).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, List, Tuple

from repro.errors import SchedulingError
from repro.graph.flatgraph import FILTER, FlatEdge, FlatGraph, FlatNode
from repro.scheduling.rates import repetitions


@dataclass(frozen=True)
class Schedule:
    """An ordered sequence of firing phases."""

    phases: Tuple[Tuple[FlatNode, int], ...]

    @property
    def total_firings(self) -> int:
        return sum(count for _, count in self.phases)

    def counts(self) -> Dict[FlatNode, int]:
        """Total firings per node across all phases."""
        out: Dict[FlatNode, int] = {}
        for node, count in self.phases:
            out[node] = out.get(node, 0) + count
        return out

    def __iter__(self):
        return iter(self.phases)

    def __len__(self) -> int:
        return len(self.phases)


@dataclass(frozen=True)
class ProgramSchedule:
    """Complete execution plan for a flat graph."""

    graph: FlatGraph
    reps: Dict[FlatNode, int]
    init: Schedule
    steady: Schedule
    #: Worst-case channel occupancy (in items) reached while running the
    #: init schedule followed by steady-state periods in schedule order.
    buffer_bounds: Dict[FlatEdge, int]


def restrict_schedule(schedule: Schedule, nodes) -> Schedule:
    """The subsequence of ``schedule`` firing only ``nodes``.

    Phase order is preserved and adjacent same-node runs merge, so each
    worker of the parallel runtime executes its own nodes in exactly the
    global schedule's relative order — the property that makes per-worker
    execution deadlock-free once cross-worker edges block on ring buffers.
    """
    phases: List[Tuple[FlatNode, int]] = []
    for node, count in schedule:
        if node not in nodes:
            continue
        if phases and phases[-1][0] is node:
            phases[-1] = (node, phases[-1][1] + count)
        else:
            phases.append((node, count))
    return Schedule(tuple(phases))


def _edge_extra(edge: FlatEdge) -> int:
    """Consumer lookahead (peek - pop) required to remain on this edge."""
    if edge.dst.kind == FILTER:
        return edge.dst.peek_extra
    return 0


def init_counts(graph: FlatGraph) -> Dict[FlatNode, int]:
    """Minimal init firings so every peeking filter's lookahead is primed."""
    u: Dict[FlatNode, int] = {node: 0 for node in graph.nodes}
    # Fixpoint iteration: the constraint graph may contain feedback cycles.
    # Each pass processes nodes in reverse topological order, which resolves
    # all forward chains in one pass; cycles converge in a few more (or the
    # loop's delay is insufficient, which verification reports separately).
    order = list(reversed(graph.topological_order()))
    limit = len(graph.nodes) + 8
    for _ in range(limit):
        changed = False
        for node in order:
            for edge in node.out_edges:
                if edge.push_rate == 0:
                    continue
                needed = u[edge.dst] * edge.pop_rate + _edge_extra(edge) - len(edge.initial)
                required = max(0, ceil(needed / edge.push_rate))
                if required > u[node]:
                    u[node] = required
                    changed = True
        if not changed:
            return u
    raise SchedulingError(
        "initialization schedule did not converge; a feedback loop's delay "
        "is too small for the lookahead it encloses"
    )


def _feasible_firings(node: FlatNode, occupancy: Dict[FlatEdge, int]) -> int:
    """How many consecutive firings the current occupancies allow."""
    best: int = 10**18
    for edge in node.in_edges:
        if edge.pop_rate == 0:
            continue
        usable = occupancy[edge] - _edge_extra(edge)
        best = min(best, max(0, usable // edge.pop_rate))
    return best


def _schedule_targets(
    graph: FlatGraph,
    targets: Dict[FlatNode, int],
    occupancy: Dict[FlatEdge, int],
    bounds: Dict[FlatEdge, int],
    what: str,
) -> List[Tuple[FlatNode, int]]:
    """Greedily order firings so every node reaches its target count.

    Repeated topological passes fire each node as often as its inputs
    currently allow; feedback loops thus interleave naturally (a joiner
    fires, the loop body runs, the returned items enable the next joiner
    firing).  Raises if no progress is possible — a startup deadlock.
    """
    topo = graph.topological_order()
    remaining = {node: targets.get(node, 0) for node in graph.nodes}
    phases: List[Tuple[FlatNode, int]] = []
    while True:
        pending = [n for n in topo if remaining[n] > 0]
        if not pending:
            return phases
        progress = False
        for node in pending:
            count = min(remaining[node], _feasible_firings(node, occupancy))
            if count <= 0:
                continue
            progress = True
            remaining[node] -= count
            if phases and phases[-1][0] is node:
                phases[-1] = (node, phases[-1][1] + count)
            else:
                phases.append((node, count))
            for edge in node.in_edges:
                occupancy[edge] -= count * edge.pop_rate
            for edge in node.out_edges:
                occupancy[edge] += count * edge.push_rate
                if occupancy[edge] > bounds[edge]:
                    bounds[edge] = occupancy[edge]
        if not progress:
            stuck = ", ".join(f"{n.name}({remaining[n]} left)" for n in pending[:4])
            raise SchedulingError(
                f"no valid {what} schedule: nodes cannot fire ({stuck}); a "
                "feedback loop's delay is too small for the lookahead it "
                "encloses"
            )


def build_schedule(graph: FlatGraph) -> ProgramSchedule:
    """Compute repetitions, init and steady schedules, and buffer bounds."""
    reps = repetitions(graph)
    u = init_counts(graph)

    occupancy: Dict[FlatEdge, int] = {e: len(e.initial) for e in graph.edges}
    bounds: Dict[FlatEdge, int] = dict(occupancy)
    init_phases = _schedule_targets(graph, u, occupancy, bounds, "initialization")
    steady_phases = _schedule_targets(graph, reps, occupancy, bounds, "steady-state")
    # Run one more abstract period: the steady schedule must be repeatable
    # from the post-period state (this also exposes the true buffer peak).
    check = dict(occupancy)
    for node, count in steady_phases:
        for edge in node.in_edges:
            need = count * edge.pop_rate + _edge_extra(edge)
            if check[edge] < need and edge.pop_rate > 0:
                raise SchedulingError(
                    f"steady schedule not repeatable at {node.name}: needs "
                    f"{need} items on {edge.src.name}->{edge.dst.name}, has "
                    f"{check[edge]}"
                )
            check[edge] -= count * edge.pop_rate
        for edge in node.out_edges:
            check[edge] += count * edge.push_rate
            if check[edge] > bounds[edge]:
                bounds[edge] = check[edge]

    return ProgramSchedule(
        graph=graph,
        reps=reps,
        init=Schedule(tuple(init_phases)),
        steady=Schedule(tuple(steady_phases)),
        buffer_bounds=bounds,
    )
