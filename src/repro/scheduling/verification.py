"""Program verification: deadlock and buffer-overflow detection.

The paper sketches two static checks built on the wavefront functions:

* **Deadlock detection** — a feedback loop neither deadlocks nor overflows
  iff the wavefront around the loop satisfies ``maxloop(x) = x + λ`` (with
  ``λ`` the declared delay).  ``maxloop(x) < x + λ`` means the loop starves;
  ``maxloop(x)`` growing faster than ``x`` means it accumulates.

* **Overflow detection** — the parallel branches of a split-join must have
  matched production rates: ``max[O1S->I1J](x) - max[O2S->I2J](x)`` must be
  ``O(1)`` in ``x``.

We implement both an *algebraic* form (exact rational steady-gain analysis
over the hierarchy) and an *operational* form (probing the simulation
oracle), and verify they agree in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    BufferOverflowError,
    DeadlockError,
    SchedulingError,
    ValidationError,
)
from repro.graph.base import Filter, Stream
from repro.graph.composites import FeedbackLoop, Pipeline, SplitJoin
from repro.graph.flatgraph import FlatGraph, FlatNode, flatten
from repro.scheduling.sdep import WavefrontOracle

OK = "ok"
DEADLOCK = "deadlock"
OVERFLOW = "overflow"


@dataclass(frozen=True)
class LoopVerdict:
    """Result of analysing one feedback loop."""

    loop: FeedbackLoop
    verdict: str
    detail: str


# ---------------------------------------------------------------------------
# Algebraic analysis: steady I/O gain of a (sub)stream
# ---------------------------------------------------------------------------


def steady_gain(stream: Stream) -> Fraction:
    """Items produced per item consumed in the steady state.

    Raises :class:`BufferOverflowError` if a split-join's branches have
    mismatched rates (one branch would outpace another without bound) and
    :class:`DeadlockError` if a feedback loop's internal rates cannot
    balance.  Only defined for streams that both consume and produce.
    """
    if isinstance(stream, Filter):
        if stream.rate.pop == 0 or stream.rate.push == 0:
            raise SchedulingError(
                f"steady_gain undefined for source/sink filter {stream.name}"
            )
        return Fraction(stream.rate.push, stream.rate.pop)

    if isinstance(stream, Pipeline):
        gain = Fraction(1)
        for child in stream.children():
            gain *= steady_gain(child)
        return gain

    if isinstance(stream, SplitJoin):
        ws = stream.split_weights()
        wj = stream.join_weights()
        split_in = stream.splitter.pop_per_cycle(stream.n_branches)
        join_out = stream.joiner.push_per_cycle(stream.n_branches)
        # Joiner cycles per splitter cycle, as demanded by each branch.
        ratios: List[Fraction] = []
        for i, child in enumerate(stream.children()):
            if ws[i] == 0 or wj[i] == 0:
                continue
            ratios.append(Fraction(ws[i]) * steady_gain(child) / Fraction(wj[i]))
        if not ratios:
            raise SchedulingError(f"split-join {stream.name} moves no data")
        first = ratios[0]
        for i, ratio in enumerate(ratios[1:], start=1):
            if ratio != first:
                raise BufferOverflowError(
                    f"split-join {stream.name}: branch production rates are "
                    f"unbalanced ({first} vs {ratio}); an internal buffer "
                    "grows without bound"
                )
        return first * Fraction(join_out, split_in)

    if isinstance(stream, FeedbackLoop):
        wj0, wj1 = stream.join_weights()
        ws0, ws1 = stream.split_weights()
        body_gain = steady_gain(stream.body)
        loop_gain = steady_gain(stream.loopback)
        join_out = stream.joiner.push_per_cycle(2)
        split_in = stream.splitter.pop_per_cycle(2)
        # Per j joiner cycles, the body sees j*join_out items, producing
        # j*join_out*body_gain; the splitter consumes split_in per cycle, so
        # it fires s = j*join_out*body_gain/split_in times, feeding the
        # loopback s*ws1 items which become s*ws1*loop_gain at the joiner's
        # loop input; steady state requires that to equal j*wj1.
        s_per_j = Fraction(join_out) * body_gain / Fraction(split_in)
        returned = s_per_j * ws1 * loop_gain
        if returned != wj1:
            if returned < wj1:
                raise DeadlockError(
                    f"feedback loop {stream.name}: the loop returns {returned} "
                    f"items per joiner cycle but the joiner consumes {wj1}; "
                    "the loop starves (deadlock)"
                )
            raise BufferOverflowError(
                f"feedback loop {stream.name}: the loop returns {returned} "
                f"items per joiner cycle but the joiner consumes {wj1}; the "
                "loopback buffer grows without bound"
            )
        if wj0 == 0 or ws0 == 0:
            raise SchedulingError(
                f"feedback loop {stream.name} exchanges no data externally"
            )
        return s_per_j * Fraction(ws0, wj0)

    raise SchedulingError(f"steady_gain: unknown stream type {type(stream)!r}")


# ---------------------------------------------------------------------------
# Operational analysis via the wavefront oracle
# ---------------------------------------------------------------------------


def analyze_feedback_loop(graph: FlatGraph, loop: FeedbackLoop) -> LoopVerdict:
    """Probe ``maxloop`` around one flattened feedback loop.

    With our tape-counting convention (initial delay items count toward a
    tape's total), the paper's ``maxloop(x) = x + λ`` health condition
    becomes: ``d(x) = maxloop(x) - x`` is a constant ``>= 0``.  ``d``
    decreasing in ``x`` (or negative) signals deadlock; ``d`` increasing
    signals unbounded accumulation.
    """
    joiner = next(
        n for n in graph.nodes if n.obj is loop and n.kind == "joiner"
    )
    o_fj = joiner.out_edges[0]
    i2 = joiner.in_edges[1]
    oracle = WavefrontOracle(graph)

    def maxloop(x: int) -> int:
        around = oracle.max_items(o_fj, i2, x)
        return oracle.max_items(i2, o_fj, around)

    # Probe at a few points past the loop's transient.
    base = max(4, loop.delay * 4, o_fj.push_rate * 8)
    probes = [base, base * 2, base * 4]
    diffs = [maxloop(x) - x for x in probes]
    if diffs[0] == diffs[1] == diffs[2] and diffs[0] >= 0:
        return LoopVerdict(loop, OK, f"maxloop(x) - x constant at {diffs[0]}")
    if diffs[-1] > diffs[0]:
        return LoopVerdict(
            loop, OVERFLOW, f"maxloop(x) - x grows: {diffs} at probes {probes}"
        )
    return LoopVerdict(
        loop, DEADLOCK, f"maxloop(x) - x shrinks or is negative: {diffs}"
    )


def splitjoin_drift(graph: FlatGraph, sj: SplitJoin, x: int) -> int:
    """Max difference in wavefront progress between any two branches.

    For a balanced split-join this is bounded in ``x`` (the paper's
    ``O(1)`` condition); for a mis-rated one it grows linearly.
    """
    splitter = next(n for n in graph.nodes if n.obj is sj and n.kind == "splitter")
    joiner = next(n for n in graph.nodes if n.obj is sj and n.kind == "joiner")
    oracle = WavefrontOracle(graph)
    progress = []
    for out_edge in splitter.out_edges:
        branch_port = out_edge.src_port
        in_edge = next(e for e in joiner.in_edges if e.dst_port == branch_port)
        supplied = oracle.max_items(splitter.in_edges[0], out_edge, x) if splitter.in_edges else x
        progress.append(oracle.max_items(out_edge, in_edge, supplied))
    return max(progress) - min(progress)


# ---------------------------------------------------------------------------
# Whole-program verification entry point
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VerificationReport:
    """Aggregated verdicts for a whole program."""

    loop_verdicts: Tuple[LoopVerdict, ...]
    ok: bool
    detail: str


def verify_program(stream: Stream) -> VerificationReport:
    """Run all static safety checks; never raises for unsafe programs.

    Returns a report whose ``ok`` flag is False when any feedback loop
    deadlocks/overflows or any split-join is rate-unbalanced.
    """
    problems: List[str] = []
    # Algebraic pass over the hierarchy.
    for sub in stream.streams():
        if isinstance(sub, (SplitJoin, FeedbackLoop)):
            try:
                steady_gain(sub)
            except (DeadlockError, BufferOverflowError) as exc:
                problems.append(str(exc))
            except SchedulingError:
                pass  # source/sink-like substream; no gain defined

    verdicts: List[LoopVerdict] = []
    if not problems:
        # Operational pass: only meaningful when rates balance.
        try:
            graph = flatten(stream)
            for sub in stream.streams():
                if isinstance(sub, FeedbackLoop):
                    verdict = analyze_feedback_loop(graph, sub)
                    verdicts.append(verdict)
                    if verdict.verdict != OK:
                        problems.append(
                            f"{sub.name}: {verdict.verdict} ({verdict.detail})"
                        )
            # Startup feasibility: rate-balanced loops can still deadlock if
            # the declared delay cannot prime the lookahead the loop encloses
            # (e.g. delay 0, or a peeking filter inside the loop body).
            from repro.scheduling.steady import build_schedule

            build_schedule(graph)
        except SchedulingError as exc:
            problems.append(f"startup deadlock: {exc}")
        except ValidationError as exc:
            # A cycle with no delay items can never fire at all.
            problems.append(f"startup deadlock: {exc}")

    return VerificationReport(
        loop_verdicts=tuple(verdicts),
        ok=not problems,
        detail="; ".join(problems) if problems else "all checks passed",
    )
