"""Information wavefronts: the ``max``/``min`` tape transfer functions.

For tapes ``a`` upstream of ``b`` the paper defines:

* ``max[a->b](x)`` — the maximum number of items that can appear on tape
  ``b`` given that ``x`` items (ever) appear on tape ``a``;
* ``min[a->b](x)`` — the minimum number of items that must appear on tape
  ``a`` for ``x`` items to appear on tape ``b``.

These compose over pipelines (Equation "compose" in the paper)::

    max[x->z] = max[y->z] . max[x->y]
    min[x->z] = min[x->y] . min[y->z]

This module provides both:

1. **Closed forms** — exact formulas for filters (the paper's expressions)
   and for splitters/joiners, plus composition.  One deliberate deviation:
   the paper's split/join formulas are written at *item* granularity, but
   (like the StreamIt compiler's schedulers) we treat a splitter/joiner
   firing as an atomic *cycle* — a round-robin splitter with weights ``w``
   consumes ``sum(w)`` items and distributes them in one step.  The closed
   forms here use cycle granularity so that they agree exactly with the
   execution model and with the simulation oracle.

2. A **simulation oracle** (:class:`WavefrontOracle`) — computes
   ``max``/``min`` for *any* pair of tapes in any graph (including the
   weighted round-robin and feedback cases the paper leaves open) by
   demand-driven abstract execution over channel occupancies.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, floor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.graph.flatgraph import FILTER, FlatEdge, FlatGraph, FlatNode
from repro.graph.splitjoin import DUPLICATE

# ---------------------------------------------------------------------------
# Closed forms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TransferFunction:
    """A pair of ``max``/``min`` maps across one graph region.

    ``max_fn(x)``: most items producible downstream given ``x`` upstream.
    ``min_fn(x)``: fewest items needed upstream for ``x`` downstream.
    Both are monotone non-decreasing over non-negative integers.
    """

    max_fn: Callable[[int], int]
    min_fn: Callable[[int], int]

    def max(self, x: int) -> int:
        return self.max_fn(x)

    def min(self, x: int) -> int:
        return self.min_fn(x)

    def then(self, downstream: "TransferFunction") -> "TransferFunction":
        """Sequential composition: ``self`` feeding into ``downstream``.

        Implements the paper's composition law:
        ``max = max_down . max_up`` and ``min = min_up . min_down``.
        """
        up, down = self, downstream
        return TransferFunction(
            max_fn=lambda x: down.max_fn(up.max_fn(x)),
            min_fn=lambda x: up.min_fn(down.min_fn(x)),
        )


def identity_tf() -> TransferFunction:
    """The transfer function of a wire (or Identity filter chain)."""
    return TransferFunction(lambda x: x, lambda x: x)


def filter_tf(peek: int, pop: int, push: int) -> TransferFunction:
    """The paper's closed forms for a single filter.

    ``max(x) = push * floor((x - (peek-pop)) / pop)`` for ``x >= peek-pop``
    (else 0), and ``min(x) = ceil(x / push) * pop + (peek - pop)``.

    Note the paper's ``min`` formula yields ``peek - pop`` at ``x == 0``;
    we follow the operational reading (0 items are needed to produce 0
    items) and return 0 there, which matches the oracle.
    """
    if pop <= 0 or push <= 0:
        raise SchedulingError("filter transfer functions require pop > 0 and push > 0")
    extra = peek - pop

    def max_fn(x: int) -> int:
        if x < extra:
            return 0
        return push * ((x - extra) // pop)

    def min_fn(x: int) -> int:
        if x <= 0:
            return 0
        return ceil(x / push) * pop + extra

    return TransferFunction(max_fn, min_fn)


def splitter_branch_tf(weights: Sequence[int], branch: int, duplicate: bool = False) -> TransferFunction:
    """Transfer function from a splitter's input to one output branch.

    Cycle granularity: one splitter firing consumes ``sum(weights)`` items
    (1 for duplicate) and pushes ``weights[branch]`` to the branch (1 for
    duplicate).
    """
    if duplicate:
        return identity_tf()
    w = tuple(weights)
    total = sum(w)
    wi = w[branch]
    if wi == 0:
        return TransferFunction(lambda x: 0, lambda x: 0 if x <= 0 else _INFEASIBLE)

    def max_fn(x: int) -> int:
        return (x // total) * wi

    def min_fn(x: int) -> int:
        if x <= 0:
            return 0
        return ceil(x / wi) * total

    return TransferFunction(max_fn, min_fn)


def joiner_branch_tf(weights: Sequence[int], branch: int, combine: bool = False) -> TransferFunction:
    """Transfer function from one joiner input branch to the joiner output.

    Cycle granularity: one joiner firing pops ``weights[branch]`` from the
    branch (1 for combine) and pushes ``sum(weights)`` items (1 for
    combine).  ``max`` here answers: with ``x`` items on *this* branch and
    unbounded items on the others, how many items can the joiner output?
    """
    if combine:
        return identity_tf()
    w = tuple(weights)
    total = sum(w)
    wi = w[branch]
    if wi == 0:
        return TransferFunction(lambda x: _INFEASIBLE, lambda x: 0)

    def max_fn(x: int) -> int:
        return (x // wi) * total

    def min_fn(x: int) -> int:
        if x <= 0:
            return 0
        return ceil(x / total) * wi

    return TransferFunction(max_fn, min_fn)


#: Sentinel for "no finite number of items suffices" (zero-weight branches).
_INFEASIBLE = 10**18


# ---------------------------------------------------------------------------
# Simulation oracle
# ---------------------------------------------------------------------------


class WavefrontOracle:
    """Computes ``max``/``min`` between arbitrary tapes by simulation.

    The oracle runs a demand-driven abstract execution over channel
    occupancies: to grow tape ``b`` it repeatedly tries to fire ``b``'s
    producer, recursively pulling items from upstream.  The producer of the
    seeded tape ``a`` is frozen, so ``a``'s content is exactly the given
    ``x``; all true sources fire on demand without bound.

    Initial delay items on tapes count toward their item totals, mirroring
    how :class:`~repro.runtime.channel.Channel` counts ``n(t)``.
    """

    def __init__(self, graph: FlatGraph, max_firings: int = 10_000_000) -> None:
        self.graph = graph
        self.max_firings = max_firings
        self._reach: Dict[FlatNode, frozenset] = {}
        self._max_cache: Dict[Tuple[int, int, int], int] = {}
        self._min_cache: Dict[Tuple[int, int, int], int] = {}
        self._reps: Optional[Dict[FlatNode, int]] = None

    def _period_items(self, tape: FlatEdge) -> Optional[int]:
        """Items pushed onto ``tape`` per steady-state period.

        Returns None for graphs with no periodic schedule (rate-imbalanced
        programs under verification) — callers then skip the periodic
        reduction and compute directly.
        """
        if self._reps is None:
            from repro.scheduling.rates import repetitions

            try:
                self._reps = repetitions(self.graph)
            except SchedulingError:
                self._reps = {}
        if not self._reps:
            return None
        return self._reps[tape.src] * tape.push_rate

    # -- reachability --------------------------------------------------------

    def downstream_nodes(self, node: FlatNode) -> frozenset:
        """All nodes reachable from ``node`` along data-flow edges."""
        cached = self._reach.get(node)
        if cached is not None:
            return cached
        seen = set()
        stack = [node]
        while stack:
            cur = stack.pop()
            for edge in cur.out_edges:
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    stack.append(edge.dst)
        result = frozenset(seen)
        self._reach[node] = result
        return result

    def is_upstream(self, a: FlatEdge, b: FlatEdge) -> bool:
        """True if tape ``a`` is upstream of tape ``b``."""
        return a is b or b.src in self.downstream_nodes(a.dst) or b.src is a.dst

    # -- max -----------------------------------------------------------------

    def max_items(self, a: FlatEdge, b: FlatEdge, x: int) -> int:
        """``max[a->b](x)``: most items ever on ``b`` given ``x`` ever on ``a``.

        ``x`` counts all items on ``a`` including any initial delay items.
        SDF steady-state periodicity makes the function affine beyond a
        short transient — ``max(x + k·P_a) = max(x) + k·P_b`` — which the
        oracle exploits to answer large-``x`` queries (e.g. message
        thresholds deep into a run) in amortized O(1).
        """
        if a is b:
            return x
        if not self.is_upstream(a, b):
            raise SchedulingError(
                f"max[a->b] undefined: {a!r} is not upstream of {b!r}"
            )
        key = (id(a), id(b), x)
        cached = self._max_cache.get(key)
        if cached is not None:
            return cached
        p_a = self._period_items(a)
        p_b = self._period_items(b)
        if p_a is not None and p_b is not None:
            transient = 8 * p_a + len(a.initial) + 64
            if x > transient:
                periods = (x - transient + p_a - 1) // p_a
                value = self.max_items(a, b, x - periods * p_a) + periods * p_b
                self._max_cache[key] = value
                return value
        value = self._max_items_direct(a, b, x)
        self._max_cache[key] = value
        return value

    def _max_items_direct(self, a: FlatEdge, b: FlatEdge, x: int) -> int:
        occ: Dict[FlatEdge, int] = {e: len(e.initial) for e in self.graph.edges}
        occ[a] = x
        produced_on_b = len(b.initial)
        frozen = a.src
        budget = [self.max_firings]

        # Fire b's producer as many times as possible.
        while self._try_fire(b.src, occ, frozen, budget, visiting=set()):
            produced_on_b += b.push_rate
        return produced_on_b

    def _try_fire(
        self,
        node: FlatNode,
        occ: Dict[FlatEdge, int],
        frozen: FlatNode,
        budget: List[int],
        visiting: set,
    ) -> bool:
        """Attempt to fire ``node`` once, pulling inputs recursively."""
        if node is frozen or node in visiting:
            return False
        if budget[0] <= 0:
            raise SchedulingError("wavefront oracle exceeded firing budget")
        visiting.add(node)
        try:
            for edge in node.in_edges:
                needed = edge.peek_rate
                while occ[edge] < needed:
                    if not self._try_fire(edge.src, occ, frozen, budget, visiting):
                        return False
        finally:
            visiting.discard(node)
        budget[0] -= 1
        for edge in node.in_edges:
            occ[edge] -= edge.pop_rate
        for edge in node.out_edges:
            occ[edge] += edge.push_rate
        return True

    # -- min -----------------------------------------------------------------

    def min_items(self, a: FlatEdge, b: FlatEdge, x: int) -> int:
        """``min[a->b](x)``: fewest items on ``a`` so ``x`` can appear on ``b``.

        Computed as the least ``y`` with ``max[a->b](y) >= x`` (both counts
        include initial delay items), by exponential + binary search over the
        monotone ``max``.
        """
        if a is b:
            return x
        if x <= len(b.initial):
            return 0
        key = (id(a), id(b), x)
        cached = self._min_cache.get(key)
        if cached is not None:
            return cached
        p_a = self._period_items(a)
        p_b = self._period_items(b)
        if p_a is not None and p_b is not None:
            transient = 8 * p_b + len(b.initial) + 64
            if x > transient:
                periods = (x - transient + p_b - 1) // p_b
                value = self.min_items(a, b, x - periods * p_b) + periods * p_a
                self._min_cache[key] = value
                return value
        lo, hi = 0, max(1, len(a.initial))
        while self.max_items(a, b, hi) < x:
            hi *= 2
            if hi > 10**12:
                raise SchedulingError(
                    f"min[a->b]({x}) infeasible: no amount of items on "
                    f"{a!r} yields {x} items on {b!r}"
                )
        while lo < hi:
            mid = (lo + hi) // 2
            if self.max_items(a, b, mid) >= x:
                hi = mid
            else:
                lo = mid + 1
        self._min_cache[key] = lo
        return lo


def output_tape(graph: FlatGraph, node: FlatNode) -> FlatEdge:
    """The (single) output tape of a filter node."""
    if len(node.out_edges) != 1:
        raise SchedulingError(f"{node.name} does not have a unique output tape")
    return node.out_edges[0]


def pipeline_tf(stages: Sequence[TransferFunction]) -> TransferFunction:
    """Compose a sequence of per-stage transfer functions, upstream first."""
    tf = identity_tf()
    for stage in stages:
        tf = tf.then(stage)
    return tf


def delivery_firings(
    threshold: Optional[int],
    produced: int,
    push: int,
    direction: str,
) -> int:
    """How many more firings of a message *receiver* are safe before its
    pending teleport message must be (re)checked for delivery.

    The batched engine fires a receiver ``k`` firings at a time; ``k`` must
    not step over the SDEP-derived delivery point.  ``threshold`` is the
    item count on the receiver's output tape at which the message is due
    (``None`` for best-effort: due immediately, so the step is a single
    firing), ``produced`` is ``pushed_count`` on that tape so far, and
    ``push`` the receiver's per-firing push rate.

    * ``downstream`` messages are delivered *before* the first firing whose
      completion would carry ``produced`` strictly past the threshold, so up
      to ``(threshold - produced) // push`` firings may run first.
    * ``upstream`` messages are delivered *after* the firing that reaches
      ``produced >= threshold`` — ``ceil((threshold - produced) / push)``
      firings away.

    Always returns at least 1 (the engine re-checks between steps; a filter
    that pushes nothing can never cross a threshold, so it runs one firing
    at a time under a pending message).
    """
    if threshold is None or push <= 0:
        return 1
    gap = threshold - produced
    if gap <= 0:
        return 1
    if direction == "downstream":
        return max(1, gap // push)
    return max(1, -(-gap // push))


def delivery_on_boundary(
    threshold: Optional[int],
    delivered_n: int,
    push: int,
    direction: str,
) -> bool:
    """Did a delivery land exactly on its SDEP boundary?

    ``delivered_n`` is the item count on the receiver's output tape at the
    moment the message was delivered.  Per the wavefront semantics:

    * ``downstream`` — delivery happens before the first firing that would
      push past ``threshold``: ``delivered_n <= threshold < delivered_n +
      push``;
    * ``upstream`` — delivery happens after the firing that reaches
      ``threshold``: ``delivered_n - push < threshold <= delivered_n``.

    Best-effort messages (``threshold is None``) have no boundary to land
    on; they are vacuously on time.  Observability uses this to cross-check
    recorded teleport latencies against the SDEP computation (ISSUE E12).
    """
    if threshold is None:
        return True
    if push <= 0:
        return delivered_n >= threshold if direction == "upstream" else True
    if direction == "downstream":
        return delivered_n <= threshold < delivered_n + push
    return delivered_n - push < threshold <= delivered_n
