"""Steady-state repetitions: the SDF balance equations.

For every channel ``src -> dst`` with per-firing production ``u`` and
consumption ``o``, a periodic (steady-state) schedule must fire the nodes
``r_src``/``r_dst`` times with ``r_src * u == r_dst * o``, so that channel
occupancy is unchanged over a period.  The minimal positive integer solution
is the *repetitions vector*.

The solver propagates exact rational rates over the edge constraints and
scales to the least integer solution, raising :class:`SchedulingError` on
inconsistent rates (a graph with no periodic schedule — e.g. a mis-weighted
split-join).
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd, lcm
from typing import Dict, List

from repro.errors import SchedulingError
from repro.graph.flatgraph import FlatGraph, FlatNode


def repetitions(graph: FlatGraph) -> Dict[FlatNode, int]:
    """Compute the minimal steady-state repetitions vector.

    Zero-rate edges impose no constraint.  If the nonzero-rate constraint
    graph is disconnected, each connected component is normalized
    independently (components exchange no data, so their relative rates are
    arbitrary; minimality per component is the canonical choice).
    """
    rate: Dict[FlatNode, Fraction] = {}
    components: List[List[FlatNode]] = []

    for start in graph.nodes:
        if start in rate:
            continue
        rate[start] = Fraction(1)
        component = [start]
        stack = [start]
        while stack:
            node = stack.pop()
            for edge in node.in_edges + node.out_edges:
                if edge.push_rate == 0 or edge.pop_rate == 0:
                    continue
                if edge.src is node:
                    other, implied = edge.dst, rate[node] * edge.push_rate / edge.pop_rate
                else:
                    other, implied = edge.src, rate[node] * edge.pop_rate / edge.push_rate
                if other in rate:
                    if rate[other] != implied:
                        raise SchedulingError(
                            f"inconsistent stream rates at {edge.src.name} -> "
                            f"{edge.dst.name}: no periodic schedule exists "
                            f"(expected rate {implied}, got {rate[other]})"
                        )
                else:
                    rate[other] = implied
                    component.append(other)
                    stack.append(other)
        components.append(component)

    result: Dict[FlatNode, int] = {}
    for component in components:
        denom_lcm = lcm(*(rate[n].denominator for n in component))
        ints = [int(rate[n] * denom_lcm) for n in component]
        g = gcd(*ints) if len(ints) > 1 else ints[0]
        for node, value in zip(component, ints):
            result[node] = value // g
    return result


def steady_state_items(graph: FlatGraph, reps: Dict[FlatNode, int]) -> Dict[object, int]:
    """Items flowing over each edge during one steady-state period."""
    return {edge: reps[edge.src] * edge.push_rate for edge in graph.edges}
