"""Compiled, batched execution of stream programs.

The scalar :class:`~repro.runtime.interpreter.Interpreter` walks its
schedule one firing at a time through per-firing dict lookups and
Python-list channels.  An :class:`ExecutionPlan` compiles the same
:class:`~repro.scheduling.steady.ProgramSchedule` into a preresolved firing
program executed over :class:`~repro.runtime.array_channel.ArrayChannel`
tapes:

* **executor arrays** — each schedule phase becomes a direct ``fire(n)``
  callable (no per-firing dict lookups, no messaging checks on the fast
  path; plans are only built when no portals are bound);
* **run-length batching** — consecutive firings of one node execute as a
  single ``work_batch(n)`` call when the filter supports it (linear
  filters, the overlap–save frequency filter, sources/sinks, data movers),
  falling back to a tight scalar ``work()`` loop otherwise;
* **splitter/joiner vectorization** — distribution cycles become
  reshape/interleave block copies instead of item loops;
* **period superbatching** — when the steady schedule is a pure topological
  pass (each node fires once, producers strictly before consumers — i.e. no
  feedback), ``P`` requested periods are folded into one pass with every
  firing count scaled by ``P`` (chunked so buffers stay bounded).  For a
  balanced SDF schedule this is safe: every consumer still sees its full
  input, and each node's firing order is unchanged, so outputs are
  identical to period-at-a-time execution.

The engine's output contract: identical items, in identical order, to the
scalar interpreter — bit-for-bit wherever the batched kernels preserve each
firing's floating-point operation order (all data movement, the
loop-sequential app filters, and the FFT filters do; ``LinearFilter``'s
GEMM may differ from ``n`` GEMVs in the last ulp).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import StreamItError
from repro.graph.flatgraph import FILTER, JOINER, SPLITTER, FlatNode
from repro.graph.splitjoin import COMBINE, DUPLICATE, NULL

#: Per-edge item cap for one superbatched chunk (512 KiB of float64).
_CHUNK_ITEM_CAP = 1 << 16


@dataclass
class CompiledPhase:
    """One entry of the preresolved firing program: fire ``node`` ``count``
    times per period via ``fire(count)``."""

    node: FlatNode
    count: int
    fire: Callable[[int], None]
    batched: bool


class ExecutionPlan:
    """The batched engine's compiled form of one interpreter's schedule."""

    def __init__(self, interp) -> None:
        self.graph = interp.graph
        self.channels = interp.channels
        self._executors: Dict[FlatNode, Tuple[Callable[[int], None], bool]] = {}
        self.init_phases = self._compile(interp.program.init)
        self.steady_phases = self._compile(interp.program.steady)
        self.superbatch = self._superbatch_ok()
        self.chunk_periods = self._chunk_periods(interp.program) if self.superbatch else 1

    # -- compilation ----------------------------------------------------------

    def _compile(self, schedule) -> List[CompiledPhase]:
        phases: List[CompiledPhase] = []
        for node, count in schedule:
            if phases and phases[-1].node is node:
                prev = phases[-1]
                phases[-1] = CompiledPhase(node, prev.count + count, prev.fire, prev.batched)
                continue
            fire, batched = self._executor(node)
            phases.append(CompiledPhase(node, count, fire, batched))
        return phases

    def _executor(self, node: FlatNode) -> Tuple[Callable[[int], None], bool]:
        if node not in self._executors:
            if node.kind == FILTER:
                self._executors[node] = self._filter_executor(node)
            elif node.kind == SPLITTER:
                self._executors[node] = self._splitter_executor(node)
            elif node.kind == JOINER:
                self._executors[node] = self._joiner_executor(node)
            else:
                raise StreamItError(f"unknown node kind {node.kind!r}")
        return self._executors[node]

    def _filter_executor(self, node: FlatNode) -> Tuple[Callable[[int], None], bool]:
        filt = node.filter
        if type(filt).supports_work_batch:
            return filt.work_batch, True

        work = filt.work

        def fire_scalar(n: int) -> None:
            for _ in range(n):
                work()

        return fire_scalar, False

    def _splitter_executor(self, node: FlatNode) -> Tuple[Callable[[int], None], bool]:
        if node.flavor == NULL:
            return (lambda n: None), True
        in_chan = self.channels[node.in_edges[0]]
        outs = [self.channels[e] for e in node.out_edges]
        if node.flavor == DUPLICATE:

            def fire_duplicate(n: int) -> None:
                block = in_chan.pop_block(n)
                for chan in outs:
                    chan.push_block(block)

            return fire_duplicate, True

        weights = [node.out_rates[e.src_port] for e in node.out_edges]
        total = node.in_rates[0]

        def fire_roundrobin(n: int) -> None:
            cycles = in_chan.pop_block(n * total).reshape(n, total)
            offset = 0
            for chan, w in zip(outs, weights):
                if w:
                    chan.push_block(cycles[:, offset : offset + w])
                offset += w

        return fire_roundrobin, True

    def _joiner_executor(self, node: FlatNode) -> Tuple[Callable[[int], None], bool]:
        if node.flavor == NULL:
            return (lambda n: None), True
        out_chan = self.channels[node.out_edges[0]]
        ins = [self.channels[e] for e in node.in_edges]
        if node.flavor == COMBINE:
            reducer = getattr(getattr(node.obj, "joiner", None), "reducer", None)
            if reducer is None:
                # The default reducer keeps the first branch's item.
                def fire_combine(n: int) -> None:
                    first = ins[0].pop_block(n)
                    for chan in ins[1:]:
                        chan.drop(n)
                    out_chan.push_block(first)

                return fire_combine, True

            def fire_combine_reduce(n: int) -> None:
                for _ in range(n):
                    out_chan.push(reducer([chan.pop() for chan in ins]))

            return fire_combine_reduce, False

        weights = [node.in_rates[e.dst_port] for e in node.in_edges]
        total = node.out_rates[0]

        def fire_roundrobin(n: int) -> None:
            cycles = np.empty((n, total))
            offset = 0
            for chan, w in zip(ins, weights):
                if w:
                    cycles[:, offset : offset + w] = chan.pop_block(n * w).reshape(n, w)
                offset += w
            out_chan.push_block(cycles)

        return fire_roundrobin, True

    # -- superbatch analysis --------------------------------------------------

    def _superbatch_ok(self) -> bool:
        """True when ``P`` periods may run as one pass with counts scaled.

        Requires the steady schedule to be a single topological sweep: each
        node fires in exactly one phase and every edge's producer phase
        precedes its consumer phase.  Then scaling all counts by ``P``
        leaves every firing's input window unchanged (producers complete
        before consumers start, and SDF balance holds per period), so
        outputs are identical.  Feedback loops interleave phases and are
        executed period-at-a-time instead.
        """
        position: Dict[FlatNode, int] = {}
        for i, phase in enumerate(self.steady_phases):
            if phase.node in position:
                return False
            position[phase.node] = i
        for edge in self.graph.edges:
            if edge.src not in position or edge.dst not in position:
                return False
            if position[edge.src] >= position[edge.dst]:
                return False
        return True

    def _chunk_periods(self, program) -> int:
        """Periods per superbatched pass, bounding per-edge buffer growth."""
        per_period = 1
        for edge in self.graph.edges:
            per_period = max(per_period, program.reps.get(edge.src, 0) * edge.push_rate)
        return max(1, _CHUNK_ITEM_CAP // per_period)

    # -- execution ------------------------------------------------------------

    def run_init(self, fired: Dict[FlatNode, int]) -> None:
        for phase in self.init_phases:
            phase.fire(phase.count)
            fired[phase.node] += phase.count

    def run_steady(self, fired: Dict[FlatNode, int], periods: int) -> None:
        if periods <= 0:
            return
        phases = self.steady_phases
        if self.superbatch:
            left = periods
            while left > 0:
                scale = min(left, self.chunk_periods)
                for phase in phases:
                    phase.fire(phase.count * scale)
                left -= scale
        else:
            for _ in range(periods):
                for phase in phases:
                    phase.fire(phase.count)
        for phase in phases:
            fired[phase.node] += phase.count * periods


def compile_and_run(stream, periods: int = 1, engine: str = "batched", check: bool = True):
    """Build an interpreter with the given engine, run it, return it.

    The one-call entry used by the benchmarks and examples::

        interp = compile_and_run(app, periods=1000)
        print(sink.collected[:8])
    """
    from repro.runtime.interpreter import Interpreter

    interp = Interpreter(stream, check=check, engine=engine)
    interp.run(periods)
    return interp
