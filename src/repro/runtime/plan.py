"""Compiled, batched execution of stream programs.

The scalar :class:`~repro.runtime.interpreter.Interpreter` walks its
schedule one firing at a time through per-firing dict lookups and
Python-list channels.  An :class:`ExecutionPlan` compiles the same
:class:`~repro.scheduling.steady.ProgramSchedule` into a preresolved firing
program executed over :class:`~repro.runtime.array_channel.ArrayChannel`
tapes:

* **executor arrays** — each schedule phase becomes a direct ``fire(n)``
  callable (no per-firing dict lookups, no messaging checks on the fast
  path);
* **run-length batching** — consecutive firings of one node execute as a
  single ``work_batch(n)`` call when the filter provides one, as a
  *generically lifted* vector kernel when
  :mod:`~repro.runtime.vectorize` proves the filter stateless, and as a
  hoisted-I/O ``work()`` loop otherwise;
* **splitter/joiner vectorization** — distribution cycles become
  reshape/interleave block copies instead of item loops;
* **operator fusion** — maximal chains of adjacent single-input/
  single-output fire-nodes execute back to back through private
  :class:`_FusionTape` scratch channels that *adopt* each stage's output
  array (zero-copy handoff, no slide-to-front compaction, no per-stage
  ArrayChannel traffic on the real graph edges);
* **period superbatching** — when the steady schedule is a pure topological
  pass (each node fires once, producers strictly before consumers — i.e. no
  feedback), ``P`` requested periods are folded into one pass with every
  firing count scaled by ``P`` (chunked so buffers stay bounded);
* **segmented superbatching** — when feedback *does* interleave the
  schedule, the feedforward prefix (nodes that fire once per period and
  consume only from earlier prefix nodes) and suffix (nodes that fire once
  and feed only later suffix nodes) still superbatch at full chunk scale;
  only the cyclic core iterates period-at-a-time.  Data always flows
  forward, so running the prefix ``P`` periods ahead merely buffers more,
  and the suffix drains exactly what the core produced;
* **batched teleport messaging** — portal-bound programs run
  period-at-a-time with sender firings interleaved with delivery checks and
  receiver batches split exactly at the SDEP-derived delivery points
  (:meth:`~repro.runtime.messaging.PendingMessage.firings_until_due`), so
  message timing is identical to the scalar engine's per-firing semantics;
* **plan caching** — the schedule/fusion/superbatch analysis is memoized on
  a structural graph signature, so repeated ``Interpreter`` constructions
  over the same program shape (the bench harness, parameter sweeps) skip
  recompilation.

The engine's output contract: identical items, in identical order, to the
scalar interpreter — bit-for-bit wherever the batched kernels preserve each
firing's floating-point operation order (all data movement, the
loop-sequential app filters, the generic lifter, and the FFT filters do;
``LinearFilter``'s GEMM may differ from ``n`` GEMVs in the last ulp).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StreamItError
from repro.graph.flatgraph import FILTER, JOINER, SPLITTER, FlatGraph, FlatNode
from repro.graph.splitjoin import COMBINE, DUPLICATE, NULL
from repro.runtime.array_channel import ArrayChannel
from repro.runtime.channel import ChannelUnderflow
from repro.runtime.messaging import Portal
from repro.runtime.vectorize import BatchExecutor

#: Per-edge item cap for one superbatched chunk (512 KiB of float64).
_CHUNK_ITEM_CAP = 1 << 16


# -- node executors ----------------------------------------------------------
#
# Module-level factories so both an ExecutionPlan and the parallel runtime's
# workers (which execute plan subgraphs over mixed ArrayChannel/RingChannel
# maps) compile the same batched ``fire(n)`` callables.


def make_filter_executor(
    node: FlatNode, allow_trusted: bool = True
) -> Tuple[Callable[[int], None], bool]:
    filt = node.filter
    if type(filt).supports_work_batch:
        return filt.work_batch, True
    # Teleport receivers mutate configuration attributes at delivery
    # points, so a build-time static proof cannot speak for every batch:
    # they must earn lifting through the empirical trial instead.
    return BatchExecutor(filt, allow_trusted=allow_trusted), True


def make_splitter_executor(
    node: FlatNode, channels: Dict[object, object]
) -> Tuple[Callable[[int], None], bool]:
    if node.flavor == NULL:
        return (lambda n: None), True
    in_chan = channels[node.in_edges[0]]
    outs = [channels[e] for e in node.out_edges]
    if node.flavor == DUPLICATE:

        def fire_duplicate(n: int) -> None:
            block = in_chan.pop_block(n)
            for chan in outs:
                chan.push_block(block)

        return fire_duplicate, True

    weights = [node.out_rates[e.src_port] for e in node.out_edges]
    total = node.in_rates[0]

    def fire_roundrobin(n: int) -> None:
        cycles = in_chan.pop_block(n * total).reshape(n, total)
        offset = 0
        for chan, w in zip(outs, weights):
            if w:
                chan.push_block(cycles[:, offset : offset + w])
            offset += w

    return fire_roundrobin, True


def make_joiner_executor(
    node: FlatNode, channels: Dict[object, object]
) -> Tuple[Callable[[int], None], bool]:
    if node.flavor == NULL:
        return (lambda n: None), True
    out_chan = channels[node.out_edges[0]]
    ins = [channels[e] for e in node.in_edges]
    if node.flavor == COMBINE:
        reducer = getattr(getattr(node.obj, "joiner", None), "reducer", None)
        if reducer is None:
            # The default reducer keeps the first branch's item.
            def fire_combine(n: int) -> None:
                first = ins[0].pop_block(n)
                for chan in ins[1:]:
                    chan.drop(n)
                out_chan.push_block(first)

            return fire_combine, True

        def fire_combine_reduce(n: int) -> None:
            for _ in range(n):
                out_chan.push(reducer([chan.pop() for chan in ins]))

        return fire_combine_reduce, False

    weights = [node.in_rates[e.dst_port] for e in node.in_edges]
    total = node.out_rates[0]

    def fire_roundrobin(n: int) -> None:
        cycles = np.empty((n, total))
        offset = 0
        for chan, w in zip(ins, weights):
            if w:
                cycles[:, offset : offset + w] = chan.pop_block(n * w).reshape(n, w)
            offset += w
        out_chan.push_block(cycles)

    return fire_roundrobin, True


def make_node_executor(
    node: FlatNode,
    channels: Dict[object, object],
    allow_trusted: bool = True,
) -> Tuple[Callable[[int], None], bool]:
    """Batched ``(fire, batched)`` executor for any node kind."""
    if node.kind == FILTER:
        return make_filter_executor(node, allow_trusted)
    if node.kind == SPLITTER:
        return make_splitter_executor(node, channels)
    if node.kind == JOINER:
        return make_joiner_executor(node, channels)
    raise StreamItError(f"unknown node kind {node.kind!r}")


def single_topological_sweep(graph: FlatGraph, schedule) -> bool:
    """True when the schedule is one topological pass over the graph.

    Each node's firings must be contiguous (a single run in the phase
    sequence) and every edge's producer run must precede its consumer run.
    This is the legality condition for both period superbatching and for
    batched teleport messaging (a sender's phase then strictly separates
    the receiver firings before and after it, so delivery points can be
    computed per phase instead of per firing).
    """
    position: Dict[FlatNode, int] = {}
    last: Optional[FlatNode] = None
    for node, _count in schedule:
        if node is last:
            continue
        if node in position:
            return False
        position[node] = len(position)
        last = node
    for edge in graph.edges:
        if edge.src not in position or edge.dst not in position:
            return False
        if position[edge.src] >= position[edge.dst]:
            return False
    return True


# -- plan cache -------------------------------------------------------------

#: signature -> analysis dict; see :func:`_analyze`.
_PLAN_CACHE: "OrderedDict[tuple, dict]" = OrderedDict()
_PLAN_CACHE_MAX = 128

#: Cumulative cache statistics (for tests and diagnostics); increments
#: mirror into the always-on metrics registry as repro_plan_cache_total.
from repro.obs.metrics import METRICS as _METRICS
from repro.obs.metrics import MeteredStats as _MeteredStats

plan_cache_stats = _MeteredStats(
    _METRICS.counter(
        "repro_plan_cache_total", "Plan-analysis cache events (hit/miss/eviction)"
    ),
    lambda key: {"event": key},
    {"hits": 0, "misses": 0, "evictions": 0},
)


def clear_plan_cache() -> None:
    _PLAN_CACHE.clear()
    plan_cache_stats["hits"] = 0
    plan_cache_stats["misses"] = 0
    plan_cache_stats["evictions"] = 0


def plan_cache_summary() -> Dict[str, int]:
    """Counters plus current size/bound of the in-memory analysis cache."""
    summary: Dict[str, int] = dict(plan_cache_stats)
    summary["size"] = len(_PLAN_CACHE)
    summary["max"] = _PLAN_CACHE_MAX
    return summary


def _plan_signature(graph: FlatGraph, program, senders, receivers) -> tuple:
    """Structural fingerprint of (graph, schedule, messaging endpoints).

    Two programs with the same signature have identical plan *shape* —
    phases, fusion chains, superbatch legality — even though they are built
    from distinct filter instances, so the analysis is reusable.
    """
    index = {node: i for i, node in enumerate(graph.nodes)}
    nodes = tuple(
        (
            n.kind,
            n.flavor,
            type(n.obj).__qualname__ if n.obj is not None else None,
            n.in_rates,
            n.out_rates,
            n.peek_extra,
        )
        for n in graph.nodes
    )
    edges = tuple(
        (index[e.src], e.src_port, index[e.dst], e.dst_port, len(e.initial))
        for e in graph.edges
    )
    init = tuple((index[n], c) for n, c in program.init)
    steady = tuple((index[n], c) for n, c in program.steady)
    msg = (
        tuple(sorted(index[n] for n in senders)),
        tuple(sorted(index[n] for n in receivers)),
    )
    return (nodes, edges, init, steady, msg)


# -- fusion scratch tapes ----------------------------------------------------


class _FusionTape(ArrayChannel):
    """Private channel between fused stages: adopts pushed arrays zero-copy.

    A fused chain is balanced and starts empty, so every stage's entire
    output is consumed by the next stage within the same composite firing —
    the pushed block can simply *become* the buffer instead of being copied
    into one.
    """

    __slots__ = ()

    def push_block(self, block: np.ndarray) -> None:
        if self._head == self._tail:
            self.adopt_block(block)
        else:
            ArrayChannel.push_block(self, block)


@dataclass
class CompiledPhase:
    """One entry of the preresolved firing program: fire ``node`` ``count``
    times per period via ``fire(count)``."""

    node: FlatNode
    count: int
    fire: Callable[[int], None]
    batched: bool

    def run(self, scale: int) -> None:
        self.fire(self.count * scale)

    @property
    def accounting(self) -> Tuple[Tuple[FlatNode, int], ...]:
        return ((self.node, self.count),)


class FusedPhase:
    """A maximal chain of adjacent SISO fire-nodes run as one composite.

    ``run(scale)`` rebinds each stage filter's channels so intermediate
    results flow through :class:`_FusionTape` scratch tapes instead of the
    real graph edges (whose history counters are bumped afterwards so
    introspection still sees every item)."""

    __slots__ = ("stages", "_tapes", "_bumps")

    def __init__(self, stages: Sequence[CompiledPhase], channels) -> None:
        self.stages: Tuple[CompiledPhase, ...] = tuple(stages)
        self._tapes = [
            _FusionTape(name=f"fused:{st.node.name}") for st in self.stages[:-1]
        ]
        # Real channels bypassed by the chain: (channel, items per period).
        self._bumps = [
            (channels[st.node.out_edges[0]], st.count * st.node.out_edges[0].push_rate)
            for st in self.stages[:-1]
        ]

    @property
    def node(self) -> FlatNode:
        return self.stages[0].node

    @property
    def count(self) -> int:
        return self.stages[0].count

    @property
    def accounting(self) -> Tuple[Tuple[FlatNode, int], ...]:
        return tuple((st.node, st.count) for st in self.stages)

    def run(self, scale: int) -> None:
        stages = self.stages
        tapes = self._tapes
        last = len(stages) - 1
        for i, st in enumerate(stages):
            filt = st.node.filter
            old_in, old_out = filt.input, filt.output
            if i:
                filt.input = tapes[i - 1]
            if i < last:
                filt.output = tapes[i]
            try:
                st.fire(st.count * scale)
            finally:
                filt.input = old_in
                filt.output = old_out
        for chan, per_period in self._bumps:
            items = per_period * scale
            chan.pushed_count += items
            chan.popped_count += items


class _LTape:
    """Plain-list FIFO used inside a :class:`CoreLoopRunner` chunk.

    ``items``/``cursor`` instead of head-sliced lists: a pop is one index
    increment, a push one ``list.append`` — the cheapest per-item operations
    CPython offers.  Values stay Python floats, so arithmetic matches the
    scalar engine bit-for-bit.
    """

    __slots__ = ("name", "items", "cursor")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.items: List[float] = []
        self.cursor = 0

    def pop(self) -> float:
        c = self.cursor
        if c >= len(self.items):
            raise ChannelUnderflow(f"pop on empty core tape {self.name!r}")
        self.cursor = c + 1
        return self.items[c]

    def peek(self, index: int) -> float:
        j = self.cursor + index
        if index < 0 or j >= len(self.items):
            raise ChannelUnderflow(f"peek({index}) beyond core tape {self.name!r}")
        return self.items[j]

    def push(self, item: float) -> None:
        self.items.append(item)

    def compact(self) -> None:
        if self.cursor:
            del self.items[: self.cursor]
            self.cursor = 0


class CoreLoopRunner:
    """Executes a cyclic schedule core over hoisted Python-list tapes.

    The cyclic core of a feedback-interleaved schedule fires each node ~once
    per period, where block-kernel setup costs more than it saves.  Instead
    of per-firing ArrayChannel traffic, one ``run(scale)`` call moves all
    channel I/O to plain lists for the whole chunk:

    * edges internal to the core become persistent :class:`_LTape` scratch
      tapes (seeded once by detaching the post-init channel contents);
    * external inputs are snapshot to a list per chunk, and exactly the
      consumed prefix is dropped from the real channel afterwards;
    * external outputs accumulate in a list and land as one ``push_block``;
    * the flattened per-period op sequence — bound ``work`` methods and
      closure splitters/joiners — runs ``scale`` times in a tight loop.

    Firing order inside a period is exactly the steady schedule's, and every
    item round-trips through Python floats, so results are bit-identical to
    the scalar engine.  History counters of bypassed internal edges are
    bumped in bulk (the :class:`FusedPhase` convention).
    """

    def __init__(self, phases: Sequence[Tuple[FlatNode, int]], channels) -> None:
        self.phases: Tuple[Tuple[FlatNode, int], ...] = tuple(phases)
        self.channels = channels
        self.nodes = {node for node, _ in self.phases}
        self._ops: Optional[Tuple[Callable[[], None], ...]] = None

    # -- compilation (lazy: runs after init, when channels hold real state) --

    def _tape_for(self, edge) -> _LTape:
        tape = self._tapes.get(edge)
        if tape is None:
            tape = _LTape(f"core:{edge.src.name}->{edge.dst.name}")
            self._tapes[edge] = tape
        return tape

    def _build(self) -> None:
        self._tapes: Dict[object, _LTape] = {}
        internal, ext_in, ext_out = [], [], []
        counts: Dict[FlatNode, int] = {}
        for node, count in self.phases:
            counts[node] = counts.get(node, 0) + count
        seen = set()
        for node in self.nodes:
            for edge in list(node.in_edges) + list(node.out_edges):
                if edge in seen:
                    continue
                seen.add(edge)
                inside_src = edge.src in self.nodes
                inside_dst = edge.dst in self.nodes
                if inside_src and inside_dst:
                    internal.append(edge)
                elif inside_dst:
                    ext_in.append(edge)
                elif inside_src:
                    ext_out.append(edge)
        # Internal tapes inherit the live post-init channel contents
        # (feedback delay items); the channels stay empty from here on,
        # with their history counters bumped in bulk per chunk.
        for edge in internal:
            tape = self._tape_for(edge)
            tape.items = self.channels[edge].detach_all()
        self._ext_in = [(self.channels[e], self._tape_for(e)) for e in ext_in]
        self._ext_out = [(self.channels[e], self._tape_for(e)) for e in ext_out]
        self._internal = [self._tapes[e] for e in internal]
        self._bumps = [
            (self.channels[e], counts[e.src] * e.push_rate) for e in internal
        ]
        bind, restore = [], []
        for node in self.nodes:
            if node.kind != FILTER:
                continue
            filt = node.filter
            tin = self._tape_for(node.in_edges[0]) if node.in_edges else None
            tout = self._tape_for(node.out_edges[0]) if node.out_edges else None
            cin = self.channels[node.in_edges[0]] if node.in_edges else None
            cout = self.channels[node.out_edges[0]] if node.out_edges else None
            bind.append((filt, tin, tout))
            restore.append((filt, cin, cout))
        self._bind = bind
        self._restore = restore
        ops: List[Callable[[], None]] = []
        for node, count in self.phases:
            op = self._node_op(node)
            ops.extend([op] * count)
        self._ops = tuple(ops)

    def _node_op(self, node: FlatNode) -> Callable[[], None]:
        if node.kind == FILTER:
            return node.filter.work
        if node.flavor == NULL:
            return lambda: None
        if node.kind == SPLITTER:
            tin = self._tape_for(node.in_edges[0])
            outs = [self._tape_for(e) for e in node.out_edges]
            if node.flavor == DUPLICATE:

                def fire_duplicate() -> None:
                    item = tin.pop()
                    for t in outs:
                        t.items.append(item)

                return fire_duplicate
            weights = [node.out_rates[e.src_port] for e in node.out_edges]
            pairs = [(t, w) for t, w in zip(outs, weights) if w]

            def fire_split() -> None:
                for t, w in pairs:
                    if w == 1:
                        t.items.append(tin.pop())
                    else:
                        for _ in range(w):
                            t.items.append(tin.pop())

            return fire_split
        # Joiner.
        tout = self._tape_for(node.out_edges[0])
        ins = [self._tape_for(e) for e in node.in_edges]
        if node.flavor == COMBINE:
            reducer = getattr(getattr(node.obj, "joiner", None), "reducer", None)
            if reducer is None:
                reducer = lambda items: items[0]

            def fire_combine() -> None:
                tout.items.append(reducer([t.pop() for t in ins]))

            return fire_combine
        weights = [node.in_rates[e.dst_port] for e in node.in_edges]
        pairs = [(t, w) for t, w in zip(ins, weights) if w]

        def fire_join() -> None:
            for t, w in pairs:
                if w == 1:
                    tout.items.append(t.pop())
                else:
                    for _ in range(w):
                        tout.items.append(t.pop())

        return fire_join

    # -- execution -----------------------------------------------------------

    def run(self, scale: int) -> None:
        if self._ops is None:
            self._build()
        for chan, tape in self._ext_in:
            tape.items = chan.peek_block(len(chan)).tolist()
            tape.cursor = 0
        for filt, tin, tout in self._bind:
            filt.input = tin
            filt.output = tout
        try:
            ops = self._ops
            for _ in range(scale):
                for op in ops:
                    op()
        finally:
            for filt, cin, cout in self._restore:
                filt.input = cin
                filt.output = cout
        for chan, tape in self._ext_in:
            if tape.cursor:
                chan.drop(tape.cursor)
        for chan, tape in self._ext_out:
            if tape.items:
                chan.push_block(np.asarray(tape.items, dtype=np.float64))
                tape.items = []
        for tape in self._internal:
            tape.compact()
        for chan, per_period in self._bumps:
            moved = per_period * scale
            chan.pushed_count += moved
            chan.popped_count += moved


class ExecutionPlan:
    """The batched engine's compiled form of one interpreter's schedule."""

    def __init__(self, interp) -> None:
        self.interp = interp
        self.graph = interp.graph
        self.channels = interp.channels
        self.messaging = interp.has_messaging
        self._senders, self._receivers = self._messaging_endpoints(interp)
        self._executors: Dict[FlatNode, Tuple[Callable[[int], None], bool]] = {}

        program = interp.program
        signature = _plan_signature(
            self.graph, program, self._senders, self._receivers
        )
        analysis = _PLAN_CACHE.get(signature)
        if analysis is not None:
            plan_cache_stats["hits"] += 1
            _PLAN_CACHE.move_to_end(signature)
        else:
            plan_cache_stats["misses"] += 1
        #: This plan's cache outcome + the cumulative counters at build time.
        self.cache_stats = {
            "hit": analysis is not None,
            "hits": plan_cache_stats["hits"],
            "misses": plan_cache_stats["misses"],
        }
        tracer = getattr(interp, "tracer", None)
        if tracer is not None and tracer.enabled:
            from repro.obs.tracer import CAT_PLAN

            tracer.instant(
                "plan.cache_hit" if self.cache_stats["hit"] else "plan.cache_miss",
                CAT_PLAN,
                args=dict(self.cache_stats),
            )

        self.init_phases = self._compile(program.init)
        steady = self._compile(program.steady)
        if analysis is None:
            analysis = self._analyze(program, steady)
            _PLAN_CACHE[signature] = analysis
            while len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
                _PLAN_CACHE.popitem(last=False)
                plan_cache_stats["evictions"] += 1
        self.single_sweep: bool = analysis["single_sweep"]
        self.superbatch: bool = analysis["superbatch"]
        self.chunk_periods: int = analysis["chunk_periods"]
        self.fusion_ranges: Tuple[Tuple[int, int], ...] = analysis["fusion_ranges"]
        self.steady_phases = self._apply_fusion(steady, self.fusion_ranges)
        self.segments = self._build_segments(
            steady, analysis["segments_idx"], analysis.get("segmented", False)
        )

    # -- messaging endpoints --------------------------------------------------

    @staticmethod
    def _messaging_endpoints(interp):
        senders = set()
        receivers = set()
        for portal in getattr(interp, "_portals", ()):
            for recv in portal.receivers:
                receivers.add(interp.graph.node_for(recv))
        for node in interp.graph.filter_nodes():
            if any(isinstance(v, Portal) for v in vars(node.filter).values()):
                senders.add(node)
        return senders, receivers

    # -- compilation ----------------------------------------------------------

    def _compile(self, schedule) -> List[CompiledPhase]:
        phases: List[CompiledPhase] = []
        for node, count in schedule:
            if phases and phases[-1].node is node:
                prev = phases[-1]
                phases[-1] = CompiledPhase(node, prev.count + count, prev.fire, prev.batched)
                continue
            fire, batched = self._executor(node)
            phases.append(CompiledPhase(node, count, fire, batched))
        return phases

    def _executor(self, node: FlatNode) -> Tuple[Callable[[int], None], bool]:
        if node not in self._executors:
            self._executors[node] = make_node_executor(
                node, self.channels, allow_trusted=node not in self._receivers
            )
        return self._executors[node]

    def vectorization_report(self) -> Dict[str, Dict[str, object]]:
        """Per-filter executor outcome: mode, trust, and downgrade reason.

        Executors resolve lazily, so entries show ``"untried"`` until the
        plan has run at least once.
        """
        report: Dict[str, Dict[str, object]] = {}
        for node, (fire, _batched) in self._executors.items():
            if node.kind != FILTER:
                continue
            if isinstance(fire, BatchExecutor):
                downgrade = fire.downgrade
                report[node.name] = {
                    "kind": fire.kind,
                    "trusted": fire.trusted,
                    "code": downgrade.code if downgrade is not None else None,
                    "reason": downgrade.message if downgrade is not None else None,
                }
            else:
                report[node.name] = {
                    "kind": "work_batch",
                    "trusted": True,
                    "code": None,
                    "reason": None,
                }
        return report

    # -- analysis -------------------------------------------------------------

    def _analyze(self, program, steady: List[CompiledPhase]) -> dict:
        single_sweep = single_topological_sweep(self.graph, program.steady)
        superbatch = single_sweep and not self.messaging
        segmented = False
        if single_sweep:
            segments_idx = ((), ())
            fusion_ranges = self._fusion_ranges(steady, program.init.counts())
        elif not self.messaging:
            segments_idx = self._segment_sets()
            fusion_ranges = ()
            segmented = True
        else:
            segments_idx = ((), ())
            fusion_ranges = ()
        return {
            "single_sweep": single_sweep,
            "superbatch": superbatch,
            "chunk_periods": self._chunk_periods(program)
            if not self.messaging
            else 1,
            "segments_idx": segments_idx,
            "segmented": segmented,
            "fusion_ranges": fusion_ranges,
        }

    def _segment_sets(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Partition nodes of a feedback-interleaved program into segments.

        Returns node-index tuples ``(prefix, suffix)``.  The *prefix* is the
        upstream-closed set of nodes with no ancestor inside a cycle; the
        *suffix* is the downstream-closed set (minus the prefix) with no
        descendant inside a cycle.  Data only flows forward, so hoisting all
        prefix firings of a chunk before the cyclic core — and deferring all
        suffix firings after it — never underflows a channel: consumers only
        ever see *more* items available than in the interleaved order.
        """
        nodes = list(self.graph.nodes)
        prefix: set = set()
        changed = True
        while changed:
            changed = False
            for node in nodes:
                if node not in prefix and all(
                    e.src in prefix for e in node.in_edges
                ):
                    prefix.add(node)
                    changed = True
        suffix: set = set()
        changed = True
        while changed:
            changed = False
            for node in nodes:
                if (
                    node not in prefix
                    and node not in suffix
                    and all(e.dst in suffix for e in node.out_edges)
                ):
                    suffix.add(node)
                    changed = True
        index = {node: i for i, node in enumerate(nodes)}
        return (
            tuple(sorted(index[n] for n in prefix)),
            tuple(sorted(index[n] for n in suffix)),
        )

    def _build_segments(
        self,
        steady: List[CompiledPhase],
        segments_idx: Tuple[Tuple[int, ...], Tuple[int, ...]],
        segmented: bool,
    ) -> Optional[Tuple[List[CompiledPhase], CoreLoopRunner, List[CompiledPhase]]]:
        """Materialize ``(prefix, core, suffix)`` from the cached node-index
        sets: batched phase lists for the feedforward segments (aggregated
        per-period firings, topologically ordered within the segment), and a
        :class:`CoreLoopRunner` for the cyclic core."""
        pre_idx, suf_idx = segments_idx
        if not segmented:
            return None
        nodes = list(self.graph.nodes)
        pre_set = {nodes[i] for i in pre_idx}
        suf_set = {nodes[i] for i in suf_idx}

        def aggregate(members: set) -> List[CompiledPhase]:
            counts: Dict[FlatNode, int] = {}
            for ph in steady:
                if ph.node in members:
                    counts[ph.node] = counts.get(ph.node, 0) + ph.count
            # Kahn topological order over the segment's internal edges.
            indeg = {
                n: sum(1 for e in n.in_edges if e.src in members) for n in counts
            }
            ready = [n for n in nodes if n in counts and indeg[n] == 0]
            ordered: List[FlatNode] = []
            while ready:
                node = ready.pop(0)
                ordered.append(node)
                for e in node.out_edges:
                    if e.dst in indeg:
                        indeg[e.dst] -= 1
                        if indeg[e.dst] == 0:
                            ready.append(e.dst)
            phases = []
            for node in ordered:
                fire, batched = self._executor(node)
                phases.append(CompiledPhase(node, counts[node], fire, batched))
            return phases

        # Core phases fire at n≈1 each period, where block-kernel setup costs
        # more than it saves — run the whole cyclic core over hoisted list
        # tapes instead (one I/O transfer per chunk, not per firing).
        core_phases = [
            (ph.node, ph.count)
            for ph in steady
            if ph.node not in pre_set and ph.node not in suf_set
        ]
        core = CoreLoopRunner(core_phases, self.channels)
        return aggregate(pre_set), core, aggregate(suf_set)

    def _fusion_ranges(
        self, phases: List[CompiledPhase], init_counts: Dict[FlatNode, int]
    ) -> Tuple[Tuple[int, int], ...]:
        """Maximal fusable runs ``(start, end)`` (inclusive) over ``phases``.

        Stage ``u`` links to the next phase ``v`` when the pair forms an
        exclusive producer→consumer couple whose intermediate tape starts
        empty after init and is exactly drained each period — then ``v`` can
        read ``u``'s output straight off a scratch tape.  Splitters, joiners,
        peeking consumers, and messaging endpoints break chains.
        """

        def fusable(ph: CompiledPhase) -> bool:
            node = ph.node
            return (
                node.kind == FILTER
                and node not in self._senders
                and node not in self._receivers
            )

        def links(u: CompiledPhase, v: CompiledPhase) -> bool:
            if not (fusable(u) and fusable(v)):
                return False
            nu, nv = u.node, v.node
            if len(nu.out_edges) != 1 or len(nv.in_edges) != 1:
                return False
            e = nu.out_edges[0]
            if e.dst is not nv or e.push_rate <= 0 or e.pop_rate <= 0:
                return False
            if e.peek_rate != e.pop_rate:
                return False
            if u.count * e.push_rate != v.count * e.pop_rate:
                return False
            occupancy = (
                len(e.initial)
                + init_counts.get(nu, 0) * e.push_rate
                - init_counts.get(nv, 0) * e.pop_rate
            )
            return occupancy == 0

        ranges: List[Tuple[int, int]] = []
        i = 0
        while i < len(phases) - 1:
            j = i
            while j + 1 < len(phases) and links(phases[j], phases[j + 1]):
                j += 1
            if j > i:
                ranges.append((i, j))
            i = j + 1 if j > i else i + 1
        return tuple(ranges)

    def _apply_fusion(
        self, phases: List[CompiledPhase], ranges: Tuple[Tuple[int, int], ...]
    ) -> List[object]:
        if not ranges:
            return list(phases)
        out: List[object] = []
        pos = 0
        for start, end in ranges:
            out.extend(phases[pos:start])
            out.append(FusedPhase(phases[start : end + 1], self.channels))
            pos = end + 1
        out.extend(phases[pos:])
        return out

    @property
    def certified_regions(self) -> List[Tuple[object, CoreLoopRunner]]:
        """Certified cross-splitjoin fusion regions, with a runner for each.

        Only superbatch plans qualify (a single topological sweep makes
        every region single-appearance), and only the codegen engine
        consumes the result — it collapses each region's member phases into
        one closed loop at the first member's position.  Each entry is
        ``(FusionRegion, CoreLoopRunner)``; the runner fires the region's
        nodes in the global steady order, once per period, over hoisted
        list tapes — observationally identical to the member phases it
        replaces.  Opt-in via ``REPRO_CODEGEN_REGIONS=1``: the certificate
        guarantees bit-exactness, but the region runner fires one firing at
        a time, and E15 measured that trading the members' *vectorized*
        block kernels for it loses 3-50x at codegen's superbatch operating
        point on every suite app with a region — so the default leaves the
        proved fusion unused.  Lazy and instance-specific: runners capture
        this plan's live channels, so the result never enters the shared
        analysis cache.
        """
        cached = getattr(self, "_certified_regions", None)
        if cached is not None:
            return cached
        regions: List[Tuple[object, CoreLoopRunner]] = []
        if self.superbatch and os.environ.get("REPRO_CODEGEN_REGIONS", "0") == "1":
            try:
                from repro.analysis.graph import certified_fusion_regions
                from repro.scheduling.steady import restrict_schedule

                program = self.interp.program
                for region in certified_fusion_regions(self.graph):
                    phases = restrict_schedule(
                        program.steady, set(region.members)
                    )
                    if not phases.phases:
                        continue
                    regions.append(
                        (region, CoreLoopRunner(list(phases.phases), self.channels))
                    )
            except Exception:  # pragma: no cover - analysis layer unavailable
                regions = []
        self._certified_regions = regions
        return regions

    @property
    def fused_chains(self) -> List[Tuple[str, ...]]:
        """Stage names of each fused chain (introspection/testing)."""
        return [
            tuple(st.node.name for st in ph.stages)
            for ph in self.steady_phases
            if isinstance(ph, FusedPhase)
        ]

    def _chunk_periods(self, program) -> int:
        """Periods per superbatched pass, bounding per-edge buffer growth.

        This is the *static* heuristic (512 KiB of float64 per edge); the
        profile-guided tuner (:mod:`repro.tune`) replaces it with a
        measured best-of-ladder choice by assigning ``plan.chunk_periods``
        after construction — the ladder always includes this default, so
        tuning can only match or beat it.
        """
        per_period = 1
        for edge in self.graph.edges:
            per_period = max(per_period, program.reps.get(edge.src, 0) * edge.push_rate)
        return max(1, _CHUNK_ITEM_CAP // per_period)

    def presize(self, reserve_items: Dict[str, int]) -> None:
        """Apply tuned presize hints (edge name -> items) to the tapes.

        Pre-grows each edge's :class:`ArrayChannel` and each fused chain's
        scratch tape so the first tuned-size chunk runs without a single
        buffer doubling.  Purely an allocation hint — never semantic.
        """
        if not reserve_items:
            return
        for edge in self.graph.edges:
            n = reserve_items.get(f"{edge.src.name}->{edge.dst.name}", 0)
            chan = self.channels.get(edge)
            if n and isinstance(chan, ArrayChannel):
                chan.reserve(n)
        for phase in self.steady_phases:
            if isinstance(phase, FusedPhase):
                for st, tape in zip(phase.stages[:-1], phase._tapes):
                    edge = st.node.out_edges[0]
                    n = reserve_items.get(f"{edge.src.name}->{edge.dst.name}", 0)
                    if n:
                        tape.reserve(n)

    # -- execution ------------------------------------------------------------

    def run_init(self, fired: Dict[FlatNode, int]) -> None:
        if self.messaging:
            self._run_phases_msg(self.init_phases)
        else:
            for phase in self.init_phases:
                phase.run(1)
        for phase in self.init_phases:
            for node, count in phase.accounting:
                fired[node] += count

    def run_steady(self, fired: Dict[FlatNode, int], periods: int) -> None:
        if periods <= 0:
            return
        if self.interp.tracer.enabled:
            self._run_steady_traced(fired, periods)
            return
        phases = self.steady_phases
        if self.messaging:
            for _ in range(periods):
                self._run_phases_msg(phases)
        elif self.superbatch:
            left = periods
            while left > 0:
                scale = min(left, self.chunk_periods)
                for phase in phases:
                    phase.run(scale)
                left -= scale
        elif self.segments is not None:
            prefix, core, suffix = self.segments
            left = periods
            while left > 0:
                scale = min(left, self.chunk_periods)
                for phase in prefix:
                    phase.run(scale)
                core.run(scale)
                for phase in suffix:
                    phase.run(scale)
                left -= scale
        else:
            for _ in range(periods):
                for phase in phases:
                    phase.run(1)
        for phase in phases:
            for node, count in phase.accounting:
                fired[node] += count * periods

    # -- traced execution ------------------------------------------------------
    #
    # A physically separate code path: the untraced branches above stay free
    # of any per-phase clock reads or attribute loads.  One span is emitted
    # per ``phase.run(scale)`` — i.e. per batched kernel execution, fused
    # chain, or cyclic-core chunk — which is both the engine's unit of work
    # and the granularity a profile attributes time at.

    def _trace_phase(self, phase: object, scale: int) -> None:
        from time import perf_counter

        from repro.obs.tracer import CAT_FUSED, CAT_KERNEL

        t0 = perf_counter()
        phase.run(scale)
        dur = perf_counter() - t0
        if isinstance(phase, FusedPhase):
            name = "+".join(st.node.name for st in phase.stages)
            cat = CAT_FUSED
            firings = sum(st.count for st in phase.stages) * scale
            last = phase.stages[-1].node
            push = last.out_edges[0].push_rate if last.out_edges else 0
            items = phase.stages[-1].count * scale * push
        else:
            node = phase.node
            name = node.name
            cat = CAT_KERNEL
            firings = phase.count * scale
            push = node.out_edges[0].push_rate if node.out_edges else 0
            items = firings * push
        self.interp.tracer.complete(
            name, cat, t0, dur, args={"firings": firings, "items": items}
        )

    def _trace_core(self, core: CoreLoopRunner, scale: int) -> None:
        from time import perf_counter

        from repro.obs.tracer import CAT_CORE

        t0 = perf_counter()
        core.run(scale)
        dur = perf_counter() - t0
        firings = sum(count for _node, count in core.phases) * scale
        self.interp.tracer.complete(
            "core:" + "+".join(sorted(n.name for n in core.nodes)),
            CAT_CORE,
            t0,
            dur,
            args={"firings": firings, "items": 0},
        )

    def _run_steady_traced(self, fired: Dict[FlatNode, int], periods: int) -> None:
        phases = self.steady_phases
        if self.messaging:
            for _ in range(periods):
                self._run_phases_msg(phases)
        elif self.superbatch:
            left = periods
            while left > 0:
                scale = min(left, self.chunk_periods)
                for phase in phases:
                    self._trace_phase(phase, scale)
                left -= scale
        elif self.segments is not None:
            prefix, core, suffix = self.segments
            left = periods
            while left > 0:
                scale = min(left, self.chunk_periods)
                for phase in prefix:
                    self._trace_phase(phase, scale)
                self._trace_core(core, scale)
                for phase in suffix:
                    self._trace_phase(phase, scale)
                left -= scale
        else:
            for _ in range(periods):
                for phase in phases:
                    self._trace_phase(phase, 1)
        for phase in phases:
            for node, count in phase.accounting:
                fired[node] += count * periods

    # -- batched teleport messaging -------------------------------------------

    def _run_phases_msg(self, phases: Sequence[object]) -> None:
        if self.interp.tracer.enabled:
            self._run_phases_msg_traced(phases)
            return
        self._run_phases_msg_plain(phases)

    def _run_phases_msg_traced(self, phases: Sequence[object]) -> None:
        """Messaging pass with one span per phase (see ``_run_phases_msg``)."""
        from time import perf_counter

        from repro.obs.tracer import CAT_FUSED, CAT_KERNEL

        interp = self.interp
        tracer = interp.tracer
        for phase in phases:
            t0 = perf_counter()
            if isinstance(phase, FusedPhase):
                phase.run(1)
                tracer.complete(
                    "+".join(st.node.name for st in phase.stages),
                    CAT_FUSED,
                    t0,
                    perf_counter() - t0,
                    args={"firings": sum(st.count for st in phase.stages), "items": 0},
                )
                continue
            node = phase.node
            if node in self._senders:
                interp._current_node = node
                work = node.filter.work
                for _ in range(phase.count):
                    interp._deliver_before(node)
                    work()
                    interp._deliver_after(node)
                interp._current_node = None
            elif interp._pending.get(node):
                self._fire_receiver(phase)
            else:
                phase.run(1)
            push = node.out_edges[0].push_rate if node.out_edges else 0
            tracer.complete(
                node.name,
                CAT_KERNEL,
                t0,
                perf_counter() - t0,
                args={"firings": phase.count, "items": phase.count * push},
            )

    def _run_phases_msg_plain(self, phases: Sequence[object]) -> None:
        """One pass with messaging semantics intact.

        Senders fire one ``work()`` at a time on the real channels (their
        output counters drive wavefront thresholds *during* the firing);
        receivers with pending messages fire in sub-batches that stop
        exactly at each message's delivery point; every other node takes the
        plain batched path — it can neither send nor receive, so no delivery
        checks apply.
        """
        interp = self.interp
        for phase in phases:
            if isinstance(phase, FusedPhase):
                phase.run(1)
                continue
            node = phase.node
            if node in self._senders:
                interp._current_node = node
                work = node.filter.work
                for _ in range(phase.count):
                    interp._deliver_before(node)
                    work()
                    interp._deliver_after(node)
                interp._current_node = None
            elif interp._pending.get(node):
                self._fire_receiver(phase)
            else:
                phase.run(1)

    def _fire_receiver(self, phase: CompiledPhase) -> None:
        interp = self.interp
        node = phase.node
        out_edge = node.out_edges[0] if node.out_edges else None
        chan = self.channels[out_edge] if out_edge is not None else None
        push_b = out_edge.push_rate if out_edge is not None else 0
        left = phase.count
        while left > 0:
            interp._deliver_before(node)
            queue = interp._pending.get(node)
            if not queue:
                # Queue drained; no new messages can arrive while this
                # (non-sender) node is firing.
                phase.fire(left)
                return
            produced = chan.pushed_count if chan is not None else 0
            step = min(msg.firings_until_due(produced, push_b) for msg in queue)
            step = max(1, min(step, left))
            phase.fire(step)
            interp._deliver_after(node)
            left -= step


def compile_and_run(
    stream,
    periods: int = 1,
    engine: str = "batched",
    check: bool = True,
    strict: bool = False,
):
    """Build an interpreter with the given engine, run it, return it.

    The one-call entry used by the benchmarks and examples::

        interp = compile_and_run(app, periods=1000)
        print(sink.collected[:8])
    """
    from repro.runtime.interpreter import Interpreter

    interp = Interpreter(stream, check=check, engine=engine, strict=strict)
    interp.run(periods)
    return interp
