"""Process-based multicore execution of mapped stream programs.

``Interpreter(engine="parallel", strategy=..., cores=N)`` runs a partition
produced by the :mod:`repro.mapping.strategies` pipeline on real OS cores:

* :func:`repro.mapping.strategies.partition_nodes` projects the strategy's
  model transform (coarsen → fiss → fuse → assign) back onto the live flat
  graph, collapsing fission replicas and co-locating feedback cycles;
* each used core becomes a **worker process**, forked after ``init()`` hooks
  so filters are inherited with their initialized state (no pickling —
  lambdas in reducers and init paths survive);
* the parent process is **worker 0** and keeps every I/O endpoint (sources,
  sinks) — mirroring the paper's off-chip I/O convention and keeping
  ``sink.collected`` observable without result shipping;
* every graph edge crossing a worker boundary becomes a blocking
  :class:`~repro.runtime.ring.RingChannel` in one shared-memory
  :class:`~repro.runtime.ring.RingArena`; intra-worker edges stay ordinary
  :class:`~repro.runtime.array_channel.ArrayChannel` tapes, so each worker
  executes the same batched executors as the single-process plan
  (:func:`repro.runtime.plan.make_node_executor`) over its restricted
  schedule (:func:`repro.scheduling.steady.restrict_schedule`);
* a steady-state request runs in batches of :attr:`batch_periods` periods.
  Software-pipelined strategies (``softpipe``, ``combined``, ``space``)
  free-run: the init schedule acts as the pipeline prologue and the ring
  slack realizes the steady-state overlap of the modulo schedule.
  Task/data-style strategies (``task``, ``fine_grained``, ``data``) run
  **double-buffered** whenever every cross-worker ring capacity is proved
  (SL404): the allocated capacity holds the proved single-batch peak plus a
  full second batch generation, so producers run ahead into buffer
  generation ``g+1`` while consumers drain generation ``g`` — no per-batch
  barrier at all.  Only when a capacity proof is unavailable (or
  ``REPRO_PARALLEL_LEGACY=1`` forces it) do they fall back to the legacy
  **dag** discipline with its barrier after every batch;
* workers obey a *batched* command protocol: one steady-run **program**
  (period count + chunk schedule, written once into the arena header) per
  ``run_steady()`` call, so workers free-run through the whole request with
  zero mid-run round trips.  Control traffic is counted
  (``protocol_report()``) and CI asserts O(1) commands per worker per run.
  Failures are reported through an error queue tagged with the firing
  filter's instance name, and every peer is unblocked via the arena-wide
  abort flag — no orphaned processes, no partial hangs;
* setup is amortized: workers fork once per session and stay warm across
  ``run()`` calls (``fork_count`` is observable), the partition/proof
  computation is memoized in a structural plan cache keyed by the PR-6
  plan fingerprint, and shared-memory segments are parked in a bounded
  warm-arena pool on clean close so the next session of the same footprint
  skips ``shm_open``/``mmap`` (:func:`drain_warm_arenas` reclaims them;
  an ``atexit`` hook drains at interpreter shutdown).

Graphs the engine cannot run safely raise :class:`ParallelUnsafe` during
setup; the interpreter downgrades to ``engine="batched"`` with a structured
``SL304`` diagnostic instead of erroring.
"""

from __future__ import annotations

import atexit
import gc
import multiprocessing
import os
import signal
import threading
import time
import traceback
import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import StreamItError
from repro.graph.flatgraph import FILTER, FlatNode
from repro.obs.metrics import METRICS
from repro.obs.recorder import FLIGHT, format_flight_tail
from repro.obs.watchdog import StallWatchdog, watchdog_enabled
from repro.runtime.array_channel import ArrayChannel
from repro.runtime.plan import make_node_executor
from repro.runtime.ring import (
    _MAX_SLEEP,
    _SPIN_ITERS,
    RingAbort,
    RingArena,
    RingChannel,
    RingStall,
)
from repro.scheduling.steady import Schedule, restrict_schedule

# Always-on telemetry: the counters mirror protocol_report() fields so a
# Prometheus scrape sees the same control-plane accounting the tests assert.
_M_FORKS = METRICS.counter(
    "repro_parallel_forks_total", "Worker fork generations (1 per warm session)"
)
_M_COMMANDS = METRICS.counter(
    "repro_parallel_commands_total", "Parent control commands by kind"
)
_M_BARRIER_WAITS = METRICS.counter(
    "repro_parallel_barrier_waits_total", "Parent-side barrier waits"
)
_M_FAILURES = METRICS.counter(
    "repro_parallel_failures_total", "Parallel session failures by kind"
)
_M_RING_STALLS = METRICS.counter(
    "repro_ring_stalls_total", "RingStall timeouts by blocked side"
)

#: Command codes written to the arena header by the parent.
_CMD_INIT, _CMD_STEADY, _CMD_SHUTDOWN = 1, 2, 3

#: Target items per cross-worker edge per batch (sizes batch_periods).
#: Bigger batches amortize the per-batch Python dispatch each worker pays
#: per node; ~1 MiB of float64 per edge bounds the shared-memory cost.
_BATCH_TARGET_ITEMS = 1 << 17
#: Upper bound on periods per batch.
_BATCH_MAX_PERIODS = 4096
#: Pre-overhaul batch bounds, kept for REPRO_PARALLEL_LEGACY sessions so
#: the before/after comparison measures the engine it claims to.
_LEGACY_BATCH_TARGET_ITEMS = 1 << 14
_LEGACY_BATCH_MAX_PERIODS = 512
#: Backoff-nap ceiling for session rings: a blocked worker overshoots its
#: peer's finish by at most this much (legacy rings keep the ring module's
#: 1 ms default, which wasted a visible slice of every batch).  On
#: oversubscribed hosts each wake-up also *preempts* the busy peer, so the
#: ceiling trades tail latency against stolen quanta — 400 us measured
#: best across the app suite on a single-CPU host.
_WAIT_SLEEP_CAP = 400e-6
#: Seconds a barrier wait may block before the session is declared dead.
_BARRIER_TIMEOUT = 300.0

#: Strategies whose paper discipline is per-period DAG barriers; with
#: proved ring capacities they run barrier-free under double buffering.
_DAG_STRATEGIES = frozenset({"task", "fine_grained", "data"})

#: Per-command cap on one worker's locally-buffered trace spans.
_TRACE_BUF_CAP = 200_000


def _legacy_mode() -> bool:
    """``REPRO_PARALLEL_LEGACY=1`` reverts to the pre-overhaul behaviour:
    per-batch DAG barriers, no structural plan cache, no warm-arena pool.
    Exists so benchmarks can measure the overhaul on the same host."""
    return os.environ.get("REPRO_PARALLEL_LEGACY", "") == "1"


def _stall_deadline() -> float:
    """Seconds a blocked ring wait may starve before RingStall fires
    (``REPRO_RING_STALL_S``, default 120)."""
    try:
        return max(0.01, float(os.environ.get("REPRO_RING_STALL_S", "120")))
    except ValueError:
        return 120.0


# ---------------------------------------------------------------------------
# Warm-arena pool: shared-memory segments parked across sessions
# ---------------------------------------------------------------------------

#: Parked (still-mapped) shared-memory segments from cleanly-closed
#: sessions, newest last.  Bounded; drained at interpreter exit.
_WARM_ARENAS: List[object] = []
_WARM_ARENAS_MAX = 4


def drain_warm_arenas() -> int:
    """Unlink every parked shared-memory segment; returns how many."""
    drained = 0
    while _WARM_ARENAS:
        segment = _WARM_ARENAS.pop()
        try:
            segment.close()
            segment.unlink()
        except Exception:  # pragma: no cover - already gone
            pass
        drained += 1
    return drained


atexit.register(drain_warm_arenas)


def _adopt_warm_arena(size_needed: int):
    """Smallest parked segment that fits, or None (pool keeps the rest)."""
    fits = [s for s in _WARM_ARENAS if s.size >= size_needed]
    if not fits:
        return None
    best = min(fits, key=lambda s: s.size)
    _WARM_ARENAS.remove(best)
    return best


def _park_arena(arena: RingArena) -> bool:
    """Park a cleanly-closed arena's segment for reuse (bounded pool)."""
    segment = arena.park()
    if segment is None:
        return False
    _WARM_ARENAS.append(segment)
    while len(_WARM_ARENAS) > _WARM_ARENAS_MAX:
        victim = _WARM_ARENAS.pop(0)
        try:
            victim.close()
            victim.unlink()
        except Exception:  # pragma: no cover - already gone
            pass
    return True


# ---------------------------------------------------------------------------
# Structural plan cache: partition + proofs memoized by plan fingerprint
# ---------------------------------------------------------------------------

#: fingerprint-keyed structural decisions (partition by node name, batch
#: sizing, ring-capacity proof payloads) — everything about a session that
#: depends only on the graph's structure, not on live filter state.
_STRUCT_CACHE: Dict[Tuple, Dict[str, object]] = {}
_STRUCT_CACHE_MAX = 32
struct_cache_stats = {"hits": 0, "misses": 0}


def clear_struct_cache() -> None:
    _STRUCT_CACHE.clear()
    struct_cache_stats["hits"] = 0
    struct_cache_stats["misses"] = 0


def _struct_cache_key(interp, strategy: str, cores: int, work_profile) -> Optional[Tuple]:
    try:
        from repro.tune import stream_fingerprint

        fingerprint = stream_fingerprint(interp.graph, interp.program, (), ())
    except Exception:  # pragma: no cover - fingerprint layer unavailable
        return None
    profile_key = (
        tuple(sorted((k, round(v, 9)) for k, v in work_profile.items()))
        if work_profile
        else ()
    )
    return (fingerprint, strategy, int(cores), profile_key)


def _release_arena(arena: RingArena, rings: List[RingChannel]) -> None:
    """Detach every ring view, then close + unlink the shared segment.

    Shared between :meth:`ParallelSession.close` and the GC finalizer, so
    it must not reference the session itself.
    """
    for chan in rings:
        chan.detach()
    arena.release(True)


class ParallelUnsafe(Exception):
    """Setup-time verdict: this graph/strategy cannot run in parallel.

    The interpreter catches this and downgrades to the batched engine with
    an ``SL304`` diagnostic — it is a structured refusal, not an error.
    """


@dataclass(frozen=True)
class WorkerSpec:
    """One worker's share of the program."""

    wid: int
    nodes: frozenset
    init: Schedule
    steady: Schedule
    #: The steady restriction is a single topological pass over the
    #: worker-internal edges, so ``scale`` batched periods may run as one
    #: pass with every firing count multiplied (the superbatch argument).
    scale_ok: bool


def _restriction_scale_ok(nodes: frozenset, steady: Schedule) -> bool:
    position: Dict[FlatNode, int] = {}
    for i, (node, _count) in enumerate(steady):
        if node in position:
            return False
        position[node] = i
    for node in nodes:
        for edge in node.out_edges:
            if edge.src in position and edge.dst in position:
                if position[edge.src] > position[edge.dst]:
                    return False
    return True


class ParallelSession:
    """The live multicore execution of one interpreter's program.

    Everything structural (partition, specs, ring layout) is decided in the
    constructor — before channels exist — so the interpreter can allocate
    the mixed Ring/Array channel map and bind filters exactly as it does
    for the other engines.  Workers fork lazily on the first command, which
    is always after ``init()`` hooks have run.
    """

    def __init__(self, interp, strategy: str, cores: int, work_profile=None) -> None:
        self.interp = interp
        self.strategy = strategy
        self.cores = int(cores)
        #: Measured per-period work (repro.tune) that reweighted this
        #: partition, or None when the static estimates were used.
        self.work_profile = dict(work_profile) if work_profile else None
        self.legacy = _legacy_mode()
        #: Control-plane accounting: every fork, command, and barrier wait
        #: the parent issues.  ``steady_commands / steady_runs == 1`` is the
        #: batched-protocol invariant CI asserts.
        self.protocol: Dict[str, object] = {
            "fork_count": 0,
            "commands": {"init": 0, "steady": 0, "shutdown": 0},
            "steady_runs": 0,
            "barrier_waits": 0,
            "barrier_wait_s": 0.0,
            "arena_reused": False,
            "struct_cache": "off",
        }
        #: Wall-clock seconds the parent spent inside steady commands
        #: (busy/stall attribution denominators for rebalancing).
        self.steady_seconds = 0.0
        graph, program = interp.graph, interp.program

        if interp.has_messaging:
            raise ParallelUnsafe(
                "teleport portals would cross worker boundaries (message "
                "delivery is per-firing and process-local)"
            )
        if self.cores < 2:
            raise ParallelUnsafe(f"cores={self.cores} leaves nothing to parallelize")
        self._check_static_rates(graph)
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platform
            raise ParallelUnsafe(f"fork start method unavailable: {exc}")

        # Structural decisions (partition, batch sizing, capacity proofs)
        # depend only on the graph's structure, so repeated sessions over
        # the same plan fingerprint reuse them instead of re-running the
        # model transforms and the proof replay.
        self._struct_key = (
            None if self.legacy else _struct_cache_key(
                interp, strategy, self.cores, self.work_profile
            )
        )
        cached = (
            _STRUCT_CACHE.get(self._struct_key)
            if self._struct_key is not None
            else None
        )
        by_name = {n.name: n for n in graph.nodes}
        if cached is not None:
            struct_cache_stats["hits"] += 1
            self.protocol["struct_cache"] = "hit"
            part = {
                by_name[name]: core
                for name, core in cached["part"]
                if name in by_name
            }
        else:
            if self._struct_key is not None:
                struct_cache_stats["misses"] += 1
                self.protocol["struct_cache"] = "miss"
            from repro.mapping.strategies import partition_nodes

            try:
                part = partition_nodes(
                    interp.stream,
                    graph,
                    program.reps,
                    strategy,
                    self.cores,
                    work_profile=self.work_profile,
                )
            except Exception as exc:
                raise ParallelUnsafe(
                    f"strategy {strategy!r} cannot map this graph: {exc}"
                )
        used = sorted(set(part.values()))
        if len(used) < 2:
            raise ParallelUnsafe(
                f"strategy {strategy!r} places all compute on one core"
            )
        wid_of_core = {core: i + 1 for i, core in enumerate(used)}
        self.node_wid: Dict[FlatNode, int] = {
            node: wid_of_core.get(part.get(node), 0) if node in part else 0
            for node in graph.nodes
        }
        self.n_workers = 1 + len(used)

        cross = [
            e for e in graph.edges if self.node_wid[e.src] != self.node_wid[e.dst]
        ]
        if not cross:  # pragma: no cover - disconnected graphs don't validate
            raise ParallelUnsafe("partition has no cross-worker traffic")
        items_per_period = {e: program.reps[e.src] * e.push_rate for e in cross}
        heaviest = max(items_per_period.values())
        batch_max, batch_target = (
            (_LEGACY_BATCH_MAX_PERIODS, _LEGACY_BATCH_TARGET_ITEMS)
            if self.legacy
            else (_BATCH_MAX_PERIODS, _BATCH_TARGET_ITEMS)
        )
        self.batch_periods = max(
            1, min(batch_max, batch_target // max(1, heaviest))
        )

        self.specs: List[WorkerSpec] = []
        for wid in range(self.n_workers):
            nodes = frozenset(
                n for n in graph.nodes if self.node_wid[n] == wid
            )
            init = restrict_schedule(program.init, nodes)
            steady = restrict_schedule(program.steady, nodes)
            self.specs.append(
                WorkerSpec(
                    wid=wid,
                    nodes=nodes,
                    init=init,
                    steady=steady,
                    scale_ok=_restriction_scale_ok(nodes, steady),
                )
            )
        # Monolithic scaling (fire count*scale per phase) is safe only when
        # EVERY worker's restriction is a single topological sweep: then each
        # node fires once, globally contiguously, in dependency order, and
        # the ring slack (a full batch per edge) lets every batch complete.
        # One per-period worker breaks that — a feedback worker produces its
        # cross-edge items interleaved, so a monolithic peer demanding its
        # whole batch up front deadlocks against it (DToA's interp stage).
        # Per-period execution everywhere mirrors the global schedule's
        # granularity, which is deadlock-free by construction.
        self.monolithic = all(spec.scale_ok for spec in self.specs)

        # Ring capacities: the whole-graph analysis replays the per-worker
        # schedules at this session's exact firing granularity and proves a
        # minimal stall-free capacity per cross edge (repro.analysis.graph).
        # Allocated capacity adds REPRO_RING_SLACK extra batches of headroom
        # (default 1) so producers can run a whole batch generation ahead —
        # the double buffer — without touching the proof; REPRO_RING_SLACK=0
        # runs at the proved minimum (still stall-free: the witness replay
        # certifies deadlock freedom at the peak, barrier or no barrier).
        # If the replay cannot complete, the proof object itself carries the
        # legacy guess (init peak + two batches + slop) with proved=False.
        self.ring_proofs: Dict[object, object] = {}
        edge_key = lambda e: (e.src.name, e.dst.name, e.src_port, e.dst_port)
        if cached is not None and "proofs" in cached:
            try:
                from repro.analysis.graph import RingProof

                stored = cached["proofs"]
                self.ring_proofs = {
                    e: RingProof(**stored[edge_key(e)])
                    for e in cross
                    if edge_key(e) in stored
                }
            except Exception:  # pragma: no cover - analysis layer unavailable
                self.ring_proofs = {}
        if not self.ring_proofs:
            try:
                from repro.analysis.graph import ring_capacity_proofs

                self.ring_proofs = ring_capacity_proofs(
                    program, self.node_wid, self.batch_periods, self.monolithic
                )
            except Exception:  # pragma: no cover - analysis layer unavailable
                self.ring_proofs = {}
        # Discipline.  Pipelined strategies always free-run.  DAG strategies
        # free-run *double-buffered* when every cross edge has a proved
        # capacity (the SL404 witness replay models no barriers, so it
        # certifies barrier-free execution directly); an unproved edge — or
        # the legacy env knob — keeps the per-batch barrier for safety.
        all_proved = bool(self.ring_proofs) and all(
            e in self.ring_proofs and self.ring_proofs[e].proved for e in cross
        )
        if strategy in _DAG_STRATEGIES:
            self.discipline = (
                "double_buffered" if all_proved and not self.legacy else "dag"
            )
        else:
            self.discipline = "pipelined"
        try:
            slack_batches = max(0, int(os.environ.get("REPRO_RING_SLACK", "1")))
        except ValueError:
            slack_batches = 1
        capacities: List[int] = []
        for e in cross:
            proof = self.ring_proofs.get(e)
            if proof is not None:
                cap = proof.capacity
                if proof.proved:
                    cap += slack_batches * self.batch_periods * items_per_period[e]
            else:
                cap = (
                    program.buffer_bounds[e]
                    + 2 * self.batch_periods * items_per_period[e]
                    + 64
                )
            capacities.append(cap)
        if self._struct_key is not None and cached is None:
            import dataclasses

            entry: Dict[str, object] = {
                "part": tuple((n.name, c) for n, c in part.items()),
            }
            if self.ring_proofs:
                entry["proofs"] = {
                    edge_key(e): dataclasses.asdict(p)
                    for e, p in self.ring_proofs.items()
                }
            while len(_STRUCT_CACHE) >= _STRUCT_CACHE_MAX:
                _STRUCT_CACHE.pop(next(iter(_STRUCT_CACHE)))
            _STRUCT_CACHE[self._struct_key] = entry
        # Blocked-wait policy: with more workers than CPUs, spinning steals
        # the quantum the peer needs; yield immediately instead.  Legacy
        # mode keeps the old unconditional spin so before/after benchmarks
        # measure the real pre-overhaul engine.
        if self.legacy:
            self._spin = _SPIN_ITERS
        else:
            self._spin = 0 if self.n_workers > (os.cpu_count() or 1) else _SPIN_ITERS
        self._ring_timeout = _stall_deadline()
        segment = (
            None
            if self.legacy
            else _adopt_warm_arena(RingArena.required_size(capacities))
        )
        self._arena = RingArena(capacities, segment=segment)
        self.protocol["arena_reused"] = self._arena.reused
        self.channels: Dict[object, object] = {}
        for i, edge in enumerate(cross):
            chan = self._arena.ring(
                i,
                name=f"{edge.src.name}->{edge.dst.name}",
                initial=edge.initial,
                timeout=self._ring_timeout,
                spin=self._spin,
                max_sleep=_MAX_SLEEP if self.legacy else _WAIT_SLEEP_CAP,
            )
            chan.wid = 0  # the parent; forked children overwrite their copy
            self.channels[edge] = chan
        for edge in graph.edges:
            if edge not in self.channels:
                self.channels[edge] = ArrayChannel(
                    name=f"{edge.src.name}->{edge.dst.name}", initial=edge.initial
                )
        self.ring_edges = list(cross)

        # Tracing (repro.obs): decided before the fork so parent and
        # children agree.  Each process buffers its own Chrome-shaped span
        # dicts (tid = wid) and ships them to the parent's MemoryTracer over
        # a SimpleQueue after every command; perf_counter is CLOCK_MONOTONIC
        # system-wide on Linux, so worker timestamps need no translation.
        self.tracer = interp.tracer
        self.traced = self.tracer.enabled
        self._wid = 0
        self._tbuf: Optional[List[dict]] = [] if self.traced else None
        self._tdropped = 0
        self._steady_done = 0
        # A feeder-thread Queue (not SimpleQueue): a child's put() of a large
        # span batch must not block on pipe capacity while the parent is
        # still waiting at the finish barrier.
        self._trace_queue = self._ctx.Queue() if self.traced else None
        if self.traced:
            for wid in range(self.n_workers):
                label = "worker 0 (parent, io)" if wid == 0 else f"worker {wid}"
                self.tracer.name_track(wid, label)

        self._header = self._arena._header
        self._start_barrier = self._ctx.Barrier(self.n_workers)
        self._finish_barrier = self._ctx.Barrier(self.n_workers)
        self._step_barrier = self._ctx.Barrier(self.n_workers)
        self._errors = self._ctx.SimpleQueue()
        self._procs: List[multiprocessing.Process] = []
        self._exec_cache: Dict[FlatNode, Tuple] = {}
        self._started = False
        self._failed = False
        self._closed = False
        #: Parent-side stall watchdog (repro.obs.watchdog), started with the
        #: workers; the count already mirrored into metrics from
        #: protocol["barrier_waits"].
        self._watchdog: Optional[StallWatchdog] = None
        self._barrier_waits_metered = 0
        # Safety net: release the shared segment even if close() is never
        # called (the callback references the arena and rings, never the
        # session, so it cannot keep the session alive).
        self._finalizer = weakref.finalize(
            self,
            _release_arena,
            self._arena,
            [self.channels[e] for e in self.ring_edges],
        )

    # -- setup checks ---------------------------------------------------------

    @staticmethod
    def _check_static_rates(graph) -> None:
        """Refuse filters whose I/O rates the analyzer cannot pin down.

        A dynamic-rate filter would fire a data-dependent number of items;
        the ring capacities and restricted schedules are sized from the
        declared static rates, so such a filter could deadlock a worker.
        """
        try:
            from repro.analysis import analyze_filter
        except Exception:  # pragma: no cover - analysis layer unavailable
            return
        for node in graph.filter_nodes():
            try:
                rates = analyze_filter(node.filter).rates
            except Exception:  # pragma: no cover - analyzer crash
                continue
            if rates is not None and rates.dynamic:
                raise ParallelUnsafe(
                    f"filter {node.name!r} has dynamic rates "
                    f"({'; '.join(rates.dynamic)})"
                )
            # SL402: unbounded effects (dynamic writes, self escapes) mean
            # race freedom across forked workers cannot be proven.
            effects = analyze_filter(node.filter).effects
            if effects is not None and (effects.dynamic or effects.escapes):
                reasons = "; ".join((*effects.dynamic, *effects.escapes))
                raise ParallelUnsafe(
                    f"filter {node.name!r} has statically unbounded effects "
                    f"({reasons}); parallel race freedom is unprovable (SL402)"
                )

    # -- worker body (both the parent-as-worker-0 and forked children) --------

    def _executor(self, node: FlatNode):
        entry = self._exec_cache.get(node)
        if entry is None:
            entry = make_node_executor(node, self.channels)
            self._exec_cache[node] = entry
        return entry[0]

    def _fire(
        self,
        node: FlatNode,
        n: int,
        slice_idx: Optional[int] = None,
        period: Optional[int] = None,
        span: int = 1,
    ) -> None:
        fire = self._executor(node)
        # Block until every ring input can satisfy the whole call: batched
        # filter executors snapshot their input window up front, so the
        # items must exist before fire() runs (splitters/joiners and
        # push-side waits block naturally inside the ring ops).
        if node.kind == FILTER:
            extra = node.peek_extra
            for edge in node.in_edges:
                chan = self.channels[edge]
                if isinstance(chan, RingChannel) and edge.pop_rate:
                    chan.wait_items(n * edge.pop_rate + extra)
        try:
            tbuf = self._tbuf
            if tbuf is None:
                fire(n)
            else:
                from time import perf_counter

                t0 = perf_counter()
                fire(n)
                dur = perf_counter() - t0
                if len(tbuf) < _TRACE_BUF_CAP:
                    push = node.out_edges[0].push_rate if node.out_edges else 0
                    tbuf.append(
                        {
                            "name": node.name,
                            "cat": "worker",
                            "ph": "X",
                            "ts": t0,
                            "dur": dur,
                            "tid": self._wid,
                            "args": {"firings": n, "items": n * push},
                        }
                    )
                else:
                    self._tdropped += 1
        except (RingAbort, RingStall):
            raise
        except BaseException as exc:
            # Satellite context for error reports: which filter, at which
            # position in this worker's restricted schedule, during which
            # absolute steady iteration.
            exc._stream_node = node.name
            exc._stream_slice = slice_idx
            exc._stream_period = period
            exc._stream_period_span = span
            raise

    def _exec_schedule(
        self, schedule: Schedule, scale: int, base_period: Optional[int] = None
    ) -> None:
        phases = schedule.phases
        if not phases:
            return
        if scale == 1 or self.monolithic:
            for i, (node, count) in enumerate(phases):
                self._fire(node, count * scale, i, base_period, scale)
        else:
            for p in range(scale):
                for i, (node, count) in enumerate(phases):
                    self._fire(
                        node,
                        count,
                        i,
                        base_period + p if base_period is not None else None,
                    )

    def _run_periods(self, spec: WorkerSpec, periods: int) -> None:
        left = periods
        batch = self.batch_periods
        # Only the legacy "dag" discipline pays a per-batch barrier; the
        # double_buffered and pipelined disciplines free-run through the
        # whole request on ring backpressure alone.
        dag = self.discipline == "dag"
        done = self._steady_done
        while left > 0:
            scale = min(batch, left)
            self._exec_schedule(spec.steady, scale, base_period=done)
            done += scale
            left -= scale
            if dag:
                self._barrier_wait(self._step_barrier)
        self._steady_done = done

    def _barrier_wait(self, barrier) -> None:
        """A counted barrier wait (each process accounts its own copy; only
        the parent's counters are ever read)."""
        t0 = time.perf_counter()
        try:
            barrier.wait(_BARRIER_TIMEOUT)
        finally:
            self.protocol["barrier_waits"] += 1
            self.protocol["barrier_wait_s"] += time.perf_counter() - t0

    def _abort_barriers(self) -> None:
        for barrier in (self._start_barrier, self._finish_barrier, self._step_barrier):
            try:
                barrier.abort()
            except Exception:  # pragma: no cover - already broken
                pass

    def _worker_loop(self, wid: int) -> None:
        # The parent owns interrupt handling; workers end via the protocol
        # (shutdown command, broken barrier, or the abort flag).
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        try:
            self._worker_body(wid)
        finally:
            # Drop this process's shared-memory views before interpreter
            # shutdown GCs the SharedMemory object (a pinned view would turn
            # its close() into BufferError noise).  Never unlink here — the
            # segment belongs to the parent.
            self._header = None
            for edge in self.ring_edges:
                self.channels[edge].detach()
            self._arena.release(unlink=False)

    def _ship_trace(self, wid: int) -> None:
        """Send this worker's buffered spans to the parent (pre-barrier, so
        the parent's post-barrier drain sees exactly one batch per child)."""
        try:
            self._trace_queue.put((wid, self._tbuf, self._tdropped))
        except Exception:  # pragma: no cover - queue torn down
            pass
        self._tbuf = []
        self._tdropped = 0

    def _worker_body(self, wid: int) -> None:
        self._exec_cache = {}
        self._wid = wid
        for edge in self.ring_edges:
            self.channels[edge].wid = wid  # per-process: who a stall blames
        spec = self.specs[wid]
        header = self._header
        # Workers live only for this session and their steady-state
        # allocations are acyclic numpy temporaries that refcounting frees
        # on the spot — so run with the cyclic collector off and collect
        # manually between commands, instead of letting threshold-triggered
        # GC pauses land mid-run (which serializes every process on an
        # oversubscribed host).  The fork also snapshots the parent
        # mid-construction; pay that inherited debt up front.
        gc.disable()
        gc.collect()
        while True:
            try:
                self._start_barrier.wait()
            except threading.BrokenBarrierError:
                return
            cmd = int(header[1])
            if cmd == _CMD_SHUTDOWN:
                return
            try:
                if cmd == _CMD_INIT:
                    self._exec_schedule(spec.init, 1)
                else:
                    self._run_periods(spec, int(header[2]))
            except RingAbort:
                # A peer failed first; it owns the error report.
                return
            except threading.BrokenBarrierError:
                return
            except BaseException as exc:
                self._arena.abort()
                self._abort_barriers()
                try:
                    self._errors.put(
                        (
                            wid,
                            getattr(exc, "_stream_node", None),
                            getattr(exc, "_stream_slice", None),
                            getattr(exc, "_stream_period", None),
                            getattr(exc, "_stream_period_span", 1),
                            traceback.format_exc(),
                        )
                    )
                except Exception:  # pragma: no cover - queue torn down
                    pass
                return
            if self.traced:
                self._ship_trace(wid)
            try:
                self._finish_barrier.wait()
            except threading.BrokenBarrierError:
                return
            # Between commands the parent has already been released, so
            # this collection happens off anyone's critical path.
            gc.collect()

    # -- parent-side protocol --------------------------------------------------

    def _start(self) -> None:
        if self._started:
            return
        self._started = True
        self.protocol["fork_count"] += 1
        for wid in range(1, self.n_workers):
            proc = self._ctx.Process(
                target=self._worker_loop,
                args=(wid,),
                daemon=True,
                name=f"repro-parallel-w{wid}",
            )
            proc.start()
            self._procs.append(proc)
        if METRICS.enabled:
            _M_FORKS.inc()
            FLIGHT.record(
                "parallel_fork",
                workers=self.n_workers - 1,
                strategy=self.strategy,
                discipline=self.discipline,
            )
            if watchdog_enabled():
                self._watchdog = StallWatchdog(self)
                self._watchdog.start()

    def _run_command(self, cmd: int, periods: int = 0) -> None:
        if self._closed or self._failed:
            raise StreamItError(
                "parallel session is closed; build a fresh Interpreter"
            )
        self._start()
        commands = self.protocol["commands"]
        if cmd == _CMD_INIT:
            commands["init"] += 1
        elif cmd == _CMD_STEADY:
            commands["steady"] += 1
            self.protocol["steady_runs"] += 1
        if METRICS.enabled:
            kind = "init" if cmd == _CMD_INIT else "steady"
            _M_COMMANDS.inc(kind=kind)
            FLIGHT.record("parallel_command", command=kind, periods=periods)
        # The whole steady run — period count and (implicitly, via the
        # restricted schedules forked into every worker) the chunk schedule
        # — ships as this ONE header write.  Workers free-run through all
        # `periods` with no further control traffic.
        self._header[1] = cmd
        self._header[2] = periods
        spec = self.specs[0]
        t0 = time.perf_counter()
        try:
            self._barrier_wait(self._start_barrier)
            if cmd == _CMD_INIT:
                self._exec_schedule(spec.init, 1)
            else:
                self._run_periods(spec, periods)
            self._barrier_wait(self._finish_barrier)
        except BaseException as exc:
            self._fail(exc)
        if cmd == _CMD_STEADY:
            self.steady_seconds += time.perf_counter() - t0
        if METRICS.enabled:
            waits = self.protocol["barrier_waits"]
            delta = waits - self._barrier_waits_metered
            self._barrier_waits_metered = waits
            if delta:
                _M_BARRIER_WAITS.inc(delta)
        if self.traced:
            self._collect_trace()

    def _collect_trace(self) -> None:
        """Fold this command's spans (all workers) into the parent tracer,
        then sample the cumulative ring stall counters."""
        tracer = self.tracer
        if self._tbuf:
            tracer.ingest(self._tbuf)
            self._tbuf = []
        if self._tdropped:
            tracer.meta["trace_spans_dropped"] = (
                tracer.meta.get("trace_spans_dropped", 0) + self._tdropped
            )
            self._tdropped = 0
        for _ in self._procs:
            try:
                _wid, events, dropped = self._trace_queue.get(timeout=60)
            except Exception:  # pragma: no cover - worker died mid-ship
                break
            tracer.ingest(events)
            if dropped:
                tracer.meta["trace_spans_dropped"] = (
                    tracer.meta.get("trace_spans_dropped", 0) + dropped
                )
        for edge in self.ring_edges:
            chan = self.channels[edge]
            tracer.counter(f"ring:{chan.name}", chan.stall_stats())

    def _fail(self, cause: BaseException) -> None:
        """Tear the session down after any mid-run failure and re-raise the
        most informative error (a worker's reported failure wins over the
        parent's secondary Ring/Barrier symptom).  Every raised error
        carries the flight-recorder tail — failing filter, last command,
        last stall suspicion — in one message, and the final metrics
        snapshot is force-published for ``python -m repro.obs flight``."""
        self._failed = True
        self._arena.abort()
        self._abort_barriers()
        reports = []
        for proc in self._procs:
            proc.join(timeout=10)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=10)
        while not self._errors.empty():
            reports.append(self._errors.get())
        metered = METRICS.enabled
        if metered and isinstance(cause, RingStall):
            _M_RING_STALLS.inc(side=cause.side or "unknown")
            FLIGHT.record(
                "ring_stall",
                edge=cause.edge,
                worker=cause.worker,
                side=cause.side,
                need=cause.need,
                occupancy=cause.occupancy,
                capacity=cause.capacity,
            )
        self.close()
        try:
            if reports:
                wid, node_name, slice_idx, period, span, tb = reports[0]
                where = self._error_context(node_name, slice_idx, period, span)
                if self.traced:
                    self._trace_worker_error(wid, node_name, slice_idx, period)
                if metered:
                    kind = "ring_stall" if "RingStall" in tb else "worker_error"
                    _M_FAILURES.inc(kind=kind)
                    FLIGHT.record(
                        "worker_error", worker=wid, filter=node_name, error=kind
                    )
                raise StreamItError(
                    f"parallel worker {wid} failed{where}:\n{tb}"
                    + self._flight_tail()
                ) from cause
            if isinstance(
                cause, (RingAbort, RingStall, threading.BrokenBarrierError)
            ):
                dead = [p.name for p in self._procs if p.exitcode not in (0, None)]
                stalled = ""
                if isinstance(cause, RingStall):
                    stalled = (
                        f"; worker {cause.worker} stalled as {cause.side} on ring"
                        f" {cause.edge!r} (need {cause.need}, occupancy"
                        f" {cause.occupancy}/{cause.capacity})"
                    )
                if metered:
                    _M_FAILURES.inc(
                        kind="ring_stall"
                        if isinstance(cause, RingStall)
                        else "abort"
                    )
                raise StreamItError(
                    "parallel session aborted"
                    + stalled
                    + (f"; dead workers: {dead}" if dead else "")
                    + self._flight_tail()
                ) from cause
            node_name = getattr(cause, "_stream_node", None)
            if node_name is not None and not isinstance(cause, KeyboardInterrupt):
                slice_idx = getattr(cause, "_stream_slice", None)
                period = getattr(cause, "_stream_period", None)
                span = getattr(cause, "_stream_period_span", 1)
                where = self._error_context(node_name, slice_idx, period, span)
                if self.traced:
                    self._trace_worker_error(0, node_name, slice_idx, period)
                if metered:
                    _M_FAILURES.inc(kind="worker_error")
                    FLIGHT.record(
                        "worker_error", worker=0, filter=node_name,
                        error=cause.__class__.__name__,
                    )
                raise StreamItError(
                    f"parallel worker 0 failed{where}: {cause}"
                    + self._flight_tail()
                ) from cause
            raise cause
        finally:
            if metered:
                try:
                    METRICS.publish()
                except Exception:  # pragma: no cover - telemetry best-effort
                    pass

    @staticmethod
    def _flight_tail() -> str:
        """The flight recorder's last events as an error-text suffix."""
        tail = format_flight_tail(FLIGHT.events)
        return f"\n{tail}" if tail else ""

    @staticmethod
    def _error_context(
        node_name: Optional[str],
        slice_idx: Optional[int],
        period: Optional[int],
        span: int = 1,
    ) -> str:
        """``" in filter 'x' (schedule slice 3, steady iteration 17)"``.

        A worker running a monolithic batch fires ``span`` periods in one
        call, so the failure is located to the batch's iteration range.
        """
        where = f" in filter {node_name!r}" if node_name else ""
        details = []
        if slice_idx is not None:
            details.append(f"schedule slice {slice_idx}")
        if period is not None:
            if span > 1:
                details.append(
                    f"steady iterations {period}..{period + span - 1}"
                )
            else:
                details.append(f"steady iteration {period}")
        if details:
            where += f" ({', '.join(details)})"
        return where

    def _trace_worker_error(
        self,
        wid: int,
        node_name: Optional[str],
        slice_idx: Optional[int],
        period: Optional[int],
    ) -> None:
        from repro.obs.tracer import CAT_META

        self.tracer.instant(
            "worker_error",
            CAT_META,
            tid=wid,
            args={
                "worker": wid,
                "filter": node_name,
                "schedule_slice": slice_idx,
                "steady_iteration": period,
            },
        )

    # -- public API ------------------------------------------------------------

    def run_init(self, fired: Dict[FlatNode, int]) -> None:
        self._run_command(_CMD_INIT)
        for node, count in self.interp.program.init:
            fired[node] += count
        # The parent runs worker 0's slice, so entering steady state with
        # the collector debt from graph construction and forking unpaid
        # slows its slice and starves every ring it feeds (measured 4-7x
        # end-to-end on a single-CPU host).  Init is warmup by definition —
        # settle the heap here, once, never inside a steady run.
        gc.collect()

    def run_steady(self, fired: Dict[FlatNode, int], periods: int) -> None:
        if periods <= 0:
            return
        self._run_command(_CMD_STEADY, periods)
        for node, count in self.interp.program.steady:
            fired[node] += count * periods

    @property
    def alive_workers(self) -> int:
        """Live child processes (teardown tests)."""
        return sum(1 for p in self._procs if p.is_alive())

    def close(self) -> None:
        """End the session: stop workers, release the shared segment.

        Safe to call at any time (mid-run failure, cancellation, repeated
        calls); afterwards the interpreter refuses further parallel runs.
        """
        if self._closed:
            return
        self._closed = True
        # The watchdog reads ring counters straight from the arena; stop it
        # before any view is detached so its last tick sees live memory.
        if self._watchdog is not None:
            self._watchdog.stop()
            self._watchdog = None
        try:
            healthy = (
                self._started
                and not self._failed
                and not self._arena.aborted
                and all(p.is_alive() for p in self._procs)
            )
            if healthy:
                try:
                    self._header[1] = _CMD_SHUTDOWN
                    self.protocol["commands"]["shutdown"] += 1
                    self._start_barrier.wait(timeout=10)
                except Exception:
                    self._arena.abort()
                    self._abort_barriers()
            else:
                self._arena.abort()
                self._abort_barriers()
            for proc in self._procs:
                proc.join(timeout=10)
            for proc in self._procs:
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join(timeout=10)
        finally:
            stragglers = [p for p in self._procs if p.is_alive()]
            # A cleanly-shut-down arena parks its shared segment in the warm
            # pool so the next session of the same footprint skips
            # shm_open+mmap; anything suspect (abort, failure, stuck worker)
            # is released and unlinked outright.
            clean = (
                not self.legacy
                and not self._failed
                and not stragglers
                and not self._arena.aborted
            )
            self._procs = stragglers
            # Drop the session's own header view, then detach + release via
            # the finalizer (which runs exactly once; later calls no-op).
            self._header = None
            if clean:
                _park_arena(self._arena)
            self._finalizer()

    # -- introspection ---------------------------------------------------------

    def protocol_report(self) -> Dict[str, object]:
        """Control-plane accounting: forks, commands, barrier waits.

        ``commands["steady"] == steady_runs`` is the batched-protocol
        invariant — exactly one control command per worker per steady run,
        however many periods it spans.
        """
        report = dict(self.protocol)
        report["commands"] = dict(self.protocol["commands"])
        report["steady_seconds"] = self.steady_seconds
        report["workers"] = self.n_workers
        report["discipline"] = self.discipline
        return report

    def busy_report(self) -> Dict[int, Dict[str, float]]:
        """Per-worker busy/stall attribution from the ring stall counters.

        A worker's stall time is the sum of producer-side waits on rings it
        feeds plus consumer-side waits on rings it drains (the counters are
        cumulative across init + steady, read from shared memory); busy time
        is the session's steady wall clock minus that.  The spread of
        ``busy_share`` across workers is the skew the rebalancer acts on.
        """
        wall = self.steady_seconds
        report: Dict[int, Dict[str, float]] = {
            wid: {"stall_s": 0.0} for wid in range(self.n_workers)
        }
        for edge in self.ring_edges:
            stats = self.channels[edge].stall_stats()
            report[self.node_wid[edge.src]]["stall_s"] += stats["producer_stall_s"]
            report[self.node_wid[edge.dst]]["stall_s"] += stats["consumer_stall_s"]
        for row in report.values():
            row["wall_s"] = wall
            row["busy_s"] = max(0.0, wall - row["stall_s"])
            row["busy_share"] = (row["busy_s"] / wall) if wall > 0 else 0.0
        return report

    def layout_report(self) -> Dict[str, object]:
        """Worker topology summary (docs, tests, diagnostics)."""
        return {
            "strategy": self.strategy,
            "cores": self.cores,
            "discipline": self.discipline,
            "protocol": self.protocol_report(),
            "workers": {
                spec.wid: sorted(n.name for n in spec.nodes)
                for spec in self.specs
            },
            "ring_edges": [
                f"{e.src.name}->{e.dst.name}" for e in self.ring_edges
            ],
            "batch_periods": self.batch_periods,
            "work_profiled": self.work_profile is not None,
            "rings_proved": sum(1 for p in self.ring_proofs.values() if p.proved),
            "ring_capacities": {
                f"{e.src.name}->{e.dst.name}": self.channels[e].capacity
                for e in self.ring_edges
            },
            "ring_proofs": [
                self.ring_proofs[e].payload()
                for e in self.ring_edges
                if e in self.ring_proofs
            ],
        }
