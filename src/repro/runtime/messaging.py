"""Teleport messaging: portals, time intervals, and delivery bookkeeping.

A :class:`Portal` broadcasts *control messages* (method invocations) from a
sender filter to registered receiver filters.  Delivery timing follows the
paper's wavefront semantics: a message sent with latency ``λ`` while the
sender has pushed ``s`` items arrives

* **downstream** — immediately before the first receiver firing whose
  outputs could be affected by the sender's ``λ``-th future output batch:
  delivery occurs before the firing that would push ``n(O_B)`` past
  ``y = max[O_A->O_B](s + push_A·(λ-1))``;
* **upstream** — immediately after the receiver firing that produces the
  last item which can affect the sender's ``λ``-th future output batch:
  after the firing that brings ``n(O_B)`` to ``y = min[O_B->O_A](s +
  push_A·λ)``.

``BEST_EFFORT`` messages are delivered at the receiver's next firing
boundary with no wavefront guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import MessagingError
from repro.graph.base import Filter


@dataclass(frozen=True)
class TimeInterval:
    """Wavefront-relative delivery window ``[min_time, max_time]``.

    Only ``max_time`` drives delivery in this implementation (as in the
    paper's operational treatment, which schedules against the maximum
    latency); ``min_time`` is validated and retained for analyses.
    """

    max_time: int
    min_time: int = 0

    def __post_init__(self) -> None:
        if self.min_time < 0 or self.max_time < self.min_time:
            raise MessagingError(
                f"invalid TimeInterval [{self.min_time}, {self.max_time}]"
            )


#: Deliver at the receiver's next firing; no wavefront guarantee.
BEST_EFFORT: Optional[TimeInterval] = None


@dataclass
class PendingMessage:
    """A sent-but-undelivered control message."""

    sender: Filter
    receiver: Filter
    method: str
    args: Tuple[Any, ...]
    kwargs: Dict[str, Any]
    #: None for best-effort delivery.
    latency: Optional[int]
    #: Threshold on n(O_receiver) computed at send time (None = best effort).
    threshold: Optional[int] = None
    #: "upstream" (deliver after firing) or "downstream" (before firing).
    direction: str = "downstream"
    #: Open streamscope send→delivery record (:mod:`repro.obs`), if traced.
    obs: Optional[Dict[str, Any]] = None

    def firings_until_due(self, produced: int, push: int) -> int:
        """Safe batch size for the receiver before this message is due.

        Delegates to :func:`repro.scheduling.sdep.delivery_firings` — the
        batched engine fires the receiver at most this many times before
        re-checking delivery, so chunk boundaries land exactly on the
        SDEP-derived delivery points.
        """
        from repro.scheduling.sdep import delivery_firings

        return delivery_firings(self.threshold, produced, push, self.direction)

    def deliver(self) -> None:
        handler = getattr(self.receiver, self.method, None)
        if handler is None or not callable(handler):
            raise MessagingError(
                f"receiver {self.receiver.name} has no message handler "
                f"{self.method!r}"
            )
        handler(*self.args, **self.kwargs)


class _BoundMessage:
    """Callable returned by ``portal.<method>``; sends on invocation."""

    def __init__(self, portal: "Portal", method: str) -> None:
        self._portal = portal
        self._method = method

    def __call__(self, *args: Any, interval: Optional[TimeInterval] = BEST_EFFORT, **kwargs: Any) -> None:
        self._portal.send(self._method, args, kwargs, interval)


class Portal:
    """Broadcast messaging endpoint (the paper's auto-generated Portals).

    Usage inside a sender's ``work``::

        self.freq_hop.setf(new_freq, interval=TimeInterval(max_time=6))

    Receivers are added with :meth:`register`; every registered receiver's
    handler method is invoked at its delivery boundary.  The portal must be
    attached to an :class:`~repro.runtime.interpreter.Interpreter` (done
    automatically for portals reachable from filter attributes).
    """

    def __init__(self, name: str = "portal") -> None:
        self.name = name
        self.receivers: List[Filter] = []
        self._runtime = None  # bound by the interpreter

    def register(self, receiver: Filter) -> None:
        """Add a receiver; all messages are broadcast to every receiver."""
        if not isinstance(receiver, Filter):
            raise MessagingError(f"portal receivers must be Filters, got {receiver!r}")
        self.receivers.append(receiver)

    def bind(self, runtime) -> None:
        """Attach to a running interpreter (called by the runtime)."""
        self._runtime = runtime

    def send(
        self,
        method: str,
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
        interval: Optional[TimeInterval],
    ) -> None:
        """Send ``method(*args, **kwargs)`` to every registered receiver."""
        if self._runtime is None:
            raise MessagingError(
                f"portal {self.name!r} is not bound to a running interpreter"
            )
        if not self.receivers:
            raise MessagingError(f"portal {self.name!r} has no registered receivers")
        latency = None if interval is None else interval.max_time
        for receiver in self.receivers:
            self._runtime.post_message(receiver, method, args, kwargs, latency)

    def __getattr__(self, name: str) -> _BoundMessage:
        if name.startswith("_"):
            raise AttributeError(name)
        return _BoundMessage(self, name)
