"""Schedule-driven execution of flattened stream graphs.

The :class:`Interpreter` allocates a :class:`~repro.runtime.channel.Channel`
per flat edge, binds filter input/output channels, and executes the computed
initialization schedule followed by steady-state periods.  Splitter and
joiner nodes are executed natively (one firing = one distribution cycle).

Teleport messaging integrates here: portals reachable from filter attributes
are bound automatically, message thresholds are computed with the wavefront
oracle at send time, and deliveries happen exactly at the firing boundaries
the semantics prescribe.

Two execution engines share this front end (see DESIGN.md, "Execution
engines"):

* ``engine="scalar"`` — the reference path: Python-list channels, one
  ``work()`` call per firing, messaging checks interleaved.
* ``engine="batched"`` — an :class:`~repro.runtime.plan.ExecutionPlan`
  compiled from the same schedule, running block kernels over
  :class:`~repro.runtime.array_channel.ArrayChannel` tapes.  Portal-bound
  programs run batched too (period-at-a-time, with receiver batches split
  at the SDEP-derived delivery points); the only remaining fallback to the
  scalar path is a portal inside a feedback-interleaved schedule, which is
  reported via :class:`~repro.errors.EngineDowngradeWarning` (or raises
  with ``strict=True``).  Check :attr:`Interpreter.engine_used` to see
  which engine actually ran.
* ``engine="parallel"`` — a :class:`~repro.runtime.parallel.ParallelSession`
  runs the batched executors across forked worker processes, one per core
  a mapping strategy assigns work to, with shared-memory ring buffers on
  cross-worker edges.  Graphs the parallel engine cannot run safely
  (teleport portals, dynamic-rate filters, degenerate partitions)
  downgrade to ``engine="batched"`` with an ``SL304`` diagnostic.
* ``engine="codegen"`` — a :class:`~repro.runtime.codegen.CodegenPlan`
  generates one fused source module per plan (kernels spliced inline,
  fused chains unrolled, the feedback core an inlined closed loop) and
  executes ``run_chunk(scale)`` directly — no per-block dispatch loop.
  Unliftable blocks fall back to their batched executors and teleport
  messaging disables codegen for the whole plan, both reported with an
  ``SL305`` diagnostic.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import EngineDowngradeWarning, MessagingError, StreamItError
from repro.graph.base import Filter, Stream
from repro.graph.flatgraph import FILTER, JOINER, SPLITTER, FlatGraph, FlatNode
from repro.graph.splitjoin import COMBINE, DUPLICATE, NULL, ROUND_ROBIN
from repro.graph.validation import validate
from repro.obs.metrics import METRICS
from repro.obs.recorder import FLIGHT
from repro.runtime.array_channel import ArrayChannel
from repro.runtime.channel import Channel
from repro.runtime.messaging import PendingMessage, Portal
from repro.runtime.plan import ExecutionPlan, single_topological_sweep
from repro.scheduling.sdep import WavefrontOracle
from repro.scheduling.steady import ProgramSchedule, build_schedule

#: Valid values for ``Interpreter(engine=...)``.
ENGINES = ("scalar", "batched", "parallel", "codegen")

# Always-on telemetry (repro.obs.metrics): families resolved once at import
# so the per-run cost is a handful of dict adds.  Everything here records at
# *run* granularity — never per period, firing, or item.
_M_SESSIONS = METRICS.counter(
    "repro_sessions_total", "Interpreter sessions by the engine that actually ran"
)
_M_RUNS = METRICS.counter("repro_runs_total", "run_steady() calls by engine")
_M_PERIODS = METRICS.counter(
    "repro_periods_total", "Steady-state periods executed by engine"
)
_M_ITEMS = METRICS.counter(
    "repro_items_total", "Items moved across graph edges (rate-derived) by engine"
)
_M_RUN_SECONDS = METRICS.histogram(
    "repro_run_seconds", "Wall-clock latency of one run_steady() call"
)
_M_RUN_ITEMS = METRICS.histogram(
    "repro_run_items", "Rate-derived item volume of one run_steady() call"
)
_M_RUN_ERRORS = METRICS.counter(
    "repro_run_errors_total", "run_steady() calls that raised, by engine"
)
_M_DOWNGRADES = METRICS.counter(
    "repro_engine_downgrades_total", "Structured engine downgrades by SLxxx code"
)


class Interpreter:
    """Executes a stream program.

    Args:
        stream: the top-level (closed) stream to run.
        check: run full semantic validation before executing.
        engine: ``"scalar"`` (reference, one ``work()`` per firing),
            ``"batched"`` (compiled plan over array channels; teleport
            portals run batched period-at-a-time), ``"parallel"``
            (batched executors across forked worker processes; see
            :mod:`repro.runtime.parallel`), or ``"codegen"`` (one fused
            generated module per plan; see :mod:`repro.runtime.codegen`).
        strict: with ``engine="batched"`` or ``engine="parallel"``, raise
            :class:`StreamItError` instead of emitting
            :class:`EngineDowngradeWarning` when the request cannot be
            honoured in full (engine fallback or loss of superbatching).
        strategy: with ``engine="parallel"``, the mapping strategy whose
            partition decides worker placement (a key of
            :data:`repro.mapping.strategies.STRATEGIES`).
        cores: with ``engine="parallel"``, how many cores the strategy maps
            to.  Defaults to the machine's CPU count; on a single-CPU host
            the default honestly degrades to the batched engine with an
            ``SL304`` diagnostic instead of forking workers that would
            serialize on one core (pass ``cores=`` explicitly to force it).
        tune: profile-guided optimization (:mod:`repro.tune`).  ``None`` /
            ``False`` / ``"off"`` (default) uses the static heuristics;
            ``True`` looks up the tuned-plan cache for this (plan, host)
            fingerprint and applies a hit (a stale entry — plan or host
            fingerprint mismatch — is discarded with an ``SL306``
            diagnostic); ``"force"`` measures fresh tuned parameters now
            (chunk ladder + calibration on clones of the stream, the
            original's state untouched), stores them, and applies them.
        trace: observability (:mod:`repro.obs`).  ``None`` (default) keeps
            the zero-cost null tracer; ``True`` records into a fresh
            :class:`~repro.obs.MemoryTracer` (inspect ``interp.tracer``);
            a string/path writes a Chrome trace-event file there on
            :meth:`close`; any :class:`~repro.obs.Tracer` is used as-is.

    Typical use::

        interp = Interpreter(app)
        interp.run(periods=100)
        print(sink.collected)

    A filter's ``input``/``output`` channels belong to the interpreter that
    bound them last; constructing a second interpreter over the same stream
    invalidates the first (running it raises), because silently sharing
    live filter state would cross-wire both.
    """

    def __init__(
        self,
        stream: Stream,
        check: bool = True,
        engine: str = "scalar",
        strict: bool = False,
        strategy: str = "softpipe",
        cores: Optional[int] = None,
        tune: Any = None,
        trace: Any = None,
    ) -> None:
        if engine not in ENGINES:
            raise StreamItError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.engine = engine
        self._trace_path: Optional[str] = None
        self.tracer = self._resolve_tracer(trace)
        self.strict = bool(strict)
        self.strategy = strategy
        self.tune = self._normalize_tune(tune)
        self._cores_explicit = cores is not None
        if cores is None:
            import os

            cores = os.cpu_count() or 1
        self.cores = int(cores)
        self.stream = stream
        self.graph: FlatGraph = validate(stream) if check else None  # type: ignore
        if self.graph is None:
            from repro.graph.flatgraph import flatten

            self.graph = flatten(stream)
        self.program: ProgramSchedule = build_schedule(self.graph)
        self.channels: Dict[object, Channel] = {}
        self.fired: Dict[FlatNode, int] = {node: 0 for node in self.graph.nodes}
        self._executors: Dict[FlatNode, Callable[[], None]] = {}
        self._pending: Dict[FlatNode, List[PendingMessage]] = {}
        self._oracle: Optional[WavefrontOracle] = None
        self._current_node: Optional[FlatNode] = None
        self._initialized = False
        self.plan: Optional[ExecutionPlan] = None
        #: Live multicore session when ``engine="parallel"`` is in effect.
        self.parallel: Optional[Any] = None
        #: Structured engine downgrades (analysis Diagnostics, SL302/SL303).
        self.downgrades: List[Any] = []
        #: Tuned parameters in effect (:class:`repro.tune.TunedParams`),
        #: or None when tuning is off / missed the cache.
        self.tuned: Optional[Any] = None
        self._tuned_info: Dict[str, Any] = {"mode": self.tune, "outcome": "off"}
        self._setup()

    # -- setup ---------------------------------------------------------------

    @staticmethod
    def _normalize_tune(tune: Any) -> str:
        if tune is None or tune is False or tune == "off":
            return "off"
        if tune is True or tune == "on":
            return "on"
        if tune == "force":
            return "force"
        raise StreamItError(
            f'tune must be True, False, "off", or "force"; got {tune!r}'
        )

    def _resolve_tracer(self, trace: Any):
        from repro.obs.tracer import NULL_TRACER, MemoryTracer, Tracer

        if trace is None or trace is False:
            return NULL_TRACER
        if trace is True:
            return MemoryTracer()
        if isinstance(trace, Tracer):
            return trace
        if isinstance(trace, (str, bytes)) or hasattr(trace, "__fspath__"):
            self._trace_path = str(trace)
            return MemoryTracer()
        raise StreamItError(
            f"trace must be None, True, a path, or a Tracer; got {trace!r}"
        )

    def _setup(self) -> None:
        # Plan feasibility must be decided before channels are allocated
        # (it selects Channel vs ArrayChannel): portal-bound programs run
        # batched when the steady schedule is a single topological sweep —
        # then every delivery point falls on a phase-internal batch boundary
        # the plan can honour.  A portal inside a feedback-interleaved
        # schedule needs per-firing delivery everywhere, so it downgrades to
        # the scalar engine (warning, or an error under ``strict``).
        portals = self._find_portals()
        self._portals = portals
        self.has_messaging = bool(portals)
        if self.tune != "off":
            self._resolve_tuning()
        engine = self.engine
        if engine == "parallel":
            from repro.runtime.parallel import ParallelSession, ParallelUnsafe

            if self.cores < 2 and not self._cores_explicit:
                # Honest core detection: on a single-CPU host the fork +
                # barrier tax guarantees a loss, so the *default* degrades
                # rather than forcing 2 serialized workers.  An explicit
                # cores= still goes through (and fails with the same
                # SL304 if it asks for < 2).
                self._engine_downgrade(
                    f"this host reports {self.cores} usable CPU(s); forked "
                    "workers would serialize on one core (pass cores= "
                    "explicitly to override); falling back to the batched "
                    "engine",
                    code="SL304",
                )
                engine = "batched"
            else:
                work_profile = (
                    self.tuned.work
                    if self.tuned is not None and self.tuned.work
                    else None
                )
                try:
                    self.parallel = ParallelSession(
                        self, self.strategy, self.cores, work_profile=work_profile
                    )
                except ParallelUnsafe as exc:
                    self._engine_downgrade(
                        f"parallel execution unavailable: {exc}; falling back "
                        "to the batched engine",
                        code="SL304",
                    )
                    engine = "batched"
        batched = engine in ("batched", "codegen")
        if batched and self.has_messaging and not single_topological_sweep(
            self.graph, self.program.steady
        ):
            self._engine_downgrade(
                "teleport portals bound inside a feedback-interleaved schedule "
                "need per-firing delivery points; falling back to the scalar "
                "engine",
                code="SL302",
            )
            batched = False
        if self.parallel is not None:
            # The session decided Ring vs Array per edge when it planned the
            # partition; adopt its channel map wholesale.
            self.channels = self.parallel.channels
        else:
            channel_cls = ArrayChannel if batched else Channel
            if batched and self.tracer.enabled:
                # Traced runs pay for occupancy high-water tracking; the
                # untraced engine keeps the plain class (and its hot path).
                from repro.obs.counters import HwmArrayChannel

                channel_cls = HwmArrayChannel
            for edge in self.graph.edges:
                self.channels[edge] = channel_cls(
                    name=f"{edge.src.name}->{edge.dst.name}", initial=edge.initial
                )
        self._owner_token = object()
        for node in self.graph.nodes:
            if node.kind == FILTER:
                filt = node.filter
                filt.input = self.channels[node.in_edges[0]] if node.in_edges else None
                filt.output = self.channels[node.out_edges[0]] if node.out_edges else None
                filt._rt_owner = self._owner_token
            self._executors[node] = self._make_executor(node)
        for portal in portals:
            portal.bind(self)
        if batched and self.parallel is None:
            if engine == "codegen":
                from repro.runtime.codegen import CodegenPlan

                # No SL303 here: a segmented schedule is codegen's home
                # turf (the cyclic core inlines into the generated loop);
                # any genuine degradation surfaces as SL305 instead.
                self.plan = CodegenPlan(self)
            else:
                self.plan = ExecutionPlan(self)
                if not self.plan.superbatch and not self.has_messaging:
                    self._engine_downgrade(
                        "feedback loop interleaves the steady schedule; batched "
                        "execution degrades to segmented superbatching (the "
                        "cyclic core runs period-at-a-time)",
                        code="SL303",
                    )
        self._apply_tuning()
        # Rate-derived items per steady period (static rates make this
        # exact): the per-run volume metric without counting anything at
        # run time.
        self._items_per_period = sum(
            self.program.reps[e.src] * e.push_rate for e in self.graph.edges
        )
        if METRICS.enabled:
            used = self.engine_used
            _M_SESSIONS.inc(engine=used)
            FLIGHT.record(
                "engine_selected",
                engine=used,
                requested=self.engine,
                **({"strategy": self.strategy} if used == "parallel" else {}),
            )

    # -- profile-guided tuning ------------------------------------------------

    def _resolve_tuning(self) -> None:
        """Resolve tuned parameters before any engine is constructed.

        Runs early in ``_setup`` so the parallel branch can hand the
        measured work profile to the partitioner; chunk/presize application
        waits until the plan exists (:meth:`_apply_tuning`).
        """
        from repro.runtime.plan import ExecutionPlan as _Plan
        from repro.tune import load_tuned, stream_fingerprint

        senders, receivers = _Plan._messaging_endpoints(self)
        fingerprint = stream_fingerprint(
            self.graph, self.program, senders, receivers
        )
        self._tuned_info["fingerprint"] = fingerprint
        if self.tune == "force":
            from repro.tune import tune_stream

            result = tune_stream(self.stream, engine=self.engine, store=True)
            self.tuned = result.params
            self._tuned_info.update(
                outcome="forced",
                default_chunk=result.default_chunk,
                best_chunk=result.best_chunk,
                gain=result.gain,
            )
            return
        outcome, params, reason, _meta = load_tuned(fingerprint)
        self._tuned_info["outcome"] = outcome
        if outcome == "hit":
            self.tuned = params
        elif outcome == "stale":
            self._tuned_info["reason"] = reason
            self._tuning_discard(reason)

    def _tuning_discard(self, reason: str) -> None:
        """``SL306``: a tuned-plan entry exists but cannot be trusted here.

        Unlike an engine downgrade this never raises under ``strict``:
        discarding stale parameters and running the static defaults *is*
        the requested behaviour — the diagnostic only makes the discard
        visible instead of silently applying another machine's numbers.
        """
        message = (
            f"discarding cached tuned parameters: {reason}; running with "
            "static defaults (re-tune with tune='force' or python -m "
            "repro.tune)"
        )
        if METRICS.enabled:
            _M_DOWNGRADES.inc(code="SL306")
            FLIGHT.record("engine_downgrade", code="SL306", reason=reason[:160])
        diagnostic = None
        try:
            from repro.analysis import Diagnostic

            diagnostic = Diagnostic.make("SL306", message, self.stream)
            self.downgrades.append(diagnostic)
        except Exception:  # pragma: no cover - analysis layer unavailable
            pass
        warning = EngineDowngradeWarning(f"[SL306] {message}")
        warning.diagnostic = diagnostic
        warnings.warn(warning, stacklevel=5)

    def _apply_tuning(self) -> None:
        """Apply resolved tuned parameters to the constructed engine."""
        params = self.tuned
        if params is None:
            return
        applied: Dict[str, Any] = {}
        if (
            self.plan is not None
            and params.chunk_periods
            and not self.has_messaging
        ):
            self.plan.chunk_periods = max(1, int(params.chunk_periods))
            applied["chunk_periods"] = self.plan.chunk_periods
            if params.reserve_items:
                self.plan.presize(params.reserve_items)
                applied["reserved_edges"] = len(params.reserve_items)
        if self.parallel is not None and params.work:
            applied["work_profile_nodes"] = len(params.work)
        self._tuned_info["applied"] = applied

    def _engine_downgrade(self, reason: str, code: str = "SL302") -> None:
        if METRICS.enabled:
            _M_DOWNGRADES.inc(code=code)
            FLIGHT.record("engine_downgrade", code=code, reason=reason[:160])
        diagnostic = None
        try:
            from repro.analysis import Diagnostic

            diagnostic = Diagnostic.make(code, reason, self.stream)
            self.downgrades.append(diagnostic)
        except Exception:  # pragma: no cover - analysis layer unavailable
            pass
        if self.strict:
            raise StreamItError(
                f"engine={self.engine!r} strict mode: [{code}] {reason}"
            )
        warning = EngineDowngradeWarning(f"[{code}] {reason}")
        warning.diagnostic = diagnostic
        warnings.warn(warning, stacklevel=4)

    @property
    def engine_used(self) -> str:
        """The engine actually executing (after any structured downgrade)."""
        if self.parallel is not None:
            return "parallel"
        if self.plan is None:
            return "scalar"
        if getattr(self.plan, "codegen_active", False):
            return "codegen"
        return "batched"

    def engine_report(self) -> Dict[str, Any]:
        """Structured engine outcome: which engine ran, why it degraded.

        ``downgrades`` lists the analysis diagnostics (``SL302`` scalar
        fallback, ``SL303`` superbatch degradation) behind every
        :class:`EngineDowngradeWarning` this interpreter emitted, and
        ``vectorization`` (batched engine only) maps each generically-lifted
        filter to its executor mode, trusted-proof status, and structured
        downgrade reason.
        """
        report: Dict[str, Any] = {
            "requested": self.engine,
            "used": self.engine_used,
            "downgrades": [
                {"code": d.code, "message": d.message} for d in self.downgrades
            ],
        }
        if self.plan is not None:
            report["vectorization"] = self.plan.vectorization_report()
            from repro.runtime.plan import plan_cache_summary

            report["plan_cache"] = plan_cache_summary()
            codegen_report = getattr(self.plan, "codegen_report", None)
            if codegen_report is not None:
                report["codegen"] = codegen_report()
        if self.parallel is not None:
            report["parallel"] = self.parallel.layout_report()
        graph_analysis = self._graph_analysis_report()
        if graph_analysis is not None:
            report["graph_analysis"] = graph_analysis
        if self.tune != "off":
            from repro.tune import tuned_cache_summary

            report["tuned"] = {
                **self._tuned_info,
                "cache": tuned_cache_summary(),
            }
        else:
            report["tuned"] = {"mode": "off"}
        return report

    def _graph_analysis_report(self) -> Optional[Dict[str, Any]]:
        """Whole-graph analysis facts behind this session's execution.

        Parallel sessions contribute their per-ring capacity proofs;
        codegen plans contribute the certified fusion regions they fused.
        Shared-state race groups are reported for every engine.  ``None``
        for plain scalar/batched runs with nothing to report.
        """
        try:
            from repro.analysis.graph import analyze_flat_graph
        except Exception:  # pragma: no cover - analysis layer unavailable
            return None
        try:
            analysis = analyze_flat_graph(self.graph)
        except Exception:  # pragma: no cover - analyzer crash
            return None
        report: Dict[str, Any] = {
            "shared_state": [g.payload() for g in analysis.shared_state],
            "unbounded": [list(u) for u in analysis.unbounded],
            "regions_certified": [r.payload() for r in analysis.regions],
        }
        if self.parallel is not None:
            proofs = getattr(self.parallel, "ring_proofs", {})
            report["rings"] = [
                proofs[e].payload()
                for e in self.parallel.ring_edges
                if e in proofs
            ]
            report["rings_proved"] = sum(
                1 for p in proofs.values() if p.proved
            )
        if self.plan is not None and getattr(self.plan, "codegen_active", False):
            regions = getattr(self.plan, "_certified_regions", None)
            if regions is not None:
                report["regions_fused"] = [r.payload() for r, _run in regions]
        if (
            self.parallel is None
            and "regions_fused" not in report
            and not report["shared_state"]
            and not report["unbounded"]
            and not report["regions_certified"]
        ):
            return None
        return report

    def _find_portals(self) -> List[Portal]:
        portals: List[Portal] = []
        seen = set()
        for node in self.graph.filter_nodes():
            for value in vars(node.filter).values():
                if isinstance(value, Portal) and id(value) not in seen:
                    seen.add(id(value))
                    portals.append(value)
        return portals

    def _check_ownership(self) -> None:
        for node in self.graph.filter_nodes():
            if getattr(node.filter, "_rt_owner", None) is not self._owner_token:
                raise StreamItError(
                    f"filter {node.filter.name!r} has been re-bound by another "
                    "Interpreter since this one was created; a filter's "
                    "input/output channels (and mutable state) belong to one "
                    "live interpreter at a time — build a fresh stream per "
                    "interpreter instead of sharing one"
                )

    def _make_executor(self, node: FlatNode) -> Callable[[], None]:
        if node.kind == FILTER:
            return node.filter.work
        if node.kind == SPLITTER:
            return self._make_splitter(node)
        if node.kind == JOINER:
            return self._make_joiner(node)
        raise StreamItError(f"unknown node kind {node.kind!r}")

    def _make_splitter(self, node: FlatNode) -> Callable[[], None]:
        flavor = node.flavor
        if flavor == NULL:
            return lambda: None
        in_chan = self.channels[node.in_edges[0]]
        outs = [self.channels[e] for e in node.out_edges]
        if flavor == DUPLICATE:
            def fire_duplicate() -> None:
                item = in_chan.pop()
                for chan in outs:
                    chan.push(item)

            return fire_duplicate
        # Weighted round robin: per firing, weights[b] items to branch b.
        weights = [node.out_rates[e.src_port] for e in node.out_edges]

        def fire_roundrobin() -> None:
            for chan, w in zip(outs, weights):
                if w:
                    chan.push_many(in_chan.pop_many(w))

        return fire_roundrobin

    def _make_joiner(self, node: FlatNode) -> Callable[[], None]:
        flavor = node.flavor
        if flavor == NULL:
            return lambda: None
        out_chan = self.channels[node.out_edges[0]]
        ins = [self.channels[e] for e in node.in_edges]
        if flavor == COMBINE:
            owner = node.obj
            reducer = getattr(getattr(owner, "joiner", None), "reducer", None)
            if reducer is None:
                reducer = lambda items: items[0]

            def fire_combine() -> None:
                out_chan.push(reducer([chan.pop() for chan in ins]))

            return fire_combine
        weights = [node.in_rates[e.dst_port] for e in node.in_edges]

        def fire_roundrobin() -> None:
            for chan, w in zip(ins, weights):
                if w:
                    out_chan.push_many(chan.pop_many(w))

        return fire_roundrobin

    # -- messaging -----------------------------------------------------------

    def post_message(
        self,
        receiver: Filter,
        method: str,
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
        latency: Optional[int],
    ) -> None:
        """Record a message sent from the currently firing filter."""
        sender_node = self._current_node
        if sender_node is None or sender_node.kind != FILTER:
            raise MessagingError("messages may only be sent from inside work()")
        sender = sender_node.filter
        recv_node = self.graph.node_for(receiver)
        message = PendingMessage(
            sender=sender,
            receiver=receiver,
            method=method,
            args=args,
            kwargs=dict(kwargs),
            latency=latency,
        )
        deliver_now = False
        if latency is not None:
            if self._oracle is None:
                self._oracle = WavefrontOracle(self.graph)
            if not sender_node.out_edges or not recv_node.out_edges:
                raise MessagingError(
                    "wavefront-timed messages require both endpoints to have "
                    "output tapes; use best-effort delivery for sinks"
                )
            o_a = sender_node.out_edges[0]
            o_b = recv_node.out_edges[0]
            s = self.channels[o_a].pushed_count
            push_a = o_a.push_rate
            if self._oracle.is_upstream(o_b, o_a):
                message.direction = "upstream"
                message.threshold = self._oracle.min_items(
                    o_b, o_a, s + push_a * latency
                )
                # Already past the wavefront: deliver immediately.
                deliver_now = self.channels[o_b].pushed_count >= message.threshold
            elif self._oracle.is_upstream(o_a, o_b):
                message.direction = "downstream"
                message.threshold = self._oracle.max_items(
                    o_a, o_b, s + push_a * (latency - 1)
                )
            else:
                raise MessagingError(
                    f"{sender.name} and {receiver.name} run in parallel; "
                    "parallel message timing is beyond the paper's scope"
                )
        if self.tracer.enabled:
            self._trace_send(recv_node, message)
        if deliver_now:
            self._deliver_one(message)
            return
        self._pending.setdefault(recv_node, []).append(message)

    def _deliver_one(self, msg: PendingMessage) -> None:
        msg.deliver()
        if self.tracer.enabled:
            self._trace_delivery(msg)

    # -- teleport observability ------------------------------------------------

    def _trace_send(self, recv_node: FlatNode, message: PendingMessage) -> None:
        """Open a send→delivery record for one teleport message."""
        from repro.obs.tracer import CAT_TELEPORT

        out_edge = recv_node.out_edges[0] if recv_node.out_edges else None
        record = {
            "sender": message.sender.name,
            "receiver": message.receiver.name,
            "method": message.method,
            "latency": message.latency,
            "direction": message.direction,
            "threshold": message.threshold,
            #: n(O_receiver) at send time — delivery latency in receiver
            #: firings is measured from here.
            "sent_n": int(self.channels[out_edge].pushed_count) if out_edge else 0,
            "push": out_edge.push_rate if out_edge is not None else 0,
            "delivered_n": None,
            "latency_iterations": None,
            "sdep_ok": None,
        }
        message.obs = record
        self.tracer.meta.setdefault("teleports", []).append(record)
        self.tracer.instant(
            f"teleport.send {record['sender']}->{record['receiver']}.{record['method']}",
            CAT_TELEPORT,
            args={
                "latency": record["latency"],
                "threshold": record["threshold"],
                "direction": record["direction"],
                "sent_n": record["sent_n"],
            },
        )

    def _trace_delivery(self, msg: PendingMessage) -> None:
        """Close the record: where on the receiver's tape delivery landed."""
        record = msg.obs
        if record is None:
            return
        from repro.obs.tracer import CAT_TELEPORT
        from repro.scheduling.sdep import delivery_on_boundary

        recv_node = self.graph.node_for(msg.receiver)
        delivered_n = (
            int(self.channels[recv_node.out_edges[0]].pushed_count)
            if recv_node.out_edges
            else 0
        )
        record["delivered_n"] = delivered_n
        push = record["push"]
        if push:
            record["latency_iterations"] = (delivered_n - record["sent_n"]) // push
        record["sdep_ok"] = delivery_on_boundary(
            msg.threshold, delivered_n, push, msg.direction
        )
        self.tracer.instant(
            f"teleport.deliver {record['sender']}->{record['receiver']}.{record['method']}",
            CAT_TELEPORT,
            args={
                "delivered_n": delivered_n,
                "threshold": record["threshold"],
                "latency_iterations": record["latency_iterations"],
                "sdep_ok": record["sdep_ok"],
            },
        )

    def _deliver_before(self, node: FlatNode) -> None:
        """Deliver messages due immediately before a firing of ``node``."""
        queue = self._pending.get(node)
        if not queue:
            return
        push_b = node.out_edges[0].push_rate if node.out_edges else 0
        n_ob = self.channels[node.out_edges[0]].pushed_count if node.out_edges else 0
        remaining: List[PendingMessage] = []
        for msg in queue:
            due = msg.threshold is None or (
                msg.direction == "downstream" and n_ob + push_b > msg.threshold
            )
            if due:
                self._deliver_one(msg)
            else:
                remaining.append(msg)
        if remaining:
            self._pending[node] = remaining
        else:
            del self._pending[node]

    def _deliver_after(self, node: FlatNode) -> None:
        """Deliver messages due immediately after a firing of ``node``."""
        queue = self._pending.get(node)
        if not queue:
            return
        n_ob = self.channels[node.out_edges[0]].pushed_count if node.out_edges else 0
        remaining: List[PendingMessage] = []
        for msg in queue:
            if msg.direction == "upstream" and msg.threshold is not None and n_ob >= msg.threshold:
                self._deliver_one(msg)
            else:
                remaining.append(msg)
        if remaining:
            self._pending[node] = remaining
        else:
            del self._pending[node]

    # -- execution -----------------------------------------------------------

    def _execute_phases(self, phases: Sequence[Tuple[FlatNode, int]]) -> None:
        if self.tracer.enabled:
            self._execute_phases_traced(phases)
            return
        executors = self._executors
        for node, count in phases:
            fire = executors[node]
            self._current_node = node
            if self._pending:
                for _ in range(count):
                    self._deliver_before(node)
                    fire()
                    self._deliver_after(node)
            else:
                for _ in range(count):
                    fire()
                    if self._pending:
                        self._deliver_after(node)
            self.fired[node] += count
            self._current_node = None

    def _execute_phases_traced(self, phases: Sequence[Tuple[FlatNode, int]]) -> None:
        """Scalar execution with one span per schedule phase.

        Per-phase (not per-firing) spans keep the recorder small and the
        overhead bounded: a phase fires one node ``count`` times back to
        back, which is exactly the granularity a profile attributes time at.
        """
        from time import perf_counter

        from repro.obs.tracer import CAT_FILTER

        tracer = self.tracer
        executors = self._executors
        for node, count in phases:
            fire = executors[node]
            self._current_node = node
            push = node.out_edges[0].push_rate if node.out_edges else 0
            t0 = perf_counter()
            if self._pending:
                for _ in range(count):
                    self._deliver_before(node)
                    fire()
                    self._deliver_after(node)
            else:
                for _ in range(count):
                    fire()
                    if self._pending:
                        self._deliver_after(node)
            tracer.complete(
                node.name,
                CAT_FILTER,
                t0,
                perf_counter() - t0,
                args={"firings": count, "items": count * push},
            )
            self.fired[node] += count
            self._current_node = None

    def run_init(self) -> None:
        """Call filter ``init`` hooks and run the initialization schedule."""
        if self._initialized:
            return
        self._check_ownership()
        for node in self.graph.filter_nodes():
            node.filter.init()
        # Workers fork on the first parallel command — i.e. here, after the
        # init() hooks above, so children inherit initialized filter state.
        if self.tracer.enabled:
            from time import perf_counter

            from repro.obs.tracer import CAT_ENGINE

            t0 = perf_counter()
        if self.parallel is not None:
            self.parallel.run_init(self.fired)
        elif self.plan is not None:
            self.plan.run_init(self.fired)
        else:
            self._execute_phases(list(self.program.init))
        if self.tracer.enabled:
            self.tracer.complete("run_init", CAT_ENGINE, t0, perf_counter() - t0)
        self._initialized = True

    def run_steady(self, periods: int = 1) -> None:
        """Run ``periods`` steady-state periods (after initialization)."""
        if not self._initialized:
            self.run_init()
        self._check_ownership()
        if self.tracer.enabled:
            from time import perf_counter

            from repro.obs.tracer import CAT_ENGINE

            t0 = perf_counter()
            try:
                self._run_steady_engine(periods)
            finally:
                self.tracer.complete(
                    f"run_steady x{periods}",
                    CAT_ENGINE,
                    t0,
                    perf_counter() - t0,
                    args={"periods": periods, "engine": self.engine_used},
                )
            return
        self._run_steady_engine(periods)

    def _run_steady_engine(self, periods: int) -> None:
        if not METRICS.enabled:
            self._dispatch_steady(periods)
            return
        from time import perf_counter

        engine = self.engine_used
        FLIGHT.record("run_start", engine=engine, periods=periods)
        t0 = perf_counter()
        try:
            self._dispatch_steady(periods)
        except BaseException as exc:
            FLIGHT.record(
                "run_error", engine=engine, error=exc.__class__.__name__
            )
            _M_RUN_ERRORS.inc(engine=engine)
            METRICS.maybe_publish()
            raise
        elapsed = perf_counter() - t0
        items = periods * self._items_per_period
        FLIGHT.record(
            "run_end", engine=engine, periods=periods, seconds=round(elapsed, 6)
        )
        _M_RUNS.inc(engine=engine)
        _M_PERIODS.inc(periods, engine=engine)
        _M_ITEMS.inc(items, engine=engine)
        _M_RUN_SECONDS.observe(elapsed, engine=engine)
        _M_RUN_ITEMS.observe(items, engine=engine)
        METRICS.maybe_publish()

    def _dispatch_steady(self, periods: int) -> None:
        if self.parallel is not None:
            self.parallel.run_steady(self.fired, periods)
            return
        if self.plan is not None:
            self.plan.run_steady(self.fired, periods)
            return
        phases = list(self.program.steady)
        for _ in range(periods):
            self._execute_phases(phases)

    def run(self, periods: int = 1) -> None:
        """Initialize then run ``periods`` steady-state periods."""
        self.run_init()
        self.run_steady(periods)

    def flush_trace(self) -> None:
        """Finalize trace metadata (and write the trace file, if requested).

        Snapshots per-channel counters, the engine report, and plan-cache
        statistics into ``tracer.meta`` so exporters and the report CLI see
        them; called automatically from :meth:`close`.
        """
        tracer = self.tracer
        if not tracer.enabled or getattr(self, "_trace_flushed", False):
            return
        self._trace_flushed = True
        from repro.obs.counters import channel_snapshot

        if not getattr(tracer, "track_names", None):
            tracer.name_track(0, "main")
        tracer.meta["engine"] = self.engine_used
        tracer.meta["channels"] = channel_snapshot(self.channels)
        tracer.meta["engine_report"] = self.engine_report()
        if self.plan is not None:
            tracer.meta["plan_cache"] = dict(self.plan.cache_stats)
        if getattr(self.plan, "codegen_active", False):
            from repro.runtime.codegen import codegen_cache_summary

            tracer.meta["codegen_cache"] = codegen_cache_summary()
        if self._trace_path is not None:
            tracer.write(self._trace_path)
            self._trace_path = None

    def close(self) -> None:
        """Release engine resources (parallel workers, shared memory).

        Idempotent and safe on every engine; only the parallel engine holds
        resources that outlive the interpreter object.  Traced runs flush
        their metadata (and the ``trace=<path>`` file) here.
        """
        # Snapshot counters before the parallel arena (and its ring-control
        # shared memory) is torn down.
        self.flush_trace()
        if self.parallel is not None:
            self.parallel.close()
        METRICS.maybe_publish()

    def __enter__(self) -> "Interpreter":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- introspection ---------------------------------------------------------

    def items_pushed(self, filt: Filter) -> int:
        """Total items this filter has pushed (``n`` of its output tape)."""
        node = self.graph.node_for(filt)
        if not node.out_edges:
            return 0
        return self.channels[node.out_edges[0]].pushed_count

    def firings(self, filt: Filter) -> int:
        """Number of times this filter's work function has run."""
        return self.fired[self.graph.node_for(filt)]


def run_to_list(
    stream: Stream,
    sink,
    periods: int,
    check: bool = True,
    engine: str = "scalar",
    **engine_opts,
) -> List[float]:
    """Convenience: run ``periods`` steady periods, return sink's items."""
    interp = Interpreter(stream, check=check, engine=engine, **engine_opts)
    try:
        interp.run(periods)
    finally:
        interp.close()
    return list(sink.collected)
