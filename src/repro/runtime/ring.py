"""Fixed-capacity SPSC ring buffers over ``multiprocessing.shared_memory``.

The parallel engine's workers are separate OS processes; a graph edge that
crosses a worker boundary becomes a :class:`RingChannel` — a single-producer
single-consumer circular queue of ``float64`` items living in one shared
memory segment, presented through the same block API as
:class:`~repro.runtime.array_channel.ArrayChannel` (``push_block`` /
``peek_block`` / ``pop_block`` / ``drop`` plus the scalar calls), so the
batched executors from :mod:`repro.runtime.plan` run unchanged on either
side of the boundary.

Protocol (the classic Lamport queue):

* two monotonically increasing ``int64`` counters per ring — ``pushed``
  (written only by the producer) and ``popped`` (written only by the
  consumer) — each alone on a 64-byte cache line so the writers never
  false-share;
* occupancy is ``pushed - popped``; free space is ``capacity - occupancy``;
* the producer publishes items by writing the data slots *then* advancing
  ``pushed`` (a single aligned 8-byte store; on x86's total store order the
  data writes are visible first — and CPython's eval loop inserts further
  synchronization around every bytecode in practice);
* blocking calls spin briefly, then sleep with backoff, re-checking a
  session-wide *abort* flag so a crashed peer unblocks everyone (raising
  :class:`RingAbort`) instead of deadlocking; a stall past ``timeout``
  seconds raises :class:`RingStall` (suspected deadlock or dead peer) — a
  structured error carrying the blocked edge, worker, side, and occupancy.
  On an *oversubscribed* host (more workers than CPUs) spinning only steals
  the quantum the peer needs to make progress, so the wait policy adapts:
  the session sets ``spin = 0`` and the loop yields to the scheduler
  immediately instead of burning its timeslice re-reading the counters;
* every blocked wait is *accounted*: producer-side waits (no space —
  backpressure) and consumer-side waits (no items — starvation) each bump
  an event count and a nanosecond total in the ring's own control block,
  so the observability layer (:mod:`repro.obs`) reads cross-process stall
  statistics without adding a single instruction to the unblocked path.

All rings of one session share a single :class:`RingArena` segment: one
``shm_open`` per session, one header holding the abort flag, and a packed
sequence of (counters, data) regions.  The counters double as the channel's
``pushed_count`` / ``popped_count`` history counters (the paper's ``n(t)``
and ``p(t)``), so introspection like ``Interpreter.items_pushed`` works
across process boundaries for free.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence

import numpy as np
from multiprocessing import shared_memory

from repro.errors import StreamItError
from repro.runtime.channel import ChannelUnderflow

#: int64 slots reserved for the arena header (slot 0: abort flag; slots
#: 1-2 belong to the parallel session's command protocol).
_HEADER_SLOTS = 8
#: int64 slots per ring's control block.  Slot 0: pushed; slot 8: popped.
#: Stall statistics share the writer's cache line (only the blocked side
#: writes them, so no new false sharing): slots 1/2 hold the producer's
#: stall event count and total stall nanoseconds, slots 9/10 the
#: consumer's.
_CTRL_SLOTS = 16
_PROD_STALLS, _PROD_STALL_NS = 1, 2
_CONS_STALLS, _CONS_STALL_NS = 9, 10
#: While a side is blocked, its *need* slot holds how many items/slots the
#: wait is for (zero when unblocked).  The parent's stall watchdog
#: (:mod:`repro.obs.watchdog`) reads these cross-process to tell a merely
#: slow ring from one whose peer will never deliver.
_PROD_NEED, _CONS_NEED = 3, 11
#: Iterations of pure spinning before the wait loop starts yielding
#: (dedicated-core hosts; oversubscribed sessions set spin to 0).
_SPIN_ITERS = 200
#: Longest backoff sleep (seconds) while blocked on a peer.
_MAX_SLEEP = 0.001
#: Shortest backoff sleep once the spin phase (if any) is exhausted.
_MIN_SLEEP = 20e-6


class RingAbort(StreamItError):
    """The session's abort flag was raised while blocked on a ring."""


class RingStall(StreamItError):
    """A blocking ring operation made no progress within its timeout.

    Structured: ``edge`` (the ring's ``src->dst`` name), ``worker`` (the
    blocked worker's id, or None outside a session), ``side``
    (``"producer"``/``"consumer"``), ``need``, ``occupancy``, and
    ``capacity`` identify exactly which transfer starved.
    """

    def __init__(
        self,
        message: str,
        *,
        edge: str = "",
        worker: Optional[int] = None,
        side: str = "",
        need: int = 0,
        occupancy: int = 0,
        capacity: int = 0,
    ) -> None:
        super().__init__(message)
        self.edge = edge
        self.worker = worker
        self.side = side
        self.need = need
        self.occupancy = occupancy
        self.capacity = capacity


def _align(n: int, to: int = 8) -> int:
    return (n + to - 1) // to * to


class RingArena:
    """One shared-memory segment holding every ring of a parallel session.

    The parent constructs the arena (``create=True``) before forking; child
    processes inherit the mapping through fork, so no name handshake or
    re-attach is needed.  The parent is responsible for :meth:`close` +
    :meth:`unlink` at session teardown — or may :meth:`park` the segment
    into a warm pool instead, handing an already-mapped ``segment`` to the
    next arena with the same (or smaller) footprint so repeated sessions
    pay ``shm_open`` + ``mmap`` once.
    """

    @staticmethod
    def required_size(capacities: Sequence[int]) -> int:
        """Bytes a segment must hold for these ring capacities (pool sizing)."""
        cursor = _HEADER_SLOTS * 8
        for cap in capacities:
            cursor += _CTRL_SLOTS * 8 + _align(cap * 8, 64)
        return max(cursor, 64)

    def __init__(
        self,
        capacities: Sequence[int],
        segment: Optional[shared_memory.SharedMemory] = None,
    ) -> None:
        offsets: List[int] = []
        cursor = _HEADER_SLOTS * 8
        for cap in capacities:
            if cap <= 0:
                raise StreamItError(f"ring capacity must be positive, got {cap}")
            offsets.append(cursor)
            cursor += _CTRL_SLOTS * 8 + _align(cap * 8, 64)
        self._capacities = list(capacities)
        self._offsets = offsets
        self._channels: List["RingChannel"] = []
        self.size_needed = max(cursor, 64)
        self.reused = False
        if segment is not None and segment.size >= self.size_needed:
            # Adopt a parked segment: zero the header and every ring's
            # control block (counters define the live contents, so stale
            # data slots are unreachable and need no clearing).
            self.shm = segment
            self.reused = True
            for off in offsets:
                np.frombuffer(
                    self.shm.buf, dtype=np.int64, count=_CTRL_SLOTS, offset=off
                )[:] = 0
        else:
            if segment is not None:  # too small to adopt: retire it
                try:
                    segment.close()
                    segment.unlink()
                except Exception:  # pragma: no cover - already gone
                    pass
            self.shm = shared_memory.SharedMemory(
                create=True, size=self.size_needed
            )
        header = np.frombuffer(self.shm.buf, dtype=np.int64, count=_HEADER_SLOTS)
        header[:] = 0
        self._header = header
        self._unlinked = False
        self._parked = False

    # -- abort flag ----------------------------------------------------------

    @property
    def aborted(self) -> bool:
        return bool(self._header[0])

    def abort(self) -> None:
        """Raise the session-wide abort flag (unblocks every ring wait)."""
        self._header[0] = 1

    # -- ring views ----------------------------------------------------------

    def ring(
        self,
        index: int,
        name: str = "",
        initial: Iterable[float] = (),
        timeout: float = 120.0,
        spin: int = _SPIN_ITERS,
        max_sleep: float = _MAX_SLEEP,
    ) -> "RingChannel":
        """A :class:`RingChannel` view of ring ``index`` in this arena."""
        off = self._offsets[index]
        cap = self._capacities[index]
        ctrl = np.frombuffer(
            self.shm.buf, dtype=np.int64, count=_CTRL_SLOTS, offset=off
        )
        data = np.frombuffer(
            self.shm.buf, dtype=np.float64, count=cap, offset=off + _CTRL_SLOTS * 8
        )
        chan = RingChannel(
            name, ctrl, data, self._header,
            timeout=timeout, spin=spin, max_sleep=max_sleep,
        )
        init = list(initial)
        if init:
            chan.prefill(init)
        self._channels.append(chan)
        return chan

    # -- lifecycle -----------------------------------------------------------

    def park(self) -> Optional[shared_memory.SharedMemory]:
        """Detach every view and hand the still-mapped segment to the caller.

        The caller (the warm-arena pool) takes ownership: the segment stays
        open in this process so a later :class:`RingArena` can adopt it
        without a fresh ``shm_open``/``mmap``.  Returns ``None`` if the
        segment was already released.
        """
        if self._unlinked or self._parked:
            return None
        for chan in self._channels:
            chan.detach()
        self._header = None
        self._parked = True
        return self.shm

    def release(self, unlink: bool) -> None:
        """Drop this process's mapping; the creator also unlinks the segment.

        Numpy views pin the underlying ``memoryview``, so they must be
        dropped before ``close()`` or CPython raises ``BufferError``.
        Every channel this arena vended is detached here; callers holding
        additional hand-made views must drop them first.  A parked arena
        (see :meth:`park`) no longer owns the segment and is a no-op.
        """
        for chan in self._channels:
            chan.detach()
        self._header = None
        if self._parked:
            return
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - a live view escaped
            pass
        if unlink and not self._unlinked:
            self._unlinked = True
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class RingChannel:
    """SPSC shared-memory channel with the ArrayChannel block API.

    ``pushed_count``/``popped_count`` read the shared counters; blocking
    semantics are documented per method.  Exactly one process may push and
    one may pop — nothing enforces this, the planner guarantees it.
    """

    __slots__ = (
        "name",
        "_ctrl",
        "_data",
        "_header",
        "capacity",
        "timeout",
        "spin",
        "max_sleep",
        "wid",
    )

    def __init__(
        self,
        name: str,
        ctrl: np.ndarray,
        data: np.ndarray,
        header: np.ndarray,
        timeout: float = 120.0,
        spin: int = _SPIN_ITERS,
        max_sleep: float = _MAX_SLEEP,
    ) -> None:
        self.name = name
        self._ctrl = ctrl
        self._data = data
        self._header = header
        self.capacity = data.size
        self.timeout = timeout
        #: Pure-spin iterations before the wait loop yields.  Sessions set
        #: this to 0 when workers outnumber CPUs: on a timesliced host the
        #: peer needs this core, so yield immediately.
        self.spin = spin
        #: Ceiling on one backoff nap.  A blocked wait overshoots the peer's
        #: finish by at most this much, so sessions cap it well below a
        #: batch's compute time (the old 1 ms ceiling cost a visible slice
        #: of every batch on an oversubscribed host).
        self.max_sleep = max_sleep
        #: The worker id blocked waits report in RingStall (set per-process
        #: by the parallel session after fork; None outside one).
        self.wid: Optional[int] = None

    # -- counters -------------------------------------------------------------

    @property
    def pushed_count(self) -> int:
        """n(t): total items ever pushed (initial delay items count)."""
        return int(self._ctrl[0])

    @pushed_count.setter
    def pushed_count(self, value: int) -> None:
        self._ctrl[0] = value

    @property
    def popped_count(self) -> int:
        """p(t): total items ever popped."""
        return int(self._ctrl[8])

    @popped_count.setter
    def popped_count(self, value: int) -> None:
        self._ctrl[8] = value

    @property
    def occupancy(self) -> int:
        return int(self._ctrl[0] - self._ctrl[8])

    def stall_stats(self) -> dict:
        """Cumulative blocked-wait statistics, both sides, in seconds.

        ``producer_*`` is backpressure (pushes that found no space),
        ``consumer_*`` is starvation (pops/peeks that found no items).
        Readable from any process sharing the arena.
        """
        ctrl = self._ctrl
        return {
            "producer_stalls": int(ctrl[_PROD_STALLS]),
            "producer_stall_s": float(ctrl[_PROD_STALL_NS]) * 1e-9,
            "consumer_stalls": int(ctrl[_CONS_STALLS]),
            "consumer_stall_s": float(ctrl[_CONS_STALL_NS]) * 1e-9,
        }

    def blocked_needs(self) -> tuple:
        """``(producer_need, consumer_need)`` — nonzero while a side is blocked.

        A snapshot of the need slots the blocked ``_wait`` path maintains;
        readable from any process sharing the arena (the watchdog's view of
        who is waiting for what, racy by design).
        """
        ctrl = self._ctrl
        return (int(ctrl[_PROD_NEED]), int(ctrl[_CONS_NEED]))

    def __len__(self) -> int:
        return int(self._ctrl[0] - self._ctrl[8])

    def prefill(self, items: Sequence[float]) -> None:
        """Seed initial delay items (parent only, before workers start)."""
        n = len(items)
        if n > self.capacity:
            raise StreamItError(
                f"ring {self.name!r}: {n} initial items exceed capacity {self.capacity}"
            )
        self._data[:n] = np.asarray(items, dtype=np.float64)
        self._ctrl[0] = n

    # -- blocking -------------------------------------------------------------

    def _wait(self, need: int, *, for_space: bool) -> None:
        """Block until ``need`` items (or free slots) are available."""
        ctrl = self._ctrl
        if for_space:
            if need > self.capacity:
                raise StreamItError(
                    f"ring {self.name!r}: a single push of {need} items can "
                    f"never fit capacity {self.capacity} (planner bug)"
                )
            ready = lambda: self.capacity - (ctrl[0] - ctrl[8]) >= need
        else:
            ready = lambda: ctrl[0] - ctrl[8] >= need
        if ready():
            return
        # The blocked path: account the stall (events + nanoseconds) in the
        # blocked side's own control slots.  The unblocked path above pays
        # nothing for this.
        stall_slot = _PROD_STALLS if for_space else _CONS_STALLS
        ns_slot = _PROD_STALL_NS if for_space else _CONS_STALL_NS
        need_slot = _PROD_NEED if for_space else _CONS_NEED
        t0 = time.perf_counter_ns()
        ctrl[stall_slot] += 1
        ctrl[need_slot] = need
        header = self._header
        spin = self.spin
        max_sleep = self.max_sleep
        spins = 0
        sleep = _MIN_SLEEP
        deadline: Optional[float] = None
        try:
            while True:
                if ready():
                    return
                if header[0]:
                    raise RingAbort(f"ring {self.name!r}: session aborted by a peer")
                spins += 1
                if spins <= spin:
                    continue
                if deadline is None:
                    deadline = time.monotonic() + self.timeout
                    # First escalation: yield the timeslice outright — on an
                    # oversubscribed host the peer is runnable right now.
                    time.sleep(0)
                    continue
                if time.monotonic() > deadline:
                    raise self._stall_error(need, for_space)
                time.sleep(sleep)
                if sleep < max_sleep:
                    sleep = min(max_sleep, sleep * 2.0)
        finally:
            ctrl[need_slot] = 0
            ctrl[ns_slot] += time.perf_counter_ns() - t0

    def _stall_error(self, need: int, for_space: bool) -> RingStall:
        side = "producer" if for_space else "consumer"
        what = "space" if for_space else "items"
        who = f" (worker {self.wid})" if self.wid is not None else ""
        return RingStall(
            f"ring {self.name!r}: {side}{who} waited "
            f"{self.timeout:.0f}s for {need} {what} (occupancy "
            f"{self.occupancy}/{self.capacity}); suspected "
            "deadlock or dead peer",
            edge=self.name,
            worker=self.wid,
            side=side,
            need=need,
            occupancy=self.occupancy,
            capacity=self.capacity,
        )



    def wait_items(self, count: int) -> None:
        """Block until at least ``count`` items are readable."""
        self._wait(count, for_space=False)

    # -- block API (producer side) --------------------------------------------

    def push_block(self, block: np.ndarray) -> None:
        """Enqueue a whole array (flattened in C order); blocks on full."""
        block = np.ascontiguousarray(block, dtype=np.float64).reshape(-1)
        n = block.size
        if n == 0:
            return
        self._wait(n, for_space=True)
        pos = int(self._ctrl[0]) % self.capacity
        first = min(n, self.capacity - pos)
        self._data[pos : pos + first] = block[:first]
        if n > first:
            self._data[: n - first] = block[first:]
        # Publish: single aligned 8-byte store after the data writes.
        self._ctrl[0] += n

    def adopt_block(self, block: np.ndarray) -> None:
        """ArrayChannel compatibility: rings always copy into place."""
        self.push_block(block)

    def push(self, item: float) -> None:
        self._wait(1, for_space=True)
        self._data[int(self._ctrl[0]) % self.capacity] = item
        self._ctrl[0] += 1

    def push_many(self, items: Iterable[float]) -> None:
        self.push_block(np.asarray(list(items), dtype=np.float64))

    # -- block API (consumer side) ---------------------------------------------

    def peek_block(self, count: int) -> np.ndarray:
        """First ``count`` live items; blocks until they exist.

        Returns a zero-copy view when the window doesn't wrap (valid until
        the matching ``drop``/``pop_block`` — the producer cannot overwrite
        unpopped slots), a copy when it does.
        """
        if count < 0:
            raise ChannelUnderflow(f"peek_block({count}) on ring {self.name!r}")
        if count == 0:
            return self._data[:0]
        self._wait(count, for_space=False)
        pos = int(self._ctrl[8]) % self.capacity
        if pos + count <= self.capacity:
            return self._data[pos : pos + count]
        out = np.empty(count, dtype=np.float64)
        first = self.capacity - pos
        out[:first] = self._data[pos:]
        out[first:] = self._data[: count - first]
        return out

    def pop_block(self, count: int) -> np.ndarray:
        """Dequeue ``count`` items as an owned array; blocks until available.

        Always copies: after ``popped`` advances the producer may reuse the
        slots, so a view would be unsafe.
        """
        block = np.array(self.peek_block(count), copy=True)
        self._ctrl[8] += count
        return block

    def drop(self, count: int) -> None:
        """Discard the first ``count`` live items; blocks until they exist."""
        if count < 0:
            raise ChannelUnderflow(f"drop({count}) on ring {self.name!r}")
        if count:
            self._wait(count, for_space=False)
            self._ctrl[8] += count

    def pop(self) -> float:
        self._wait(1, for_space=False)
        item = float(self._data[int(self._ctrl[8]) % self.capacity])
        self._ctrl[8] += 1
        return item

    def pop_many(self, count: int) -> List[float]:
        return self.pop_block(count).tolist()

    def peek(self, index: int) -> float:
        if index < 0:
            raise ChannelUnderflow(f"peek({index}) on ring {self.name!r}")
        self._wait(index + 1, for_space=False)
        return float(self._data[(int(self._ctrl[8]) + index) % self.capacity])

    def snapshot(self) -> List[float]:
        """The live items, oldest first (inspection/testing; racy under load)."""
        return self.peek_block(len(self)).tolist()

    def detach(self) -> None:
        """Drop the shared-memory views so the segment can close cleanly.

        Numpy views pin the segment's ``memoryview``; a detached channel is
        unusable (any operation raises) but no longer blocks
        ``SharedMemory.close()``.
        """
        self._ctrl = self._data = self._header = None
