"""Numpy-backed FIFO tape for the batched execution engine.

:class:`ArrayChannel` is a drop-in replacement for
:class:`~repro.runtime.channel.Channel` holding its items in a contiguous
``float64`` buffer.  On top of the scalar ``push``/``pop``/``peek`` API it
adds *block* operations — :meth:`push_block`, :meth:`pop_block`,
:meth:`peek_block`, :meth:`drop` — that move or expose whole firing windows
as numpy arrays in O(1) amortized time, which is what makes the batched
``work_batch`` kernels free of per-item Python overhead.

Layout: a single buffer with ``_head``/``_tail`` cursors.  Instead of
wrapping around (a classic ring buffer would make ``peek_block`` windows
discontiguous at the seam), the live region slides back to the front of the
buffer when the dead prefix dominates; each item is therefore moved O(1)
amortized times and every peek window is a zero-copy contiguous view.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.runtime.channel import ChannelUnderflow

#: Buffers start small and grow geometrically.
_MIN_CAPACITY = 16


class ArrayChannel:
    """A numeric FIFO tape backed by a sliding numpy buffer.

    Maintains the same history counters as ``Channel``: ``pushed_count`` is
    the paper's ``n(t)``, ``popped_count`` is ``p(t)``.
    """

    __slots__ = ("name", "_buf", "_head", "_tail", "pushed_count", "popped_count")

    def __init__(self, name: str = "", initial: Iterable[float] = ()) -> None:
        self.name = name
        init = np.asarray(list(initial), dtype=np.float64)
        cap = max(_MIN_CAPACITY, 2 * len(init))
        self._buf = np.empty(cap, dtype=np.float64)
        self._buf[: len(init)] = init
        self._head = 0
        self._tail = len(init)
        #: n(t): total items ever pushed (initial delay items count).
        self.pushed_count = len(init)
        #: p(t): total items ever popped.
        self.popped_count = 0

    def __len__(self) -> int:
        return self._tail - self._head

    @property
    def occupancy(self) -> int:
        """Items currently live on the channel (``n(t) - p(t)``)."""
        return self._tail - self._head

    # -- internal --------------------------------------------------------------

    def _reserve(self, extra: int) -> None:
        """Ensure ``extra`` more items fit after ``_tail``."""
        if self._tail + extra <= self._buf.size:
            return
        occ = self._tail - self._head
        need = occ + extra
        if need <= self._buf.size and self._head * 2 >= self._buf.size:
            # Slide the live region to the front; the regions cannot
            # overlap because the dead prefix is at least half the buffer.
            self._buf[:occ] = self._buf[self._head : self._tail]
        else:
            cap = max(self._buf.size * 2, need, _MIN_CAPACITY)
            new = np.empty(cap, dtype=np.float64)
            new[:occ] = self._buf[self._head : self._tail]
            self._buf = new
        self._head = 0
        self._tail = occ

    def reserve(self, n: int) -> None:
        """Pre-size the buffer so ``n`` more items fit without regrowing.

        The tuned-plan presizing hook: a superbatched chunk of ``c``
        periods pushes ``c * items_per_period`` onto each edge before the
        consumer drains it, so reserving that up front moves every buffer
        doubling out of the steady loop.  Semantically a no-op.
        """
        if n > 0:
            self._reserve(int(n))

    # -- scalar API (Channel-compatible) ---------------------------------------

    def push(self, item: float) -> None:
        """Enqueue ``item`` at the back of the channel."""
        self._reserve(1)
        self._buf[self._tail] = item
        self._tail += 1
        self.pushed_count += 1

    def push_many(self, items: Iterable[float]) -> None:
        """Enqueue several items preserving order (accepts any iterable)."""
        block = np.asarray(
            items if isinstance(items, np.ndarray) else list(items), dtype=np.float64
        )
        self.push_block(block)

    def pop(self) -> float:
        """Dequeue and return the oldest item."""
        if self._head >= self._tail:
            raise ChannelUnderflow(f"pop from empty channel {self.name!r}")
        item = float(self._buf[self._head])
        self._head += 1
        self.popped_count += 1
        return item

    def pop_many(self, count: int) -> List[float]:
        """Dequeue ``count`` items, oldest first, as a Python list."""
        return self.pop_block(count).tolist()

    def peek(self, index: int) -> float:
        """Item ``index`` slots from the front; ``peek(0)`` is next to pop."""
        pos = self._head + index
        if index < 0 or pos >= self._tail:
            raise ChannelUnderflow(
                f"peek({index}) on channel {self.name!r} holding {self.occupancy}"
            )
        return float(self._buf[pos])

    def snapshot(self) -> List[float]:
        """The live items, oldest first (for inspection/testing)."""
        return self._buf[self._head : self._tail].tolist()

    # -- block API (the batched fast path) -------------------------------------

    def push_block(self, block: np.ndarray) -> None:
        """Enqueue a whole array of items (flattened in C order)."""
        block = np.ascontiguousarray(block, dtype=np.float64).reshape(-1)
        n = block.size
        self._reserve(n)
        self._buf[self._tail : self._tail + n] = block
        self._tail += n
        self.pushed_count += n

    def adopt_block(self, block: np.ndarray) -> None:
        """Make ``block`` the channel's entire contents, copying only if needed.

        Fast path for fused pipelines: when the channel is empty, the pushed
        array *becomes* the backing buffer (zero-copy for a contiguous
        float64 input), skipping ``_reserve`` and the memcpy of
        :meth:`push_block`.  Falls back to :meth:`push_block` when items are
        already queued.
        """
        if self._head != self._tail:
            self.push_block(block)
            return
        block = np.ascontiguousarray(block, dtype=np.float64).reshape(-1)
        if not block.flags.writeable:
            block = block.copy()
        self._buf = block
        self._head = 0
        self._tail = block.size
        self.pushed_count += block.size

    def peek_block(self, count: int) -> np.ndarray:
        """Zero-copy view of the first ``count`` live items.

        The view is valid until the next mutation of this channel; batched
        executors consume it before returning.
        """
        if count < 0 or self._head + count > self._tail:
            raise ChannelUnderflow(
                f"peek_block({count}) on channel {self.name!r} holding {self.occupancy}"
            )
        return self._buf[self._head : self._head + count]

    def pop_block(self, count: int) -> np.ndarray:
        """Dequeue ``count`` items as an array view (see :meth:`peek_block`)."""
        block = self.peek_block(count)
        self._head += count
        self.popped_count += count
        return block

    def drop(self, count: int) -> None:
        """Discard the first ``count`` live items (a pop without the values)."""
        if count < 0 or self._head + count > self._tail:
            raise ChannelUnderflow(
                f"drop({count}) on channel {self.name!r} holding {self.occupancy}"
            )
        self._head += count
        self.popped_count += count

    def detach_all(self) -> List[float]:
        """Remove and return every live item *without* touching the history
        counters — a custody transfer to a scratch tape (the items were
        already counted when pushed, and the tape's consumer will be
        accounted for in bulk by its owner)."""
        items = self._buf[self._head : self._tail].tolist()
        self._head = self._tail = 0
        return items
