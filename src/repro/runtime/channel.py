"""FIFO channels ("tapes") connecting filters at runtime.

A channel records the *history counters* used throughout the paper's
semantics: ``pushed_count`` is ``n(t)`` (total items ever pushed onto tape
``t``) and ``popped_count`` is ``p(t)``.  Occupancy is ``n(t) - p(t)``.

The buffer is a Python list with a moving head index; ``pop`` is amortized
O(1) and ``peek(i)`` is O(1).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.errors import StreamItError

_COMPACT_THRESHOLD = 4096


class ChannelUnderflow(StreamItError):
    """An attempt to pop or peek beyond the items available on a channel."""


class Channel:
    """A typed FIFO queue between two filters (the paper's ``Channel``)."""

    __slots__ = ("name", "_buf", "_head", "pushed_count", "popped_count")

    def __init__(self, name: str = "", initial: Iterable[float] = ()) -> None:
        self.name = name
        self._buf: List[float] = list(initial)
        self._head = 0
        #: n(t): total items ever pushed (initial delay items count).
        self.pushed_count = len(self._buf)
        #: p(t): total items ever popped.
        self.popped_count = 0

    def __len__(self) -> int:
        return len(self._buf) - self._head

    @property
    def occupancy(self) -> int:
        """Items currently live on the channel (``n(t) - p(t)``)."""
        return len(self._buf) - self._head

    def push(self, item: float) -> None:
        """Enqueue ``item`` at the back of the channel."""
        self._buf.append(item)
        self.pushed_count += 1

    def push_many(self, items: Iterable[float]) -> None:
        """Enqueue several items preserving order."""
        before = len(self._buf)
        self._buf.extend(items)
        self.pushed_count += len(self._buf) - before

    def pop(self) -> float:
        """Dequeue and return the oldest item."""
        if self._head >= len(self._buf):
            raise ChannelUnderflow(f"pop from empty channel {self.name!r}")
        item = self._buf[self._head]
        self._head += 1
        self.popped_count += 1
        if self._head >= _COMPACT_THRESHOLD and self._head * 2 >= len(self._buf):
            del self._buf[: self._head]
            self._head = 0
        return item

    def pop_many(self, count: int) -> List[float]:
        """Dequeue ``count`` items, oldest first."""
        if self.occupancy < count:
            raise ChannelUnderflow(
                f"pop {count} from channel {self.name!r} holding {self.occupancy}"
            )
        head = self._head
        items = self._buf[head : head + count]
        self._head = head + count
        self.popped_count += count
        if self._head >= _COMPACT_THRESHOLD and self._head * 2 >= len(self._buf):
            del self._buf[: self._head]
            self._head = 0
        return items

    def peek(self, index: int) -> float:
        """Item ``index`` slots from the front; ``peek(0)`` is next to pop."""
        pos = self._head + index
        if index < 0 or pos >= len(self._buf):
            raise ChannelUnderflow(
                f"peek({index}) on channel {self.name!r} holding {self.occupancy}"
            )
        return self._buf[pos]

    def snapshot(self) -> List[float]:
        """The live items, oldest first (for inspection/testing)."""
        return self._buf[self._head :]

    # -- block API -------------------------------------------------------------
    # Mirrors ArrayChannel so work_batch kernels run on either channel kind
    # (the batched engine always uses ArrayChannel; these list-based forms
    # exist for direct testing of work_batch implementations).

    def push_block(self, block) -> None:
        """Enqueue a whole array of items (flattened in C order)."""
        import numpy as np

        values = np.ascontiguousarray(block, dtype=np.float64).reshape(-1)
        self._buf.extend(values.tolist())
        self.pushed_count += values.size

    def peek_block(self, count: int):
        """The first ``count`` live items as a float64 array (a copy)."""
        import numpy as np

        if count < 0 or self.occupancy < count:
            raise ChannelUnderflow(
                f"peek_block({count}) on channel {self.name!r} holding {self.occupancy}"
            )
        return np.asarray(self._buf[self._head : self._head + count], dtype=np.float64)

    def pop_block(self, count: int):
        """Dequeue ``count`` items as a float64 array."""
        block = self.peek_block(count)
        self.drop(count)
        return block

    def drop(self, count: int) -> None:
        """Discard the first ``count`` live items (a pop without the values)."""
        if count < 0 or self.occupancy < count:
            raise ChannelUnderflow(
                f"drop({count}) on channel {self.name!r} holding {self.occupancy}"
            )
        self._head += count
        self.popped_count += count
        if self._head >= _COMPACT_THRESHOLD and self._head * 2 >= len(self._buf):
            del self._buf[: self._head]
            self._head = 0
