"""Generic filter vectorization: synthesize ``work_batch`` for any filter.

PR 1's batched engine only vectorized filters with a hand-written
``work_batch``.  This module lifts *arbitrary* filters onto the block path:

* **Lifting** (stateless filters): the filter's own ``work()`` is re-run with
  its channels rebound to *vector shims* — ``pop()``/``peek(i)`` return whole
  columns of a ``sliding_window_view`` over the input tape (one row per
  firing, stride = pop rate), ``push()`` collects column vectors — so one
  call of ``work`` computes all ``n`` firings at once.  ``math.*`` calls are
  redirected to a vector-math namespace that is *bit-identical* to ``math``
  per element (numpy ufuncs where this platform's libm agrees bit-for-bit,
  ``np.frompyfunc`` element-wise wrappers everywhere else), preserving the
  scalar engine's exact floating-point results.
* **Hoisted-I/O loop** (everything else): ``work()`` still runs once per
  firing, but over a plain Python list snapshot of the input tape with all
  ArrayChannel indexing hoisted out of the loop — the items and arithmetic
  are exactly the scalar engine's.

Whether a filter *may* be lifted is decided adaptively per instance:

1. a bytecode screen rejects work functions that store attributes/globals
   (overridable via :attr:`Filter.stateless`);
2. on the executor's first call, a **trial** runs a scalar reference loop
   and the lifted kernel side-by-side on clones of the filter over a copy of
   the first real input window, and adopts the lifted kernel only if the
   outputs are bit-identical, the declared rates were honoured, and neither
   clone's state changed (statelessness proven, not assumed);
3. any later failure of the lifted kernel permanently demotes the instance
   to the hoisted loop (the real channels are never touched before a lifted
   call succeeds, so demotion is transparent).
"""

from __future__ import annotations

import copy
import dis
import math
import types
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.runtime.array_channel import ArrayChannel, ChannelUnderflow
from repro.runtime.messaging import Portal

#: Firings used by the bit-exactness trial (capped so a superbatched first
#: call doesn't pay a long scalar reference loop).
_TRIAL_FIRINGS = 32

#: Opcodes whose presence in ``work`` marks the filter as (potentially)
#: stateful or environment-mutating; such filters are never lifted.  Local
#: variable and local-subscript stores are allowed — scratch lists indexed
#: inside one firing (e.g. an in-place FFT butterfly) are still pure.
_BLOCKED_OPS = frozenset(
    {
        "STORE_ATTR",
        "DELETE_ATTR",
        "STORE_GLOBAL",
        "DELETE_GLOBAL",
        "STORE_DEREF",
        "DELETE_DEREF",
        "IMPORT_NAME",
    }
)


class _LiftError(Exception):
    """Internal: a lifted kernel violated the rate/shape contract."""


# -- vector math ------------------------------------------------------------
#
# The lifted work function must produce *bit-identical* values to per-firing
# ``math.*`` calls.  numpy's ufuncs are only used where they provably match
# this platform's libm (verified by tests/test_batched_engine.py); every
# other function is applied element-wise through the real ``math`` function
# via ``np.frompyfunc`` — vectorized dispatch, scalar libm semantics.

#: numpy ufuncs that are bit-identical to ``math.*`` here: IEEE-exact
#: operations plus the transcendentals verified on this platform.
_EXACT_UFUNCS: Dict[str, Any] = {
    "sqrt": np.sqrt,
    "sin": np.sin,
    "cos": np.cos,
    "floor": np.floor,
    "ceil": np.ceil,
    "trunc": np.trunc,
    "fabs": np.fabs,
    "copysign": np.copysign,
}

#: name -> arity for functions routed through exact element-wise wrappers.
_WRAPPED_FUNCS: Dict[str, int] = {
    "atan2": 2,
    "hypot": 2,
    "fmod": 2,
    "pow": 2,
    "atan": 1,
    "asin": 1,
    "acos": 1,
    "tan": 1,
    "exp": 1,
    "expm1": 1,
    "log": 1,
    "log1p": 1,
    "log2": 1,
    "log10": 1,
    "sinh": 1,
    "cosh": 1,
    "tanh": 1,
}


def _exact_elementwise(fn: Callable, nin: int) -> Callable:
    ufn = np.frompyfunc(fn, nin, 1)

    def wrapped(*args):
        if any(isinstance(a, np.ndarray) for a in args):
            return ufn(*args).astype(np.float64)
        return fn(*args)

    wrapped.__name__ = fn.__name__
    return wrapped


class _VecMath:
    """Drop-in for the ``math`` module inside lifted work functions."""

    def __init__(self) -> None:
        for name, ufunc in _EXACT_UFUNCS.items():
            setattr(self, name, ufunc)
        for name, nin in _WRAPPED_FUNCS.items():
            setattr(self, name, _exact_elementwise(getattr(math, name), nin))

    def __getattr__(self, name: str):
        # Constants (pi, e, tau, inf, nan) and anything unwrapped fall back
        # to the real module; an unwrapped *function* applied to an array
        # raises TypeError, which the trial turns into a loop fallback.
        return getattr(math, name)


VEC_MATH = _VecMath()


# -- lifting ---------------------------------------------------------------


def _has_blocked_ops(code: types.CodeType) -> bool:
    for instr in dis.get_instructions(code):
        if instr.opname in _BLOCKED_OPS:
            return True
    for const in code.co_consts:
        if isinstance(const, types.CodeType) and _has_blocked_ops(const):
            return True
    return False


#: (filter class, trusted) -> lifted work function, or None if unliftable.
_LIFT_CACHE: Dict[Tuple[type, bool], Optional[Callable]] = {}


def lift_work(cls: type, trusted: bool = False) -> Optional[Callable]:
    """Rebuild ``cls.work`` with ``math`` swapped for :data:`VEC_MATH`.

    Returns ``None`` when the bytecode screen rejects the work function
    (skipped when ``trusted`` — the filter declared ``stateless = True``).
    The returned function still takes ``self``; vectorization happens via
    the channel shims bound by :func:`run_lifted`, not via code rewriting.
    """
    key = (cls, trusted)
    if key not in _LIFT_CACHE:
        fn = cls.work
        lifted: Optional[Callable] = None
        if trusted or not _has_blocked_ops(fn.__code__):
            g = dict(fn.__globals__)
            if g.get("math") is math:
                g["math"] = VEC_MATH
            lifted = types.FunctionType(
                fn.__code__, g, fn.__name__, fn.__defaults__, fn.__closure__
            )
        _LIFT_CACHE[key] = lifted
    return _LIFT_CACHE[key]


class _VecIn:
    """Input shim: ``pop``/``peek`` return one *column* per call.

    ``_windows[k]`` is firing ``k``'s peek window, so column ``c`` holds the
    item each firing sees at offset ``c`` from its own tape front.
    """

    __slots__ = ("_windows", "_peek", "cursor")

    def __init__(self, windows: np.ndarray, peek: int) -> None:
        self._windows = windows
        self._peek = peek
        self.cursor = 0

    def pop(self) -> np.ndarray:
        c = self.cursor
        if c >= self._peek:
            raise ChannelUnderflow(f"lifted pop past peek window ({self._peek})")
        self.cursor = c + 1
        return self._windows[:, c]

    def peek(self, index: int) -> np.ndarray:
        c = self.cursor + index
        if index < 0 or c >= self._peek:
            raise ChannelUnderflow(f"lifted peek({index}) past window ({self._peek})")
        return self._windows[:, c]


class _VecOut:
    """Output shim: collects one column (or broadcast scalar) per ``push``."""

    __slots__ = ("cols",)

    def __init__(self) -> None:
        self.cols: List[Any] = []

    def push(self, item: Any) -> None:
        self.cols.append(item)


def run_lifted(filt, lifted: Callable, n: int) -> None:
    """Execute ``n`` firings of ``filt`` through one lifted ``work`` call.

    The real channels are untouched until the lifted call has produced a
    complete, rate-consistent output matrix — on any failure the caller can
    fall back to the per-firing loop with no state to unwind.
    """
    rate = filt.rate
    pop, peek, push = rate.pop, rate.peek, rate.push
    inp, out = filt.input, filt.output
    base = inp.peek_block((n - 1) * pop + peek)
    windows = sliding_window_view(base, peek)[::pop]
    vin = _VecIn(windows, peek)
    vout = _VecOut()
    filt.input = vin
    filt.output = vout
    try:
        lifted(filt)
    finally:
        filt.input = inp
        filt.output = out
    if vin.cursor != pop:
        raise _LiftError(f"popped {vin.cursor}, declared {pop}")
    if len(vout.cols) != push:
        raise _LiftError(f"pushed {len(vout.cols)} columns, declared {push}")
    if push:
        mat = np.empty((n, push))
        for j, col in enumerate(vout.cols):
            arr = np.asarray(col, dtype=np.float64)
            if arr.ndim == 0:
                mat[:, j] = arr
            elif arr.shape == (n,):
                mat[:, j] = arr
            else:
                raise _LiftError(f"column {j} has shape {arr.shape}, need ({n},)")
    inp.drop(n * pop)
    if push:
        out.push_block(mat)


# -- hoisted-I/O per-firing loop -------------------------------------------


class _ListTape:
    """Input shim for the loop fallback: plain-list reads, no array indexing."""

    __slots__ = ("_items", "cursor")

    def __init__(self, items: List[float]) -> None:
        self._items = items
        self.cursor = 0

    def pop(self) -> float:
        c = self.cursor
        if c >= len(self._items):
            raise ChannelUnderflow("pop on exhausted batch window")
        self.cursor = c + 1
        return self._items[c]

    def peek(self, index: int) -> float:
        j = self.cursor + index
        if index < 0 or j >= len(self._items):
            raise ChannelUnderflow(f"peek({index}) beyond batch window")
        return self._items[j]


class _ListSink:
    __slots__ = ("items",)

    def __init__(self) -> None:
        self.items: List[float] = []

    def push(self, item: float) -> None:
        self.items.append(item)


def run_loop(filt, n: int) -> None:
    """``n`` scalar ``work()`` firings with channel I/O hoisted to lists.

    Values round-trip through Python floats exactly as on the scalar engine,
    so results are bit-identical for *any* filter, stateful or not.
    """
    inp, out = filt.input, filt.output
    tape = _ListTape(inp.peek_block(len(inp)).tolist()) if inp is not None else None
    sink = _ListSink() if out is not None else None
    filt.input = tape
    filt.output = sink
    try:
        for _ in range(n):
            filt.work()
    finally:
        filt.input = inp
        filt.output = out
    if tape is not None and tape.cursor:
        inp.drop(tape.cursor)
    if sink is not None and sink.items:
        out.push_block(np.asarray(sink.items, dtype=np.float64))


# -- trial ------------------------------------------------------------------

#: Attributes that are runtime wiring, not filter state.
_NON_STATE_ATTRS = frozenset({"input", "output", "parent", "uid", "name", "rate", "_rt_owner"})


def _state_items(filt) -> Dict[str, Any]:
    return {k: v for k, v in vars(filt).items() if k not in _NON_STATE_ATTRS}


def _values_equal(a: Any, b: Any) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(np.asarray(a), np.asarray(b))
    try:
        return bool(a == b)
    except Exception:
        return False


def _state_equal(filt, other) -> bool:
    sa, sb = _state_items(filt), _state_items(other)
    if sa.keys() != sb.keys():
        return False
    return all(_values_equal(sa[k], sb[k]) for k in sa)


def _clone(filt):
    """Deep copy of a filter with runtime wiring (and the graph) detached."""
    saved = {k: vars(filt).get(k, _clone) for k in ("input", "output", "parent", "_rt_owner")}
    for k in saved:
        if saved[k] is not _clone:
            setattr(filt, k, None)
    try:
        clone = copy.deepcopy(filt)
    finally:
        for k, v in saved.items():
            if v is not _clone:
                setattr(filt, k, v)
    return clone


def _trial_ok(filt, lifted: Callable, n: int) -> bool:
    """Prove the lifted kernel on clones before touching real state.

    A scalar reference loop and the lifted kernel run on two fresh clones of
    ``filt`` over copies of the first ``n`` real input windows.  Adoption
    requires bit-identical outputs, declared rates honoured, and both
    clones' state unchanged — a filter that mutates state (in ways the
    bytecode screen cannot see, e.g. ``self.history.append``) fails here and
    drops to the loop path.
    """
    try:
        rate = filt.rate
        pop, peek, push = rate.pop, rate.peek, rate.push
        window = np.array(filt.input.peek_block((n - 1) * pop + peek), copy=True)
        ref, cand = _clone(filt), _clone(filt)

        ref.input = ArrayChannel("trial.ref.in", window)
        ref.output = ArrayChannel("trial.ref.out")
        for _ in range(n):
            ref.work()
        if ref.input.popped_count != n * pop or len(ref.output) != n * push:
            return False

        cand.input = ArrayChannel("trial.cand.in", window)
        cand.output = ArrayChannel("trial.cand.out")
        run_lifted(cand, lifted, n)
        if len(cand.output) != n * push:
            return False

        expect = ref.output.peek_block(n * push)
        got = cand.output.peek_block(n * push)
        if not np.array_equal(expect, got):
            return False
        return _state_equal(ref, filt) and _state_equal(cand, filt)
    except Exception:
        return False


# -- the adaptive executor --------------------------------------------------


class BatchExecutor:
    """Per-instance batched executor for filters without a hand kernel.

    Mode resolution is lazy (first call): filters carrying a static
    vectorization proof from :mod:`repro.analysis` adopt the lifted kernel
    immediately (``trusted`` — no trial clones); everything else falls back
    to the empirical trial.  ``kind`` is ``"untried"``, ``"lifted"`` or
    ``"loop"``; a structured downgrade reason (an ``SL301`` diagnostic) is
    kept on :attr:`downgrade` whenever the static proof failed.
    """

    __slots__ = ("filt", "lifted", "mode", "trusted", "downgrade", "_allow_trusted")

    def __init__(self, filt, allow_trusted: bool = True) -> None:
        self.filt = filt
        self.trusted = False
        self.downgrade = None
        hint = getattr(filt, "stateless", None)
        has_portal = any(isinstance(v, Portal) for v in vars(filt).values())
        if hint is False or has_portal or filt.rate.pop < 1:
            self.lifted = None
            if hint is False:
                reason = "filter opts out via stateless=False"
            elif has_portal:
                reason = "holds a teleport portal (message sender)"
            else:
                reason = "sources (pop == 0) are not batch-lifted"
            self.downgrade = self._make_downgrade((reason,))
        else:
            self.lifted = lift_work(type(filt), trusted=(hint is True))
            if self.lifted is None:
                self.downgrade = self._make_downgrade(
                    ("bytecode screen: work() stores attributes or globals",)
                )
        self.mode: Optional[str] = None if self.lifted is not None else "loop"
        self._allow_trusted = bool(allow_trusted) and self.lifted is not None

    def _make_downgrade(self, reasons):
        try:
            from repro.analysis.vectorsafety import VectorProof

            return VectorProof(False, tuple(reasons)).diagnostic(self.filt)
        except Exception:  # pragma: no cover - analysis layer unavailable
            return None

    def _certify(self) -> bool:
        """Consult the static vectorization proof; record the outcome.

        Runs at first call — after ``init()`` — so the effects/rate passes
        see the instance's live attribute values.
        """
        try:
            from repro.analysis import analyze_filter

            analysis = analyze_filter(self.filt, refresh=True)
        except Exception:  # pragma: no cover - analysis layer unavailable
            return False
        proof = analysis.proof
        if proof.certified:
            self.downgrade = None
            return True
        self.downgrade = proof.diagnostic(self.filt)
        return False

    @property
    def kind(self) -> str:
        return self.mode or "untried"

    def __call__(self, n: int) -> None:
        if n <= 0:
            return
        if self.mode is None:
            if self._allow_trusted and self._certify():
                # Statically proven batch-safe: adopt the lifted kernel
                # with no trial clones.  run_lifted's rate checks and the
                # demote-on-exception below remain as a runtime safety net.
                self.trusted = True
                self.mode = "lifted"
            else:
                ok = _trial_ok(self.filt, self.lifted, min(n, _TRIAL_FIRINGS))
                self.mode = "lifted" if ok else "loop"
        if self.mode == "lifted":
            try:
                run_lifted(self.filt, self.lifted, n)
                return
            except Exception:
                # A kernel that survived the trial (or the static proof)
                # can still trip on larger batches (e.g. data-dependent
                # branches that happened to be uniform over the trial
                # window).  Real channels are untouched on failure, so
                # demote and rerun via the loop.
                self.mode = "loop"
                self.trusted = False
                if self.downgrade is None:
                    self.downgrade = self._make_downgrade(
                        ("lifted kernel failed at runtime; demoted to the loop path",)
                    )
        run_loop(self.filt, n)
