"""Source emission for the whole-program codegen engine.

Given a compiled :class:`~repro.runtime.plan.ExecutionPlan`, this module
emits **one self-contained Python source module** whose ``run_chunk(scale)``
function executes ``scale`` steady periods with no interpreter dispatch
loop: the plan's phase list becomes straight-line statements, lifted kernel
ASTs are spliced in as module-level functions, fused SISO chains unroll into
per-stage statements over scratch tapes, and a segmented feedback core
(:class:`~repro.runtime.plan.CoreLoopRunner`) becomes an inlined closed
loop over plain-list tapes — ``self.pop()``/``peek``/``push`` rewritten to
list indexing by a statement-level hoisting AST transformer.

The module is *source*, not closures, so it can be cached on disk and
rebound to a structurally identical plan later (see
:mod:`repro.runtime.codegen` for the cache and the binder).  Everything a
bound module needs at run time — filter instances, channels, executors,
kernel globals — is injected into the module namespace under deterministic
names derived from node/edge indices, so emission and binding can happen in
different processes.

Per-block lowering modes (reported through ``engine_report()`` and the
``SL305`` diagnostic):

* ``inline`` — the block's computation is spliced into the module (a lifted
  kernel called through :func:`~repro.runtime.vectorize.run_lifted`, or a
  core work() body rewritten to flat statements);
* ``call`` — a direct call to an existing batched executor (hand
  ``work_batch``, vectorized splitter/joiner) — no dispatch loop, but the
  body lives outside the module;
* ``fallback`` — an uncertified filter keeps its adaptive
  :class:`~repro.runtime.vectorize.BatchExecutor` (trial machinery and
  demotion intact); these blocks are what ``SL305`` reports.
"""

from __future__ import annotations

import ast
import hashlib
import inspect
import textwrap
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.flatgraph import FILTER, JOINER, SPLITTER
from repro.graph.splitjoin import COMBINE, DUPLICATE, NULL
from repro.runtime.plan import CompiledPhase, CoreLoopRunner, FusedPhase
from repro.runtime.vectorize import BatchExecutor

#: Bump on any change to the emitted module's shape or binding contract;
#: part of the cache key, so stale on-disk modules are never rebound.
EMITTER_VERSION = 2


class Unsupported(Exception):
    """A construct the emitter cannot lower; callers fall back."""


# -- deterministic layout -----------------------------------------------------


def layout_blocks(plan) -> List[Tuple[str, object]]:
    """The plan's steady program as an ordered list of codegen blocks.

    Deterministic given the plan's structural signature, so the emitter (at
    generation time) and the binder (when rebinding a cached module to a
    fresh plan) walk the same sequence.
    """
    blocks: List[Tuple[str, object]] = []
    if plan.superbatch:
        # Certified cross-splitjoin fusion regions (repro.analysis.graph):
        # all member phases collapse into one ("region", (region, runner))
        # block at the *first* member's position — safe because the region
        # is convex (no outside node reads a region-internal edge) and the
        # joiner's output only appears earlier than before.  A SISO fused
        # chain can never straddle a region boundary (splitters/joiners
        # break chains), but guard anyway: a region whose members mix into
        # a chain with outsiders is skipped.
        regions = list(getattr(plan, "certified_regions", ()) or ())
        member_of: Dict[object, int] = {}
        for ri, (region, _runner) in enumerate(regions):
            for n in region.members:
                member_of[n] = ri
        usable = [True] * len(regions)
        for ph in plan.steady_phases:
            if isinstance(ph, FusedPhase):
                inside = {member_of.get(st.node) for st in ph.stages}
                if len(inside) > 1:
                    for ri in inside:
                        if ri is not None:
                            usable[ri] = False
        placed: set = set()
        for ph in plan.steady_phases:
            first = ph.stages[0].node if isinstance(ph, FusedPhase) else ph.node
            ri = member_of.get(first)
            if ri is not None and usable[ri]:
                if ri not in placed:
                    placed.add(ri)
                    blocks.append(("region", regions[ri]))
                continue
            blocks.append(("fused", ph) if isinstance(ph, FusedPhase) else ("phase", ph))
    elif plan.segments is not None:
        prefix, core, suffix = plan.segments
        blocks.extend(("phase", ph) for ph in prefix)
        blocks.append(("core", core))
        blocks.extend(("phase", ph) for ph in suffix)
    else:
        raise Unsupported("plan shape has no codegen lowering (messaging?)")
    return blocks


def _kernel_splicable(cls: type) -> bool:
    """Can this class's work() source be spliced as a module-level kernel?"""
    try:
        fn = cls.work
        if fn.__code__.co_freevars:
            return False
        fdef = _work_fdef(fn)
        args = fdef.args
        return (
            len(args.args) == 1
            and not args.posonlyargs
            and not args.kwonlyargs
            and args.vararg is None
            and args.kwarg is None
            and not args.defaults
        )
    except (OSError, TypeError, SyntaxError, IndexError):
        return False


def resolve_phase_mode(ph: CompiledPhase) -> str:
    """Lowering mode for one flat phase; certifies lazily when needed.

    Runs post-init (the static certification passes read live attribute
    state).  A successful certification is recorded on the executor so
    ``vectorization_report()`` agrees with the emitted module.
    """
    node = ph.node
    if node.kind != FILTER:
        return "call"
    fire = ph.fire
    if not isinstance(fire, BatchExecutor):
        return "call"  # hand work_batch
    if fire.mode == "lifted" and fire.trusted:
        return "inline" if _kernel_splicable(type(node.filter)) else "call"
    if fire.mode is None and fire._allow_trusted and fire._certify():
        fire.mode = "lifted"
        fire.trusted = True
        return "inline" if _kernel_splicable(type(node.filter)) else "call"
    return "fallback"


# -- fingerprinting -----------------------------------------------------------


def _code_fingerprint(fn) -> str:
    """Stable-ish hash of a function's behavior-bearing code."""
    try:
        code = fn.__code__
    except AttributeError:
        return repr(fn)
    return hashlib.sha256(
        b"|".join(
            [
                code.co_code,
                repr(code.co_consts).encode(),
                repr(code.co_names).encode(),
                repr(code.co_varnames).encode(),
            ]
        )
    ).hexdigest()[:16]


def plan_fingerprint(plan, signature: tuple, version: str) -> str:
    """Cache key: structural signature + per-class work code + emitter rev.

    The structural signature pins the plan *shape*; the per-class code
    hashes pin the spliced bodies, so editing a filter's ``work()`` (same
    class name, same rates) invalidates cached modules.
    """
    parts: List[str] = [repr(signature), version, str(EMITTER_VERSION)]
    # Region layout is part of the module shape: toggling
    # REPRO_CODEGEN_REGIONS (or a change in certification) must miss the
    # cache rather than rebind a module with a different block sequence.
    for region, _runner in getattr(plan, "certified_regions", ()) or ():
        parts.append("region=" + "+".join(region.member_names))
    for node in plan.graph.nodes:
        if node.kind != FILTER:
            if node.kind == JOINER and node.flavor == COMBINE:
                reducer = getattr(getattr(node.obj, "joiner", None), "reducer", None)
                parts.append(f"reducer={reducer is not None}")
            continue
        cls = type(node.filter)
        parts.append(cls.__qualname__)
        # The stateless hint is per-instance and steers certification.
        parts.append(repr(getattr(node.filter, "stateless", None)))
        parts.append(_code_fingerprint(cls.work))
        parts.append(str(bool(cls.supports_work_batch)))
        if cls.supports_work_batch:
            parts.append(_code_fingerprint(node.filter.work_batch))
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()[:32]


# -- kernel splicing ----------------------------------------------------------


def _work_fdef(fn) -> ast.FunctionDef:
    src = textwrap.dedent(inspect.getsource(fn))
    tree = ast.parse(src)
    fdef = tree.body[0]
    if not isinstance(fdef, ast.FunctionDef):
        raise Unsupported("work() source is not a plain function definition")
    return fdef


def kernel_source(cls: type, kname: str) -> str:
    """The class's work() source as a module-level kernel definition.

    The body is verbatim — vectorization comes from the channel shims bound
    by :func:`~repro.runtime.vectorize.run_lifted`, and the binder rebuilds
    the function with its original ``__globals__`` (``math`` swapped for
    the exact vector-math namespace), exactly like
    :func:`~repro.runtime.vectorize.lift_work`.
    """
    fdef = _work_fdef(cls.work)
    fdef.name = kname
    fdef.decorator_list = []
    return ast.unparse(ast.fix_missing_locations(fdef))


# -- core work() inlining -----------------------------------------------------

_BANNED_STMTS = (
    ast.Return,
    ast.Try,
    ast.With,
    ast.AsyncWith,
    ast.AsyncFor,
    ast.Global,
    ast.Nonlocal,
    ast.Import,
    ast.ImportFrom,
    ast.Raise,
    ast.Delete,
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
    ast.Match,
)

_BANNED_EXPRS = (
    ast.Lambda,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
    ast.Yield,
    ast.YieldFrom,
    ast.Await,
    ast.NamedExpr,
)


def _assigned_names(fdef: ast.FunctionDef) -> set:
    names = {a.arg for a in fdef.args.args}
    for node in ast.walk(fdef):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
    return names


def _name(ident: str) -> ast.Name:
    return ast.Name(id=ident, ctx=ast.Load())


def _store(ident: str) -> ast.Name:
    return ast.Name(id=ident, ctx=ast.Store())


def _parse_stmt(src: str) -> ast.stmt:
    return ast.parse(src).body[0]


class WorkInliner:
    """Rewrites one scalar work() body into flat statements over list tapes.

    ``self.pop()`` becomes a hoisted ``_hK = <items>[<cur>]; <cur> += 1``
    pair emitted *before* the statement containing it (in evaluation
    order, so mixed pop/peek expressions stay order-exact); ``self.peek(E)``
    hoists ``_hK = <items>[<cur> + E]``; ``self.push(E)`` (statement
    position only) becomes ``<out>.append(E)``; ``self.attr`` becomes
    ``f<i>.attr`` on the live filter instance, so arbitrary state mutation
    keeps working.  Channel ops inside conditionally-evaluated positions
    (``and``/``or`` tails, ternaries, chained-comparison tails, ``while``
    tests) raise :class:`Unsupported` — the whole core then falls back to
    the :class:`~repro.runtime.plan.CoreLoopRunner`.
    """

    def __init__(
        self,
        fn,
        fvar: str,
        in_items: Optional[str],
        in_cur: Optional[str],
        out_items: Optional[str],
        gprefix: str,
    ) -> None:
        fdef = _work_fdef(fn)
        if fn.__code__.co_freevars:
            raise Unsupported("work() closes over free variables")
        if not fdef.args.args:
            raise Unsupported("work() takes no self argument")
        for node in ast.walk(fdef):
            if node is fdef:
                continue
            if isinstance(node, _BANNED_STMTS) or isinstance(node, _BANNED_EXPRS):
                raise Unsupported(f"work() uses {type(node).__name__}")
        self.fdef = fdef
        self.self_name = fdef.args.args[0].arg
        self.fvar = fvar
        self.in_items, self.in_cur, self.out_items = in_items, in_cur, out_items
        self.gprefix = gprefix
        self.fn_globals = fn.__globals__
        self.assigned = _assigned_names(fdef)
        self.globals_seen: set = set()
        self._tmp = 0
        self.pre: List[ast.stmt] = []

    def inline(self) -> List[ast.stmt]:
        return self.stmts(self.fdef.body)

    # -- statements ----------------------------------------------------------

    def stmts(self, body: Sequence[ast.stmt]) -> List[ast.stmt]:
        out: List[ast.stmt] = []
        for st in body:
            out.extend(self.stmt(st))
        return out

    def _self_call(self, node, attr: str) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == self.self_name
            and node.func.attr == attr
        )

    def stmt(self, st: ast.stmt) -> List[ast.stmt]:
        self.pre = []
        if isinstance(st, _BANNED_STMTS):
            raise Unsupported(type(st).__name__)
        if isinstance(st, ast.Expr):
            if self._self_call(st.value, "push"):
                call = st.value
                if len(call.args) != 1 or call.keywords:
                    raise Unsupported("push() with unexpected arguments")
                if self.out_items is None:
                    raise Unsupported("push() on a filter with no output edge")
                val = self.expr(call.args[0], False)
                new: ast.stmt = ast.Expr(
                    value=ast.Call(
                        func=ast.Attribute(
                            value=_name(self.out_items), attr="append", ctx=ast.Load()
                        ),
                        args=[val],
                        keywords=[],
                    )
                )
                return self.pre + [new]
            value = self.expr(st.value, False)
            if isinstance(value, ast.Name):  # a lone hoisted pop/peek temp
                return self.pre
            return self.pre + [ast.Expr(value=value)]
        if isinstance(st, ast.Assign):
            value = self.expr(st.value, False)
            targets = [self.expr(t, False) for t in st.targets]
            return self.pre + [ast.Assign(targets=targets, value=value)]
        if isinstance(st, ast.AugAssign):
            value = self.expr(st.value, False)
            target = self.expr(st.target, False)
            return self.pre + [ast.AugAssign(target=target, op=st.op, value=value)]
        if isinstance(st, ast.AnnAssign):
            if st.value is None:
                return []
            value = self.expr(st.value, False)
            target = self.expr(st.target, False)
            return self.pre + [ast.Assign(targets=[target], value=value)]
        if isinstance(st, ast.If):
            test = self.expr(st.test, False)
            pre = self.pre
            body = self.stmts(st.body) or [ast.Pass()]
            orelse = self.stmts(st.orelse)
            return pre + [ast.If(test=test, body=body, orelse=orelse)]
        if isinstance(st, ast.While):
            test = self.expr(st.test, True)  # re-evaluated: no channel ops
            pre = self.pre
            body = self.stmts(st.body) or [ast.Pass()]
            orelse = self.stmts(st.orelse)
            return pre + [ast.While(test=test, body=body, orelse=orelse)]
        if isinstance(st, ast.For):
            it = self.expr(st.iter, False)
            pre = self.pre
            self.pre = []
            target = self.expr(st.target, True)
            if self.pre:
                raise Unsupported("channel op in a for-loop target")
            body = self.stmts(st.body) or [ast.Pass()]
            orelse = self.stmts(st.orelse)
            return pre + [ast.For(target=target, iter=it, body=body, orelse=orelse)]
        if isinstance(st, (ast.Pass, ast.Break, ast.Continue)):
            return [st]
        if isinstance(st, ast.Assert):
            test = self.expr(st.test, True)
            msg = self.expr(st.msg, True) if st.msg is not None else None
            return self.pre + [ast.Assert(test=test, msg=msg)]
        raise Unsupported(type(st).__name__)

    # -- expressions ---------------------------------------------------------

    def _new_tmp(self) -> str:
        self._tmp += 1
        return f"_h{self._tmp}"

    def expr(self, node, cond: bool):
        if node is None:
            return None
        if isinstance(node, _BANNED_EXPRS):
            raise Unsupported(type(node).__name__)
        if isinstance(node, ast.Call):
            f = node.func
            if (
                isinstance(f, ast.Attribute)
                and isinstance(f.value, ast.Name)
                and f.value.id == self.self_name
            ):
                if f.attr == "pop":
                    if cond:
                        raise Unsupported("pop() in a conditionally-evaluated position")
                    if node.args or node.keywords:
                        raise Unsupported("pop() with arguments")
                    if self.in_items is None:
                        raise Unsupported("pop() on a filter with no input edge")
                    tmp = self._new_tmp()
                    self.pre.append(
                        _parse_stmt(f"{tmp} = {self.in_items}[{self.in_cur}]")
                    )
                    self.pre.append(_parse_stmt(f"{self.in_cur} += 1"))
                    return _name(tmp)
                if f.attr == "peek":
                    if cond:
                        raise Unsupported("peek() in a conditionally-evaluated position")
                    if len(node.args) != 1 or node.keywords:
                        raise Unsupported("peek() with unexpected arguments")
                    if self.in_items is None:
                        raise Unsupported("peek() on a filter with no input edge")
                    idx = self.expr(node.args[0], cond)
                    tmp = self._new_tmp()
                    self.pre.append(
                        ast.Assign(
                            targets=[_store(tmp)],
                            value=ast.Subscript(
                                value=_name(self.in_items),
                                slice=ast.BinOp(
                                    left=_name(self.in_cur), op=ast.Add(), right=idx
                                ),
                                ctx=ast.Load(),
                            ),
                        )
                    )
                    return _name(tmp)
                if f.attr == "push":
                    raise Unsupported("push() used as an expression")
                raise Unsupported(f"opaque self.{f.attr}() call")
            func = self.expr(node.func, cond)
            args = [self.expr(a, cond) for a in node.args]
            keywords = [
                ast.keyword(arg=k.arg, value=self.expr(k.value, cond))
                for k in node.keywords
            ]
            return ast.Call(func=func, args=args, keywords=keywords)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == self.self_name:
                return ast.Attribute(value=_name(self.fvar), attr=node.attr, ctx=node.ctx)
            return ast.Attribute(
                value=self.expr(node.value, cond), attr=node.attr, ctx=node.ctx
            )
        if isinstance(node, ast.Name):
            if node.id == self.self_name:
                raise Unsupported("bare self escapes the work() body")
            if (
                isinstance(node.ctx, ast.Load)
                and node.id not in self.assigned
                and node.id in self.fn_globals
            ):
                self.globals_seen.add(node.id)
                return _name(f"{self.gprefix}{node.id}")
            return node
        if isinstance(node, ast.BoolOp):
            values = [self.expr(node.values[0], cond)] + [
                self.expr(v, True) for v in node.values[1:]
            ]
            return ast.BoolOp(op=node.op, values=values)
        if isinstance(node, ast.IfExp):
            return ast.IfExp(
                test=self.expr(node.test, cond),
                body=self.expr(node.body, True),
                orelse=self.expr(node.orelse, True),
            )
        if isinstance(node, ast.Compare):
            left = self.expr(node.left, cond)
            comparators = [self.expr(node.comparators[0], cond)] + [
                self.expr(c, True) for c in node.comparators[1:]
            ]
            return ast.Compare(left=left, ops=node.ops, comparators=comparators)
        # Generic recursion: BinOp, UnaryOp, Subscript, Slice, Tuple, List,
        # Dict, Set, Starred, f-strings, Constant, ...
        for field, old in ast.iter_fields(node):
            if isinstance(old, list):
                setattr(
                    node,
                    field,
                    [
                        self.expr(x, cond) if isinstance(x, ast.expr) else x
                        for x in old
                    ],
                )
            elif isinstance(old, ast.expr):
                setattr(node, field, self.expr(old, cond))
        return node


# -- core section emission ----------------------------------------------------


def classify_core_edges(core: CoreLoopRunner):
    """(internal, ext_in, ext_out) edge lists of a cyclic core (deterministic
    order: first-seen over the per-node edge lists, like the runner)."""
    internal, ext_in, ext_out = [], [], []
    seen = set()
    for node, _count in core.phases:
        for edge in list(node.in_edges) + list(node.out_edges):
            if edge in seen:
                continue
            seen.add(edge)
            inside_src = edge.src in core.nodes
            inside_dst = edge.dst in core.nodes
            if inside_src and inside_dst:
                internal.append(edge)
            elif inside_dst:
                ext_in.append(edge)
            elif inside_src:
                ext_out.append(edge)
    return internal, ext_in, ext_out


class CoreEmitter:
    """Emits the inlined closed loop for one cyclic schedule core."""

    def __init__(
        self, plan, core: CoreLoopRunner, node_index, edge_index, var: str = "_core"
    ) -> None:
        self.plan = plan
        self.core = core
        self.var = var
        self.node_index = node_index
        self.edge_index = edge_index
        self.globals_map: Dict[int, List[str]] = {}
        self.filter_idx: List[int] = []
        self.reducer_idx: List[int] = []
        internal, ext_in, ext_out = classify_core_edges(core)
        self.edges = internal + ext_in + ext_out
        self.popped = set(internal + ext_in)

    def _tape(self, edge) -> str:
        return f"t{self.edge_index[edge]}"

    def _cur(self, edge) -> str:
        return f"t{self.edge_index[edge]}_c"

    def emit(self) -> List[str]:
        """The core's statement lines, at run_chunk body indentation."""
        period: List[ast.stmt] = []
        for node, count in self.core.phases:
            stmts = self._node_stmts(node)
            if not stmts:
                continue
            if count == 1:
                period.extend(stmts)
            else:
                period.append(
                    ast.For(
                        target=_store("_"),
                        iter=ast.Call(
                            func=_name("range"),
                            args=[ast.Constant(value=count)],
                            keywords=[],
                        ),
                        body=stmts,
                        orelse=[],
                    )
                )
        if not period:
            raise Unsupported("empty cyclic core")
        lines = [f"{self.var}.begin()"]
        for edge in self.edges:
            lines.append(
                f"{self._tape(edge)} = {self.var}.items({self.edge_index[edge]})"
            )
        for edge in self.edges:
            if edge in self.popped:
                lines.append(f"{self._cur(edge)} = 0")
        loop = ast.For(
            target=_store("_"),
            iter=ast.Call(func=_name("range"), args=[_name("scale")], keywords=[]),
            body=period,
            orelse=[],
        )
        lines.extend(ast.unparse(ast.fix_missing_locations(loop)).splitlines())
        for edge in self.edges:
            if edge in self.popped:
                lines.append(
                    f"{self.var}.set_cursor({self.edge_index[edge]}, {self._cur(edge)})"
                )
        lines.append(f"{self.var}.end(scale)")
        return lines

    # -- per-node statement lowering -----------------------------------------

    def _node_stmts(self, node) -> List[ast.stmt]:
        if node.kind == FILTER:
            return self._filter_stmts(node)
        if node.flavor == NULL:
            return []
        if node.kind == SPLITTER:
            return self._splitter_stmts(node)
        if node.kind == JOINER:
            return self._joiner_stmts(node)
        raise Unsupported(f"unknown node kind {node.kind!r}")

    def _filter_stmts(self, node) -> List[ast.stmt]:
        i = self.node_index[node]
        in_edge = node.in_edges[0] if node.in_edges else None
        out_edge = node.out_edges[0] if node.out_edges else None
        inliner = WorkInliner(
            type(node.filter).work,
            fvar=f"f{i}",
            in_items=self._tape(in_edge) if in_edge is not None else None,
            in_cur=self._cur(in_edge) if in_edge is not None else None,
            out_items=self._tape(out_edge) if out_edge is not None else None,
            gprefix=f"_g{i}_",
        )
        stmts = inliner.inline()
        if inliner.globals_seen:
            self.globals_map[i] = sorted(inliner.globals_seen)
        self.filter_idx.append(i)
        return stmts

    def _move(self, src_items: str, src_cur: str, dst_items: str, w: int) -> List[ast.stmt]:
        if w == 1:
            return [
                _parse_stmt(f"{dst_items}.append({src_items}[{src_cur}])"),
                _parse_stmt(f"{src_cur} += 1"),
            ]
        return [
            _parse_stmt(
                f"{dst_items}.extend({src_items}[{src_cur}:{src_cur} + {w}])"
            ),
            _parse_stmt(f"{src_cur} += {w}"),
        ]

    def _splitter_stmts(self, node) -> List[ast.stmt]:
        in_edge = node.in_edges[0]
        tin, cin = self._tape(in_edge), self._cur(in_edge)
        stmts: List[ast.stmt] = []
        if node.flavor == DUPLICATE:
            stmts.append(_parse_stmt(f"_d = {tin}[{cin}]"))
            stmts.append(_parse_stmt(f"{cin} += 1"))
            for e in node.out_edges:
                stmts.append(_parse_stmt(f"{self._tape(e)}.append(_d)"))
            return stmts
        for e in node.out_edges:
            w = node.out_rates[e.src_port]
            if w:
                stmts.extend(self._move(tin, cin, self._tape(e), w))
        return stmts

    def _joiner_stmts(self, node) -> List[ast.stmt]:
        out_edge = node.out_edges[0]
        tout = self._tape(out_edge)
        stmts: List[ast.stmt] = []
        if node.flavor == COMBINE:
            i = self.node_index[node]
            reducer = getattr(getattr(node.obj, "joiner", None), "reducer", None)
            pops = []
            for k, e in enumerate(node.in_edges):
                tin, cin = self._tape(e), self._cur(e)
                stmts.append(_parse_stmt(f"_c{k} = {tin}[{cin}]"))
                stmts.append(_parse_stmt(f"{cin} += 1"))
                pops.append(f"_c{k}")
            if reducer is None:
                stmts.append(_parse_stmt(f"{tout}.append(_c0)"))
            else:
                self.reducer_idx.append(i)
                stmts.append(
                    _parse_stmt(f"{tout}.append(_rd{i}([{', '.join(pops)}]))")
                )
            return stmts
        for e in node.in_edges:
            w = node.in_rates[e.dst_port]
            if w:
                stmts.extend(self._move(self._tape(e), self._cur(e), tout, w))
        return stmts


# -- module emission ----------------------------------------------------------


def _indent(lines: Sequence[str], level: int = 1) -> List[str]:
    pad = "    " * level
    return [pad + line if line else line for line in lines]


def _kernel_call_lines(i: int, count: int) -> List[str]:
    """Guarded inline-kernel invocation with the runtime demotion net."""
    return [
        f"_n = {count} * scale",
        f"if _dm.get({i}):",
        f"    _run_loop(f{i}, _n)",
        "else:",
        "    try:",
        f"        _run_lifted(f{i}, _K{i}, _n)",
        "    except Exception:",
        f"        _dm[{i}] = True",
        f"        _run_loop(f{i}, _n)",
    ]


def emit_module(plan, fingerprint: str) -> Tuple[str, dict]:
    """Emit the plan's fused source module; returns ``(source, meta)``.

    ``meta`` (also embedded in the source as ``__codegen_meta__``) records
    the per-block lowering so a cached module can be rebound without
    re-running mode resolution, and so ``engine_report()`` can show
    codegen-vs-fallback per block.
    """
    node_index = {node: i for i, node in enumerate(plan.graph.nodes)}
    edge_index = {edge: i for i, edge in enumerate(plan.graph.edges)}
    blocks = layout_blocks(plan)

    meta_blocks: List[dict] = []
    kernel_defs: List[str] = []
    kernels_done: set = set()
    body: List[str] = []

    def add_kernel(node) -> None:
        i = node_index[node]
        if i not in kernels_done:
            kernels_done.add(i)
            kernel_defs.append(kernel_source(type(node.filter), f"_K{i}"))

    def emit_phase(ph: CompiledPhase, out: List[str]) -> dict:
        node = ph.node
        i = node_index[node]
        mode = resolve_phase_mode(ph)
        out.append(f"# {node.name}: {mode}")
        if mode == "inline":
            add_kernel(node)
            out.extend(_kernel_call_lines(i, ph.count))
        else:
            out.append(f"x{i}({ph.count} * scale)")
        return {"kind": "phase", "node": i, "mode": mode, "name": node.name}

    for kind, obj in blocks:
        if kind == "phase":
            meta_blocks.append(emit_phase(obj, body))
        elif kind == "fused":
            stages: Sequence[CompiledPhase] = obj.stages
            names = "+".join(st.node.name for st in stages)
            body.append(f"# fused chain: {names}")
            stage_meta: List[dict] = []
            chain_idx = len(meta_blocks)
            inner: List[str] = []
            restore: List[str] = []
            last = len(stages) - 1
            for si, st in enumerate(stages):
                node = st.node
                i = node_index[node]
                if si:
                    tape = f"tp{chain_idx}_{si - 1}"
                    inner.append(f"f{i}.input = {tape}")
                    restore.append(f"f{i}.input = ch{edge_index[node.in_edges[0]]}")
                if si < last:
                    tape = f"tp{chain_idx}_{si}"
                    inner.append(f"f{i}.output = {tape}")
                    restore.append(f"f{i}.output = ch{edge_index[node.out_edges[0]]}")
                stage_meta.append(emit_phase(st, inner))
            body.append("try:")
            body.extend(_indent(inner))
            body.append("finally:")
            body.extend(_indent(restore))
            for st in stages[:-1]:
                e = st.node.out_edges[0]
                moved = st.count * e.push_rate
                body.append(f"ch{edge_index[e]}.pushed_count += {moved} * scale")
                body.append(f"ch{edge_index[e]}.popped_count += {moved} * scale")
            meta_blocks.append(
                {
                    "kind": "fused",
                    "nodes": [node_index[st.node] for st in stages],
                    "stages": stage_meta,
                    "name": names,
                }
            )
        elif kind == "region":
            region, runner = obj
            rk = sum(1 for b in meta_blocks if b.get("kind") == "region")
            var = f"_rg{rk}"
            rnodes = sorted(node_index[n] for n in region.members)
            body.append(
                f"# fusion region {region.name}: "
                f"{'+'.join(n.name for n in region.members)}"
            )
            try:
                emitter = CoreEmitter(plan, runner, node_index, edge_index, var=var)
                lines = emitter.emit()
            except Unsupported as exc:
                body.append(f"# region fallback ({exc})")
                body.append(f"{var}_run(scale)")
                meta_blocks.append(
                    {
                        "kind": "region",
                        "mode": "fallback",
                        "nodes": rnodes,
                        "name": region.name,
                        "reason": str(exc),
                    }
                )
            else:
                body.extend(lines)
                meta_blocks.append(
                    {
                        "kind": "region",
                        "mode": "inline",
                        "nodes": rnodes,
                        "name": region.name,
                        "filters": emitter.filter_idx,
                        "globals": {str(k): v for k, v in emitter.globals_map.items()},
                        "reducers": emitter.reducer_idx,
                    }
                )
        else:  # core
            core: CoreLoopRunner = obj
            core_nodes = sorted(node_index[n] for n in core.nodes)
            body.append(f"# cyclic core: {'+'.join(sorted(n.name for n in core.nodes))}")
            try:
                emitter = CoreEmitter(plan, core, node_index, edge_index)
                lines = emitter.emit()
            except Unsupported as exc:
                body.append(f"# core fallback ({exc})")
                body.append("_core_run(scale)")
                meta_blocks.append(
                    {
                        "kind": "core",
                        "mode": "fallback",
                        "nodes": core_nodes,
                        "reason": str(exc),
                    }
                )
            else:
                body.extend(lines)
                meta_blocks.append(
                    {
                        "kind": "core",
                        "mode": "inline",
                        "nodes": core_nodes,
                        "filters": emitter.filter_idx,
                        "globals": {str(k): v for k, v in emitter.globals_map.items()},
                        "reducers": emitter.reducer_idx,
                    }
                )

    meta = {
        "emitter": EMITTER_VERSION,
        "fingerprint": fingerprint,
        "blocks": meta_blocks,
    }
    src_lines = [
        '"""Auto-generated by repro.runtime.codegen — do not edit.',
        "",
        "One fused steady-state module for a compiled ExecutionPlan:",
        "run_chunk(scale) executes `scale` steady periods with no engine",
        "dispatch loop.  Names like f3/x3/ch2/_K3 are injected by the",
        "binder (repro.runtime.codegen.bind_module) before first use.",
        '"""',
        "",
        f"__codegen_meta__ = {meta!r}",
        "",
    ]
    for kdef in kernel_defs:
        src_lines.append(kdef)
        src_lines.append("")
    src_lines.append("")
    src_lines.append("def run_chunk(scale):")
    src_lines.extend(_indent(body))
    src_lines.append("")
    return "\n".join(src_lines), meta
