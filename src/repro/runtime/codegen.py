"""Whole-program codegen backend (``engine="codegen"``).

:class:`CodegenPlan` extends the batched :class:`~repro.runtime.plan
.ExecutionPlan`: instead of walking the compiled phase list through a
Python dispatch loop on every chunk, it asks
:mod:`repro.runtime.codegen_emit` for **one fused source module** whose
``run_chunk(scale)`` executes ``scale`` steady periods as straight-line
code, then binds that module to this plan's live filters and channels and
calls it directly.  Small-batch, feedback-heavy graphs — where per-block
dispatch dominated — collapse into a single Python frame per chunk.

Generated modules are cached twice:

* **in memory**, keyed by the plan fingerprint (structural signature +
  work() code hashes + emitter revision), bounded LRU;
* **on disk**, one ``<fingerprint>.py`` per module under
  ``.repro_codegen/`` (override with ``REPRO_CODEGEN_CACHE``), bounded by
  mtime eviction — a second process compiling the same graph skips
  emission entirely.

Counters for both levels live in :data:`codegen_cache_stats` and surface
through ``engine_report()`` and ``python -m repro.obs report``.

Fallback ladder (all reported through the ``SL305`` diagnostic, which
``strict=True`` turns into an error):

* teleport messaging → whole plan runs batched (codegen inactive);
* an uncertified filter → that block calls its adaptive
  :class:`~repro.runtime.vectorize.BatchExecutor` (everything else in the
  module stays generated);
* an unlowerable cyclic core → that core block calls the interpreted
  :class:`~repro.runtime.plan.CoreLoopRunner`.
"""

from __future__ import annotations

import math as _real_math
import os
import types
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.codegen_emit import (
    EMITTER_VERSION,
    Unsupported,
    classify_core_edges,
    emit_module,
    layout_blocks,
    plan_fingerprint,
)
from repro.runtime.plan import (
    CoreLoopRunner,
    ExecutionPlan,
    _FusionTape,
    _plan_signature,
)
from repro.runtime.vectorize import VEC_MATH, BatchExecutor, run_lifted, run_loop

# -- module cache (memory + disk) ---------------------------------------------

_MEM_CACHE: "OrderedDict[str, types.CodeType]" = OrderedDict()
_MEM_CACHE_MAX = 64
_DISK_CACHE_MAX = 128

#: Cumulative cache counters for both levels (process lifetime); increments
#: mirror into the always-on metrics registry as repro_codegen_cache_total,
#: with the "mem_hits" keys split into {level="mem", event="hits"} labels.
from repro.obs.metrics import METRICS as _METRICS
from repro.obs.metrics import MeteredStats as _MeteredStats


def _codegen_cache_labels(key: str) -> Dict[str, str]:
    level, _, event = key.partition("_")
    return {"level": level, "event": event}


codegen_cache_stats: Dict[str, int] = _MeteredStats(
    _METRICS.counter(
        "repro_codegen_cache_total",
        "Generated-module cache events by level (mem/disk)",
    ),
    _codegen_cache_labels,
    {
        "mem_hits": 0,
        "mem_misses": 0,
        "disk_hits": 0,
        "disk_misses": 0,
        "mem_evictions": 0,
        "disk_evictions": 0,
    },
)

DEFAULT_CACHE_DIR = ".repro_codegen"


def cache_dir() -> Path:
    """On-disk module cache directory (``REPRO_CODEGEN_CACHE`` overrides)."""
    return Path(os.environ.get("REPRO_CODEGEN_CACHE") or DEFAULT_CACHE_DIR)


def clear_codegen_cache(disk: bool = False) -> None:
    """Drop the in-memory module cache and zero the counters; with
    ``disk=True`` also delete the on-disk cache files."""
    _MEM_CACHE.clear()
    for key in codegen_cache_stats:
        codegen_cache_stats[key] = 0
    if disk:
        directory = cache_dir()
        if directory.is_dir():
            for path in directory.glob("*.py"):
                try:
                    path.unlink()
                except OSError:
                    pass


def codegen_cache_summary() -> Dict[str, object]:
    """Counters plus current sizes of both cache levels."""
    directory = cache_dir()
    try:
        disk_size = sum(1 for _ in directory.glob("*.py")) if directory.is_dir() else 0
    except OSError:
        disk_size = 0
    summary: Dict[str, object] = dict(codegen_cache_stats)
    summary["mem_size"] = len(_MEM_CACHE)
    summary["mem_max"] = _MEM_CACHE_MAX
    summary["disk_size"] = disk_size
    summary["disk_max"] = _DISK_CACHE_MAX
    summary["disk_dir"] = str(directory)
    return summary


def _disk_path(fingerprint: str) -> Path:
    return cache_dir() / f"{fingerprint}.py"


def _disk_load(fingerprint: str) -> Optional[str]:
    path = _disk_path(fingerprint)
    try:
        source = path.read_text()
    except OSError:
        codegen_cache_stats["disk_misses"] += 1
        return None
    codegen_cache_stats["disk_hits"] += 1
    try:  # freshen mtime so LRU-by-mtime eviction spares hot entries
        os.utime(path)
    except OSError:
        pass
    return source


def _disk_store(fingerprint: str, source: str) -> Optional[Path]:
    directory = cache_dir()
    path = _disk_path(fingerprint)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(source)
        os.replace(tmp, path)
    except OSError:
        return None
    try:
        entries = sorted(directory.glob("*.py"), key=lambda p: p.stat().st_mtime)
        while len(entries) > _DISK_CACHE_MAX:
            victim = entries.pop(0)
            victim.unlink()
            codegen_cache_stats["disk_evictions"] += 1
    except OSError:
        pass
    return path


def _mem_store(fingerprint: str, code: types.CodeType) -> None:
    _MEM_CACHE[fingerprint] = code
    _MEM_CACHE.move_to_end(fingerprint)
    while len(_MEM_CACHE) > _MEM_CACHE_MAX:
        _MEM_CACHE.popitem(last=False)
        codegen_cache_stats["mem_evictions"] += 1


# -- binding ------------------------------------------------------------------


class BindMismatch(Exception):
    """A cached module's meta does not line up with this plan's layout."""


class _CoreState:
    """Chunk-boundary channel I/O for an *inlined* cyclic core.

    The generated module handles everything inside a chunk itself (the
    closed loop over plain-list tapes); this wrapper owns what happens at
    the edges, mirroring :meth:`CoreLoopRunner.run` exactly: ``begin()``
    snapshots external inputs into their tapes, ``end(scale)`` drops the
    consumed input prefix, lands accumulated outputs as one ``push_block``,
    compacts internal tapes, and bulk-bumps bypassed history counters.
    Tapes are exposed to the module by global edge index.
    """

    __slots__ = ("_by_index", "_ext_in", "_ext_out", "_internal", "_bumps")

    def __init__(self, core: CoreLoopRunner, edge_index) -> None:
        if core._ops is None:
            core._build()
        internal, ext_in, ext_out = classify_core_edges(core)
        self._by_index = {
            edge_index[e]: core._tape_for(e) for e in internal + ext_in + ext_out
        }
        self._ext_in = [(core.channels[e], core._tape_for(e)) for e in ext_in]
        self._ext_out = [(core.channels[e], core._tape_for(e)) for e in ext_out]
        self._internal = [core._tape_for(e) for e in internal]
        self._bumps = core._bumps

    def items(self, index: int) -> list:
        return self._by_index[index].items

    def set_cursor(self, index: int, cursor: int) -> None:
        self._by_index[index].cursor = cursor

    def begin(self) -> None:
        for chan, tape in self._ext_in:
            tape.items = chan.peek_block(len(chan)).tolist()
            tape.cursor = 0

    def end(self, scale: int) -> None:
        for chan, tape in self._ext_in:
            if tape.cursor:
                chan.drop(tape.cursor)
        for chan, tape in self._ext_out:
            if tape.items:
                chan.push_block(np.asarray(tape.items, dtype=np.float64))
                tape.items = []
        for tape in self._internal:
            tape.compact()
        for chan, per_period in self._bumps:
            moved = per_period * scale
            chan.pushed_count += moved
            chan.popped_count += moved


def _rebind_kernel(ns: dict, kname: str, fn) -> None:
    """Rebuild a spliced kernel over the original work()'s globals (with
    ``math`` swapped for the exact vector namespace — lift_work semantics)."""
    proto = ns.get(kname)
    if proto is None:
        raise BindMismatch(f"cached module lacks kernel {kname}")
    g = dict(fn.__globals__)
    if g.get("math") is _real_math:
        g["math"] = VEC_MATH
    ns[kname] = types.FunctionType(
        proto.__code__, g, kname, proto.__defaults__, proto.__closure__
    )


def bind_module(plan, ns: dict, meta: dict) -> Tuple[List[str], Optional[str]]:
    """Inject this plan's live objects into an exec'd generated module.

    Walks the plan layout and the module's ``__codegen_meta__`` in
    lockstep, verifying structure as it goes (any disagreement raises
    :class:`BindMismatch` — the caller regenerates).  Returns the names of
    fallback blocks and the core's lowering mode (``None`` if no core).
    """
    if meta.get("emitter") != EMITTER_VERSION:
        raise BindMismatch("emitter version mismatch")
    nodes = list(plan.graph.nodes)
    node_index = {n: i for i, n in enumerate(nodes)}
    edge_index = {e: i for i, e in enumerate(plan.graph.edges)}
    blocks = layout_blocks(plan)
    mblocks = meta.get("blocks", [])
    if len(blocks) != len(mblocks):
        raise BindMismatch("block count mismatch")
    for edge, i in edge_index.items():
        ns[f"ch{i}"] = plan.channels[edge]

    fallbacks: List[str] = []
    core_mode: Optional[str] = None

    def bind_phase(ph, m: dict) -> None:
        node = ph.node
        i = node_index[node]
        if m.get("kind") != "phase" or m.get("node") != i:
            raise BindMismatch(f"phase meta mismatch at node {node.name}")
        mode = m.get("mode")
        if mode == "inline":
            fn = type(node.filter).work
            ns[f"f{i}"] = node.filter
            _rebind_kernel(ns, f"_K{i}", fn)
            fire = ph.fire
            if isinstance(fire, BatchExecutor) and fire.mode is None:
                # Keep vectorization_report() consistent with the module.
                fire.mode = "lifted"
                fire.trusted = True
        else:
            ns[f"x{i}"] = ph.fire
            if mode == "fallback":
                fallbacks.append(node.name)

    for bi, ((kind, obj), m) in enumerate(zip(blocks, mblocks)):
        if kind == "phase":
            bind_phase(obj, m)
        elif kind == "fused":
            stages = obj.stages
            if m.get("kind") != "fused" or m.get("nodes") != [
                node_index[st.node] for st in stages
            ]:
                raise BindMismatch("fused chain mismatch")
            for j, st in enumerate(stages[:-1]):
                ns[f"tp{bi}_{j}"] = _FusionTape(name=f"codegen:{st.node.name}")
            for st, sm in zip(stages, m.get("stages", ())):
                # Every stage's channel attributes are rebound by name.
                ns[f"f{node_index[st.node]}"] = st.node.filter
                bind_phase(st, sm)
        elif kind == "region":
            region, runner = obj
            rk = sum(1 for mb in mblocks[:bi] if mb.get("kind") == "region")
            if m.get("kind") != "region" or m.get("nodes") != sorted(
                node_index[n] for n in region.members
            ):
                raise BindMismatch("region block mismatch")
            region_name = f"region:{region.name}"
            if m.get("mode") == "fallback":
                ns[f"_rg{rk}_run"] = runner.run
                fallbacks.append(region_name)
            else:
                ns[f"_rg{rk}"] = _CoreState(runner, edge_index)
                for i in m.get("filters", ()):
                    ns[f"f{i}"] = nodes[i].filter
                for si, names in m.get("globals", {}).items():
                    i = int(si)
                    g = type(nodes[i].filter).work.__globals__
                    for name in names:
                        if name not in g:
                            raise BindMismatch(f"missing kernel global {name!r}")
                        ns[f"_g{i}_{name}"] = g[name]
                for i in m.get("reducers", ()):
                    reducer = getattr(
                        getattr(nodes[i].obj, "joiner", None), "reducer", None
                    )
                    if reducer is None:
                        raise BindMismatch("cached module expects a reducer")
                    ns[f"_rd{i}"] = reducer
        else:  # core
            core: CoreLoopRunner = obj
            if m.get("kind") != "core" or m.get("nodes") != sorted(
                node_index[n] for n in core.nodes
            ):
                raise BindMismatch("core block mismatch")
            core_mode = m.get("mode")
            core_name = "core:" + "+".join(sorted(n.name for n in core.nodes))
            if core_mode == "fallback":
                ns["_core_run"] = core.run
                fallbacks.append(core_name)
            else:
                ns["_core"] = _CoreState(core, edge_index)
                for i in m.get("filters", ()):
                    ns[f"f{i}"] = nodes[i].filter
                for si, names in m.get("globals", {}).items():
                    i = int(si)
                    g = type(nodes[i].filter).work.__globals__
                    for name in names:
                        if name not in g:
                            raise BindMismatch(f"missing kernel global {name!r}")
                        ns[f"_g{i}_{name}"] = g[name]
                for i in m.get("reducers", ()):
                    reducer = getattr(
                        getattr(nodes[i].obj, "joiner", None), "reducer", None
                    )
                    if reducer is None:
                        raise BindMismatch("cached module expects a reducer")
                    ns[f"_rd{i}"] = reducer
    ns["_dm"] = {}
    ns["_run_lifted"] = run_lifted
    ns["_run_loop"] = run_loop
    return fallbacks, core_mode


# -- the plan subclass --------------------------------------------------------


class CodegenPlan(ExecutionPlan):
    """An :class:`ExecutionPlan` that executes through a generated module.

    Compilation (emission or cache lookup, ``compile()``, binding) is lazy —
    it runs at the first ``run_steady`` call, after ``init()`` firings, so
    kernel certification sees live attribute state exactly like the batched
    engine's first-call trial.  When codegen is unavailable (teleport
    messaging) or materialization fails, execution transparently degrades
    to the parent batched engine, reported as ``SL305``.
    """

    def __init__(self, interp) -> None:
        super().__init__(interp)
        self.codegen_active: bool = not self.messaging
        self.codegen_fallbacks: List[str] = []
        self.codegen_meta: Optional[dict] = None
        self.generated_source: Optional[str] = None
        self.generated_path: Optional[str] = None
        self.cache_outcome: Optional[str] = None
        self.fingerprint: Optional[str] = None
        self._run_chunk = None
        self._materialized = False
        self._firings_per_period = 0
        if self.messaging:
            interp._engine_downgrade(
                "teleport messaging needs per-delivery firing boundaries that "
                "a fused module cannot honour; running the batched engine",
                code="SL305",
            )

    # -- materialization ------------------------------------------------------

    def _materialize(self) -> None:
        self._materialized = True
        interp = self.interp
        from repro import __version__

        signature = _plan_signature(
            self.graph, interp.program, self._senders, self._receivers
        )
        fingerprint = plan_fingerprint(self, signature, __version__)
        self.fingerprint = fingerprint
        try:
            source, outcome = self._load_or_emit(fingerprint)
            code = _MEM_CACHE[fingerprint]
            ns: dict = {}
            exec(code, ns)
            meta = ns.get("__codegen_meta__")
            if not isinstance(meta, dict):
                raise BindMismatch("module carries no __codegen_meta__")
            try:
                fallbacks, core_mode = bind_module(self, ns, meta)
            except BindMismatch:
                # Stale or foreign cached module: regenerate once.
                source, meta = emit_module(self, fingerprint)
                code = compile(source, f"<codegen:{fingerprint[:12]}>", "exec")
                _mem_store(fingerprint, code)
                self.generated_path = _path_str(_disk_store(fingerprint, source))
                ns = {}
                exec(code, ns)
                fallbacks, core_mode = bind_module(self, ns, meta)
                outcome = "regenerated"
        except Unsupported as exc:
            self.codegen_active = False
            interp._engine_downgrade(
                f"codegen unavailable for this plan ({exc}); running the "
                "batched engine",
                code="SL305",
            )
            return
        self._run_chunk = ns["run_chunk"]
        self.codegen_meta = meta
        self.generated_source = source
        self.cache_outcome = outcome
        self.codegen_fallbacks = fallbacks
        self._firings_per_period = sum(
            count for ph in self.steady_phases for _node, count in ph.accounting
        )
        if fallbacks:
            interp._engine_downgrade(
                "codegen fell back to executor calls for: "
                + ", ".join(fallbacks),
                code="SL305",
            )

    def _load_or_emit(self, fingerprint: str) -> Tuple[str, str]:
        """Resolve (source, cache outcome); ensures ``_MEM_CACHE`` holds the
        compiled code object on return."""
        if fingerprint in _MEM_CACHE:
            codegen_cache_stats["mem_hits"] += 1
            _MEM_CACHE.move_to_end(fingerprint)
            source = self.generated_source
            path = _disk_path(fingerprint)
            if source is None:
                source = _read_quiet(path)
            self.generated_path = str(path) if path.is_file() else None
            if source is not None:
                return source, "mem_hit"
            # Counters say hit, but the source text is gone (disk cleared
            # since) — re-emit just the text for introspection.
            source, _meta = emit_module(self, fingerprint)
            return source, "mem_hit"
        codegen_cache_stats["mem_misses"] += 1
        source = _disk_load(fingerprint)
        if source is not None:
            try:
                code = compile(
                    source, f"<codegen:{fingerprint[:12]}>", "exec"
                )
            except SyntaxError:
                pass  # corrupt artifact: fall through to regeneration
            else:
                _mem_store(fingerprint, code)
                self.generated_path = str(_disk_path(fingerprint))
                return source, "disk_hit"
        source, _meta = emit_module(self, fingerprint)
        code = compile(source, f"<codegen:{fingerprint[:12]}>", "exec")
        _mem_store(fingerprint, code)
        self.generated_path = _path_str(_disk_store(fingerprint, source))
        return source, "miss"

    # -- execution ------------------------------------------------------------

    def run_steady(self, fired, periods: int) -> None:
        if periods <= 0:
            return
        if self.codegen_active and not self._materialized:
            self._materialize()
        if not self.codegen_active:
            super().run_steady(fired, periods)
            return
        run_chunk = self._run_chunk
        chunk = self.chunk_periods
        if self.interp.tracer.enabled:
            from time import perf_counter

            from repro.obs.tracer import CAT_CODEGEN

            tracer = self.interp.tracer
            left = periods
            while left > 0:
                scale = min(left, chunk)
                t0 = perf_counter()
                run_chunk(scale)
                dur = perf_counter() - t0
                tracer.complete(
                    "codegen:run_chunk",
                    CAT_CODEGEN,
                    t0,
                    dur,
                    args={
                        "periods": scale,
                        "firings": self._firings_per_period * scale,
                    },
                )
                left -= scale
        else:
            left = periods
            while left > 0:
                scale = min(left, chunk)
                run_chunk(scale)
                left -= scale
        for phase in self.steady_phases:
            for node, count in phase.accounting:
                fired[node] += count * periods

    # -- introspection ---------------------------------------------------------

    def codegen_report(self) -> Dict[str, object]:
        """Per-block lowering outcome plus cache counters (engine_report)."""
        blocks = None
        if self.codegen_meta is not None:
            blocks = []
            for m in self.codegen_meta["blocks"]:
                if m["kind"] == "fused":
                    blocks.append(
                        {
                            "kind": "fused",
                            "name": m.get("name", ""),
                            "modes": [s.get("mode") for s in m.get("stages", ())],
                        }
                    )
                else:
                    blocks.append(
                        {
                            "kind": m["kind"],
                            "name": m.get("name", m["kind"]),
                            "mode": m.get("mode"),
                        }
                    )
        return {
            "active": self.codegen_active,
            "materialized": self._materialized,
            "cache_outcome": self.cache_outcome,
            "fingerprint": self.fingerprint,
            "fallbacks": list(self.codegen_fallbacks),
            "blocks": blocks,
            "cache": codegen_cache_summary(),
        }


def _path_str(path: Optional[Path]) -> Optional[str]:
    return str(path) if path is not None else None


def _read_quiet(path: Path) -> Optional[str]:
    try:
        return path.read_text()
    except OSError:
        return None
