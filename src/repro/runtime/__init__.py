"""Runtime execution: channels, the interpreter, and teleport messaging."""

from repro.runtime.channel import Channel, ChannelUnderflow
from repro.runtime.interpreter import Interpreter, run_to_list
from repro.runtime.messaging import BEST_EFFORT, PendingMessage, Portal, TimeInterval

__all__ = [
    "Channel",
    "ChannelUnderflow",
    "Interpreter",
    "run_to_list",
    "Portal",
    "TimeInterval",
    "PendingMessage",
    "BEST_EFFORT",
]
