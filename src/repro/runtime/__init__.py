"""Runtime execution: channels, the interpreter, and teleport messaging."""

from repro.errors import EngineDowngradeWarning
from repro.runtime.array_channel import ArrayChannel
from repro.runtime.channel import Channel, ChannelUnderflow
from repro.runtime.codegen import (
    CodegenPlan,
    clear_codegen_cache,
    codegen_cache_stats,
    codegen_cache_summary,
)
from repro.runtime.interpreter import ENGINES, Interpreter, run_to_list
from repro.runtime.messaging import BEST_EFFORT, PendingMessage, Portal, TimeInterval
from repro.runtime.plan import (
    ExecutionPlan,
    clear_plan_cache,
    compile_and_run,
    plan_cache_stats,
    plan_cache_summary,
)
from repro.runtime.parallel import ParallelSession, ParallelUnsafe
from repro.runtime.ring import RingAbort, RingArena, RingChannel, RingStall
from repro.runtime.vectorize import BatchExecutor

__all__ = [
    "ArrayChannel",
    "BatchExecutor",
    "Channel",
    "ChannelUnderflow",
    "CodegenPlan",
    "ENGINES",
    "EngineDowngradeWarning",
    "ExecutionPlan",
    "Interpreter",
    "ParallelSession",
    "ParallelUnsafe",
    "RingAbort",
    "RingArena",
    "RingChannel",
    "RingStall",
    "clear_codegen_cache",
    "clear_plan_cache",
    "codegen_cache_stats",
    "codegen_cache_summary",
    "compile_and_run",
    "plan_cache_stats",
    "plan_cache_summary",
    "run_to_list",
    "Portal",
    "TimeInterval",
    "PendingMessage",
    "BEST_EFFORT",
]
