"""Runtime execution: channels, the interpreter, and teleport messaging."""

from repro.runtime.array_channel import ArrayChannel
from repro.runtime.channel import Channel, ChannelUnderflow
from repro.runtime.interpreter import ENGINES, Interpreter, run_to_list
from repro.runtime.messaging import BEST_EFFORT, PendingMessage, Portal, TimeInterval
from repro.runtime.plan import ExecutionPlan, compile_and_run

__all__ = [
    "ArrayChannel",
    "Channel",
    "ChannelUnderflow",
    "ENGINES",
    "ExecutionPlan",
    "Interpreter",
    "compile_and_run",
    "run_to_list",
    "Portal",
    "TimeInterval",
    "PendingMessage",
    "BEST_EFFORT",
]
