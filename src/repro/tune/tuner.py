"""The auto-tuner: measured best-of-ladder search over engine knobs.

The engines expose knobs they never optimize: ``plan.chunk_periods`` is
sized by a static 512 KiB-per-edge cap, partitions balance on declared
work, channels grow on demand.  :func:`tune_stream` replaces the static
choices with **measurements on this machine**:

1. probe the stream once to find the static default chunk and size the
   measurement run to a wall-clock budget;
2. time every chunk size on a ladder (16/64/256/1024/2048/4096, *plus
   the static default* — so the tuned choice can never lose to the
   heuristic by construction; a hysteresis margin keeps noise from
   displacing the default on a near-tie);
3. calibrate a traced run into a per-filter work profile
   (:mod:`repro.tune.profile`);
4. derive channel presize hints from the winning chunk and the schedule's
   per-period edge traffic;
5. persist the result keyed by (plan fingerprint, host fingerprint) so
   every later compile of the same graph on the same machine applies it
   for free (:mod:`repro.tune.cache`).

Tuning never changes semantics: chunk size only sets how many steady
periods one superbatched pass covers, the work profile only reweights
partitioning, and presizing only pre-grows buffers — all bit-exact by
construction and enforced by the tuned arm of the differential fuzz.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, Optional, Union

from repro.tune.cache import TunedParams, store_tuned, stream_fingerprint
from repro.tune.profile import Profile, calibrate

#: Candidate superbatch sizes (periods per chunk).  The measured static
#: default is always added as one more rung; rungs below 16 are omitted
#: because per-pass dispatch always dominates there (and a rung 100x
#: slower than the default would blow the wall budget just to lose).
CHUNK_LADDER = (16, 64, 256, 1024, 2048, 4096)

#: Wall-clock budget per ladder measurement, seconds.  Override with
#: ``REPRO_TUNE_BUDGET`` (tests and CI smoke use tiny budgets).
DEFAULT_BUDGET_S = 0.12

#: Presize hint ceiling per edge: 1 Mi items = 8 MiB of float64.  Keeps a
#: huge tuned chunk from translating into an unbounded up-front allocation.
RESERVE_ITEM_CAP = 1 << 20

#: Presize ceiling across *all* edges (8 Mi items = 64 MiB of float64):
#: graphs with hundreds of edges (DES, Serpent) would otherwise presize
#: gigabytes that then fault in during the first timed pass.
RESERVE_TOTAL_ITEM_CAP = 1 << 23

#: Long enough that the probe's periods/second approximates the steady
#: rate — an overhead-dominated estimate shrinks the wall cap below what
#: the large ladder rungs need to show their effect.
_PROBE_PERIODS = 64
_MIN_PERIODS = 16
_MAX_PERIODS = 20_000

#: A ladder rung must beat the static default's cell by this factor to
#: displace it (see the hysteresis note in :func:`tune_stream`).
WIN_MARGIN = 1.05


def tune_budget() -> float:
    try:
        return float(os.environ.get("REPRO_TUNE_BUDGET", DEFAULT_BUDGET_S))
    except ValueError:
        return DEFAULT_BUDGET_S


@dataclass
class TuneResult:
    """Everything one tuning run measured and decided."""

    fingerprint: str
    params: TunedParams
    engine: str
    periods: int
    #: measured chunk size -> periods/second (best of repeats).  The
    #: static default is represented by its *cell* (``min(default,
    #: periods)``) — chunks at or above the run length are
    #: indistinguishable at that measurement size.
    ladder: Dict[int, float] = field(default_factory=dict)
    default_chunk: Optional[int] = None
    #: The ladder cell that stood in for the static default.
    default_cell: Optional[int] = None
    best_chunk: Optional[int] = None
    profile: Optional[Profile] = None
    stored_path: Optional[str] = None

    @property
    def gain(self) -> Optional[float]:
        """Measured best-over-default throughput ratio (None if no ladder)."""
        cell = self.default_cell if self.default_cell is not None else self.default_chunk
        if not self.ladder or cell not in self.ladder:
            return None
        base = self.ladder[cell]
        return max(self.ladder.values()) / base if base > 0 else None


def _builder_for(source: Union[Callable[[], Any], Any]) -> Callable[[], Any]:
    if callable(source):
        return source
    from repro.transforms.clone import clone_stream

    return lambda: clone_stream(source)


def _measure(build, engine: str, chunk: Optional[int], periods: int) -> float:
    """Periods/second with ``plan.chunk_periods`` pinned to ``chunk``.

    Periods (not items) per second: the items-per-period ratio is fixed by
    the schedule, so periods/s orders chunk sizes identically and needs no
    sink discovery.  The pin lands before the warmup run so codegen
    materializes under the measured chunk size (the bench_e13 protocol).
    """
    from repro.errors import EngineDowngradeWarning
    from repro.runtime.interpreter import Interpreter

    app = build()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", EngineDowngradeWarning)
        interp = Interpreter(app, check=False, engine=engine)
        try:
            if chunk is not None and interp.plan is not None:
                interp.plan.chunk_periods = int(chunk)
            interp.run(periods=2)
            start = perf_counter()
            interp.run_steady(periods)
            elapsed = perf_counter() - start
        finally:
            interp.close()
    return periods / elapsed if elapsed > 0 else float("inf")


def tune_stream(
    source: Union[Callable[[], Any], Any],
    engine: str = "codegen",
    periods: Optional[int] = None,
    budget_s: Optional[float] = None,
    repeats: int = 2,
    profile: bool = True,
    store: bool = True,
) -> TuneResult:
    """Measure, choose, and (optionally) persist tuned parameters.

    ``source`` is a stream builder or a live stream (cloned per
    measurement, so the caller's filter state and sink contents stay
    untouched).  ``engine`` picks the engine the ladder is timed under;
    ``"scalar"``/``"parallel"`` requests measure under ``"batched"`` (the
    chunk knob only exists on the compiled plans — the work profile still
    serves the parallel partitioner).
    """
    from repro.errors import EngineDowngradeWarning
    from repro.obs.metrics import METRICS
    from repro.obs.recorder import FLIGHT
    from repro.runtime.interpreter import Interpreter
    from repro.runtime.plan import ExecutionPlan

    if METRICS.enabled:
        METRICS.counter(
            "repro_tune_runs_total", "tune_stream() calibration runs"
        ).inc(engine=engine)
        FLIGHT.record("tune_run", engine=engine)
    build = _builder_for(source)
    measure_engine = engine if engine in ("batched", "codegen") else "batched"
    budget = tune_budget() if budget_s is None else float(budget_s)

    # -- probe: fingerprint, static default chunk, run sizing ----------------
    app = build()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", EngineDowngradeWarning)
        probe = Interpreter(app, check=False, engine=measure_engine)
        try:
            senders, receivers = ExecutionPlan._messaging_endpoints(probe)
            fingerprint = stream_fingerprint(
                probe.graph, probe.program, senders, receivers
            )
            default_chunk = (
                probe.plan.chunk_periods if probe.plan is not None else None
            )
            tune_chunks = probe.plan is not None and not probe.has_messaging
            probe.run(periods=2)
            t0 = perf_counter()
            probe.run_steady(_PROBE_PERIODS)
            per_period = (perf_counter() - t0) / _PROBE_PERIODS
        finally:
            probe.close()

    if periods is None:
        periods = int(budget / max(per_period, 1e-9))
        if tune_chunks and default_chunk:
            # A run shorter than a candidate collapses every chunk >=
            # periods into one pass, hiding exactly the per-chunk
            # locality/amortization differences the ladder exists to
            # find.  Stretch to two passes of the largest rung (or of
            # the static default if that is bigger), within 10x the
            # wall budget per cell.
            want = min(
                2 * max(int(default_chunk), CHUNK_LADDER[-1]), _MAX_PERIODS
            )
            wall_cap = int(10 * budget / max(per_period, 1e-9))
            periods = max(periods, min(want, wall_cap))
        periods = max(_MIN_PERIODS, min(_MAX_PERIODS, periods))

    # -- the ladder ----------------------------------------------------------
    ladder: Dict[int, float] = {}
    best_chunk: Optional[int] = None
    default_cell: Optional[int] = None
    if tune_chunks:
        # The effective chunk is min(chunk, periods), so every candidate at
        # or above the run length measures identically; the static default
        # competes through its clamped cell.
        default_cell = min(int(default_chunk), periods)
        candidates = sorted(
            {c for c in CHUNK_LADDER if c <= periods} | {default_cell}
        )
        ladder = {c: 0.0 for c in candidates}
        # Repeats are interleaved across candidates (round-robin, not
        # block-per-candidate): shared-machine throttling is correlated
        # over seconds, and a block design lets one slow window crown the
        # wrong rung.
        for _ in range(max(1, repeats)):
            for chunk in candidates:
                # Small rungs run fewer periods (still >= 32 passes):
                # periods/second is a rate, so cells stay comparable, and
                # a 50x-slower rung doesn't eat 50x the wall budget.
                cell_periods = min(periods, max(chunk * 32, _MIN_PERIODS))
                ladder[chunk] = max(
                    ladder[chunk],
                    _measure(build, measure_engine, chunk, cell_periods),
                )
        best_cell = max(ladder, key=lambda c: ladder[c])
        if ladder[best_cell] < WIN_MARGIN * ladder[default_cell]:
            # Hysteresis: a rung must beat the static default by a clear
            # margin to displace it.  On a near-tie the default stays, so
            # noise can never tune in a regression.
            best_cell = default_cell
        if best_cell == default_cell and int(default_chunk) > periods:
            # The winning cell only proves "default-or-larger is best";
            # keep the static default rather than clamping it to the
            # measurement run length.
            best_chunk = int(default_chunk)
        else:
            best_chunk = best_cell

    # -- profile + derived parameters ---------------------------------------
    prof: Optional[Profile] = None
    work: Dict[str, float] = {}
    edge_items: Dict[str, int] = {}
    if profile:
        prof = calibrate(build, periods=min(64, periods))
        work = dict(prof.work)
        edge_items = dict(prof.edge_items)
    reserve = {}
    if best_chunk is not None:
        reserve = {
            name: min(items * best_chunk, RESERVE_ITEM_CAP)
            for name, items in edge_items.items()
            if items > 0
        }
        total = sum(reserve.values())
        if total > RESERVE_TOTAL_ITEM_CAP:
            shrink = RESERVE_TOTAL_ITEM_CAP / total
            reserve = {
                name: scaled
                for name, items in reserve.items()
                if (scaled := int(items * shrink)) > 0
            }
    params = TunedParams(
        chunk_periods=best_chunk, work=work, reserve_items=reserve
    )
    result = TuneResult(
        fingerprint=fingerprint,
        params=params,
        engine=measure_engine,
        periods=periods,
        ladder=ladder,
        default_chunk=default_chunk,
        default_cell=default_cell,
        best_chunk=best_chunk,
        profile=prof,
    )
    if store:
        path = store_tuned(
            fingerprint,
            params,
            meta={
                "engine": measure_engine,
                "periods": periods,
                "ladder": {str(c): ips for c, ips in sorted(ladder.items())},
                "default_chunk": default_chunk,
                "best_chunk": best_chunk,
                "gain": result.gain,
            },
        )
        result.stored_path = str(path) if path is not None else None
    return result


def render_result(result: TuneResult, label: str = "") -> str:
    """Human-readable ladder table (the CLI's output)."""
    lines = [
        f"== repro.tune {label or result.fingerprint[:12]} "
        f"(engine={result.engine}, {result.periods} periods/cell) =="
    ]
    default_cell = (
        result.default_cell
        if result.default_cell is not None
        else result.default_chunk
    )
    best_cell = max(result.ladder, key=result.ladder.get) if result.ladder else None
    for chunk, pps in sorted(result.ladder.items()):
        marks = []
        if chunk == default_cell:
            marks.append("default")
        if chunk == best_cell:
            marks.append("best")
        suffix = f"   <- {', '.join(marks)}" if marks else ""
        lines.append(f"  chunk {chunk:>6d}: {pps:12.0f} periods/s{suffix}")
    if not result.ladder:
        lines.append("  (chunk ladder skipped: no compiled plan to tune)")
    gain = result.gain
    if gain is not None:
        lines.append(
            f"  tuned chunk {result.best_chunk} vs static default "
            f"{result.default_chunk}: {gain:.2f}x"
        )
    if result.params.work:
        hot = sorted(result.params.work.items(), key=lambda kv: -kv[1])[:5]
        total = sum(result.params.work.values()) or 1.0
        lines.append(
            "  work profile (top 5): "
            + ", ".join(f"{n} {100 * w / total:.0f}%" for n, w in hot)
        )
    if result.stored_path:
        lines.append(f"  stored -> {result.stored_path}")
    return "\n".join(lines)
