"""CLI entry: ``python -m repro.tune {tune,show,clear}``.

* ``tune <app>`` — calibrate + chunk-ladder search for one evaluation app
  and (by default) persist the result in the tuned-plan cache, so every
  later ``Interpreter(tune=True)`` over the same graph on this host picks
  it up.  ``--json`` prints the machine-readable result instead of the
  ladder table.
* ``show`` — list cache entries (fingerprint, host match, tuned chunk).
* ``clear`` — zero the counters; ``--disk`` also deletes the entries.

Exit status: 0 on success, 1 on failure (unknown app, tuning error),
2 for usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tune",
        description="profile-guided tuning of compiled stream plans",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_tune = sub.add_parser("tune", help="calibrate + tune one evaluation app")
    p_tune.add_argument("app", help="app name from repro.apps.ALL_APPS")
    p_tune.add_argument(
        "--engine",
        default="codegen",
        choices=("batched", "codegen"),
        help="engine the chunk ladder is timed under (default: codegen)",
    )
    p_tune.add_argument(
        "--periods",
        type=int,
        default=None,
        help="steady periods per ladder cell (default: auto-sized to budget)",
    )
    p_tune.add_argument(
        "--budget",
        type=float,
        default=None,
        help="seconds per ladder cell when auto-sizing (REPRO_TUNE_BUDGET)",
    )
    p_tune.add_argument(
        "--repeats", type=int, default=2, help="measurements per cell (best-of)"
    )
    p_tune.add_argument(
        "--no-store",
        action="store_true",
        help="measure and report only; do not write the cache entry",
    )
    p_tune.add_argument(
        "--json", action="store_true", help="machine-readable result on stdout"
    )

    p_show = sub.add_parser("show", help="list tuned-plan cache entries")
    p_show.add_argument("--json", action="store_true", help="JSON output")

    p_clear = sub.add_parser("clear", help="reset tuned-cache counters")
    p_clear.add_argument(
        "--disk", action="store_true", help="also delete the on-disk entries"
    )

    ns = parser.parse_args(argv)

    if ns.command == "tune":
        from repro.apps import ALL_APPS
        from repro.tune import render_result, tune_stream

        build = ALL_APPS.get(ns.app)
        if build is None:
            print(
                f"repro.tune: unknown app {ns.app!r}; expected one of "
                f"{', '.join(sorted(ALL_APPS))}",
                file=sys.stderr,
            )
            return 1
        try:
            result = tune_stream(
                build,
                engine=ns.engine,
                periods=ns.periods,
                budget_s=ns.budget,
                repeats=ns.repeats,
                store=not ns.no_store,
            )
        except Exception as exc:
            print(f"repro.tune: tuning {ns.app} failed: {exc}", file=sys.stderr)
            return 1
        if ns.json:
            print(
                json.dumps(
                    {
                        "app": ns.app,
                        "fingerprint": result.fingerprint,
                        "engine": result.engine,
                        "periods": result.periods,
                        "ladder": {
                            str(c): pps for c, pps in sorted(result.ladder.items())
                        },
                        "default_chunk": result.default_chunk,
                        "best_chunk": result.best_chunk,
                        "gain": result.gain,
                        "params": result.params.to_json(),
                        "stored_path": result.stored_path,
                    },
                    indent=2,
                )
            )
        else:
            print(render_result(result, label=ns.app))
        return 0

    if ns.command == "show":
        from repro.tune.cache import host_fingerprint, list_entries, tuned_cache_summary

        entries = list_entries()
        if ns.json:
            print(
                json.dumps(
                    {
                        "host": host_fingerprint(),
                        "entries": entries,
                        "cache": tuned_cache_summary(),
                    },
                    indent=2,
                )
            )
            return 0
        summary = tuned_cache_summary()
        print(
            f"tuned-plan cache: {len(entries)} entr{'y' if len(entries) == 1 else 'ies'} "
            f"in {summary['disk_dir']} (host {host_fingerprint()})"
        )
        for fp, entry in entries.items():
            params = entry.get("params") or {}
            chunk = params.get("chunk_periods")
            print(
                f"  {fp[:16]}  status={entry.get('status')} "
                f"chunk={chunk} work_nodes={len(params.get('work') or {})}"
            )
        print(
            f"  counters: {summary['hits']} hit(s), {summary['misses']} miss(es), "
            f"{summary['stale']} stale, {summary['stores']} store(s)"
        )
        return 0

    # clear
    from repro.tune.cache import clear_tuned_cache

    clear_tuned_cache(disk=ns.disk)
    print("tuned-plan cache cleared" + (" (disk included)" if ns.disk else ""))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
