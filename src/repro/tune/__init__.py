"""Profile-guided optimization: close the streamscope loop.

``repro.tune`` turns the observability layer's measurements back into
compiler inputs:

* :func:`calibrate` runs a short traced warm-up and reduces it to a
  :class:`Profile` (per-filter self-time per period, per-edge traffic);
* :func:`tune_stream` searches the knobs the engines expose but never
  optimize — superbatch chunk size (best-of-ladder, static default
  included), fused-chain/channel presizing, profile-weighted work for
  the parallel partitioner — and returns :class:`TunedParams`;
* :mod:`repro.tune.cache` persists the result keyed by (plan
  fingerprint, host fingerprint), applied automatically by
  ``Interpreter(tune=True)`` and discarded with an ``SL306`` diagnostic
  when either fingerprint no longer matches;
* :func:`rebalance_parallel` reads a finished parallel session's
  busy/stall attribution and, when the worker-busy skew exceeds a
  threshold, stores a measured work profile so the next
  ``Interpreter(engine="parallel", tune=True)`` re-cuts its partition
  (:mod:`repro.tune.rebalance`).

CLI: ``python -m repro.tune {tune,show,clear}``.
"""

from repro.tune.cache import (
    TunedParams,
    clear_tuned_cache,
    host_fingerprint,
    load_tuned,
    store_tuned,
    stream_fingerprint,
    tuned_cache_stats,
    tuned_cache_summary,
)
from repro.tune.profile import Profile, calibrate
from repro.tune.rebalance import (
    DEFAULT_SKEW_THRESHOLD,
    RebalanceReport,
    busy_skew,
    derive_work_profile,
    rebalance_parallel,
)
from repro.tune.tuner import (
    CHUNK_LADDER,
    TuneResult,
    render_result,
    tune_stream,
)

__all__ = [
    "CHUNK_LADDER",
    "DEFAULT_SKEW_THRESHOLD",
    "Profile",
    "RebalanceReport",
    "TuneResult",
    "TunedParams",
    "busy_skew",
    "calibrate",
    "clear_tuned_cache",
    "derive_work_profile",
    "rebalance_parallel",
    "host_fingerprint",
    "load_tuned",
    "render_result",
    "store_tuned",
    "stream_fingerprint",
    "tune_stream",
    "tuned_cache_stats",
    "tuned_cache_summary",
]
