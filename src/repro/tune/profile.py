"""Calibration: run a short traced warm-up, extract a machine profile.

:func:`calibrate` executes a few steady periods of a stream under a
:class:`~repro.obs.MemoryTracer` and reduces the streamscope span data to
the two facts the tuner consumes:

* ``work`` — measured seconds of self-time per steady period, **per flat
  node**.  Batched-engine spans are emitted per kernel/fused-chain/core
  chunk, so composite span names (``A+B+C`` fused chains, ``core:X+Y``
  cyclic cores) are split among their member nodes in proportion to the
  static work estimate — the measurement fixes the totals, the estimate
  only apportions within a composite.
* ``edge_items`` — items crossing each edge per steady period, straight
  from the schedule's repetition vector (``reps[src] * push_rate``).

A profile can also be rebuilt from the machine-readable output of
``python -m repro.obs report --json`` (:meth:`Profile.from_report_json`),
so a trace captured on one run can drive tuning later.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, Optional, Union


@dataclass
class Profile:
    """Measured per-node work and per-edge traffic for one stream."""

    #: flat-node name -> measured seconds of self-time per steady period
    #: (or total seconds when ``periods`` is None — relative weights only).
    work: Dict[str, float] = field(default_factory=dict)
    #: ``src->dst`` edge name -> items per steady period.
    edge_items: Dict[str, int] = field(default_factory=dict)
    #: steady periods the measurement covered (None when unknown, e.g. a
    #: profile rebuilt from an exported report).
    periods: Optional[int] = None
    #: wall-clock seconds of the measured steady run.
    wall_s: float = 0.0
    engine: str = ""

    @classmethod
    def from_metrics(
        cls,
        metrics: Dict[str, Any],
        graph,
        program,
        periods: int,
        wall_s: float = 0.0,
        engine: str = "",
    ) -> "Profile":
        """Reduce ``MemoryTracer.metrics()`` output over a known graph."""
        from repro.estimate.work import node_work

        weights = {
            node.name: max(float(node_work(node)) * program.reps.get(node, 1), 1e-9)
            for node in graph.nodes
        }
        totals: Dict[str, float] = {}
        for name, row in (metrics.get("filters") or {}).items():
            seconds = float(row.get("self_time", 0.0))
            if seconds <= 0.0:
                continue
            base = name[len("core:"):] if name.startswith("core:") else name
            members = [m for m in base.split("+") if m in weights]
            if not members:
                continue
            scale = sum(weights[m] for m in members)
            for m in members:
                totals[m] = totals.get(m, 0.0) + seconds * weights[m] / scale
        work = {name: t / max(periods, 1) for name, t in totals.items()}
        edge_items = {
            f"{e.src.name}->{e.dst.name}": int(
                program.reps.get(e.src, 0) * e.push_rate
            )
            for e in graph.edges
        }
        return cls(
            work=work,
            edge_items=edge_items,
            periods=periods,
            wall_s=wall_s,
            engine=engine,
        )

    @classmethod
    def from_report_json(cls, payload: Dict[str, Any]) -> "Profile":
        """Rebuild a profile from ``python -m repro.obs report --json``.

        The exported report has no repetition vector, so composite span
        names are split evenly and ``work`` holds *total* seconds
        (``periods`` stays None) — still exactly the relative weights
        partitioning balances on.
        """
        work: Dict[str, float] = {}
        for row in payload.get("filters") or []:
            name = str(row.get("name", ""))
            seconds = float(row.get("self_time_us", 0.0)) / 1e6
            if not name or seconds <= 0.0:
                continue
            base = name[len("core:"):] if name.startswith("core:") else name
            members = base.split("+")
            for m in members:
                work[m] = work.get(m, 0.0) + seconds / len(members)
        return cls(
            work=work,
            periods=None,
            engine=str(
                (payload.get("engine_report") or {}).get("used", "")
            ),
        )

    def total_work(self) -> float:
        return sum(self.work.values())


def calibrate(
    source: Union[Callable[[], Any], Any],
    periods: int = 64,
    engine: str = "batched",
    warmup_periods: int = 2,
) -> Profile:
    """Run a short traced warm-up of ``source`` and return its profile.

    ``source`` is a stream *builder* (zero-arg callable) or a live
    :class:`~repro.graph.base.Stream`, which is cloned first so the
    caller's filter state and sink contents are untouched.  Calibration
    always runs the **batched** engine by default: its traced path emits
    one span per kernel/fused-chain/core chunk, the granularity the
    profile attributes time at (the codegen engine collapses a whole
    chunk into one opaque span).
    """
    from repro.errors import EngineDowngradeWarning
    from repro.runtime.interpreter import Interpreter
    from repro.transforms.clone import clone_stream

    if callable(source):
        app = source()
    else:
        app = clone_stream(source)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", EngineDowngradeWarning)
        interp = Interpreter(app, check=False, engine=engine, trace=True)
        try:
            interp.run(periods=warmup_periods)
            t0 = perf_counter()
            interp.run_steady(periods)
            wall = perf_counter() - t0
            metrics = interp.tracer.metrics()
            profile = Profile.from_metrics(
                metrics,
                interp.graph,
                interp.program,
                periods=warmup_periods + periods,
                wall_s=wall,
                engine=interp.engine_used,
            )
        finally:
            interp.close()
    return profile
