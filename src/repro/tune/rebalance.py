"""Profile-driven partition rebalancing for the parallel engine.

BENCH_parallel's worker-busy skews (w0: 1% vs w2: 47%) are a partitioning
failure, not a runtime one: the static work estimates the mapping
strategies cut on can be an order of magnitude off for real filter
bodies.  This module closes that loop **between sessions**:

1. after a parallel run, :func:`rebalance_parallel` reads the session's
   per-worker busy/stall attribution (``ParallelSession.busy_report`` —
   derived from the shared-memory ring stall counters, so it costs the
   steady path nothing);
2. if the busy skew exceeds a threshold, it derives a measured per-node
   work profile (:func:`derive_work_profile`): each node's static work
   estimate is rescaled by its worker's measured-busy share over its
   static share, so the partitioner's *relative* weights match what the
   host actually executed;
3. the profile is stored in the PR-7 tuned-plan cache under the plan
   fingerprint, so the **next** ``Interpreter(engine="parallel",
   tune=True)`` over the same stream feeds it to
   :func:`repro.mapping.strategies.partition_nodes` and re-cuts the
   partition — which then flows through the PR-8 race checks and SL404
   ring-capacity proofs exactly like any other partition.

Rebalancing never mutates a live session: forked workers hold advanced
filter state the parent cannot see, so re-cutting mid-run could not stay
bit-exact.  The re-cut applies at the next session, where init replays
from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

#: Busy-share skew (max worker share / mean worker share) above which a
#: partition is considered imbalanced enough to re-cut.  1.0 is perfect
#: balance; compute workers idling behind one hot worker push it up.
DEFAULT_SKEW_THRESHOLD = 1.25


@dataclass
class RebalanceReport:
    """What one rebalancing pass observed and did."""

    #: max/mean busy share across workers (1.0 = perfectly balanced).
    skew: float
    #: per-worker busy share of the steady wall clock, keyed by worker id.
    busy_shares: Dict[int, float] = field(default_factory=dict)
    #: measured per-node work profile (node name -> seconds per period);
    #: empty when the pass did not trigger.
    profile: Dict[str, float] = field(default_factory=dict)
    #: threshold the skew was compared against.
    threshold: float = DEFAULT_SKEW_THRESHOLD
    #: whether the skew exceeded the threshold and a profile was derived.
    triggered: bool = False
    #: whether the profile was persisted to the tuned-plan cache.
    stored: bool = False
    #: plan fingerprint the profile was stored under ("" if not stored).
    fingerprint: str = ""

    def payload(self) -> Dict[str, object]:
        return {
            "skew": self.skew,
            "busy_shares": dict(self.busy_shares),
            "profile_nodes": len(self.profile),
            "threshold": self.threshold,
            "triggered": self.triggered,
            "stored": self.stored,
            "fingerprint": self.fingerprint,
        }


def busy_skew(busy_report: Dict[int, Dict[str, float]]) -> float:
    """Max worker busy share over the mean (1.0 = perfectly balanced).

    ``busy_report`` is :meth:`ParallelSession.busy_report` output.  An
    all-idle report (no steady run yet) returns 0.0 so callers can treat
    it as "nothing to rebalance".
    """
    shares = [row.get("busy_share", 0.0) for row in busy_report.values()]
    if not shares:
        return 0.0
    mean = sum(shares) / len(shares)
    if mean <= 0.0:
        return 0.0
    return max(shares) / mean


def derive_work_profile(session) -> Dict[str, float]:
    """Measured per-node work (seconds per steady period) from a session.

    The ring stall counters attribute each worker's steady wall clock into
    busy vs blocked; the static work model attributes each worker's load
    across its nodes.  Combining them: a node's measured work is its static
    per-period estimate scaled by ``measured_busy_share(worker) /
    static_share(worker)`` — the finest attribution available without
    per-firing tracing, and exactly the *relative* signal
    :func:`repro.mapping.strategies.apply_work_profile` normalizes anyway.
    """
    from repro.machine.model import ModelGraph

    interp = session.interp
    model = ModelGraph.from_flatgraph(interp.graph, interp.program.reps)
    static_work = {actor.name: float(actor.work) for actor in model.actors}
    total_static = sum(static_work.values()) or 1.0

    busy = session.busy_report()
    wall = sum(row.get("busy_s", 0.0) for row in busy.values()) or 1.0

    # Static share of each worker's load.
    static_by_wid: Dict[int, float] = {wid: 0.0 for wid in busy}
    for node, wid in session.node_wid.items():
        static_by_wid[wid] = static_by_wid.get(wid, 0.0) + static_work.get(
            node.name, 0.0
        )

    profile: Dict[str, float] = {}
    for node, wid in session.node_wid.items():
        static = static_work.get(node.name, 0.0)
        static_share = static_by_wid.get(wid, 0.0) / total_static
        measured_share = busy.get(wid, {}).get("busy_s", 0.0) / wall
        if static_share > 0.0:
            scale = measured_share / static_share
        else:  # a zero-static worker that measured busy: keep static weight
            scale = 1.0
        profile[node.name] = static * scale
    return profile


def rebalance_parallel(
    interp,
    threshold: float = DEFAULT_SKEW_THRESHOLD,
    store: bool = True,
) -> RebalanceReport:
    """Measure a finished parallel run's busy skew; re-cut if it's bad.

    Call after ``interp.run(...)`` on a live ``engine="parallel"``
    interpreter.  When the skew exceeds ``threshold``, the measured work
    profile is stored in the tuned-plan cache (under the same fingerprint
    ``Interpreter(tune=True)`` resolves), so the next parallel interpreter
    over this stream re-cuts its partition with measured weights.  The
    session itself is untouched — it stays warm and bit-exact.
    """
    session = getattr(interp, "parallel", None)
    if session is None:
        raise ValueError(
            "rebalance_parallel needs a live parallel session "
            "(engine='parallel' without an SL304 downgrade)"
        )
    busy = session.busy_report()
    shares = {wid: row.get("busy_share", 0.0) for wid, row in busy.items()}
    skew = busy_skew(busy)
    report = RebalanceReport(
        skew=skew, busy_shares=shares, threshold=threshold
    )
    if skew < threshold:
        return report
    report.triggered = True
    report.profile = derive_work_profile(session)
    if store and report.profile:
        from repro.runtime.plan import ExecutionPlan as _Plan
        from repro.tune.cache import TunedParams, store_tuned, stream_fingerprint

        senders, receivers = _Plan._messaging_endpoints(interp)
        fingerprint = stream_fingerprint(
            interp.graph, interp.program, senders, receivers
        )
        existing = interp.tuned
        params = TunedParams(
            chunk_periods=existing.chunk_periods if existing else None,
            work=report.profile,
            reserve_items=dict(existing.reserve_items) if existing else {},
        )
        path = store_tuned(
            fingerprint,
            params,
            meta={
                "source": "rebalance",
                "skew": skew,
                "strategy": session.strategy,
                "cores": session.cores,
            },
        )
        report.stored = path is not None
        report.fingerprint = fingerprint if report.stored else ""
    return report
