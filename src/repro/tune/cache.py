"""Persistent tuned-plan cache: one JSON file per plan fingerprint.

The tuner's output — the measured chunk size, per-filter work profile,
and channel presizing hints — is only as good as the machine it was
measured on.  Every entry is therefore keyed **twice**:

* by *plan fingerprint* (the PR-6 codegen fingerprint: structural plan
  signature + per-class ``work()`` code hashes + emitter revision), so
  editing a filter body or restructuring the graph invalidates it;
* by *host fingerprint* (CPU count, machine/processor identification,
  Python and numpy versions), stored **inside** the entry, so parameters
  tuned on one machine are never silently applied on another — a
  mismatch discards the entry with an ``SL306`` diagnostic.

Entries live under ``.repro_tuned/`` (override with ``REPRO_TUNED_CACHE``),
written atomically (tmp + ``os.replace``) and bounded by mtime-LRU
eviction, mirroring the codegen module cache.  Counters accumulate in
:data:`tuned_cache_stats` and surface through ``engine_report()["tuned"]``
and ``python -m repro.tune show``.
"""

from __future__ import annotations

import hashlib
import json
import os
import types
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

#: Bump to invalidate every cached entry after an incompatible change to
#: the tuned-parameter schema below.
TUNED_FORMAT_VERSION = 1

_DISK_CACHE_MAX = 256

DEFAULT_CACHE_DIR = ".repro_tuned"

#: Cumulative counters (process lifetime).  ``stale`` counts entries that
#: existed but were discarded: plan/host fingerprint mismatch, format
#: mismatch, or an unreadable/corrupt file.  Increments mirror into the
#: always-on metrics registry as repro_tuned_cache_total.
from repro.obs.metrics import METRICS as _METRICS
from repro.obs.metrics import MeteredStats as _MeteredStats

tuned_cache_stats: Dict[str, int] = _MeteredStats(
    _METRICS.counter(
        "repro_tuned_cache_total", "Tuned-plan cache events (hit/miss/stale/...)"
    ),
    lambda key: {"event": key},
    {
        "hits": 0,
        "misses": 0,
        "stale": 0,
        "stores": 0,
        "evictions": 0,
    },
)


def cache_dir() -> Path:
    """On-disk tuned-plan cache directory (``REPRO_TUNED_CACHE`` overrides)."""
    return Path(os.environ.get("REPRO_TUNED_CACHE") or DEFAULT_CACHE_DIR)


def clear_tuned_cache(disk: bool = False) -> None:
    """Zero the counters; with ``disk=True`` also delete the cache files."""
    for key in tuned_cache_stats:
        tuned_cache_stats[key] = 0
    if disk:
        directory = cache_dir()
        if directory.is_dir():
            for path in directory.glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass


def tuned_cache_summary() -> Dict[str, object]:
    """Counters plus the current on-disk entry count."""
    directory = cache_dir()
    try:
        size = sum(1 for _ in directory.glob("*.json")) if directory.is_dir() else 0
    except OSError:
        size = 0
    summary: Dict[str, object] = dict(tuned_cache_stats)
    summary["disk_size"] = size
    summary["disk_max"] = _DISK_CACHE_MAX
    summary["disk_dir"] = str(directory)
    return summary


# -- fingerprints -------------------------------------------------------------


def host_fingerprint() -> str:
    """Identity of the machine tuned parameters were measured on.

    CPU count and model dominate what the chunk ladder measures; the
    Python and numpy versions pin the runtime the kernels executed under.
    """
    import platform

    import numpy

    parts = [
        str(os.cpu_count() or 0),
        platform.machine(),
        platform.processor() or "",
        platform.python_version(),
        numpy.__version__,
    ]
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]


def stream_fingerprint(graph, program, senders, receivers) -> str:
    """The PR-6 plan fingerprint for a (graph, schedule, messaging) triple.

    Reuses :func:`repro.runtime.codegen_emit.plan_fingerprint` — structural
    signature plus per-class ``work()``/``work_batch`` code hashes — so the
    tuned cache and the codegen module cache invalidate on exactly the same
    events.
    """
    from repro import __version__
    from repro.runtime.codegen_emit import plan_fingerprint
    from repro.runtime.plan import _plan_signature

    signature = _plan_signature(graph, program, senders, receivers)
    shim = types.SimpleNamespace(graph=graph)
    return plan_fingerprint(shim, signature, __version__)


# -- tuned parameters ---------------------------------------------------------


@dataclass
class TunedParams:
    """What the tuner feeds back into the compiler.

    ``chunk_periods`` replaces the static 512 KiB-per-edge heuristic for
    the batched/codegen engines; ``work`` maps flat-node names to measured
    seconds per steady period (consumed by
    :func:`repro.mapping.strategies.partition_nodes` as a profile-weighted
    override of the static work estimates); ``reserve_items`` maps edge
    names (``src->dst``) to a presize hint for array channels and fusion
    scratch tapes, so the first tuned-size chunk never regrows a buffer.
    """

    chunk_periods: Optional[int] = None
    work: Dict[str, float] = field(default_factory=dict)
    reserve_items: Dict[str, int] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "chunk_periods": self.chunk_periods,
            "work": dict(self.work),
            "reserve_items": {k: int(v) for k, v in self.reserve_items.items()},
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "TunedParams":
        chunk = data.get("chunk_periods")
        return cls(
            chunk_periods=int(chunk) if chunk else None,
            work={str(k): float(v) for k, v in (data.get("work") or {}).items()},
            reserve_items={
                str(k): int(v) for k, v in (data.get("reserve_items") or {}).items()
            },
        )


# -- load / store -------------------------------------------------------------


def _entry_path(fingerprint: str) -> Path:
    return cache_dir() / f"{fingerprint}.json"


def store_tuned(
    fingerprint: str,
    params: TunedParams,
    meta: Optional[Dict[str, Any]] = None,
) -> Optional[Path]:
    """Persist tuned parameters for ``fingerprint`` on this host."""
    from repro import __version__

    entry = {
        "format": TUNED_FORMAT_VERSION,
        "plan": fingerprint,
        "host": host_fingerprint(),
        "repro": __version__,
        "params": params.to_json(),
        "meta": dict(meta or {}),
    }
    directory = cache_dir()
    path = _entry_path(fingerprint)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(entry, indent=2) + "\n")
        os.replace(tmp, path)
    except OSError:
        return None
    tuned_cache_stats["stores"] += 1
    try:
        entries = sorted(directory.glob("*.json"), key=lambda p: p.stat().st_mtime)
        while len(entries) > _DISK_CACHE_MAX:
            victim = entries.pop(0)
            victim.unlink()
            tuned_cache_stats["evictions"] += 1
    except OSError:
        pass
    return path


def load_tuned(
    fingerprint: str,
) -> Tuple[str, Optional[TunedParams], Optional[str], Optional[Dict[str, Any]]]:
    """Look up tuned parameters: ``(outcome, params, reason, meta)``.

    ``outcome`` is ``"hit"`` (params valid for this plan + host),
    ``"miss"`` (no entry), or ``"stale"`` (an entry existed but was
    discarded — ``reason`` says why; the caller reports ``SL306``).
    Stale entries are never applied and never partially trusted.
    """
    path = _entry_path(fingerprint)
    try:
        text = path.read_text()
    except OSError:
        tuned_cache_stats["misses"] += 1
        return "miss", None, None, None
    try:
        entry = json.loads(text)
        if not isinstance(entry, dict):
            raise ValueError("entry is not an object")
    except ValueError:
        tuned_cache_stats["stale"] += 1
        return "stale", None, "corrupted cache file (invalid JSON)", None
    if entry.get("format") != TUNED_FORMAT_VERSION:
        tuned_cache_stats["stale"] += 1
        return (
            "stale",
            None,
            f"format {entry.get('format')!r} != {TUNED_FORMAT_VERSION}",
            None,
        )
    if entry.get("plan") != fingerprint:
        tuned_cache_stats["stale"] += 1
        return "stale", None, "plan fingerprint mismatch", None
    host = host_fingerprint()
    if entry.get("host") != host:
        tuned_cache_stats["stale"] += 1
        return (
            "stale",
            None,
            f"host fingerprint mismatch (entry {entry.get('host')!r}, "
            f"this host {host!r})",
            None,
        )
    try:
        params = TunedParams.from_json(entry.get("params") or {})
    except (TypeError, ValueError):
        tuned_cache_stats["stale"] += 1
        return "stale", None, "corrupted cache file (bad params)", None
    tuned_cache_stats["hits"] += 1
    try:  # freshen mtime so LRU eviction spares hot entries
        os.utime(path)
    except OSError:
        pass
    return "hit", params, None, entry.get("meta") or {}


def list_entries() -> Dict[str, Dict[str, Any]]:
    """All readable cache entries, keyed by fingerprint (for the CLI)."""
    directory = cache_dir()
    out: Dict[str, Dict[str, Any]] = {}
    if not directory.is_dir():
        return out
    host = host_fingerprint()
    for path in sorted(directory.glob("*.json")):
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            out[path.stem] = {"status": "corrupt"}
            continue
        if not isinstance(entry, dict):
            out[path.stem] = {"status": "corrupt"}
            continue
        status = "ok" if entry.get("host") == host else "foreign-host"
        if entry.get("format") != TUNED_FORMAT_VERSION:
            status = "stale-format"
        out[path.stem] = {
            "status": status,
            "host": entry.get("host"),
            "params": entry.get("params"),
            "meta": entry.get("meta"),
        }
    return out
