"""The linear representation of a filter: ``y = A @ x + b``.

A filter is *linear* (affine) when every item it pushes is an affine
combination of the items it peeks.  Following the paper, a linear filter is
fully described by the tuple ``[A, b, peek, pop, push]``:

* ``x = [peek(0), …, peek(peek-1)]`` — the input window, **oldest first**
  (``peek(0)`` is the next item to be popped);
* ``y = A @ x + b`` — the pushed items, **in push order** (``y[0]`` is
  pushed first);
* ``A.shape == (push, peek)``, ``b.shape == (push,)``.

The *expansion* operation — the representation of ``k`` consecutive firings
viewed as one — underlies the combination rules: firing ``j`` (0 = earliest)
reads window columns ``[j*pop, j*pop + peek)`` and writes rows
``[j*push, (j+1)*push)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import StreamItError
from repro.graph.base import Filter


@dataclass(frozen=True)
class LinearRep:
    """An affine filter body ``y = A @ x + b`` with static rates."""

    A: np.ndarray
    b: np.ndarray
    pop: int

    def __post_init__(self) -> None:
        A = np.asarray(self.A, dtype=np.float64)
        b = np.asarray(self.b, dtype=np.float64)
        object.__setattr__(self, "A", A)
        object.__setattr__(self, "b", b)
        if A.ndim != 2:
            raise StreamItError(f"A must be 2-D, got shape {A.shape}")
        if b.shape != (A.shape[0],):
            raise StreamItError(f"b shape {b.shape} must be ({A.shape[0]},)")
        if self.pop <= 0:
            raise StreamItError(f"linear reps require pop > 0, got {self.pop}")
        if self.pop > self.peek:
            raise StreamItError(f"pop ({self.pop}) exceeds peek ({self.peek})")

    # -- shape --------------------------------------------------------------

    @property
    def push(self) -> int:
        return self.A.shape[0]

    @property
    def peek(self) -> int:
        return self.A.shape[1]

    @property
    def extra_peek(self) -> int:
        return self.peek - self.pop

    # -- semantics -----------------------------------------------------------

    def apply(self, window: Sequence[float]) -> np.ndarray:
        """Compute one firing's outputs from an input window (oldest first)."""
        x = np.asarray(window, dtype=np.float64)
        if x.shape != (self.peek,):
            raise StreamItError(f"window shape {x.shape} != ({self.peek},)")
        return self.A @ x + self.b

    def apply_stream(self, items: Sequence[float]) -> np.ndarray:
        """Run the filter over a whole input stream; returns all outputs.

        Fires ``floor((len(items) - extra_peek) / pop)`` times.
        """
        x = np.asarray(items, dtype=np.float64)
        n_firings = (len(x) - self.extra_peek) // self.pop
        if n_firings <= 0:
            return np.zeros(0)
        out = np.empty(n_firings * self.push)
        for j in range(n_firings):
            out[j * self.push : (j + 1) * self.push] = self.apply(
                x[j * self.pop : j * self.pop + self.peek]
            )
        return out

    # -- algebra --------------------------------------------------------------

    def expand(self, k: int) -> "LinearRep":
        """The representation of ``k`` consecutive firings as one firing.

        Result rates: ``peek' = peek + (k-1)*pop``, ``pop' = k*pop``,
        ``push' = k*push``.
        """
        if k < 1:
            raise StreamItError(f"expansion factor must be >= 1, got {k}")
        if k == 1:
            return self
        peek_e = self.peek + (k - 1) * self.pop
        A_e = np.zeros((k * self.push, peek_e))
        for j in range(k):
            A_e[j * self.push : (j + 1) * self.push, j * self.pop : j * self.pop + self.peek] = self.A
        b_e = np.tile(self.b, k)
        return LinearRep(A_e, b_e, pop=k * self.pop)

    def nnz(self) -> int:
        """Number of nonzero coefficients in ``A`` (drives the cost model)."""
        return int(np.count_nonzero(self.A))

    def equivalent(self, other: "LinearRep", tol: float = 1e-9) -> bool:
        """True if both reps denote the same stream transformation.

        Requires identical rates and (A, b) equal within ``tol``.
        """
        return (
            self.pop == other.pop
            and self.A.shape == other.A.shape
            and bool(np.allclose(self.A, other.A, atol=tol))
            and bool(np.allclose(self.b, other.b, atol=tol))
        )

    def to_filter(self, name: Optional[str] = None) -> "LinearFilter":
        """Materialize as an executable :class:`LinearFilter`."""
        return LinearFilter(self, name=name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinearRep(peek={self.peek}, pop={self.pop}, push={self.push})"


class LinearFilter(Filter):
    """A filter that directly executes a :class:`LinearRep` with numpy."""

    supports_work_batch = True

    def __init__(self, rep: LinearRep, name: Optional[str] = None) -> None:
        super().__init__(peek=rep.peek, pop=rep.pop, push=rep.push, name=name)
        self.rep = rep

    def work(self) -> None:
        rep = self.rep
        window = np.fromiter(
            (self.peek(i) for i in range(rep.peek)), dtype=np.float64, count=rep.peek
        )
        y = rep.A @ window + rep.b
        for _ in range(rep.pop):
            self.pop()
        for value in y:
            self.push(float(value))

    def work_batch(self, n: int) -> None:
        """``n`` firings as one matmul over the strided peek window.

        Row ``j`` of ``X @ A.T`` is ``A @ x_j`` — the same multiply/add
        pairs per firing as :meth:`work`, evaluated by a GEMM instead of
        ``n`` GEMVs (BLAS kernel selection may differ in the last ulp; the
        order-sensitive contract tests therefore use a tight ``allclose``
        for this filter, unlike the data-movement and loop-sequential
        kernels which are exactly bit-identical).
        """
        rep = self.rep
        window = self.input.peek_block((n - 1) * rep.pop + rep.peek)
        X = np.lib.stride_tricks.sliding_window_view(window, rep.peek)[:: rep.pop][:n]
        Y = X @ rep.A.T + rep.b
        self.input.drop(n * rep.pop)
        self.output.push_block(Y)


def fir_rep(coeffs: Sequence[float]) -> LinearRep:
    """The linear rep of a single-output FIR filter.

    With taps ``h[0..N-1]`` computing ``y = sum_i h[i] * peek(i)`` (so
    ``h[0]`` multiplies the *oldest* item in the window), ``A`` is the row
    vector ``h`` and ``pop`` is 1.
    """
    h = np.asarray(list(coeffs), dtype=np.float64)
    return LinearRep(h[None, :], np.zeros(1), pop=1)
