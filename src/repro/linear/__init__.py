"""Linear analysis and optimization of stream programs (the paper's core).

Pipeline: :func:`extract_linear` detects linear filters from their work
functions; :mod:`~repro.linear.combination` collapses neighbouring linear
nodes; :mod:`~repro.linear.frequency` translates linear nodes into FFT
convolution; :func:`apply_selection` chooses the best per region.
"""

from repro.linear.combination import combine_pipeline, combine_pipeline_all, combine_splitjoin
from repro.linear.costmodel import (
    CostReport,
    best_block,
    compare,
    direct_flops_per_firing,
    direct_flops_per_input,
    freq_flops_per_block,
    freq_flops_per_input,
)
from repro.linear.extraction import (
    Affine,
    ExtractionResult,
    extract_linear,
    is_stateful,
    try_extract,
)
from repro.linear.frequency import FrequencyFilter, frequency_replace
from repro.linear.linrep import LinearFilter, LinearRep, fir_rep
from repro.linear.selection import (
    OptimizationReport,
    apply_combination,
    apply_frequency,
    apply_selection,
    collapse_linear,
    subtree_cost_per_item,
)

__all__ = [
    "LinearRep",
    "LinearFilter",
    "fir_rep",
    "Affine",
    "ExtractionResult",
    "extract_linear",
    "try_extract",
    "is_stateful",
    "combine_pipeline",
    "combine_pipeline_all",
    "combine_splitjoin",
    "FrequencyFilter",
    "frequency_replace",
    "CostReport",
    "compare",
    "best_block",
    "direct_flops_per_firing",
    "direct_flops_per_input",
    "freq_flops_per_block",
    "freq_flops_per_input",
    "collapse_linear",
    "apply_combination",
    "apply_frequency",
    "apply_selection",
    "subtree_cost_per_item",
    "OptimizationReport",
]
