"""Whole-program linear optimization and automatic selection.

Three optimization levels, matching the paper's experiments:

* :func:`apply_combination` ("linear replacement") — collapse every maximal
  linear region into a single direct-form :class:`LinearFilter`.
* :func:`apply_frequency` ("frequency replacement") — collapse every
  maximal linear region and implement it in the frequency domain,
  unconditionally (the paper shows this can *hurt* for narrow windows).
* :func:`apply_selection` ("automatic selection") — a dynamic program over
  the stream hierarchy (including all contiguous sub-runs of each
  pipeline) choosing, per region, the cheapest of {keep original, direct
  linear replacement, frequency replacement} under the FLOPs cost model.

All three return a **new** stream tree; the input tree is never mutated
(untouched subtrees are cloned).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import StreamItError
from repro.estimate.work import work_per_firing
from repro.graph.base import Filter, Stream
from repro.graph.composites import FeedbackLoop, Pipeline, SplitJoin
from repro.linear.combination import combine_pipeline_all, combine_splitjoin
from repro.linear.costmodel import (
    best_block,
    direct_flops_per_firing,
    freq_flops_per_block,
)
from repro.linear.extraction import extract_linear
from repro.linear.frequency import FrequencyFilter
from repro.linear.linrep import LinearFilter, LinearRep
from repro.transforms.clone import clone_stream


# ---------------------------------------------------------------------------
# Whole-subtree collapse
# ---------------------------------------------------------------------------


def collapse_linear(stream: Stream) -> Optional[LinearRep]:
    """The linear rep of an entire subtree, or None if any part is not linear."""
    if isinstance(stream, LinearFilter):
        return stream.rep
    if isinstance(stream, FrequencyFilter):
        return stream.rep.expand(stream.block)
    if isinstance(stream, Filter):
        return extract_linear(stream)
    if isinstance(stream, Pipeline):
        reps = [collapse_linear(child) for child in stream.children()]
        if any(rep is None for rep in reps):
            return None
        return combine_pipeline_all(reps)  # type: ignore[arg-type]
    if isinstance(stream, SplitJoin):
        reps = [collapse_linear(child) for child in stream.children()]
        if any(rep is None for rep in reps):
            return None
        try:
            return combine_splitjoin(reps, stream.splitter, stream.joiner)  # type: ignore[arg-type]
        except StreamItError:
            return None
    return None  # feedback loops are never collapsed


# ---------------------------------------------------------------------------
# Cost accounting
# ---------------------------------------------------------------------------


def _filter_cost_per_firing(filt: Filter) -> float:
    """Flops-equivalent cost of one firing (exact for linear nodes)."""
    if isinstance(filt, FrequencyFilter):
        return freq_flops_per_block(filt.rep, filt.block)
    if isinstance(filt, LinearFilter):
        return direct_flops_per_firing(filt.rep)
    return work_per_firing(filt)


def subtree_cost_per_item(stream: Stream) -> float:
    """Estimated flops per item *entering* the subtree.

    For source-led subtrees (no input), the cost is per item *leaving*.
    Used to compare implementation choices for the same region, which by
    construction share I/O rates.
    """
    in_items, out_items, cost = _period_profile(stream)
    base = in_items if in_items > 0 else out_items
    if base == 0:
        return float(cost)
    return float(cost / base)


def _period_profile(stream: Stream) -> Tuple[Fraction, Fraction, Fraction]:
    """(input items, output items, cost) per local steady period."""
    if isinstance(stream, Filter):
        return (
            Fraction(stream.rate.pop),
            Fraction(stream.rate.push),
            Fraction(_filter_cost_per_firing(stream)).limit_denominator(10**6),
        )
    if isinstance(stream, Pipeline):
        rate = Fraction(1)
        total_cost = Fraction(0)
        in_items = Fraction(0)
        out_items = Fraction(0)
        for index, child in enumerate(stream.children()):
            c_in, c_out, c_cost = _period_profile(child)
            if index == 0:
                in_items = rate * c_in
            else:
                if c_in == 0:
                    raise StreamItError(
                        f"source filter {child.name} in pipeline interior"
                    )
                rate = out_items / c_in
            total_cost += rate * c_cost
            out_items = rate * c_out
        return in_items, out_items, total_cost
    if isinstance(stream, SplitJoin):
        ws = stream.split_weights()
        wj = stream.join_weights()
        split_in = stream.splitter.pop_per_cycle(stream.n_branches)
        join_out = stream.joiner.push_per_cycle(stream.n_branches)
        total_cost = Fraction(0)
        join_cycles: Optional[Fraction] = None
        for i, child in enumerate(stream.children()):
            c_in, c_out, c_cost = _period_profile(child)
            if ws[i] == 0 and c_in == 0:
                continue
            rate = Fraction(ws[i]) / c_in if c_in else Fraction(0)
            total_cost += rate * c_cost
            if wj[i]:
                branch_join = rate * c_out / Fraction(wj[i])
                join_cycles = branch_join if join_cycles is None else join_cycles
        return (
            Fraction(split_in),
            (join_cycles or Fraction(0)) * join_out,
            total_cost,
        )
    if isinstance(stream, FeedbackLoop):
        wj0, wj1 = stream.join_weights()
        ws0, ws1 = stream.split_weights()
        join_out = stream.joiner.push_per_cycle(2)
        split_in = stream.splitter.pop_per_cycle(2)
        b_in, b_out, b_cost = _period_profile(stream.body)
        l_in, l_out, l_cost = _period_profile(stream.loopback)
        body_rate = Fraction(join_out) / b_in
        split_rate = body_rate * b_out / split_in
        loop_rate = split_rate * ws1 / l_in if l_in else Fraction(0)
        cost = body_rate * b_cost + loop_rate * l_cost
        return Fraction(wj0), split_rate * ws0, cost
    raise StreamItError(f"cannot profile stream type {type(stream)!r}")


# ---------------------------------------------------------------------------
# Rewriters
# ---------------------------------------------------------------------------


@dataclass
class OptimizationReport:
    """What the optimizer did, for logging and the benchmark harness."""

    replacements: List[str] = field(default_factory=list)

    def note(self, message: str) -> None:
        self.replacements.append(message)


def _is_io_filter(stream: Stream) -> bool:
    return isinstance(stream, Filter) and (
        stream.rate.pop == 0 or stream.rate.push == 0
    )


def _rewrite_pipeline(
    pipe: Pipeline,
    rewrite: Callable[[Stream], Stream],
    run_builder: Callable[[Sequence[Stream], LinearRep], Stream],
    report: OptimizationReport,
) -> Pipeline:
    """Replace maximal linear runs of a pipeline's children."""
    children = list(pipe.children())
    new_children: List[Stream] = []
    i = 0
    while i < len(children):
        if _is_io_filter(children[i]):
            new_children.append(clone_stream(children[i]))
            i += 1
            continue
        # Find the longest run starting at i that collapses to linear.
        best_j: Optional[int] = None
        best_rep: Optional[LinearRep] = None
        reps: List[LinearRep] = []
        j = i
        while j < len(children):
            rep_j = None if _is_io_filter(children[j]) else collapse_linear(children[j])
            if rep_j is None:
                break
            reps.append(rep_j)
            try:
                combined = combine_pipeline_all(reps)
            except StreamItError:
                break
            best_j, best_rep = j, combined
            j += 1
        if best_rep is not None and best_j is not None:
            run = children[i : best_j + 1]
            new_children.append(run_builder(run, best_rep))
            report.note(
                f"collapsed {'+'.join(c.name for c in run)} -> "
                f"peek={best_rep.peek} pop={best_rep.pop} push={best_rep.push}"
            )
            i = best_j + 1
        else:
            new_children.append(rewrite(children[i]))
            i += 1
    return Pipeline(*new_children, name=pipe.name)


def _make_rewriter(
    run_builder: Callable[[Sequence[Stream], LinearRep], Stream],
    report: OptimizationReport,
) -> Callable[[Stream], Stream]:
    def rewrite(stream: Stream, in_loop: bool = False) -> Stream:
        if isinstance(stream, Pipeline):
            if in_loop:
                # Inside a feedback loop rate changes are forbidden (they
                # would demand more delay than declared); rewrite children
                # individually and rate-preservingly instead of collapsing
                # runs.
                return Pipeline(
                    *[rewrite(c, in_loop=True) for c in stream.children()],
                    name=stream.name,
                )
            return _rewrite_pipeline(stream, rewrite, run_builder, report)
        if (
            not in_loop
            and isinstance(stream, (SplitJoin, FeedbackLoop))
            and not _is_io_filter(stream)
        ):
            rep = collapse_linear(stream)
            if rep is not None:
                replacement = run_builder([stream], rep)
                report.note(f"collapsed {stream.name}")
                return replacement
        if isinstance(stream, SplitJoin):
            new_children = [rewrite(child, in_loop) for child in stream.children()]
            return SplitJoin(stream.splitter, new_children, stream.joiner, name=stream.name)
        if isinstance(stream, FeedbackLoop):
            return FeedbackLoop(
                stream.joiner,
                rewrite(stream.body, in_loop=True),
                stream.splitter,
                rewrite(stream.loopback, in_loop=True),
                stream.delay,
                stream.init_path,
                name=stream.name,
            )
        if isinstance(stream, Filter) and not _is_io_filter(stream):
            rep = collapse_linear(stream)
            if rep is not None:
                if in_loop:
                    # Rate-preserving direct form only (no block expansion).
                    return LinearFilter(rep, name=f"linear[{stream.name}]")
                return run_builder([stream], rep)
        return clone_stream(stream)

    return rewrite


def apply_combination(stream: Stream) -> Tuple[Stream, OptimizationReport]:
    """Linear replacement: maximal linear regions become LinearFilters."""
    report = OptimizationReport()

    def builder(run: Sequence[Stream], rep: LinearRep) -> Stream:
        return LinearFilter(rep, name=f"linear[{'+'.join(s.name for s in run)}]")

    rewrite = _make_rewriter(builder, report)
    return rewrite(stream), report


def apply_frequency(stream: Stream) -> Tuple[Stream, OptimizationReport]:
    """Frequency replacement: maximal linear regions run via FFT."""
    report = OptimizationReport()

    def builder(run: Sequence[Stream], rep: LinearRep) -> Stream:
        return FrequencyFilter(rep, name=f"freq[{'+'.join(s.name for s in run)}]")

    rewrite = _make_rewriter(builder, report)
    return rewrite(stream), report


# ---------------------------------------------------------------------------
# Automatic selection (dynamic programming)
# ---------------------------------------------------------------------------


def _region_options(region_cost: float, rep: Optional[LinearRep]) -> List[Tuple[float, str]]:
    options = [(region_cost, "keep")]
    if rep is not None:
        options.append((direct_flops_per_firing(rep) / rep.pop, "linear"))
        block = best_block(rep)
        options.append((freq_flops_per_block(rep, block) / (block * rep.pop), "freq"))
    return options


def apply_selection(stream: Stream) -> Tuple[Stream, OptimizationReport]:
    """Automatic optimization selection over the hierarchy.

    For every pipeline, a suffix dynamic program considers every contiguous
    child run; each run (and each whole split-join/filter) may be kept,
    replaced by a direct-form linear node, or frequency-translated —
    whichever minimizes estimated flops per input item.
    """
    report = OptimizationReport()

    def choose(stream_: Stream, in_loop: bool = False) -> Tuple[Stream, float]:
        if in_loop:
            return choose_in_loop(stream_)
        if isinstance(stream_, Pipeline):
            return choose_pipeline(stream_)
        base_cost = _safe_cost(stream_)
        rep = None if _is_io_filter(stream_) else collapse_linear(stream_)
        options = _region_options(base_cost, rep)
        cost, kind = min(options, key=lambda t: t[0])
        if kind == "linear":
            assert rep is not None
            report.note(f"{stream_.name}: direct linear replacement")
            return LinearFilter(rep, name=f"linear[{stream_.name}]"), cost
        if kind == "freq":
            assert rep is not None
            report.note(f"{stream_.name}: frequency replacement")
            return FrequencyFilter(rep, name=f"freq[{stream_.name}]"), cost
        # keep: recurse into composites to optimize their insides.
        if isinstance(stream_, SplitJoin):
            kids = [choose(c) for c in stream_.children()]
            new = SplitJoin(
                stream_.splitter, [k[0] for k in kids], stream_.joiner, name=stream_.name
            )
            return new, _safe_cost(new)
        if isinstance(stream_, FeedbackLoop):
            new = FeedbackLoop(
                stream_.joiner,
                choose(stream_.body, in_loop=True)[0],
                stream_.splitter,
                choose(stream_.loopback, in_loop=True)[0],
                stream_.delay,
                stream_.init_path,
                name=stream_.name,
            )
            return new, _safe_cost(new)
        return clone_stream(stream_), base_cost

    def choose_in_loop(stream_: Stream) -> Tuple[Stream, float]:
        """Rate-preserving choices only: loop delays fix the legal rates."""
        if isinstance(stream_, Pipeline):
            kids = [choose_in_loop(c) for c in stream_.children()]
            new = Pipeline(*[k[0] for k in kids], name=stream_.name)
            return new, _safe_cost(new)
        if isinstance(stream_, SplitJoin):
            kids = [choose_in_loop(c) for c in stream_.children()]
            new = SplitJoin(
                stream_.splitter, [k[0] for k in kids], stream_.joiner, name=stream_.name
            )
            return new, _safe_cost(new)
        if isinstance(stream_, FeedbackLoop):
            new = FeedbackLoop(
                stream_.joiner,
                choose_in_loop(stream_.body)[0],
                stream_.splitter,
                choose_in_loop(stream_.loopback)[0],
                stream_.delay,
                stream_.init_path,
                name=stream_.name,
            )
            return new, _safe_cost(new)
        if isinstance(stream_, Filter) and not _is_io_filter(stream_):
            rep = collapse_linear(stream_)
            base_cost = _safe_cost(stream_)
            if rep is not None:
                direct = direct_flops_per_firing(rep) / rep.pop
                if direct < base_cost:
                    report.note(f"{stream_.name}: direct linear replacement (in loop)")
                    return LinearFilter(rep, name=f"linear[{stream_.name}]"), direct
            return clone_stream(stream_), base_cost
        return clone_stream(stream_), _safe_cost(stream_)

    def choose_pipeline(pipe: Pipeline) -> Tuple[Stream, float]:
        children = list(pipe.children())
        n = len(children)
        # Pre-compute reps of every contiguous run [i, j].
        run_rep: dict = {}
        for i in range(n):
            reps: List[LinearRep] = []
            for j in range(i, n):
                rep_j = (
                    None
                    if _is_io_filter(children[j])
                    else collapse_linear(children[j])
                )
                if rep_j is None:
                    break
                reps.append(rep_j)
                try:
                    run_rep[(i, j)] = combine_pipeline_all(reps)
                except StreamItError:
                    break
        # Gains scale per-item costs downstream of rate changers.
        gains: List[float] = []
        scale = 1.0
        scales = [1.0]
        for child in children:
            c_in, c_out, _ = _period_profile(child)
            gain = float(c_out / c_in) if c_in else 1.0
            scale *= gain
            scales.append(scale)
        # Suffix DP over (choice at position i).
        INF = float("inf")
        best_cost: List[float] = [INF] * (n + 1)
        best_plan: List[Optional[Tuple[str, int, object]]] = [None] * (n + 1)
        best_cost[n] = 0.0
        for i in range(n - 1, -1, -1):
            # Option: handle child i alone (recursively optimized).
            child_new, child_cost = choose(children[i])
            total = scales[i] * child_cost + best_cost[i + 1]
            best_cost[i] = total
            best_plan[i] = ("single", i, child_new)
            # Option: collapse run [i, j].
            for j in range(i, n):
                rep = run_rep.get((i, j))
                if rep is None:
                    continue
                for impl_cost, kind in _region_options(INF, rep)[1:]:
                    total = scales[i] * impl_cost + best_cost[j + 1]
                    if total < best_cost[i]:
                        best_cost[i] = total
                        best_plan[i] = (kind, j, rep)
        # Reconstruct.
        new_children: List[Stream] = []
        i = 0
        while i < n:
            plan = best_plan[i]
            assert plan is not None
            kind, j, payload = plan
            if kind == "single":
                new_children.append(payload)  # type: ignore[arg-type]
                i += 1
            else:
                rep = payload  # type: ignore[assignment]
                run_names = "+".join(c.name for c in children[i : j + 1])
                if kind == "linear":
                    new_children.append(LinearFilter(rep, name=f"linear[{run_names}]"))
                    report.note(f"{run_names}: direct linear replacement")
                else:
                    new_children.append(FrequencyFilter(rep, name=f"freq[{run_names}]"))
                    report.note(f"{run_names}: frequency replacement")
                i = j + 1
        return Pipeline(*new_children, name=pipe.name), best_cost[0]

    new_stream, _ = choose(stream)
    return new_stream, report


def _safe_cost(stream: Stream) -> float:
    try:
        return subtree_cost_per_item(stream)
    except StreamItError:
        return 0.0
