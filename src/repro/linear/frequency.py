"""Frequency translation: executing a linear node with FFT convolution.

A linear node with a wide input window performs, per output position ``j``,
a sliding correlation of the input with row ``A[j, :]``.  Translating to the
frequency domain computes ``B`` firings at once with one forward FFT of the
input window shared across all output positions (overlap–save), an
asymptotic win for convolutional filters — the paper's frequency
replacement.

With ``conv = x * reverse(A[j,:])`` (full convolution), firing ``t``'s
``j``-th output is ``conv[t·pop + peek - 1] + b[j]``; the strided slice
handles decimating filters (``pop > 1``) for free.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import StreamItError
from repro.graph.base import Filter
from repro.linear.costmodel import best_block, fft_size
from repro.linear.linrep import LinearRep


class FrequencyFilter(Filter):
    """Executes a :class:`LinearRep` in the frequency domain.

    One work invocation computes ``block`` logical firings: it peeks the
    ``block·pop + (peek - pop)`` item window, performs one shared forward
    real FFT, multiplies by each precomputed row spectrum, inverse
    transforms, and pushes the ``block·push`` results in firing order.
    Stream semantics are bit-for-bit the rate-scaled expansion of the
    original node; only the arithmetic route differs.
    """

    def __init__(
        self,
        rep: LinearRep,
        block: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        if block is None:
            block = best_block(rep)
        if block < 1:
            raise StreamItError(f"block must be >= 1, got {block}")
        self.rep = rep
        self.block = block
        window = block * rep.pop + rep.extra_peek
        super().__init__(
            peek=window,
            pop=block * rep.pop,
            push=block * rep.push,
            name=name,
        )
        self.n_fft = fft_size(rep, block)
        if self.n_fft < window:
            raise StreamItError("FFT size smaller than the input window")
        # Precompute each output row's kernel spectrum (correlation =
        # convolution with the reversed row).
        kernels = rep.A[:, ::-1]
        self._spectra = np.fft.rfft(kernels, n=self.n_fft, axis=1)
        # conv[t*pop + peek - 1] indexes, for t in [0, block)
        self._taps = rep.peek - 1 + rep.pop * np.arange(block)

    supports_work_batch = True

    def work(self) -> None:
        rep = self.rep
        window = np.fromiter(
            (self.peek(i) for i in range(self.rate.peek)),
            dtype=np.float64,
            count=self.rate.peek,
        )
        spectrum = np.fft.rfft(window, n=self.n_fft)
        # conv has shape (push, n_fft); we only need the strided taps.
        conv = np.fft.irfft(self._spectra * spectrum[None, :], n=self.n_fft, axis=1)
        outputs = conv[:, self._taps] + rep.b[:, None]  # (push, block)
        for _ in range(self.rate.pop):
            self.pop()
        # Firing order: firing t's outputs y[t*push + j].
        for value in outputs.T.reshape(-1):
            self.push(float(value))

    def work_batch(self, n: int) -> None:
        """``n`` overlap–save firings with batched (2-D) FFTs.

        pocketfft applies the same 1-D transform to every row, so the
        spectra — and hence the outputs — are bit-identical to ``n``
        scalar firings; only the per-item channel traffic disappears.
        """
        rep = self.rep
        rate = self.rate
        window = self.input.peek_block((n - 1) * rate.pop + rate.peek)
        W = np.lib.stride_tricks.sliding_window_view(window, rate.peek)[:: rate.pop][:n]
        # Bound the (rows, push, n_fft) intermediate to ~16 MiB per slab.
        slab = max(1, (1 << 21) // max(rep.push * self.n_fft, 1))
        outs = []
        for s in range(0, n, slab):
            Wb = W[s : s + slab]
            spectra = np.fft.rfft(Wb, n=self.n_fft, axis=1)
            conv = np.fft.irfft(
                self._spectra[None, :, :] * spectra[:, None, :], n=self.n_fft, axis=2
            )
            outputs = conv[:, :, self._taps] + rep.b[None, :, None]
            # Firing-major, push-order within each firing (= outputs.T per row).
            outs.append(np.transpose(outputs, (0, 2, 1)).reshape(len(Wb), -1))
        self.input.drop(n * rate.pop)
        self.output.push_block(np.concatenate(outs))


def frequency_replace(rep: LinearRep, block: Optional[int] = None, name: Optional[str] = None) -> FrequencyFilter:
    """Build the frequency-domain implementation of a linear node."""
    return FrequencyFilter(rep, block=block, name=name)
