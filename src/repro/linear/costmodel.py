"""FLOPs cost model for linear nodes: direct form vs. frequency domain.

The optimizer compares the floating-point operations needed per steady-state
input item under each implementation strategy, exactly as the paper's
automatic selection does (the absolute constants matter less than the
crossover structure: frequency translation wins once windows are long).

Conventions:

* **Direct form** — one firing computes ``y = A @ x + b``: a multiply and an
  add per nonzero of ``A`` (``2·nnz``), plus one add per nonzero of ``b``.
* **Frequency form** — a block of ``B`` firings shares one forward real FFT
  of the ``N``-point input window, then needs one spectrum multiply
  (``~6·N/2`` flops) and one inverse FFT per output position (``push``
  of them), plus ``b`` adds.  We charge ``FFT_FLOPS_PER_POINT · N·log2(N)``
  per transform (the classic ``~5 N log N`` real-FFT estimate, split-radix
  style).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2
from typing import Optional, Sequence

import numpy as np

from repro.linear.linrep import LinearRep

#: Flops per point-log-point of a real FFT (split-radix estimate).
FFT_FLOPS_PER_POINT = 2.5

#: Candidate block sizes (firings per frequency-domain work invocation).
DEFAULT_BLOCKS = (8, 16, 32, 64, 128, 256, 512, 1024)


def fft_size(rep: LinearRep, block: int) -> int:
    """Transform length for a ``block``-firing frequency implementation."""
    window = block * rep.pop + rep.extra_peek
    n = 1
    while n < window:
        n *= 2
    return n


def direct_flops_per_firing(rep: LinearRep) -> float:
    """Flops of one direct-form firing (``y = A @ x + b``)."""
    return 2.0 * rep.nnz() + float(np.count_nonzero(rep.b))


def direct_flops_per_input(rep: LinearRep) -> float:
    """Direct-form flops per input item consumed."""
    return direct_flops_per_firing(rep) / rep.pop


def freq_flops_per_block(rep: LinearRep, block: int) -> float:
    """Flops of one frequency-form invocation covering ``block`` firings."""
    n = fft_size(rep, block)
    fft_cost = FFT_FLOPS_PER_POINT * n * log2(n)
    # one forward FFT + `push` inverse FFTs + `push` spectrum multiplies
    spectrum_mult = 6.0 * (n / 2 + 1)
    total = fft_cost * (1 + rep.push)
    total += spectrum_mult * rep.push
    total += float(np.count_nonzero(rep.b)) * block
    return total


def freq_flops_per_input(rep: LinearRep, block: int) -> float:
    """Frequency-form flops per input item consumed."""
    return freq_flops_per_block(rep, block) / (block * rep.pop)


def best_block(rep: LinearRep, blocks: Sequence[int] = DEFAULT_BLOCKS) -> int:
    """The block size minimizing frequency-form flops per input item."""
    return min(blocks, key=lambda b: freq_flops_per_input(rep, b))


@dataclass(frozen=True)
class CostReport:
    """Cost comparison for one linear node."""

    rep: LinearRep
    direct: float
    freq: float
    block: int

    @property
    def freq_wins(self) -> bool:
        return self.freq < self.direct

    @property
    def best(self) -> float:
        return min(self.direct, self.freq)


def compare(rep: LinearRep, blocks: Sequence[int] = DEFAULT_BLOCKS) -> CostReport:
    """Compare direct vs. frequency implementations of a linear rep."""
    block = best_block(rep, blocks)
    return CostReport(
        rep=rep,
        direct=direct_flops_per_input(rep),
        freq=freq_flops_per_input(rep, block),
        block=block,
    )
