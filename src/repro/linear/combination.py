"""Linear combination: collapsing neighboring linear nodes into one.

Combining two pipelined linear filters ``F`` (upstream) and ``G``
(downstream) into a single :class:`LinearRep` eliminates the intermediate
stream entirely — the combined matrix is (a rate-matched form of)
``A_G · A_F``, removing redundant computation exactly as the paper
describes.  Split-joins of linear branches collapse similarly, with the
splitter/joiner data reordering folded into the matrix.

Derivations (window index 0 = oldest item; ``peek - pop`` extra items are
*newer* than the popped block):

**Pipeline.**  With ``L = lcm(push_F, pop_G)``, one combined firing stands
for ``k1 = L/push_F`` upstream and ``k2 = L/pop_G`` downstream firings.
The downstream firings read intermediate window ``[jL, jL + L + e_G)``
(``e_G = peek_G - pop_G``), which is produced by the first
``m = ceil((L + e_G)/push_F)`` upstream firings starting at firing
``j·k1`` — an exact alignment because ``jL`` is a multiple of ``push_F``.
Hence with ``F_m = F.expand(m)`` and ``G_k = G.expand(k2)``::

    A = A_{G_k} @ A_{F_m}[0 : L+e_G, :]
    b = A_{G_k} @ b_{F_m}[0 : L+e_G] + b_{G_k}
    pop = k1 · pop_F,   peek = peek_F + (m-1) · pop_F

**Split-join.**  Each branch ``i`` is expanded to ``n_i`` firings per
combined firing, where the ``n_i`` solve the local balance equations
against the splitter weights ``v`` and joiner weights ``w``.  A branch
window position maps to a combined input position through the splitter's
distribution pattern (identity for duplicate; ``q·V + off_i + r`` with
``q = p // v_i``, ``r = p % v_i`` for round-robin), and each expanded
branch output row is placed at the joiner position ``t·W + off_i + s``.
"""

from __future__ import annotations

from fractions import Fraction
from math import ceil, gcd, lcm
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StreamItError, ValidationError
from repro.graph.splitjoin import DUPLICATE, JoinerSpec, ROUND_ROBIN, SplitterSpec
from repro.linear.linrep import LinearRep


def combine_pipeline(up: LinearRep, down: LinearRep) -> LinearRep:
    """Collapse two pipelined linear reps into one (``up`` feeds ``down``)."""
    L = lcm(up.push, down.pop)
    k1 = L // up.push
    k2 = L // down.pop
    e_g = down.extra_peek
    window = L + e_g
    m = ceil(window / up.push)

    F = up.expand(m)
    G = down.expand(k2)
    assert G.peek == window, (G.peek, window)

    S_A = F.A[:window, :]
    S_b = F.b[:window]
    A = G.A @ S_A
    b = G.A @ S_b + G.b
    return LinearRep(A, b, pop=k1 * up.pop)


def combine_pipeline_all(reps: Sequence[LinearRep]) -> LinearRep:
    """Fold :func:`combine_pipeline` over a pipeline of linear reps."""
    if not reps:
        raise StreamItError("cannot combine an empty pipeline")
    result = reps[0]
    for rep in reps[1:]:
        result = combine_pipeline(result, rep)
    return result


def _branch_firings(
    reps: Sequence[LinearRep],
    split_weights: Sequence[int],
    join_weights: Sequence[int],
    duplicate: bool,
) -> Tuple[int, List[int], int]:
    """Solve local balance equations: (splitter cycles S, firings n_i, joiner cycles J).

    For duplicate splitters, S is the combined pop count (items each branch
    consumes per combined firing).
    """
    n = len(reps)
    if duplicate:
        # n_i * push_i = J * w_i  and  n_i * pop_i identical for all i.
        J = 1
        for i in range(n):
            J = lcm(J, reps[i].push // gcd(reps[i].push, join_weights[i]))
        # Scale J so every n_i is integral.
        while True:
            ns = []
            ok = True
            for i in range(n):
                num = J * join_weights[i]
                if num % reps[i].push:
                    ok = False
                    break
                ns.append(num // reps[i].push)
            if ok:
                break
            J += J  # pragma: no cover - J above is already sufficient
        pops = {ns[i] * reps[i].pop for i in range(n)}
        if len(pops) != 1:
            raise ValidationError(
                "duplicate split-join branches consume at different rates; "
                "no steady state exists (buffer overflow)"
            )
        return pops.pop(), ns, J

    # Round-robin splitter: n_i * pop_i = S * v_i, n_i * push_i = J * w_i.
    n_frac = [Fraction(split_weights[i], reps[i].pop) for i in range(n)]
    j_frac = [n_frac[i] * reps[i].push / Fraction(join_weights[i]) for i in range(n)]
    first = j_frac[0]
    for i in range(1, n):
        if j_frac[i] != first:
            raise ValidationError(
                "round-robin split-join branch rates are unbalanced; no "
                "steady state exists (buffer overflow)"
            )
    scale = 1
    for f in n_frac + j_frac:
        scale = lcm(scale, f.denominator)
    S = scale
    ns = [int(n_frac[i] * S) for i in range(n)]
    J = int(first * S)
    return S, ns, J


def combine_splitjoin(
    reps: Sequence[LinearRep],
    splitter: SplitterSpec,
    joiner: JoinerSpec,
) -> LinearRep:
    """Collapse a split-join of linear branches into one linear rep.

    Supports duplicate and (weighted) round-robin splitters with (weighted)
    round-robin joiners — the combinations the paper's applications use.
    """
    n = len(reps)
    if n == 0:
        raise StreamItError("cannot combine an empty split-join")
    if joiner.kind != ROUND_ROBIN:
        raise StreamItError(
            f"split-join combination requires a round-robin joiner, got {joiner.kind}"
        )
    if splitter.kind not in (DUPLICATE, ROUND_ROBIN):
        raise StreamItError(
            f"split-join combination requires duplicate or round-robin "
            f"splitter, got {splitter.kind}"
        )
    duplicate = splitter.kind == DUPLICATE
    v = splitter.resolved_weights(n)
    w = joiner.resolved_weights(n)
    if any(weight == 0 for weight in (v if not duplicate else w)) or any(
        weight == 0 for weight in w
    ):
        raise StreamItError("zero-weight branches cannot be linearly combined")

    S, ns, J = _branch_firings(reps, v, w, duplicate)
    V = sum(v)
    W = sum(w)
    pop_c = S if duplicate else S * V
    push_c = J * W

    off_v = np.cumsum([0] + list(v[:-1]))
    off_w = np.cumsum([0] + list(w[:-1]))

    def input_position(branch: int, p: int) -> int:
        """Map branch-stream position ``p`` to a combined input position."""
        if duplicate:
            return p
        q, r = divmod(p, v[branch])
        return q * V + int(off_v[branch]) + r

    # Determine the combined peek width (windows extend into newer items).
    peek_c = pop_c
    expanded = [rep.expand(ns[i]) for i, rep in enumerate(reps)]
    for i, exp in enumerate(expanded):
        if exp.peek:
            peek_c = max(peek_c, input_position(i, exp.peek - 1) + 1)

    A = np.zeros((push_c, peek_c))
    b = np.zeros(push_c)
    for i, exp in enumerate(expanded):
        # Scatter branch window columns into combined input positions.
        cols = np.fromiter(
            (input_position(i, p) for p in range(exp.peek)), dtype=np.int64, count=exp.peek
        )
        scattered = np.zeros((exp.push, peek_c))
        scattered[:, cols] = exp.A
        # Place each branch output row at its joiner position.
        for t in range(J):
            for s in range(w[i]):
                out_row = t * W + int(off_w[i]) + s
                branch_row = t * w[i] + s
                A[out_row, :] = scattered[branch_row, :]
                b[out_row] = exp.b[branch_row]
    return LinearRep(A, b, pop=pop_c)
