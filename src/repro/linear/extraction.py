"""Linear extraction: detecting linear filters from their ``work`` code.

The paper's *linear dataflow analysis* symbolically executes a filter's
``work`` function over an abstract domain where every value is either a
*constant* or an *affine form* ``c0 + Σ c_i · peek(i)``.  If every pushed
item resolves to an affine form (and the filter mutates no state), the
filter is linear and the analysis yields its :class:`LinearRep`.

Supported ``work`` subset (mirroring StreamIt's C-like bodies):

* locals, tuple assignment, ``if``/``for range(...)``/``while`` with
  compile-time-constant control flow (loops are unrolled),
* ``+ - * /`` with the usual linearity rules (an affine form may only be
  multiplied/divided by a constant),
* reads of instance attributes set in ``__init__`` (compile-time constants),
  constant subscripts, ``len``/``range``/``min``/``max``/``abs``/``math.*``
  over constants,
* ``self.pop()``, ``self.peek(i)``, ``self.push(e)`` (also via
  ``self.input`` / ``self.output``).

Any write to ``self`` makes the filter *stateful* (never linear); any
data-dependent branch, index, or nonlinear operator makes it non-linear.
The analysis distinguishes the two: statefulness also gates the fission
transformations used by the parallelizers.
"""

from __future__ import annotations

import ast
import inspect
import math
import textwrap
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple, Union

import numpy as np

from repro.errors import ExtractionError
from repro.graph.base import Filter
from repro.linear.linrep import LinearRep

_MAX_STEPS = 4_000_000


class _NotLinear(Exception):
    """Internal: the filter is not linear (with a human-readable reason)."""


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    pass


class Affine:
    """An affine form over the input window: ``const + Σ coeffs[i]·peek(i)``."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Optional[Dict[int, float]] = None, const: float = 0.0) -> None:
        self.coeffs: Dict[int, float] = coeffs if coeffs is not None else {}
        self.const = float(const)

    @staticmethod
    def of_peek(index: int) -> "Affine":
        return Affine({index: 1.0}, 0.0)

    def add(self, other: "Affine") -> "Affine":
        coeffs = dict(self.coeffs)
        for k, v in other.coeffs.items():
            coeffs[k] = coeffs.get(k, 0.0) + v
        return Affine(coeffs, self.const + other.const)

    def neg(self) -> "Affine":
        return Affine({k: -v for k, v in self.coeffs.items()}, -self.const)

    def scale(self, factor: float) -> "Affine":
        factor = float(factor)
        return Affine({k: v * factor for k, v in self.coeffs.items()}, self.const * factor)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Affine({self.coeffs}, {self.const})"


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float, bool, np.integer, np.floating))


def _to_affine(value: Any) -> Affine:
    if isinstance(value, Affine):
        return value
    if _is_number(value):
        return Affine({}, float(value))
    raise _NotLinear(f"value {value!r} cannot appear in stream arithmetic")


@dataclass(frozen=True)
class ExtractionResult:
    """Outcome of linear extraction on one filter."""

    rep: Optional[LinearRep]
    stateful: bool
    reason: str

    @property
    def linear(self) -> bool:
        return self.rep is not None


# ---------------------------------------------------------------------------
# State mutation pre-scan
# ---------------------------------------------------------------------------

_CHANNEL_ATTRS = {"input", "output"}
_CHANNEL_METHODS = {"pop", "peek", "push"}


def _is_self(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


def _self_attr(node: ast.expr) -> Optional[str]:
    """If ``node`` is ``self.<attr>``, return the attribute name."""
    if isinstance(node, ast.Attribute) and _is_self(node.value):
        return node.attr
    return None


def mutated_attributes(work_ast: ast.AST) -> Set[str]:
    """Names of ``self`` attributes written (or conservatively mutated)."""
    mutated: Set[str] = set()

    class Scanner(ast.NodeVisitor):
        def _target(self, node: ast.expr) -> None:
            attr = _self_attr(node)
            if attr is not None:
                mutated.add(attr)
                return
            if isinstance(node, ast.Subscript):
                attr = _self_attr(node.value)
                if attr is not None:
                    mutated.add(attr)
            if isinstance(node, (ast.Tuple, ast.List)):
                for elt in node.elts:
                    self._target(elt)

        def visit_Assign(self, node: ast.Assign) -> None:
            for target in node.targets:
                self._target(target)
            self.generic_visit(node)

        def visit_AugAssign(self, node: ast.AugAssign) -> None:
            self._target(node.target)
            self.generic_visit(node)

        def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
            if node.target is not None:
                self._target(node.target)
            self.generic_visit(node)

        def visit_Call(self, node: ast.Call) -> None:
            # self.<attr>.<method>(...) mutates <attr> unless it is a
            # channel access (self.input.pop() etc.); portal sends are also
            # conservatively treated as state effects.
            if isinstance(node.func, ast.Attribute):
                owner_attr = _self_attr(node.func.value)
                if owner_attr is not None and owner_attr not in _CHANNEL_ATTRS:
                    mutated.add(owner_attr)
            self.generic_visit(node)

    Scanner().visit(work_ast)
    return mutated


# ---------------------------------------------------------------------------
# The abstract interpreter
# ---------------------------------------------------------------------------


def work_source_ast(filt: Filter) -> ast.FunctionDef:
    """Parse the filter's ``work`` method into a function AST."""
    try:
        source = inspect.getsource(type(filt).work)
    except (OSError, TypeError) as exc:
        raise ExtractionError(f"cannot obtain source of {type(filt).__name__}.work: {exc}")
    tree = ast.parse(textwrap.dedent(source))
    fn = tree.body[0]
    if not isinstance(fn, ast.FunctionDef):
        raise ExtractionError(f"{type(filt).__name__}.work is not a plain function")
    return fn


class _SelfProxy:
    """Sentinel for the ``self`` name during abstract interpretation."""


class _ChannelProxy:
    """Sentinel for ``self.input`` / ``self.output``."""

    def __init__(self, direction: str) -> None:
        self.direction = direction


class _Analyzer:
    def __init__(self, filt: Filter) -> None:
        self.filt = filt
        self.rate = filt.rate
        self.env: Dict[str, Any] = {"self": _SelfProxy()}
        self.globals = type(filt).work.__globals__
        self.popped = 0
        self.rows: List[Affine] = []
        self.steps = 0
        self.mutated = mutated_attributes(work_source_ast(filt))

    # -- bookkeeping ---------------------------------------------------------

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > _MAX_STEPS:
            raise ExtractionError(
                f"{self.filt.name}: work-function analysis exceeded "
                f"{_MAX_STEPS} steps (unbounded loop?)"
            )

    # -- channel ops ----------------------------------------------------------

    def do_pop(self) -> Affine:
        if self.popped >= self.rate.pop:
            raise ExtractionError(
                f"{self.filt.name}: work pops more than its declared pop "
                f"rate ({self.rate.pop})"
            )
        value = Affine.of_peek(self.popped)
        self.popped += 1
        return value

    def do_peek(self, index: Any) -> Affine:
        if isinstance(index, Affine):
            raise _NotLinear("peek with a data-dependent index")
        if not _is_number(index):
            raise ExtractionError(f"{self.filt.name}: peek index {index!r} is not a number")
        offset = self.popped + int(index)
        if int(index) < 0 or offset >= self.rate.peek:
            raise ExtractionError(
                f"{self.filt.name}: peek({int(index)}) after {self.popped} pops "
                f"exceeds the declared peek rate ({self.rate.peek})"
            )
        return Affine.of_peek(offset)

    def do_push(self, value: Any) -> None:
        if len(self.rows) >= self.rate.push:
            raise ExtractionError(
                f"{self.filt.name}: work pushes more than its declared push "
                f"rate ({self.rate.push})"
            )
        self.rows.append(_to_affine(value))

    # -- statements ------------------------------------------------------------

    def exec_body(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        self._tick()
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self.assign(target, value)
        elif isinstance(stmt, ast.AugAssign):
            current = self.eval(_load_of(stmt.target))
            value = self.binop(type(stmt.op), current, self.eval(stmt.value))
            self.assign(stmt.target, value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.assign(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.If):
            test = self.eval(stmt.test)
            if isinstance(test, Affine):
                raise _NotLinear("branch on a data-dependent condition")
            self.exec_body(stmt.body if test else stmt.orelse)
        elif isinstance(stmt, ast.For):
            self.exec_for(stmt)
        elif isinstance(stmt, ast.While):
            self.exec_while(stmt)
        elif isinstance(stmt, ast.Break):
            raise _Break()
        elif isinstance(stmt, ast.Continue):
            raise _Continue()
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.eval(stmt.value)
            raise _Return()
        elif isinstance(stmt, ast.Pass):
            pass
        elif isinstance(stmt, ast.Assert):
            pass  # assertions carry no stream semantics
        else:
            raise _NotLinear(f"unsupported statement {type(stmt).__name__}")

    def exec_for(self, stmt: ast.For) -> None:
        iterable = self.eval(stmt.iter)
        if isinstance(iterable, Affine):
            raise _NotLinear("iteration over a data-dependent value")
        try:
            items = list(iterable)
        except TypeError:
            raise _NotLinear(f"cannot iterate over {iterable!r}")
        broke = False
        for item in items:
            self._tick()
            self.assign(stmt.target, item)
            try:
                self.exec_body(stmt.body)
            except _Break:
                broke = True
                break
            except _Continue:
                continue
        if not broke and stmt.orelse:
            self.exec_body(stmt.orelse)

    def exec_while(self, stmt: ast.While) -> None:
        while True:
            self._tick()
            test = self.eval(stmt.test)
            if isinstance(test, Affine):
                raise _NotLinear("while on a data-dependent condition")
            if not test:
                break
            try:
                self.exec_body(stmt.body)
            except _Break:
                return
            except _Continue:
                continue
        if stmt.orelse:
            self.exec_body(stmt.orelse)

    # -- assignment --------------------------------------------------------------

    def assign(self, target: ast.expr, value: Any) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            try:
                values = list(value)
            except TypeError:
                raise _NotLinear(f"cannot unpack {value!r}")
            if len(values) != len(target.elts):
                raise ExtractionError(f"{self.filt.name}: unpacking arity mismatch")
            for elt, item in zip(target.elts, values):
                self.assign(elt, item)
        elif isinstance(target, ast.Subscript):
            container = self.eval(target.value)
            index = self.eval(target.slice)
            if isinstance(index, Affine):
                raise _NotLinear("store with a data-dependent index")
            if isinstance(container, list):
                container[int(index)] = value
            else:
                raise _NotLinear(
                    f"subscript store into {type(container).__name__} "
                    "(only local lists are mutable in work)"
                )
        elif isinstance(target, ast.Attribute):
            raise _NotLinear("work mutates filter state (assignment to self attribute)")
        else:
            raise _NotLinear(f"unsupported assignment target {type(target).__name__}")

    # -- expressions -----------------------------------------------------------

    def eval(self, node: ast.expr) -> Any:
        self._tick()
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            if node.id in self.globals:
                return self.globals[node.id]
            builtins_ns = self.globals.get("__builtins__", {})
            if isinstance(builtins_ns, dict) and node.id in builtins_ns:
                return builtins_ns[node.id]
            if hasattr(builtins_ns, node.id):
                return getattr(builtins_ns, node.id)
            raise ExtractionError(f"{self.filt.name}: unknown name {node.id!r} in work")
        if isinstance(node, ast.Attribute):
            return self.eval_attribute(node)
        if isinstance(node, ast.BinOp):
            return self.binop(type(node.op), self.eval(node.left), self.eval(node.right))
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(node.operand)
            if isinstance(node.op, ast.USub):
                return operand.neg() if isinstance(operand, Affine) else -operand
            if isinstance(node.op, ast.UAdd):
                return operand
            if isinstance(node.op, ast.Not):
                if isinstance(operand, Affine):
                    raise _NotLinear("boolean not of a data-dependent value")
                return not operand
            raise _NotLinear(f"unsupported unary operator {type(node.op).__name__}")
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, ast.Subscript):
            return self.eval_subscript(node)
        if isinstance(node, ast.Compare):
            return self.eval_compare(node)
        if isinstance(node, ast.BoolOp):
            values = [self.eval(v) for v in node.values]
            if any(isinstance(v, Affine) for v in values):
                raise _NotLinear("boolean operation on a data-dependent value")
            if isinstance(node.op, ast.And):
                result = values[0]
                for v in values[1:]:
                    result = result and v
                return result
            result = values[0]
            for v in values[1:]:
                result = result or v
            return result
        if isinstance(node, (ast.List, ast.Tuple)):
            items = [self.eval(elt) for elt in node.elts]
            return items if isinstance(node, ast.List) else tuple(items)
        if isinstance(node, ast.IfExp):
            test = self.eval(node.test)
            if isinstance(test, Affine):
                raise _NotLinear("conditional expression on a data-dependent value")
            return self.eval(node.body if test else node.orelse)
        raise _NotLinear(f"unsupported expression {type(node).__name__}")

    def eval_attribute(self, node: ast.Attribute) -> Any:
        value = self.eval(node.value)
        if isinstance(value, _SelfProxy):
            if node.attr in _CHANNEL_ATTRS:
                return _ChannelProxy(node.attr)
            if node.attr in self.mutated:
                raise _NotLinear(
                    f"reads attribute {node.attr!r} that work also mutates (stateful)"
                )
            try:
                return getattr(self.filt, node.attr)
            except AttributeError:
                raise ExtractionError(
                    f"{self.filt.name}: work reads undefined attribute self.{node.attr}"
                )
        if isinstance(value, Affine):
            raise _NotLinear("attribute access on a data-dependent value")
        try:
            return getattr(value, node.attr)
        except AttributeError:
            raise ExtractionError(
                f"{self.filt.name}: no attribute {node.attr!r} on {value!r}"
            )

    def eval_subscript(self, node: ast.Subscript) -> Any:
        container = self.eval(node.value)
        index = self.eval(node.slice)
        if isinstance(container, Affine):
            raise _NotLinear("subscript of a data-dependent value")
        if isinstance(index, Affine):
            raise _NotLinear("subscript with a data-dependent index")
        try:
            return container[index]
        except Exception as exc:
            raise ExtractionError(f"{self.filt.name}: bad subscript in work: {exc}")

    def eval_compare(self, node: ast.Compare) -> Any:
        left = self.eval(node.left)
        for op, comparator in zip(node.ops, node.comparators):
            right = self.eval(comparator)
            if isinstance(left, Affine) or isinstance(right, Affine):
                raise _NotLinear("comparison of a data-dependent value")
            import operator as op_mod

            table = {
                ast.Eq: op_mod.eq,
                ast.NotEq: op_mod.ne,
                ast.Lt: op_mod.lt,
                ast.LtE: op_mod.le,
                ast.Gt: op_mod.gt,
                ast.GtE: op_mod.ge,
                ast.Is: op_mod.is_,
                ast.IsNot: op_mod.is_not,
            }
            fn = table.get(type(op))
            if fn is None:
                if isinstance(op, ast.In):
                    fn = lambda a, b: a in b
                elif isinstance(op, ast.NotIn):
                    fn = lambda a, b: a not in b
                else:
                    raise _NotLinear(f"unsupported comparison {type(op).__name__}")
            if not fn(left, right):
                return False
            left = right
        return True

    def binop(self, op_type: type, left: Any, right: Any) -> Any:
        left_aff = isinstance(left, Affine)
        right_aff = isinstance(right, Affine)
        if not left_aff and not right_aff:
            import operator as op_mod

            table = {
                ast.Add: op_mod.add,
                ast.Sub: op_mod.sub,
                ast.Mult: op_mod.mul,
                ast.Div: op_mod.truediv,
                ast.FloorDiv: op_mod.floordiv,
                ast.Mod: op_mod.mod,
                ast.Pow: op_mod.pow,
                ast.LShift: op_mod.lshift,
                ast.RShift: op_mod.rshift,
                ast.BitAnd: op_mod.and_,
                ast.BitOr: op_mod.or_,
                ast.BitXor: op_mod.xor,
            }
            fn = table.get(op_type)
            if fn is None:
                raise _NotLinear(f"unsupported operator {op_type.__name__}")
            return fn(left, right)
        if op_type is ast.Add:
            return _to_affine(left).add(_to_affine(right))
        if op_type is ast.Sub:
            return _to_affine(left).add(_to_affine(right).neg())
        if op_type is ast.Mult:
            if left_aff and right_aff:
                raise _NotLinear("product of two data-dependent values")
            if left_aff:
                return left.scale(float(right))
            return right.scale(float(left))
        if op_type is ast.Div:
            if right_aff:
                raise _NotLinear("division by a data-dependent value")
            return left.scale(1.0 / float(right))
        raise _NotLinear(
            f"nonlinear operator {op_type.__name__} on a data-dependent value"
        )

    def eval_call(self, node: ast.Call) -> Any:
        func = node.func
        # Channel operations, in either spelling.
        if isinstance(func, ast.Attribute):
            owner = func.value
            method = func.attr
            if _is_self(owner) and method in _CHANNEL_METHODS:
                return self.channel_call(method, node)
            owner_value_is_channel = (
                isinstance(owner, ast.Attribute)
                and _is_self(owner.value)
                and owner.attr in _CHANNEL_ATTRS
            )
            if owner_value_is_channel and method in _CHANNEL_METHODS:
                return self.channel_call(method, node)
            if _is_self(owner) or (isinstance(owner, ast.Attribute) and _is_self(owner.value)):
                raise _NotLinear(f"call to method {method!r} on self (side effects)")
        callee = self.eval(func)
        args = [self.eval(arg) for arg in node.args]
        if node.keywords:
            raise _NotLinear("keyword arguments in work calls")
        if any(isinstance(a, Affine) for a in args):
            raise _NotLinear(
                f"call to {getattr(callee, '__name__', callee)!r} with a "
                "data-dependent argument"
            )
        allowed = (
            range, len, abs, min, max, int, float, bool, round, sum, list, tuple,
            enumerate, zip, reversed, sorted,
        )
        if callee in allowed or getattr(callee, "__module__", None) in ("math", "numpy"):
            try:
                return callee(*args)
            except Exception as exc:
                raise ExtractionError(f"{self.filt.name}: error calling {callee!r}: {exc}")
        if callable(callee) and getattr(callee, "__module__", None) == "builtins":
            raise _NotLinear(f"unsupported builtin call {callee!r}")
        raise _NotLinear(f"call to non-analyzable function {callee!r}")

    def channel_call(self, method: str, node: ast.Call) -> Any:
        if method == "pop":
            if node.args:
                raise ExtractionError(f"{self.filt.name}: pop() takes no arguments")
            return self.do_pop()
        if method == "peek":
            if len(node.args) != 1:
                raise ExtractionError(f"{self.filt.name}: peek() takes one argument")
            return self.do_peek(self.eval(node.args[0]))
        if method == "push":
            if len(node.args) != 1:
                raise ExtractionError(f"{self.filt.name}: push() takes one argument")
            self.do_push(self.eval(node.args[0]))
            return None
        raise ExtractionError(f"unknown channel method {method}")  # pragma: no cover


def _load_of(target: ast.expr) -> ast.expr:
    """Clone an assignment target as a load expression (for AugAssign)."""
    clone = ast.copy_location(ast.parse(ast.unparse(target), mode="eval").body, target)
    return clone


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def try_extract(filt: Filter) -> ExtractionResult:
    """Run linear extraction, reporting the rep or the reason it failed.

    The alias-aware pre-screen from :mod:`repro.analysis.linearity` gates
    the abstract interpreter: it rejects stateful filters *including* ones
    whose writes hide behind local aliases or helper methods (which
    :func:`mutated_attributes`'s purely syntactic scan misses), and keeps
    the interpreter — whose subscript stores can write through an alias
    into a live attribute list — away from instances it could corrupt.
    """
    if filt.rate.pop == 0 or filt.rate.push == 0:
        return ExtractionResult(None, stateful=False, reason="source or sink filter")
    try:
        from repro.analysis.linearity import affine_prescreen
    except Exception:  # pragma: no cover - analysis layer unavailable
        affine_prescreen = None
    if affine_prescreen is not None:
        candidate, reason = affine_prescreen(filt)
        if not candidate:
            return ExtractionResult(None, stateful=True, reason=reason)
    fn = work_source_ast(filt)
    analyzer = _Analyzer(filt)
    if analyzer.mutated:
        return ExtractionResult(
            None,
            stateful=True,
            reason=f"stateful: work mutates {sorted(analyzer.mutated)}",
        )
    try:
        try:
            analyzer.exec_body(fn.body)
        except _Return:
            pass
    except _NotLinear as exc:
        return ExtractionResult(None, stateful=False, reason=f"not linear: {exc}")
    except (_Break, _Continue):
        raise ExtractionError(f"{filt.name}: break/continue outside a loop in work")
    if analyzer.popped != filt.rate.pop:
        raise ExtractionError(
            f"{filt.name}: work popped {analyzer.popped} items, declared "
            f"pop={filt.rate.pop}"
        )
    if len(analyzer.rows) != filt.rate.push:
        raise ExtractionError(
            f"{filt.name}: work pushed {len(analyzer.rows)} items, declared "
            f"push={filt.rate.push}"
        )
    peek = filt.rate.peek
    A = np.zeros((filt.rate.push, peek))
    b = np.zeros(filt.rate.push)
    for r, row in enumerate(analyzer.rows):
        for index, coeff in row.coeffs.items():
            A[r, index] = coeff
        b[r] = row.const
    return ExtractionResult(
        LinearRep(A, b, pop=filt.rate.pop), stateful=False, reason="linear"
    )


def extract_linear(filt: Filter) -> Optional[LinearRep]:
    """The paper's linear extraction: the filter's rep, or None."""
    return try_extract(filt).rep


def is_stateful(filt: Filter) -> bool:
    """True if the filter's work function mutates instance state.

    Stateless filters can be fissed (data-parallelized); stateful ones
    cannot.  Peeking does not make a filter stateful, but fissing a peeking
    filter requires duplication (see :mod:`repro.transforms.fission`).
    """
    try:
        fn = work_source_ast(filt)
    except ExtractionError:
        return True  # conservatively stateful if unanalyzable
    return bool(mutated_attributes(fn))
