"""Multicore mapping demo — the evaluation section in miniature.

Maps three representative applications onto the simulated 16-core Raw-like
machine with every strategy, printing the speedup bars and showing why
coarse-grained data parallelism plus software pipelining wins.

Run with:  python examples/multicore_mapping.py [--engine {scalar,batched,parallel}]
           [--cores N] [--trace FILE]

``--engine parallel`` runs each reference execution on real OS cores with
the software-pipeline mapping (graphs the parallel engine refuses fall
back to batched with an SL304 warning).  ``--trace`` records the reference
runs with streamscope (:mod:`repro.obs`) and writes one Chrome trace JSON
per app (``FILE`` gains an app suffix) — with the parallel engine each
worker gets its own Perfetto track.
"""

import argparse
import time
import warnings

from repro.apps import dct, filterbank, radar
from repro.errors import EngineDowngradeWarning
from repro.estimate import characterize
from repro.machine import RawMachine
from repro.mapping import STRATEGIES
from repro.runtime import Interpreter

APPS = {
    "DCT": dct.build,            # one dominant stateless filter
    "FilterBank": filterbank.build,  # wide, balanced, peeking
    "Radar": radar.build,        # dominated by stateful filters
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--engine",
        choices=("scalar", "batched", "parallel"),
        default="scalar",
        help="execution engine used for the reference run of each app",
    )
    parser.add_argument(
        "--cores",
        type=int,
        default=None,
        help="worker count for --engine parallel (default: host CPUs, min 2)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a streamscope Chrome trace per reference run "
        "(FILE gains an app suffix, e.g. out.trace.json -> out.DCT.trace.json)",
    )
    args = parser.parse_args()
    machine = RawMachine()
    print(f"target: {machine.n_cores} cores @ {machine.clock_hz/1e6:.0f} MHz "
          f"({machine.peak_mflops:.0f} MFLOPS peak)\n")

    order = ["task", "fine_grained", "data", "softpipe", "combined", "space"]
    header = f"{'app':12s}" + "".join(f"{s:>14s}" for s in order)
    print(header)
    for name, builder in APPS.items():
        row = []
        for strategy in order:
            result = STRATEGIES[strategy](builder(), machine)
            row.append(result.speedup)
        print(f"{name:12s}" + "".join(f"{v:14.2f}" for v in row))

    engine_opts = {}
    if args.engine == "parallel":
        engine_opts["strategy"] = "softpipe"
        if args.cores is not None:
            engine_opts["cores"] = args.cores
    print(f"\nreference execution ({args.engine} engine, 50 periods):")
    for name, builder in APPS.items():
        app = builder()
        trace_path = None
        if args.trace:
            stem, dot, ext = args.trace.partition(".")
            trace_path = f"{stem}.{name}{dot}{ext}" if dot else f"{args.trace}.{name}"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", EngineDowngradeWarning)
            interp = Interpreter(
                app, check=False, engine=args.engine, trace=trace_path, **engine_opts
            )
        try:
            start = time.perf_counter()
            interp.run(periods=50)
            elapsed = time.perf_counter() - start
        finally:
            interp.close()
        note = f", trace -> {trace_path}" if trace_path else ""
        print(f"  {name:12s} {elapsed * 1000:8.1f} ms "
              f"({interp.engine_used} engine{note})")

    print("\nwhy: benchmark characteristics")
    for name, builder in APPS.items():
        c = characterize(name, builder())
        print(
            f"  {name:12s} filters={c.filters:3d} peeking={c.peeking:2d} "
            f"stateful={c.stateful:2d} stateful-work={c.stateful_work_pct:5.1f}% "
            f"comp/comm={c.comp_comm_ratio:6.1f}"
        )

    print(
        "\nreading the table: DCT needs fission (its one heavy filter bounds\n"
        "every non-fissing strategy); FilterBank's balanced split-join gives\n"
        "task parallelism for free but peeking makes fission pay duplication;\n"
        "Radar's stateful filters defeat data parallelism entirely, so\n"
        "software pipelining provides the only leverage."
    )


if __name__ == "__main__":
    main()
